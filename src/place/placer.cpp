#include "place/placer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace gridroute {

Placer::Placer(int cols, int rows, std::vector<Block> blocks,
               std::vector<BlockNet> nets, PlacerOptions options)
    : cols_(cols),
      rows_(rows),
      blocks_(std::move(blocks)),
      nets_(std::move(nets)),
      options_(options) {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (!inside(blocks_[i]))
      throw std::invalid_argument("block '" + blocks_[i].name +
                                  "' does not fit the floorplan");
    if (!legal(blocks_[i], i))
      throw std::invalid_argument("block '" + blocks_[i].name +
                                  "' overlaps another block initially");
  }
  for (const BlockNet& net : nets_)
    for (const int b : net.blocks)
      if (b < 0 || b >= static_cast<int>(blocks_.size()))
        throw std::invalid_argument("net '" + net.name +
                                    "' references a missing block");
}

bool Placer::inside(const Block& b) const {
  const Rect fp = b.footprint();
  return fp.lo.x >= 0 && fp.lo.y >= 0 && fp.hi.x < cols_ && fp.hi.y < rows_;
}

bool Placer::legal(const Block& candidate, std::size_t self) const {
  if (!inside(candidate)) return false;
  const Rect fp = candidate.footprint();
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (i == self) continue;
    if (fp.intersects(blocks_[i].footprint())) return false;
  }
  return true;
}

long long Placer::hpwl(const std::vector<Block>& blocks) const {
  long long total = 0;
  for (const BlockNet& net : nets_) {
    if (net.blocks.size() < 2) continue;
    Rect box{blocks[static_cast<size_t>(net.blocks[0])].center(),
             blocks[static_cast<size_t>(net.blocks[0])].center()};
    for (const int b : net.blocks) {
      const Point c = blocks[static_cast<size_t>(b)].center();
      box = box.bounding_union({c, c});
    }
    total += (box.width() - 1) + (box.height() - 1);
  }
  return total;
}

PlacementResult Placer::run() {
  Rng rng(options_.seed);
  PlacementResult result;
  result.initial_hpwl = hpwl(blocks_);

  std::vector<std::size_t> movable;
  for (std::size_t i = 0; i < blocks_.size(); ++i)
    if (!blocks_[i].fixed) movable.push_back(i);

  long long cost = result.initial_hpwl;
  double temperature = options_.initial_temperature;

  if (!movable.empty()) {
    for (int step = 0; step < options_.steps; ++step) {
      const int moves = options_.moves_per_block_per_step *
                        static_cast<int>(movable.size());
      for (int m = 0; m < moves; ++m) {
        ++result.moves_tried;
        const std::size_t who = movable[rng.next_below(movable.size())];
        const Block saved_a = blocks_[who];

        // Two move kinds: displace to a random legal spot, or swap the
        // positions of two movable blocks (when shapes permit).
        const bool swap_move =
            movable.size() >= 2 && rng.next_bool(0.3);
        std::size_t other = who;
        Block saved_b = saved_a;
        if (swap_move) {
          do {
            other = movable[rng.next_below(movable.size())];
          } while (other == who);
          saved_b = blocks_[other];
          blocks_[who].position = saved_b.position;
          blocks_[other].position = saved_a.position;
          if (!legal(blocks_[who], who) || !legal(blocks_[other], other)) {
            blocks_[who] = saved_a;
            blocks_[other] = saved_b;
            continue;
          }
        } else {
          blocks_[who].position = {
              rng.next_int(0, cols_ - blocks_[who].width),
              rng.next_int(0, rows_ - blocks_[who].height)};
          if (!legal(blocks_[who], who)) {
            blocks_[who] = saved_a;
            continue;
          }
        }

        const long long new_cost = hpwl(blocks_);
        const long long delta = new_cost - cost;
        const bool accept =
            delta <= 0 ||
            rng.next_double() <
                std::exp(-static_cast<double>(delta) / temperature);
        if (accept) {
          cost = new_cost;
          ++result.moves_accepted;
        } else {
          blocks_[who] = saved_a;
          if (swap_move) blocks_[other] = saved_b;
        }
      }
      temperature *= options_.cooling;
    }
  }

  result.blocks = blocks_;
  result.final_hpwl = cost;
  result.overlap_violations = 0;
  for (std::size_t i = 0; i < blocks_.size(); ++i)
    if (!legal(blocks_[i], i)) ++result.overlap_violations;
  return result;
}

std::vector<std::string> verify_placement(int cols, int rows,
                                          const std::vector<Block>& original,
                                          const std::vector<Block>& placed) {
  std::vector<std::string> issues;
  for (std::size_t i = 0; i < placed.size(); ++i) {
    const Rect fp = placed[i].footprint();
    if (fp.lo.x < 0 || fp.lo.y < 0 || fp.hi.x >= cols || fp.hi.y >= rows)
      issues.push_back("block '" + placed[i].name + "' out of bounds");
    for (std::size_t j = i + 1; j < placed.size(); ++j)
      if (fp.intersects(placed[j].footprint()))
        issues.push_back("blocks '" + placed[i].name + "' and '" +
                         placed[j].name + "' overlap");
  }
  for (std::size_t i = 0; i < placed.size() && i < original.size(); ++i)
    if (original[i].fixed && !(placed[i].position == original[i].position))
      issues.push_back("fixed block '" + original[i].name + "' moved");
  return issues;
}

}  // namespace gridroute
