#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace gridroute {

/// A macro block to place: a rigid w x h rectangle of gcells. `fixed`
/// blocks (pads, pre-placed macros) keep their given position.
struct Block {
  std::string name;
  int width = 1;
  int height = 1;
  Point position{0, 0};  ///< lower-left gcell; input = initial/fixed spot
  bool fixed = false;

  Rect footprint() const {
    return {position, {position.x + width - 1, position.y + height - 1}};
  }
  Point center() const {
    return {position.x + width / 2, position.y + height / 2};
  }
};

/// A connection between blocks for the placement objective: indices into
/// the block list. Cost = half-perimeter of the bounding box of the member
/// blocks' centers (HPWL), the classic placement wirelength estimate.
struct BlockNet {
  std::string name;
  std::vector<int> blocks;
};

struct PlacerOptions {
  /// Simulated-annealing schedule: moves per temperature step scale with
  /// block count; temperature decays geometrically from hot to cold.
  double initial_temperature = 40.0;
  double cooling = 0.9;
  int steps = 60;
  int moves_per_block_per_step = 12;
  std::uint64_t seed = 1;
};

struct PlacementResult {
  std::vector<Block> blocks;   ///< with final positions
  long long initial_hpwl = 0;
  long long final_hpwl = 0;
  int overlap_violations = 0;  ///< 0 in any accepted result
  long long moves_tried = 0;
  long long moves_accepted = 0;
};

/// Simulated-annealing macro placer on a cols x rows gcell floorplan —
/// the placement substrate of the macro-cell design style this router
/// family serves (TimberWolf-era formulation: displace/swap moves, HPWL
/// objective, hard no-overlap constraint maintained throughout).
///
/// Deterministic for a given seed. Throws std::invalid_argument when the
/// blocks cannot legally exist (out of bounds, fixed blocks overlapping).
class Placer {
 public:
  Placer(int cols, int rows, std::vector<Block> blocks,
         std::vector<BlockNet> nets, PlacerOptions options = {});

  PlacementResult run();

  /// HPWL of the given placement under this placer's net list.
  long long hpwl(const std::vector<Block>& blocks) const;

 private:
  bool legal(const Block& candidate, std::size_t self) const;
  bool inside(const Block& b) const;

  int cols_;
  int rows_;
  std::vector<Block> blocks_;
  std::vector<BlockNet> nets_;
  PlacerOptions options_;
};

/// Audits a placement: in-bounds, pairwise non-overlapping, fixed blocks
/// unmoved relative to `original`. Returns violations (empty = legal).
std::vector<std::string> verify_placement(int cols, int rows,
                                          const std::vector<Block>& original,
                                          const std::vector<Block>& placed);

}  // namespace gridroute
