#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace gridroute::fault {

/// Named places in the router where a fault can be injected. Each site is a
/// real failure the stack must degrade through (DESIGN.md §2.1f):
///
///   kSearchQuery   the search kernel's cost evaluation throws — models a
///                  throwing cost provider / corrupted scratch
///   kWaveSpeculate a wave-pool worker throws mid-speculation
///   kNetCommit     committing a routed net's journal to the grid throws
///   kSinkEmit      the trace sink's write fails (I/O error, full disk)
///   kAttemptStart  a multi-start attempt dies before routing anything —
///                  models per-attempt setup (grid/router construction) OOM
///   kBudgetForce   the budget gauge reports exhaustion immediately —
///                  models an operator kill switch / zero headroom
///   kArenaAlloc    allocating per-worker search scratch fails (bad_alloc)
///
/// Service-scoped sites (DESIGN.md §2.5) — these fire *above* the
/// route(RouteRequest) salvage path, inside RoutingService, and are what
/// the worker-supervision layer must absorb:
///
///   kJobDequeue     a worker dies between popping a job and running it —
///                   models corrupted queue state / per-job setup OOM
///   kWorkerBody     the worker body throws outside route()'s own salvage —
///                   models any unexpected escape (bad_alloc in the result
///                   plumbing, a broken invariant)
///   kCacheInsert    inserting a finished result into the LRU cache throws —
///                   the job must still complete, merely uncached
///   kSessionCommit  committing a clean delta into its session fails — the
///                   session's previous committed layout must survive
enum class Site : std::uint8_t {
  kSearchQuery,
  kWaveSpeculate,
  kNetCommit,
  kSinkEmit,
  kAttemptStart,
  kBudgetForce,
  kArenaAlloc,
  kJobDequeue,
  kWorkerBody,
  kCacheInsert,
  kSessionCommit,
};

inline constexpr std::size_t kSiteCount =
    static_cast<std::size_t>(Site::kSessionCommit) + 1;

inline const char* site_name(Site site) {
  switch (site) {
    case Site::kSearchQuery: return "search_query";
    case Site::kWaveSpeculate: return "wave_speculate";
    case Site::kNetCommit: return "net_commit";
    case Site::kSinkEmit: return "sink_emit";
    case Site::kAttemptStart: return "attempt_start";
    case Site::kBudgetForce: return "budget_force";
    case Site::kArenaAlloc: return "arena_alloc";
    case Site::kJobDequeue: return "job_dequeue";
    case Site::kWorkerBody: return "worker_body";
    case Site::kCacheInsert: return "cache_insert";
    case Site::kSessionCommit: return "session_commit";
  }
  return "unknown";
}

/// The exception an armed site throws. Carries which site fired and the
/// arrival (1-based hit index) it was armed for, so handlers can report a
/// precise degradation diagnostic.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(Site site, long long arrival)
      : std::runtime_error(std::string("injected fault at ") +
                           site_name(site) + " (arrival " +
                           std::to_string(arrival) + ")"),
        site_(site),
        arrival_(arrival) {}

  Site site() const { return site_; }
  long long arrival() const { return arrival_; }

 private:
  Site site_;
  long long arrival_;
};

/// Deterministic seed-driven fault plan: a seed picks one site and an
/// arrival index n; the nth time execution reaches that site — counted
/// across all threads with an atomic per-site counter — the site fires,
/// exactly once per Injector. Because sites are reached in data-dependent
/// but deterministic order on serial paths, a (seed, problem) pair names a
/// reproducible fault schedule; on parallel paths the arrival *count* is
/// still exact even though which thread trips it may vary, which is
/// precisely the nondeterminism the degradation invariant must absorb.
///
/// The Injector is passive: router code asks `maybe_throw(site)` (throws
/// InjectedFault) or `fire(site)` (returns true once) at each named site.
/// With no Injector installed both are never reached — the hooks are a
/// pointer null-check, zero cost in production.
class Injector {
 public:
  /// Seed-driven plan: site = seed-picked, arrival in [1, max_arrival].
  explicit Injector(std::uint64_t seed, long long max_arrival = 48) {
    // Salted so an injector seeded with a routing seed draws a different
    // stream than the router itself.
    Rng rng(mix_seeds(0xfa017u, seed));
    site_ = static_cast<Site>(rng.next_below(kSiteCount));
    arrival_ = 1 + static_cast<long long>(
                       rng.next_below(static_cast<std::uint64_t>(
                           max_arrival > 0 ? max_arrival : 1)));
  }

  /// Targeted plan for regression tests: fire `site` on its nth arrival.
  /// (Returned as a prvalue — Injector holds atomics and cannot move.)
  static Injector at(Site site, long long arrival) {
    return Injector(site, arrival);
  }

  Site site() const { return site_; }
  long long arrival() const { return arrival_; }

  /// Records one arrival at `site`; true exactly when this arrival is the
  /// armed one (at most once in the Injector's lifetime).
  bool fire(Site site) {
    const auto idx = static_cast<std::size_t>(site);
    const long long n = 1 + hits_[idx].fetch_add(1, std::memory_order_relaxed);
    if (site != site_ || n != arrival_) return false;
    bool expected = false;
    if (!fired_.compare_exchange_strong(expected, true,
                                        std::memory_order_relaxed))
      return false;
    return true;
  }

  /// fire(), but throwing InjectedFault when armed.
  void maybe_throw(Site site) {
    if (fire(site)) throw InjectedFault(site_, arrival_);
  }

  /// Whether the armed site has fired yet (a schedule whose arrival exceeds
  /// the run's traffic never fires — the run must then be byte-identical to
  /// a fault-free one).
  bool fired() const { return fired_.load(std::memory_order_relaxed); }

  /// Total arrivals recorded at `site` so far.
  long long hits(Site site) const {
    return hits_[static_cast<std::size_t>(site)].load(
        std::memory_order_relaxed);
  }

  /// "site=net_commit arrival=7" — for test failure messages.
  std::string plan() const {
    return std::string("site=") + site_name(site_) +
           " arrival=" + std::to_string(arrival_);
  }

 private:
  Injector(Site site, long long arrival) : site_(site), arrival_(arrival) {}

  Site site_ = Site::kSearchQuery;
  long long arrival_ = 1;
  std::atomic<bool> fired_{false};
  std::atomic<long long> hits_[kSiteCount]{};
};

/// TraceSink decorator that survives a failing inner sink: forwards every
/// event, and if the inner sink throws (or the injector fires kSinkEmit),
/// disables forwarding permanently and counts dropped events instead of
/// letting the exception unwind the router. Routing output is thus never
/// lost to a broken observer — the run completes with tracing degraded.
class FailsafeSink : public obs::TraceSink {
 public:
  explicit FailsafeSink(obs::TraceSink* inner, Injector* faults = nullptr)
      : inner_(inner), faults_(faults) {}

  void on_event(const obs::TraceEvent& event) override {
    if (disabled_.load(std::memory_order_relaxed)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    try {
      if (faults_ != nullptr) faults_->maybe_throw(Site::kSinkEmit);
      inner_->on_event(event);
    } catch (...) {
      disabled_.store(true, std::memory_order_relaxed);
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// True once a sink failure has been absorbed.
  bool disabled() const { return disabled_.load(std::memory_order_relaxed); }
  /// Events not delivered to the inner sink (including the failing one).
  long long dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  obs::TraceSink* inner_;
  Injector* faults_;
  std::atomic<bool> disabled_{false};
  std::atomic<long long> dropped_{0};
};

}  // namespace gridroute::fault
