#include "verify/verify.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "util/disjoint_set.hpp"

namespace gridroute {

namespace {

/// True when the pin is covered by wire of its net in the grid.
bool pin_covered(const RoutingGrid& grid, const Pin& pin, NetId id) {
  if (pin.any_layer) {
    for (int k = 0; k < grid.layer_count(); ++k)
      if (grid.owner({pin.pos, layer_at(k)}) == id) return true;
    return false;
  }
  return grid.owner({pin.pos, pin.layer}) == id;
}

/// Union-find over the net's nodes: planar neighbours on the same layer are
/// merged; adjacent layers of a cell merge only across that cut's via owned
/// by the net — a via stack with a missing intermediate cut therefore
/// leaves the net split. Returns true when all covered pins end up in one
/// component.
bool single_component_covering_pins(const RoutingGrid& grid, const Net& net,
                                    NetId id) {
  const auto& nodes = grid.net_nodes(id);
  if (nodes.empty()) return net.pins.size() < 2;

  std::unordered_map<GridPoint, std::size_t> index;
  index.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) index.emplace(nodes[i], i);

  DisjointSet ds(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const GridPoint g = nodes[i];
    // Right and up neighbours suffice: the left/down pairs are found when
    // those nodes run the same scan.
    for (const Point d : {Point{1, 0}, Point{0, 1}}) {
      auto it = index.find({g.pos + d, g.layer});
      if (it != index.end()) ds.unite(i, it->second);
    }
    // Upward cut only: the downward pair is found when the lower node runs
    // the same scan.
    const int k = layer_index(g.layer);
    if (k < grid.cut_count() && grid.via_owner(g.pos, k) == id) {
      auto it = index.find({g.pos, layer_at(k + 1)});
      if (it != index.end()) ds.unite(i, it->second);
    }
  }

  // All pins must fall in one component.
  std::size_t root = SIZE_MAX;
  for (const Pin& pin : net.pins) {
    std::size_t pin_node = SIZE_MAX;
    if (pin.any_layer) {
      for (int k = 0; k < grid.layer_count(); ++k) {
        auto it = index.find({pin.pos, layer_at(k)});
        if (it != index.end()) {
          pin_node = it->second;
          break;
        }
      }
    } else {
      auto it = index.find({pin.pos, pin.layer});
      if (it != index.end()) pin_node = it->second;
    }
    if (pin_node == SIZE_MAX) return false;  // pin not on wire at all
    const std::size_t r = ds.find(pin_node);
    if (root == SIZE_MAX) root = r;
    if (r != root) return false;
  }
  return true;
}

/// Wrong-way adjacencies on directed layers that the net's connectivity
/// actually relies on. Same-net metal touching along the non-preferred axis
/// of a directed layer is legal only when it is redundant — e.g. the two via
/// landing pads of a one-step jog, joined for real on the other layer. So:
/// merge the net over every *legal* edge (preferred-axis runs, any-axis runs
/// on undirected layers, owned via cuts), then report each wrong-way pair
/// whose endpoints that legal skeleton does not already connect — those are
/// the segments where current genuinely flows the wrong way.
std::vector<std::pair<GridPoint, GridPoint>> load_bearing_wrong_way(
    const RoutingGrid& grid, NetId id, const LayerStack& stack) {
  const auto& nodes = grid.net_nodes(id);
  std::unordered_map<GridPoint, std::size_t> index;
  index.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) index.emplace(nodes[i], i);

  DisjointSet ds(nodes.size());
  std::vector<std::pair<std::size_t, std::size_t>> wrong;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const GridPoint g = nodes[i];
    const bool directed = stack.valid_layer(g.layer) && stack.directed(g.layer);
    for (const Point d : {Point{1, 0}, Point{0, 1}}) {
      auto it = index.find({g.pos + d, g.layer});
      if (it == index.end()) continue;
      const bool wrong_way =
          directed && (stack.horizontal(g.layer) ? d.y != 0 : d.x != 0);
      if (wrong_way)
        wrong.push_back({i, it->second});
      else
        ds.unite(i, it->second);
    }
    const int k = layer_index(g.layer);
    if (k < grid.cut_count() && grid.via_owner(g.pos, k) == id) {
      auto it = index.find({g.pos, layer_at(k + 1)});
      if (it != index.end()) ds.unite(i, it->second);
    }
  }

  std::vector<std::pair<GridPoint, GridPoint>> bearing;
  for (const auto& [a, b] : wrong)
    if (ds.find(a) != ds.find(b)) bearing.push_back({nodes[a], nodes[b]});
  return bearing;
}

}  // namespace

bool net_routed_ok(const Problem& problem, const RoutingGrid& grid,
                   NetId id) {
  const Net& net = problem.net(id);
  if (net.pins.size() < 2) return true;
  for (const Pin& pin : net.pins)
    if (!pin_covered(grid, pin, id)) return false;
  return single_component_covering_pins(grid, net, id);
}

VerifyReport verify(const Problem& problem, const RoutingGrid& grid) {
  VerifyReport report;
  const Region& region = problem.region();
  std::ostringstream msg;
  auto flag = [&report, &msg]() {
    report.violations.push_back(msg.str());
    msg.str({});
  };

  // Pin exclusivity map, rebuilt independently of the router's PinBlocks.
  std::unordered_map<GridPoint, NetId> reserved;
  for (NetId id = 0; id < problem.net_count(); ++id)
    for (const Pin& pin : problem.net(id).pins) {
      if (pin.any_layer) {
        for (int k = 0; k < region.layer_count(); ++k)
          reserved[{pin.pos, layer_at(k)}] = id;
      } else {
        reserved[{pin.pos, pin.layer}] = id;
      }
    }

  for (NetId id = 0; id < problem.net_count(); ++id) {
    const Net& net = problem.net(id);
    NetReport nr;
    nr.id = id;
    nr.wire_nodes = grid.node_count(id);
    nr.vias = grid.via_count(id);
    report.total_wire_nodes += nr.wire_nodes;
    report.total_vias += nr.vias;

    for (const GridPoint& g : grid.net_nodes(id)) {
      if (!region.routable(g)) {
        msg << "net '" << net.name << "': wire at " << g
            << " is outside the region or on an obstacle";
        flag();
      }
      if (grid.owner(g) != id) {
        msg << "net '" << net.name << "': node list and owner map disagree at "
            << g;
        flag();
      }
      if (auto it = reserved.find(g); it != reserved.end() &&
                                      it->second != id) {
        msg << "net '" << net.name << "': wire at " << g
            << " buries a pin of net '" << problem.net(it->second).name
            << "'";
        flag();
      }
    }

    // Hard direction rule: a directed layer admits no load-bearing
    // wrong-way wire (redundant touching metal — jog via pads — is fine;
    // see load_bearing_wrong_way).
    if (region.layers().any_directed())
      for (const auto& [a, b] :
           load_bearing_wrong_way(grid, id, region.layers())) {
        msg << "net '" << net.name << "': wrong-way segment " << a.pos << "-"
            << b.pos << " on directed layer " << a.layer;
        flag();
      }

    nr.pins_covered = true;
    for (const Pin& pin : net.pins)
      if (!pin_covered(grid, pin, id)) {
        nr.pins_covered = false;
        break;
      }
    nr.connected =
        nr.pins_covered && single_component_covering_pins(grid, net, id);

    if (net.pins.size() >= 2) {
      ++report.routable_net_count;
      if (nr.ok()) ++report.completed_net_count;
    } else {
      nr.pins_covered = true;
      nr.connected = true;
    }
    report.nets.push_back(nr);
  }

  // Via legality over the whole plane: every recorded cut must be anchored
  // by its net on both landing layers.
  const Rect& b = region.bounds();
  for (int y = b.lo.y; y <= b.hi.y; ++y)
    for (int x = b.lo.x; x <= b.hi.x; ++x)
      for (int cut = 0; cut < grid.cut_count(); ++cut) {
        const NetId v = grid.via_owner({x, y}, cut);
        if (v == kNoNet) continue;
        if (grid.owner({{x, y}, layer_at(cut)}) != v ||
            grid.owner({{x, y}, layer_at(cut + 1)}) != v) {
          msg << "via at (" << x << ',' << y << ") cut " << cut
              << " is not anchored by its net on both layers";
          flag();
        }
      }

  return report;
}

namespace {

/// A net's wire in canonical order: nodes sorted, then a parallel record of
/// which upward cut each node anchors. Two grids hold byte-identical wire
/// for the net exactly when these match.
struct CanonicalWire {
  std::vector<GridPoint> nodes;
  std::vector<bool> via_up;  // node i owns the cut above its layer

  friend bool operator==(const CanonicalWire&, const CanonicalWire&) = default;
};

CanonicalWire canonical_wire(const RoutingGrid& grid, NetId id) {
  CanonicalWire wire;
  wire.nodes = grid.net_nodes(id);
  std::sort(wire.nodes.begin(), wire.nodes.end());
  wire.via_up.reserve(wire.nodes.size());
  for (const GridPoint& g : wire.nodes) {
    const int cut = layer_index(g.layer);
    wire.via_up.push_back(cut < grid.cut_count() &&
                          grid.via_owner(g.pos, cut) == id);
  }
  return wire;
}

}  // namespace

DeltaEquivalenceReport verify_delta_equivalence(
    const Problem& edited, const RoutingGrid& delta_grid,
    const RoutingGrid& base_grid, const std::vector<NetId>& preserved) {
  DeltaEquivalenceReport report;
  report.delta = verify(edited, delta_grid);
  for (const NetId id : preserved) {
    if (id < 0 || id >= base_grid.net_count() || id >= delta_grid.net_count()) {
      report.changed_preserved.push_back(id);
      continue;
    }
    if (canonical_wire(base_grid, id) != canonical_wire(delta_grid, id))
      report.changed_preserved.push_back(id);
  }
  return report;
}

std::uint64_t net_wire_fingerprint(const RoutingGrid& grid, NetId id) {
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kOffset;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= kPrime;
    }
  };
  if (id < 0 || id >= grid.net_count()) return h;
  const CanonicalWire wire = canonical_wire(grid, id);
  for (std::size_t i = 0; i < wire.nodes.size(); ++i) {
    const GridPoint& g = wire.nodes[i];
    mix(static_cast<std::uint32_t>(g.pos.x));
    mix(static_cast<std::uint32_t>(g.pos.y));
    mix(static_cast<std::uint64_t>(layer_index(g.layer)) |
        (wire.via_up[i] ? std::uint64_t{1} << 32 : 0));
  }
  return h;
}

}  // namespace gridroute
