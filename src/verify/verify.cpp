#include "verify/verify.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "util/disjoint_set.hpp"

namespace gridroute {

namespace {

/// True when the pin is covered by wire of its net in the grid.
bool pin_covered(const RoutingGrid& grid, const Pin& pin, NetId id) {
  if (pin.any_layer)
    return grid.owner({pin.pos, Layer::kMetal1}) == id ||
           grid.owner({pin.pos, Layer::kMetal2}) == id;
  return grid.owner({pin.pos, pin.layer}) == id;
}

/// Union-find over the net's nodes: planar neighbours on the same layer are
/// merged; the two layers of a cell merge only across a via owned by the
/// net. Returns true when all covered pins end up in one component.
bool single_component_covering_pins(const RoutingGrid& grid, const Net& net,
                                    NetId id) {
  const auto& nodes = grid.net_nodes(id);
  if (nodes.empty()) return net.pins.size() < 2;

  std::unordered_map<GridPoint, std::size_t> index;
  index.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) index.emplace(nodes[i], i);

  DisjointSet ds(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const GridPoint g = nodes[i];
    // Right and up neighbours suffice: the left/down pairs are found when
    // those nodes run the same scan.
    for (const Point d : {Point{1, 0}, Point{0, 1}}) {
      auto it = index.find({g.pos + d, g.layer});
      if (it != index.end()) ds.unite(i, it->second);
    }
    if (g.layer == Layer::kMetal1 && grid.via_owner(g.pos) == id) {
      auto it = index.find({g.pos, Layer::kMetal2});
      if (it != index.end()) ds.unite(i, it->second);
    }
  }

  // All pins must fall in one component.
  std::size_t root = SIZE_MAX;
  for (const Pin& pin : net.pins) {
    std::size_t pin_node = SIZE_MAX;
    if (pin.any_layer) {
      for (Layer l : {Layer::kMetal1, Layer::kMetal2}) {
        auto it = index.find({pin.pos, l});
        if (it != index.end()) {
          pin_node = it->second;
          break;
        }
      }
    } else {
      auto it = index.find({pin.pos, pin.layer});
      if (it != index.end()) pin_node = it->second;
    }
    if (pin_node == SIZE_MAX) return false;  // pin not on wire at all
    const std::size_t r = ds.find(pin_node);
    if (root == SIZE_MAX) root = r;
    if (r != root) return false;
  }
  return true;
}

}  // namespace

bool net_routed_ok(const Problem& problem, const RoutingGrid& grid,
                   NetId id) {
  const Net& net = problem.net(id);
  if (net.pins.size() < 2) return true;
  for (const Pin& pin : net.pins)
    if (!pin_covered(grid, pin, id)) return false;
  return single_component_covering_pins(grid, net, id);
}

VerifyReport verify(const Problem& problem, const RoutingGrid& grid) {
  VerifyReport report;
  const Region& region = problem.region();
  std::ostringstream msg;
  auto flag = [&report, &msg]() {
    report.violations.push_back(msg.str());
    msg.str({});
  };

  // Pin exclusivity map, rebuilt independently of the router's PinBlocks.
  std::unordered_map<GridPoint, NetId> reserved;
  for (NetId id = 0; id < problem.net_count(); ++id)
    for (const Pin& pin : problem.net(id).pins) {
      if (pin.any_layer) {
        reserved[{pin.pos, Layer::kMetal1}] = id;
        reserved[{pin.pos, Layer::kMetal2}] = id;
      } else {
        reserved[{pin.pos, pin.layer}] = id;
      }
    }

  for (NetId id = 0; id < problem.net_count(); ++id) {
    const Net& net = problem.net(id);
    NetReport nr;
    nr.id = id;
    nr.wire_nodes = grid.node_count(id);
    nr.vias = grid.via_count(id);
    report.total_wire_nodes += nr.wire_nodes;
    report.total_vias += nr.vias;

    for (const GridPoint& g : grid.net_nodes(id)) {
      if (!region.routable(g)) {
        msg << "net '" << net.name << "': wire at " << g
            << " is outside the region or on an obstacle";
        flag();
      }
      if (grid.owner(g) != id) {
        msg << "net '" << net.name << "': node list and owner map disagree at "
            << g;
        flag();
      }
      if (auto it = reserved.find(g); it != reserved.end() &&
                                      it->second != id) {
        msg << "net '" << net.name << "': wire at " << g
            << " buries a pin of net '" << problem.net(it->second).name
            << "'";
        flag();
      }
    }

    nr.pins_covered = true;
    for (const Pin& pin : net.pins)
      if (!pin_covered(grid, pin, id)) {
        nr.pins_covered = false;
        break;
      }
    nr.connected =
        nr.pins_covered && single_component_covering_pins(grid, net, id);

    if (net.pins.size() >= 2) {
      ++report.routable_net_count;
      if (nr.ok()) ++report.completed_net_count;
    } else {
      nr.pins_covered = true;
      nr.connected = true;
    }
    report.nets.push_back(nr);
  }

  // Via legality over the whole plane.
  const Rect& b = region.bounds();
  for (int y = b.lo.y; y <= b.hi.y; ++y)
    for (int x = b.lo.x; x <= b.hi.x; ++x) {
      const NetId v = grid.via_owner({x, y});
      if (v == kNoNet) continue;
      if (grid.owner({{x, y}, Layer::kMetal1}) != v ||
          grid.owner({{x, y}, Layer::kMetal2}) != v) {
        msg << "via at (" << x << ',' << y
            << ") is not anchored by its net on both layers";
        flag();
      }
    }

  return report;
}

}  // namespace gridroute
