#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/routing_grid.hpp"
#include "problem/problem.hpp"

namespace gridroute {

/// Per-net verification outcome.
struct NetReport {
  NetId id = kNoNet;
  bool pins_covered = false;  ///< every pin lands on wire of this net
  bool connected = false;     ///< wire + vias form one electrical component
  int wire_nodes = 0;
  int vias = 0;

  /// Routed-and-correct: what "completed" means in every table.
  bool ok() const { return pins_covered && connected; }
};

/// Full independent audit of a grid state against its problem. The verifier
/// shares no code with the routers: it re-derives connectivity from raw
/// occupancy with a union-find, so router bugs cannot vouch for themselves.
struct VerifyReport {
  std::vector<std::string> violations;  ///< DRC-style rule breaks
  std::vector<NetReport> nets;

  int routable_net_count = 0;  ///< nets with >= 2 pins
  int completed_net_count = 0;
  int total_wire_nodes = 0;
  int total_vias = 0;

  bool drc_clean() const { return violations.empty(); }
  /// Everything routed and clean.
  bool all_ok() const {
    return drc_clean() && completed_net_count == routable_net_count;
  }
  /// Fraction of multi-pin nets completed, in [0, 1].
  double completion_rate() const {
    return routable_net_count == 0
               ? 1.0
               : static_cast<double>(completed_net_count) /
                     routable_net_count;
  }
};

/// Audits the grid: region/obstacle violations, via legality, pin
/// exclusivity, pin coverage, and per-net single-component connectivity.
VerifyReport verify(const Problem& problem, const RoutingGrid& grid);

/// True when the given net, in the current grid state, covers all its pins
/// with a single connected component. The fast path the router itself uses
/// after each repair.
bool net_routed_ok(const Problem& problem, const RoutingGrid& grid, NetId id);

/// Differential audit of a delta-routing result against its base layout
/// (DESIGN.md §2.4). The equivalence contract has two halves: the delta
/// grid is verifier-clean against the edited problem, and every net the
/// delta run claimed to preserve is byte-identical — same wire nodes, same
/// vias — to the base layout.
struct DeltaEquivalenceReport {
  VerifyReport delta;  ///< full independent audit of the delta grid
  /// Preserved nets whose wire or vias differ from the base layout
  /// (contract violations; empty on an equivalent result).
  std::vector<NetId> changed_preserved;

  bool equivalent() const {
    return delta.drc_clean() && changed_preserved.empty();
  }
};

/// Audits `delta_grid` against `edited` and compares each net in
/// `preserved` byte-for-byte with `base_grid`. Net ids must be valid in
/// both grids (delta planning keeps ids stable, so they are).
DeltaEquivalenceReport verify_delta_equivalence(
    const Problem& edited, const RoutingGrid& delta_grid,
    const RoutingGrid& base_grid, const std::vector<NetId>& preserved);

/// Order-independent fingerprint of one net's wire: FNV-1a over the sorted
/// node list and the vias the net owns. Equal wire gives equal
/// fingerprints on any grid; the eco_speedup bench gates preserved-net
/// identity on this value.
std::uint64_t net_wire_fingerprint(const RoutingGrid& grid, NetId id);

}  // namespace gridroute
