#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/layer.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "util/status.hpp"

namespace gridroute {

/// Nets are referenced by dense indices into Problem::nets().
using NetId = int;
constexpr NetId kNoNet = -1;

/// A terminal of a net. Pins may be committed to one layer (typical for
/// boundary terminals of a channel) or connectable on either layer
/// (typical for pins inside a macro-cell region).
struct Pin {
  Point pos;
  Layer layer = Layer::kMetal1;
  bool any_layer = false;

  friend bool operator==(const Pin&, const Pin&) = default;
};

/// A via already present in a net's pre-wire, at cut `cut` — connecting
/// layers cut and cut+1. Cut 0 (the classic M1/M2 via) when omitted, so
/// two-layer call sites read unchanged.
struct PreVia {
  Point pos;
  int cut = 0;

  friend bool operator==(const PreVia&, const PreVia&) = default;
};

struct Net {
  std::string name;
  std::vector<Pin> pins;

  /// Wire the net already owns when the problem is posed ("partially routed
  /// areas"): axis-parallel single-layer segments, applied to the grid
  /// before routing starts. Pre-wire is permanent — the router extends it,
  /// other nets can neither cross nor displace it, and it survives rip-up
  /// of its own net.
  std::vector<Segment> prewire;
  /// Vias already present in the pre-wire (the net must own both landing
  /// layers of each listed cut through `prewire`).
  std::vector<PreVia> previas;
  /// A fixed net is entirely pre-routed (power strap, previously committed
  /// net): the router never routes, pushes, or rips it. Its pre-wire must
  /// already connect its pins — the verifier audits that like any net.
  bool fixed = false;
};

/// The routing region: a rectilinear area carved out of a bounding
/// rectangle, with optional per-layer obstructions of any rectilinear shape.
/// This is the "very general region" the routers accept — boundaries given
/// by rectilinear chains, obstructions of any shape and size, pins on the
/// boundary or inside.
class Region {
 public:
  Region() = default;
  /// A full rectangular region of the given cell dimensions, origin (0,0),
  /// on the classic two-layer stack.
  Region(int width, int height);
  /// Same, on an explicit metal stack (N >= 2 layers).
  Region(int width, int height, LayerStack layers);

  const Rect& bounds() const { return bounds_; }
  int width() const { return bounds_.width(); }
  int height() const { return bounds_.height(); }

  /// The metal stack this region routes on. Every layer-touching subsystem
  /// (grid, maze, verify, io) reads N and per-layer direction/cost data from
  /// here; the default is the classic 2-layer stack.
  const LayerStack& layers() const { return layers_; }
  int layer_count() const { return layers_.count(); }
  /// Replaces the stack. Call before placing obstacles: whole-cell
  /// obstacles block the layers of the stack current at the time.
  void set_layers(LayerStack layers) { layers_ = std::move(layers); }

  /// Removes a rectangle from the region (carves a notch / L-shape etc.).
  /// Cells outside the region are unroutable on every layer.
  void subtract(const Rect& r);

  /// Blocks a rectangle on one layer only (e.g. a pre-routed power strap).
  void add_obstacle(const Rect& r, Layer layer);

  /// Blocks a rectangle on every layer of the stack (e.g. a macro-cell the
  /// wires must route around).
  void add_obstacle(const Rect& r);

  bool in_bounds(Point p) const { return bounds_.contains(p); }
  /// True when p lies inside the rectilinear region outline.
  bool in_region(Point p) const;
  /// True when the node cannot carry wire: outside region or obstructed.
  bool blocked(GridPoint g) const;
  /// True when wire may be placed at the node.
  bool routable(GridPoint g) const { return !blocked(g); }

  /// Number of routable nodes summed over every layer of the stack.
  long long routable_node_count() const;

 private:
  int index(Point p) const {
    return (p.y - bounds_.lo.y) * bounds_.width() + (p.x - bounds_.lo.x);
  }

  // Per-cell mask: bit k blocks layer k (kMaxLayers <= 31), the top bit
  // marks the cell outside the rectilinear region outline.
  static constexpr std::uint32_t kOutside = std::uint32_t{1} << 31;
  static std::uint32_t layer_bit(Layer l) {
    return std::uint32_t{1} << layer_index(l);
  }

  Rect bounds_{{0, 0}, {-1, -1}};  // !valid() until constructed with a size
  LayerStack layers_;
  std::vector<std::uint32_t> mask_;
};

/// Expands a net's pre-wire segments into the grid nodes they cover
/// (inclusive of both segment endpoints, duplicates possible at junctions).
std::vector<GridPoint> prewire_nodes(const Net& net);

/// A complete detailed-routing problem: a region plus the nets to connect.
class Problem {
 public:
  Problem() = default;
  explicit Problem(Region region) : region_(std::move(region)) {}

  const Region& region() const { return region_; }
  Region& region() { return region_; }

  /// Adds a net and returns its id. Empty and single-pin nets are legal
  /// (they route trivially) so callers can translate sparse netlists 1:1.
  NetId add_net(Net net);
  /// Convenience: adds an empty net with just a name.
  NetId add_net(std::string name);

  int net_count() const { return static_cast<int>(nets_.size()); }
  const Net& net(NetId id) const { return nets_[static_cast<size_t>(id)]; }
  Net& net(NetId id) { return nets_[static_cast<size_t>(id)]; }
  const std::vector<Net>& nets() const { return nets_; }

  /// Validates structural sanity. Returns the violations as typed Statuses
  /// (all ErrorCode::kValidation); empty means the problem is well-formed.
  /// Checks: every pin inside the region and not on an obstacle; no two
  /// pins of *different* nets on the same grid node (same-net duplicates
  /// are allowed); pre-wire axis-parallel, routable, exclusively owned, not
  /// burying another net's pin; pre-vias anchored on both layers; fixed
  /// nets actually pre-wired; net names unique.
  ///
  /// route(RouteRequest) runs this as a mandatory gate: an invalid problem
  /// is never routed — the result degrades instead (DESIGN.md §2.1f).
  std::vector<Status> validate_status() const;

  /// Legacy view of validate_status(): just the message strings.
  std::vector<std::string> validate() const;

  /// Sum over nets of (pin_count - 1): the number of point-to-point
  /// connections a router must realize.
  int connection_count() const;

  /// Canonical 64-bit content hash of the problem — the cache key of the
  /// serving layer (src/service, DESIGN.md §2.2).
  ///
  /// Canonical means the hash identifies the *problem*, not one spelling of
  /// it: nets are folded in name order, so two problems that differ only in
  /// net declaration order hash equally, and a text-format round trip
  /// (classic or `layers N` header) preserves the hash. Everything geometric
  /// is covered — region outline, per-layer obstructions, the layer stack's
  /// specs, every pin/pre-wire/pre-via, fixedness — so any change that could
  /// change a routing result changes the hash.
  ///
  /// Equal hashes do NOT certify equal problems (64 bits, plus net-order
  /// twins deliberately collide); consumers that need bit-identical results
  /// must confirm identity exactly, as the service cache does.
  std::uint64_t canonical_hash() const;

 private:
  Region region_;
  std::vector<Net> nets_;
};

// ---------------------------------------------------------------------------
// Channel problems
// ---------------------------------------------------------------------------

/// Classic channel-routing instance: two facing rows of terminals.
/// top[i] / bottom[i] give the net number at column i, 0 meaning no pin.
/// Net numbers are arbitrary positive ints (as in the published benchmark
/// tables); to_problem() maps them densely onto NetIds.
struct ChannelSpec {
  std::vector<int> top;
  std::vector<int> bottom;

  int columns() const { return static_cast<int>(top.size()); }

  /// Lower bound on tracks: the channel density (max over columns of the
  /// number of nets whose pin interval spans that column boundary).
  int density() const;

  /// Distinct non-zero net numbers.
  std::vector<int> net_numbers() const;

  /// Materializes a grid problem with the given number of routing tracks.
  /// Grid: columns() wide, tracks + 2 tall; row 0 carries the bottom pins,
  /// row tracks+1 the top pins, rows 1..tracks are the routing tracks.
  /// Pins are committed to METAL2 (the vertical layer), the convention of
  /// two-layer HV channel routers.
  Problem to_problem(int tracks) const;
};

/// Switchbox instance: terminals on all four sides of a fixed rectangle.
/// left[i]/right[i] index rows bottom-to-top; top[i]/bottom[i] index columns
/// left-to-right. 0 = no pin. The routing area is fixed (that is what makes
/// switchboxes hard: no extra tracks can be added).
struct SwitchboxSpec {
  std::vector<int> top;     // size = width
  std::vector<int> bottom;  // size = width
  std::vector<int> left;    // size = height
  std::vector<int> right;   // size = height

  int width() const { return static_cast<int>(top.size()); }
  int height() const { return static_cast<int>(left.size()); }

  std::vector<int> net_numbers() const;

  /// Materializes the grid problem. The grid is width() x height(); side
  /// pins sit on the boundary cells of that grid. Pins are any-layer.
  Problem to_problem() const;
};

}  // namespace gridroute
