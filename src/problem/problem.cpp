#include "problem/problem.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace gridroute {

Region::Region(int width, int height) : Region(width, height, LayerStack{}) {}

Region::Region(int width, int height, LayerStack layers)
    : layers_(std::move(layers)) {
  bounds_ = {{0, 0}, {width - 1, height - 1}};
  mask_.assign(static_cast<size_t>(width) * static_cast<size_t>(height), 0);
}

void Region::subtract(const Rect& r) {
  const Rect clipped = r.intersection(bounds_);
  if (!clipped.valid()) return;
  for (int y = clipped.lo.y; y <= clipped.hi.y; ++y)
    for (int x = clipped.lo.x; x <= clipped.hi.x; ++x)
      mask_[static_cast<size_t>(index({x, y}))] |= kOutside;
}

void Region::add_obstacle(const Rect& r, Layer layer) {
  const Rect clipped = r.intersection(bounds_);
  if (!clipped.valid()) return;
  const std::uint32_t bit = layer_bit(layer);
  for (int y = clipped.lo.y; y <= clipped.hi.y; ++y)
    for (int x = clipped.lo.x; x <= clipped.hi.x; ++x)
      mask_[static_cast<size_t>(index({x, y}))] |= bit;
}

void Region::add_obstacle(const Rect& r) {
  for (int k = 0; k < layers_.count(); ++k) add_obstacle(r, layer_at(k));
}

bool Region::in_region(Point p) const {
  if (!bounds_.contains(p)) return false;
  return (mask_[static_cast<size_t>(index(p))] & kOutside) == 0;
}

bool Region::blocked(GridPoint g) const {
  if (!bounds_.contains(g.pos)) return true;
  if (!layers_.valid_layer(g.layer)) return true;
  const std::uint32_t m = mask_[static_cast<size_t>(index(g.pos))];
  if (m & kOutside) return true;
  return (m & layer_bit(g.layer)) != 0;
}

long long Region::routable_node_count() const {
  long long n = 0;
  for (int y = bounds_.lo.y; y <= bounds_.hi.y; ++y)
    for (int x = bounds_.lo.x; x <= bounds_.hi.x; ++x)
      for (int k = 0; k < layers_.count(); ++k)
        if (routable({{x, y}, layer_at(k)})) ++n;
  return n;
}

NetId Problem::add_net(Net net) {
  nets_.push_back(std::move(net));
  return static_cast<NetId>(nets_.size()) - 1;
}

NetId Problem::add_net(std::string name) {
  Net net;
  net.name = std::move(name);
  return add_net(std::move(net));
}

std::vector<GridPoint> prewire_nodes(const Net& net) {
  std::vector<GridPoint> nodes;
  for (const Segment& seg : net.prewire) {
    const Point step{seg.b.pos.x == seg.a.pos.x
                         ? 0
                         : (seg.b.pos.x > seg.a.pos.x ? 1 : -1),
                     seg.b.pos.y == seg.a.pos.y
                         ? 0
                         : (seg.b.pos.y > seg.a.pos.y ? 1 : -1)};
    Point p = seg.a.pos;
    while (true) {
      nodes.push_back({p, seg.a.layer});
      if (p == seg.b.pos) break;
      p = p + step;
    }
  }
  return nodes;
}

std::vector<Status> Problem::validate_status() const {
  std::vector<Status> issues;
  auto add = [&issues](const std::string& msg) {
    issues.push_back(Status::validation_error(msg));
  };
  std::map<Point, NetId> seen;  // planar position -> owning net
  std::map<GridPoint, NetId> wire_seen;
  std::map<std::string, NetId> names;
  for (NetId id = 0; id < net_count(); ++id) {
    const Net& n = net(id);

    // Names must be unique: solution interchange matches nets by name, and
    // a duplicate silently aliases two nets.
    if (!names.emplace(n.name, id).second)
      add("net '" + n.name + "': name duplicates an earlier net");

    // Pre-wire: axis-parallel, routable, and exclusively owned.
    for (const Segment& seg : n.prewire)
      if (!seg.axis_parallel())
        add("net '" + n.name +
                         "': pre-wire segment is not a single-layer "
                         "axis-parallel run");
    for (const GridPoint& g : prewire_nodes(n)) {
      if (!region_.routable(g)) {
        std::ostringstream msg;
        msg << "net '" << n.name << "': pre-wire at " << g
            << " is outside the region or on an obstacle";
        add(msg.str());
        continue;
      }
      auto [it, inserted] = wire_seen.emplace(g, id);
      if (!inserted && it->second != id) {
        std::ostringstream msg;
        msg << "net '" << n.name << "': pre-wire at " << g
            << " overlaps pre-wire of net '" << net(it->second).name << "'";
        add(msg.str());
      }
    }
    for (const PreVia& v : n.previas) {
      if (v.cut < 0 || v.cut >= region_.layers().cuts()) {
        std::ostringstream msg;
        msg << "net '" << n.name << "': pre-via at " << v.pos << " cut "
            << v.cut << " is outside the layer stack";
        add(msg.str());
        continue;
      }
      auto anchored = [&](Layer l) {
        auto it = wire_seen.find({v.pos, l});
        return it != wire_seen.end() && it->second == id;
      };
      if (!anchored(layer_at(v.cut)) || !anchored(layer_at(v.cut + 1))) {
        std::ostringstream msg;
        msg << "net '" << n.name << "': pre-via at " << v.pos
            << " is not anchored by pre-wire on both layers";
        add(msg.str());
      }
    }
    if (n.fixed && n.pins.size() >= 2 && n.prewire.empty())
      add("net '" + n.name +
                       "': fixed but has no pre-wire to connect its pins");

    for (const Pin& pin : n.pins) {
      std::ostringstream where;
      where << "net '" << n.name << "' pin " << pin.pos;
      if (!region_.in_region(pin.pos)) {
        add(where.str() + ": outside routing region");
        continue;
      }
      bool reachable = false;
      if (pin.any_layer) {
        for (int k = 0; k < region_.layers().count() && !reachable; ++k)
          reachable = region_.routable({pin.pos, layer_at(k)});
      } else if (!region_.layers().valid_layer(pin.layer)) {
        add(where.str() + ": pin layer is outside the layer stack");
        continue;
      } else {
        reachable = region_.routable({pin.pos, pin.layer});
      }
      if (!reachable)
        add(where.str() + ": on an obstructed node");
      auto [it, inserted] = seen.emplace(pin.pos, id);
      if (!inserted && it->second != id)
        add(where.str() + ": collides with a pin of net '" +
                         net(it->second).name + "'");
    }
  }

  // Pre-wire of one net must not bury another net's pin.
  for (NetId id = 0; id < net_count(); ++id) {
    for (const Pin& pin : net(id).pins) {
      for (int k = 0; k < region_.layers().count(); ++k) {
        const Layer l = layer_at(k);
        if (!pin.any_layer && l != pin.layer) continue;
        auto it = wire_seen.find({pin.pos, l});
        if (it != wire_seen.end() && it->second != id) {
          std::ostringstream msg;
          msg << "net '" << net(it->second).name << "': pre-wire at "
              << GridPoint{pin.pos, l} << " buries a pin of net '"
              << net(id).name << "'";
          add(msg.str());
        }
      }
    }
  }
  return issues;
}

std::vector<std::string> Problem::validate() const {
  std::vector<std::string> out;
  for (const Status& s : validate_status()) out.push_back(s.message());
  return out;
}

int Problem::connection_count() const {
  int c = 0;
  for (const Net& n : nets_)
    if (n.pins.size() > 1) c += static_cast<int>(n.pins.size()) - 1;
  return c;
}

namespace {

/// FNV-1a accumulator for canonical_hash(). Every fold site feeds typed
/// integers (never raw struct bytes), so the hash is independent of padding,
/// endianness of wider types is fixed by the byte loop, and adding a field
/// to a struct cannot silently change old hashes.
struct CanonicalHasher {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis

  void byte(std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;  // FNV prime
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    i64(static_cast<std::int64_t>(s.size()));
    for (char c : s) byte(static_cast<std::uint8_t>(c));
  }
};

void fold_net(CanonicalHasher& hash, const Net& n) {
  hash.str(n.name);
  hash.byte(n.fixed ? 1 : 0);
  hash.i64(static_cast<std::int64_t>(n.pins.size()));
  for (const Pin& pin : n.pins) {
    hash.i64(pin.pos.x);
    hash.i64(pin.pos.y);
    // any-layer pins fold a sentinel instead of their (meaningless) layer
    // field, so "pin 3 4 any" hashes equally however it was constructed.
    hash.i64(pin.any_layer ? -1 : layer_index(pin.layer));
  }
  hash.i64(static_cast<std::int64_t>(n.prewire.size()));
  for (const Segment& seg : n.prewire) {
    hash.i64(seg.a.pos.x);
    hash.i64(seg.a.pos.y);
    hash.i64(seg.b.pos.x);
    hash.i64(seg.b.pos.y);
    hash.i64(layer_index(seg.a.layer));
  }
  hash.i64(static_cast<std::int64_t>(n.previas.size()));
  for (const PreVia& v : n.previas) {
    hash.i64(v.pos.x);
    hash.i64(v.pos.y);
    hash.i64(v.cut);
  }
}

}  // namespace

std::uint64_t Problem::canonical_hash() const {
  CanonicalHasher hash;

  // Layer stack: count plus every per-layer knob that prices or legalizes
  // wire. A stack edit (direction, directedness, multipliers, height) must
  // change the hash even when no cell's blocked-mask changes.
  const LayerStack& stack = region_.layers();
  hash.i64(stack.count());
  for (int k = 0; k < stack.count(); ++k) {
    const LayerSpec& spec = stack.spec(layer_at(k));
    hash.byte(spec.preferred == Axis::kHorizontal ? 0 : 1);
    hash.byte(spec.directed ? 1 : 0);
    hash.i64(spec.wrong_way_mult);
    hash.i64(spec.via_up_mult);
  }

  // Region geometry: bounds plus, per cell, the outline bit and the
  // per-layer obstruction bits — exactly the state blocked() answers from.
  const Rect& bounds = region_.bounds();
  hash.i64(bounds.lo.x);
  hash.i64(bounds.lo.y);
  hash.i64(bounds.hi.x);
  hash.i64(bounds.hi.y);
  for (int y = bounds.lo.y; y <= bounds.hi.y; ++y) {
    for (int x = bounds.lo.x; x <= bounds.hi.x; ++x) {
      const Point p{x, y};
      std::uint32_t cell = region_.in_region(p) ? 0u : 1u;
      for (int k = 0; k < stack.count(); ++k)
        if (region_.in_region(p) && region_.blocked({p, layer_at(k)}))
          cell |= std::uint32_t{2} << k;
      hash.u64(cell);
    }
  }

  // Nets in canonical (name) order: declaration order is a spelling, not a
  // property of the problem. Ties (duplicate names — an invalid problem)
  // keep declaration order so the hash stays deterministic even then.
  std::vector<const Net*> ordered;
  ordered.reserve(nets_.size());
  for (const Net& n : nets_) ordered.push_back(&n);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Net* a, const Net* b) { return a->name < b->name; });
  hash.i64(static_cast<std::int64_t>(ordered.size()));
  for (const Net* n : ordered) fold_net(hash, *n);

  return hash.h;
}

// ---------------------------------------------------------------------------
// ChannelSpec
// ---------------------------------------------------------------------------

namespace {

/// Leftmost/rightmost pin column of every net number appearing in a channel.
std::map<int, std::pair<int, int>> net_spans(const ChannelSpec& c) {
  std::map<int, std::pair<int, int>> span;
  auto feed = [&](const std::vector<int>& row) {
    for (int i = 0; i < static_cast<int>(row.size()); ++i) {
      const int n = row[static_cast<size_t>(i)];
      if (n == 0) continue;
      auto [it, inserted] = span.emplace(n, std::pair{i, i});
      if (!inserted) {
        it->second.first = std::min(it->second.first, i);
        it->second.second = std::max(it->second.second, i);
      }
    }
  };
  feed(c.top);
  feed(c.bottom);
  return span;
}

}  // namespace

int ChannelSpec::density() const {
  const auto spans = net_spans(*this);
  int best = 0;
  for (int col = 0; col < columns(); ++col) {
    int crossing = 0;
    for (const auto& [net, span] : spans)
      if (span.first <= col && col <= span.second) ++crossing;
    best = std::max(best, crossing);
  }
  return best;
}

std::vector<int> ChannelSpec::net_numbers() const {
  std::set<int> nums;
  for (int n : top)
    if (n != 0) nums.insert(n);
  for (int n : bottom)
    if (n != 0) nums.insert(n);
  return {nums.begin(), nums.end()};
}

Problem ChannelSpec::to_problem(int tracks) const {
  const int w = columns();
  const int h = tracks + 2;
  Problem p{Region(w, h)};
  std::map<int, NetId> ids;
  auto net_for = [&](int number) {
    auto it = ids.find(number);
    if (it != ids.end()) return it->second;
    Net n;
    n.name = "n";
    n.name += std::to_string(number);
    const NetId id = p.add_net(std::move(n));
    ids.emplace(number, id);
    return id;
  };
  for (int col = 0; col < w; ++col) {
    if (const int n = bottom[static_cast<size_t>(col)]; n != 0)
      p.net(net_for(n)).pins.push_back({{col, 0}, Layer::kMetal2, false});
    if (const int n = top[static_cast<size_t>(col)]; n != 0)
      p.net(net_for(n)).pins.push_back({{col, h - 1}, Layer::kMetal2, false});
  }
  return p;
}

// ---------------------------------------------------------------------------
// SwitchboxSpec
// ---------------------------------------------------------------------------

std::vector<int> SwitchboxSpec::net_numbers() const {
  std::set<int> nums;
  for (const auto* side : {&top, &bottom, &left, &right})
    for (int n : *side)
      if (n != 0) nums.insert(n);
  return {nums.begin(), nums.end()};
}

Problem SwitchboxSpec::to_problem() const {
  const int w = width();
  const int h = height();
  Problem p{Region(w, h)};
  std::map<int, NetId> ids;
  auto net_for = [&](int number) {
    auto it = ids.find(number);
    if (it != ids.end()) return it->second;
    Net n;
    n.name = "n";
    n.name += std::to_string(number);
    const NetId id = p.add_net(std::move(n));
    ids.emplace(number, id);
    return id;
  };
  auto add_pin = [&](int number, Point pos) {
    if (number == 0) return;
    p.net(net_for(number)).pins.push_back({pos, Layer::kMetal1, true});
  };
  for (int col = 0; col < w; ++col) {
    add_pin(bottom[static_cast<size_t>(col)], {col, 0});
    add_pin(top[static_cast<size_t>(col)], {col, h - 1});
  }
  for (int row = 0; row < h; ++row) {
    add_pin(left[static_cast<size_t>(row)], {0, row});
    add_pin(right[static_cast<size_t>(row)], {w - 1, row});
  }
  return p;
}

}  // namespace gridroute
