#include "maze/maze_router.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <queue>

namespace gridroute {

PinBlocks::PinBlocks(const Problem& problem) {
  bounds_ = problem.region().bounds();
  map_.assign(static_cast<size_t>(bounds_.width()) *
                  static_cast<size_t>(bounds_.height()) * kLayerCount,
              kNoNet);
  for (NetId id = 0; id < problem.net_count(); ++id) {
    for (const Pin& pin : problem.net(id).pins) {
      if (pin.any_layer) {
        map_[index({pin.pos, Layer::kMetal1})] = id;
        map_[index({pin.pos, Layer::kMetal2})] = id;
      } else {
        map_[index({pin.pos, pin.layer})] = id;
      }
    }
    // Pre-wire is as immovable as a pin: reserve its nodes so no probe can
    // propose pushing or burying it.
    for (const GridPoint& g : prewire_nodes(problem.net(id)))
      map_[index(g)] = id;
  }
}

namespace {

/// Shared node indexing for both routers.
struct NodeCodec {
  Rect bounds;

  std::size_t count() const {
    return static_cast<size_t>(bounds.width()) *
           static_cast<size_t>(bounds.height()) * kLayerCount;
  }
  std::size_t encode(GridPoint g) const {
    const auto cell =
        static_cast<size_t>(g.pos.y - bounds.lo.y) *
            static_cast<size_t>(bounds.width()) +
        static_cast<size_t>(g.pos.x - bounds.lo.x);
    return cell * kLayerCount + static_cast<size_t>(layer_index(g.layer));
  }
  GridPoint decode(std::size_t idx) const {
    const auto layer = static_cast<Layer>(idx % kLayerCount);
    const auto cell = idx / kLayerCount;
    const int w = bounds.width();
    return {{bounds.lo.x + static_cast<int>(cell) % w,
             bounds.lo.y + static_cast<int>(cell) / w},
            layer};
  }
};

constexpr Point kPlanarSteps[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};

bool node_usable(const RoutingGrid& grid, const PinBlocks& pins, GridPoint g,
                 const SearchRequest& req) {
  if (!grid.region().routable(g)) return false;
  if (!pins.admissible(g, req.net)) return false;
  const NetId o = grid.owner(g);
  if (o == kNoNet || o == req.net) return true;
  if (!req.allow_push) return false;
  return std::find(req.frozen.begin(), req.frozen.end(), o) ==
         req.frozen.end();
}

std::vector<GridPoint> collect_crossed(const RoutingGrid& grid,
                                       const Path& path, NetId net) {
  std::vector<GridPoint> crossed;
  for (const GridPoint& g : path.nodes) {
    const NetId o = grid.owner(g);
    if (o != kNoNet && o != net) crossed.push_back(g);
  }
  return crossed;
}

}  // namespace

// ---------------------------------------------------------------------------
// LeeRouter
// ---------------------------------------------------------------------------

LeeRouter::LeeRouter(const RoutingGrid& grid, const PinBlocks& pins)
    : grid_(grid), pins_(pins) {
  const NodeCodec codec{grid.region().bounds()};
  stamp_.assign(codec.count(), 0);
  parent_.assign(codec.count(), -1);
  is_target_.assign(codec.count(), 0);
  target_stamp_.assign(codec.count(), 0);
}

void LeeRouter::advance_epoch() {
  if (++epoch_ != 0) return;
  // Wrapped: stamps written 2^32 searches ago would now read as fresh.
  // Clearing them restores the "never visited" meaning of stamp 0.
  std::fill(stamp_.begin(), stamp_.end(), 0u);
  std::fill(target_stamp_.begin(), target_stamp_.end(), 0u);
  epoch_ = 1;
}

SearchResult LeeRouter::route(const SearchRequest& request) {
  const NodeCodec codec{grid_.region().bounds()};
  advance_epoch();
  SearchResult result;

  SearchRequest plain = request;
  plain.allow_push = false;
  for (const GridPoint& t : request.targets) {
    if (!node_usable(grid_, pins_, t, plain)) continue;
    const std::size_t ti = codec.encode(t);
    is_target_[ti] = 1;
    target_stamp_[ti] = epoch_;
  }

  std::deque<std::size_t> frontier;
  for (const GridPoint& s : request.sources) {
    if (!node_usable(grid_, pins_, s, plain)) continue;
    const std::size_t si = codec.encode(s);
    if (stamp_[si] == epoch_) continue;
    stamp_[si] = epoch_;
    parent_[si] = -1;
    frontier.push_back(si);
  }

  std::size_t goal = SIZE_MAX;
  // A source may itself be a target (tree already touches the pin).
  for (std::size_t si : frontier)
    if (is_target_[si] && target_stamp_[si] == epoch_) goal = si;

  while (goal == SIZE_MAX && !frontier.empty()) {
    const std::size_t ci = frontier.front();
    frontier.pop_front();
    const GridPoint cur = codec.decode(ci);

    auto try_step = [&](GridPoint nxt) {
      if (!node_usable(grid_, pins_, nxt, plain)) return;
      const std::size_t ni = codec.encode(nxt);
      if (stamp_[ni] == epoch_) return;
      stamp_[ni] = epoch_;
      parent_[ni] = static_cast<std::int32_t>(ci);
      if (is_target_[ni] && target_stamp_[ni] == epoch_) {
        goal = ni;
        return;
      }
      frontier.push_back(ni);
    };

    for (const Point d : kPlanarSteps) {
      if (goal != SIZE_MAX) break;
      try_step({cur.pos + d, cur.layer});
    }
    if (goal == SIZE_MAX) try_step({cur.pos, other_layer(cur.layer)});
  }

  if (goal == SIZE_MAX) return result;

  result.found = true;
  for (std::int64_t i = static_cast<std::int64_t>(goal); i >= 0;
       i = parent_[static_cast<std::size_t>(i)]) {
    result.path.nodes.push_back(codec.decode(static_cast<std::size_t>(i)));
    if (parent_[static_cast<std::size_t>(i)] < 0) break;
  }
  std::reverse(result.path.nodes.begin(), result.path.nodes.end());
  result.cost = result.path.length() - 1;
  return result;
}

// ---------------------------------------------------------------------------
// WeightedMazeRouter
// ---------------------------------------------------------------------------

WeightedMazeRouter::WeightedMazeRouter(const RoutingGrid& grid,
                                       const PinBlocks& pins, CostModel model)
    : grid_(grid), pins_(pins), model_(model) {
  const NodeCodec codec{grid.region().bounds()};
  stamp_.assign(codec.count() * kDirs, 0);
  best_.assign(codec.count() * kDirs, 0);
  parent_.assign(codec.count() * kDirs, -1);
  is_target_.assign(codec.count(), 0);
  target_stamp_.assign(codec.count(), 0);
}

std::size_t WeightedMazeRouter::node_index(GridPoint g) const {
  return NodeCodec{grid_.region().bounds()}.encode(g);
}

void WeightedMazeRouter::advance_epoch() {
  if (++epoch_ != 0) return;
  // Wrapped: stamps written 2^32 searches ago would now read as fresh.
  // Clearing them restores the "never visited" meaning of stamp 0.
  std::fill(stamp_.begin(), stamp_.end(), 0u);
  std::fill(target_stamp_.begin(), target_stamp_.end(), 0u);
  epoch_ = 1;
}

SearchResult WeightedMazeRouter::route(const SearchRequest& request) {
  const NodeCodec codec{grid_.region().bounds()};
  advance_epoch();
  last_expansions_ = 0;
  SearchResult result;

  for (const GridPoint& t : request.targets) {
    if (!node_usable(grid_, pins_, t, request)) continue;
    const std::size_t ti = codec.encode(t);
    is_target_[ti] = 1;
    target_stamp_[ti] = epoch_;
  }

  // A* heuristic: base-step-cost times Manhattan distance to the target
  // bounding box. Zero when disabled or when there are no usable targets.
  Rect target_box{{0, 0}, {-1, -1}};
  if (use_heuristic_) {
    for (const GridPoint& t : request.targets) {
      const Rect cell{t.pos, t.pos};
      target_box = target_box.valid() ? target_box.bounding_union(cell) : cell;
    }
  }
  auto heuristic = [&](std::size_t ni) -> std::int64_t {
    if (!target_box.valid()) return 0;
    const GridPoint g = codec.decode(ni);
    const int dx = std::max({target_box.lo.x - g.pos.x,
                             g.pos.x - target_box.hi.x, 0});
    const int dy = std::max({target_box.lo.y - g.pos.y,
                             g.pos.y - target_box.hi.y, 0});
    return static_cast<std::int64_t>(model_.step) * (dx + dy);
  };

  // (g + h, state) min-heap. State = node * kDirs + incoming direction,
  // direction 0 meaning "fresh" (search start or just after a via).
  // best_/stamp_ store g-costs; the heuristic only orders the heap.
  using QEntry = std::pair<std::int64_t, std::size_t>;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> queue;

  auto relax = [&](std::size_t state, std::int64_t cost,
                   std::int32_t from_state) {
    if (stamp_[state] == epoch_ && best_[state] <= cost) return;
    stamp_[state] = epoch_;
    best_[state] = cost;
    parent_[state] = from_state;
    queue.push({cost + heuristic(state / kDirs), state});
  };

  const Rect& bounds = grid_.region().bounds();
  auto enter_penalty = [&](GridPoint g) -> int {
    const NetId o = grid_.owner(g);
    if (o == kNoNet || o == request.net) return 0;
    int c = model_.push;
    const NetId v = grid_.via_owner(g.pos);
    if (v != kNoNet && v != request.net) c += model_.push_via_extra;
    if (request.push_history != nullptr) {
      const auto cell = static_cast<std::size_t>(
          (g.pos.y - bounds.lo.y) * bounds.width() + (g.pos.x - bounds.lo.x));
      if (cell < request.push_history->size())
        c += (*request.push_history)[cell];
    }
    return c;
  };

  for (const GridPoint& s : request.sources) {
    if (!node_usable(grid_, pins_, s, request)) continue;
    relax(codec.encode(s) * kDirs, 0, -1);
  }

  std::size_t goal_state = SIZE_MAX;
  while (!queue.empty()) {
    const auto [priority, state] = queue.top();
    queue.pop();
    const std::int64_t cost = priority - heuristic(state / kDirs);
    if (stamp_[state] != epoch_ || best_[state] != cost) continue;  // stale
    ++last_expansions_;

    const std::size_t ni = state / kDirs;
    const int dir = static_cast<int>(state % kDirs);
    if (is_target_[ni] && target_stamp_[ni] == epoch_) {
      goal_state = state;
      break;
    }
    const GridPoint cur = codec.decode(ni);

    // Planar steps. Direction ids: 1=E, 2=W, 3=N, 4=S.
    for (int d = 0; d < 4; ++d) {
      const GridPoint nxt{cur.pos + kPlanarSteps[d], cur.layer};
      if (!node_usable(grid_, pins_, nxt, request)) continue;
      const int ndir = d + 1;
      std::int64_t c = cost + model_.step + enter_penalty(nxt);
      const bool step_is_vertical = d >= 2;
      const bool prefers_horizontal = cur.layer == Layer::kMetal1;
      if (step_is_vertical == prefers_horizontal) c += model_.wrong_way;
      if (dir != 0 && dir != ndir) c += model_.bend;
      relax(codec.encode(nxt) * kDirs + static_cast<size_t>(ndir), c,
            static_cast<std::int32_t>(state));
    }

    // Via step: resets direction state (no bend charged after a via).
    {
      const GridPoint nxt{cur.pos, other_layer(cur.layer)};
      if (node_usable(grid_, pins_, nxt, request)) {
        const std::int64_t c = cost + model_.via + enter_penalty(nxt);
        relax(codec.encode(nxt) * kDirs, c,
              static_cast<std::int32_t>(state));
      }
    }
  }

  if (goal_state == SIZE_MAX) return result;

  result.found = true;
  result.cost = best_[goal_state];
  for (std::int64_t s = static_cast<std::int64_t>(goal_state); s >= 0;
       s = parent_[static_cast<std::size_t>(s)]) {
    result.path.nodes.push_back(
        codec.decode(static_cast<std::size_t>(s) / kDirs));
    if (parent_[static_cast<std::size_t>(s)] < 0) break;
  }
  std::reverse(result.path.nodes.begin(), result.path.nodes.end());
  // The backtrace may revisit a node when entering it with two directions;
  // collapse exact consecutive repeats (can occur at the start state).
  auto& nodes = result.path.nodes;
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  result.crossed = collect_crossed(grid_, result.path, request.net);
  return result;
}

}  // namespace gridroute
