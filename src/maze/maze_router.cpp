#include "maze/maze_router.hpp"

#include <algorithm>
#include <cassert>

#include "search/future_cost.hpp"
#include "search/goal_search.hpp"

namespace gridroute {

PinBlocks::PinBlocks(const Problem& problem) {
  bounds_ = problem.region().bounds();
  map_.assign(static_cast<size_t>(bounds_.width()) *
                  static_cast<size_t>(bounds_.height()) * kLayerCount,
              kNoNet);
  for (NetId id = 0; id < problem.net_count(); ++id) {
    for (const Pin& pin : problem.net(id).pins) {
      if (pin.any_layer) {
        map_[index({pin.pos, Layer::kMetal1})] = id;
        map_[index({pin.pos, Layer::kMetal2})] = id;
      } else {
        map_[index({pin.pos, pin.layer})] = id;
      }
    }
    // Pre-wire is as immovable as a pin: reserve its nodes so no probe can
    // propose pushing or burying it.
    for (const GridPoint& g : prewire_nodes(problem.net(id)))
      map_[index(g)] = id;
  }
}

namespace {

/// Shared node indexing for both routers.
struct NodeCodec {
  Rect bounds;

  std::size_t count() const {
    return static_cast<size_t>(bounds.width()) *
           static_cast<size_t>(bounds.height()) * kLayerCount;
  }
  std::size_t encode(GridPoint g) const {
    const auto cell =
        static_cast<size_t>(g.pos.y - bounds.lo.y) *
            static_cast<size_t>(bounds.width()) +
        static_cast<size_t>(g.pos.x - bounds.lo.x);
    return cell * kLayerCount + static_cast<size_t>(layer_index(g.layer));
  }
  GridPoint decode(std::size_t idx) const {
    const auto layer = static_cast<Layer>(idx % kLayerCount);
    const auto cell = idx / kLayerCount;
    const int w = bounds.width();
    return {{bounds.lo.x + static_cast<int>(cell) % w,
             bounds.lo.y + static_cast<int>(cell) / w},
            layer};
  }
};

constexpr Point kPlanarSteps[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};

/// Weighted search states per node: 0 = start/after-via, 1..4 = E,W,N,S.
constexpr std::size_t kDirs = 5;

/// Unions a planar position into a (possibly still invalid) footprint box.
void grow_touched(Rect* box, Point p) {
  if (box == nullptr) return;
  const Rect cell{p, p};
  *box = box->valid() ? box->bounding_union(cell) : cell;
}

bool node_usable(const RoutingGrid& grid, const PinBlocks& pins, GridPoint g,
                 const SearchRequest& req) {
  if (!grid.region().routable(g)) return false;
  if (!pins.admissible(g, req.net)) return false;
  const NetId o = grid.owner(g);
  if (o == kNoNet || o == req.net) return true;
  if (!req.allow_push) return false;
  return std::find(req.frozen.begin(), req.frozen.end(), o) ==
         req.frozen.end();
}

std::vector<GridPoint> collect_crossed(const RoutingGrid& grid,
                                       const Path& path, NetId net) {
  std::vector<GridPoint> crossed;
  for (const GridPoint& g : path.nodes) {
    const NetId o = grid.owner(g);
    if (o != kNoNet && o != net) crossed.push_back(g);
  }
  return crossed;
}

/// Cost provider for the Lee baseline: one state per node, every edge
/// (planar or via) costs 1, no heuristic, no pushing.
struct LeeProvider {
  const RoutingGrid& grid;
  const PinBlocks& pins;
  const SearchRequest& req;
  NodeCodec codec;

  std::uint32_t node_of(std::uint32_t state) const { return state; }
  std::int64_t heuristic(std::uint32_t) const { return 0; }

  template <typename Emit>
  void expand(std::uint32_t state, std::int64_t g, Emit&& emit) const {
    const GridPoint cur = codec.decode(state);
    grow_touched(req.touched, cur.pos);
    for (const Point d : kPlanarSteps) {
      const GridPoint nxt{cur.pos + d, cur.layer};
      if (node_usable(grid, pins, nxt, req))
        emit(static_cast<std::uint32_t>(codec.encode(nxt)), g + 1);
    }
    const GridPoint via{cur.pos, other_layer(cur.layer)};
    if (node_usable(grid, pins, via, req))
      emit(static_cast<std::uint32_t>(codec.encode(via)), g + 1);
  }
};

/// Cost provider for the weighted maze search. State = node * kDirs +
/// incoming direction. Implements the full cost model: step, via, bend,
/// wrong-way, and the push/history penalties for entering foreign wire.
struct WeightedProvider {
  const RoutingGrid& grid;
  const PinBlocks& pins;
  const SearchRequest& req;
  const CostModel& model;
  NodeCodec codec;
  /// Future cost toward the target box (search/future_cost.hpp); its box
  /// stays invalid when the heuristic is off (h = 0, plain Dijkstra).
  search::ResidualFutureCost future;

  std::uint32_t node_of(std::uint32_t state) const {
    return state / static_cast<std::uint32_t>(kDirs);
  }

  std::int64_t heuristic(std::uint32_t node) const {
    if (!future.target_box.valid()) return 0;
    const GridPoint g = codec.decode(node);
    return future.bound(g.pos, g.layer);
  }

  int enter_penalty(GridPoint g) const {
    const NetId o = grid.owner(g);
    if (o == kNoNet || o == req.net) return 0;
    int c = model.push;
    const NetId v = grid.via_owner(g.pos);
    if (v != kNoNet && v != req.net) c += model.push_via_extra;
    if (req.push_history != nullptr) {
      const Rect& bounds = codec.bounds;
      const auto cell = static_cast<std::size_t>(
          (g.pos.y - bounds.lo.y) * bounds.width() + (g.pos.x - bounds.lo.x));
      if (cell < req.push_history->size()) c += (*req.push_history)[cell];
    }
    return c;
  }

  template <typename Emit>
  void expand(std::uint32_t state, std::int64_t g, Emit&& emit) const {
    const std::size_t ni = state / kDirs;
    const int dir = static_cast<int>(state % kDirs);
    const GridPoint cur = codec.decode(ni);
    grow_touched(req.touched, cur.pos);

    // Planar steps. Direction ids: 1=E, 2=W, 3=N, 4=S.
    for (int d = 0; d < 4; ++d) {
      const GridPoint nxt{cur.pos + kPlanarSteps[d], cur.layer};
      if (!node_usable(grid, pins, nxt, req)) continue;
      const int ndir = d + 1;
      std::int64_t c = g + model.step + enter_penalty(nxt);
      const bool step_is_vertical = d >= 2;
      const bool prefers_horizontal = cur.layer == Layer::kMetal1;
      if (step_is_vertical == prefers_horizontal) c += model.wrong_way;
      if (dir != 0 && dir != ndir) c += model.bend;
      emit(static_cast<std::uint32_t>(codec.encode(nxt) * kDirs +
                                      static_cast<std::size_t>(ndir)),
           c);
    }

    // Via step: resets direction state (no bend charged after a via).
    const GridPoint nxt{cur.pos, other_layer(cur.layer)};
    if (node_usable(grid, pins, nxt, req))
      emit(static_cast<std::uint32_t>(codec.encode(nxt) * kDirs),
           g + model.via + enter_penalty(nxt));
  }
};

/// Bucket window for the weighted search: wide enough that every edge
/// without history surcharges lands in the window (the A* f-value moves by
/// at most edge cost + one heuristic step — under the residual future cost
/// a step away from the box can raise h by step + wrong_way, hence the
/// doubled wrong_way term). History-inflated push edges go through the
/// overflow heap — correctness never depends on the span.
std::int64_t weighted_span(const CostModel& m) {
  const std::int64_t span = 2 * static_cast<std::int64_t>(m.step) +
                            2 * m.wrong_way + m.bend + m.via + m.push +
                            m.push_via_extra + 1;
  return std::clamp<std::int64_t>(span, 2, 4096);
}

}  // namespace

// ---------------------------------------------------------------------------
// LeeRouter
// ---------------------------------------------------------------------------

LeeRouter::LeeRouter(const RoutingGrid& grid, const PinBlocks& pins,
                     SearchArena* arena)
    : grid_(grid), pins_(pins), external_(arena) {}

SearchResult LeeRouter::route(const SearchRequest& request) {
  const NodeCodec codec{grid_.region().bounds()};
  SearchArena& arena = this->arena();
  arena.resize(codec.count(), codec.count());
  if (arena.begin_search())
    trace_.emit(obs::TraceEvent::epoch_wrap(
        static_cast<std::int64_t>(arena.state_count())));
  last_expansions_ = 0;
  SearchResult result;

  SearchRequest plain = request;
  plain.allow_push = false;
  const LeeProvider provider{grid_, pins_, plain, codec};

  // Sources and targets are probed (owner lookups) even when never expanded.
  for (const GridPoint& s : request.sources)
    grow_touched(request.touched, s.pos);
  for (const GridPoint& t : request.targets)
    grow_touched(request.touched, t.pos);

  for (const GridPoint& t : request.targets)
    if (node_usable(grid_, pins_, t, plain))
      arena.mark_target(static_cast<std::uint32_t>(codec.encode(t)));

  auto run = [&](auto& queue) {
    queue.reset(2);  // unit edges: f advances by at most 1
    for (const GridPoint& s : request.sources)
      if (node_usable(grid_, pins_, s, plain))
        search::seed(arena, queue, provider,
                     static_cast<std::uint32_t>(codec.encode(s)));
    const std::uint32_t goal =
        search::run(arena, queue, provider, &last_expansions_, request.budget);
    last_overflow_hits_ = queue.overflow_hits();
    return goal;
  };
  const std::uint32_t goal = queue_kind_ == SearchQueue::kBucket
                                 ? run(bucket_queue_)
                                 : run(heap_queue_);
  if (request.budget != nullptr) request.budget->charge(last_expansions_);
  trace_.emit(obs::TraceEvent::search_query(request.net, last_expansions_,
                                            last_overflow_hits_,
                                            goal != search::kNoState));
  if (goal == search::kNoState) return result;

  result.found = true;
  result.cost = arena.cost(goal);
  for (const std::uint32_t s : search::backtrack(arena, goal))
    result.path.nodes.push_back(codec.decode(s));
  return result;
}

// ---------------------------------------------------------------------------
// WeightedMazeRouter
// ---------------------------------------------------------------------------

WeightedMazeRouter::WeightedMazeRouter(const RoutingGrid& grid,
                                       const PinBlocks& pins, CostModel model,
                                       SearchArena* arena)
    : grid_(grid), pins_(pins), model_(model), external_(arena) {}

SearchResult WeightedMazeRouter::route(const SearchRequest& request) {
  const NodeCodec codec{grid_.region().bounds()};
  SearchArena& arena = this->arena();
  arena.resize(codec.count() * kDirs, codec.count());
  if (arena.begin_search())
    trace_.emit(obs::TraceEvent::epoch_wrap(
        static_cast<std::int64_t>(arena.state_count())));
  last_expansions_ = 0;
  SearchResult result;

  // Sources and targets are probed (owner lookups) even when never expanded.
  for (const GridPoint& s : request.sources)
    grow_touched(request.touched, s.pos);
  for (const GridPoint& t : request.targets)
    grow_touched(request.touched, t.pos);

  for (const GridPoint& t : request.targets)
    if (node_usable(grid_, pins_, t, request))
      arena.mark_target(static_cast<std::uint32_t>(codec.encode(t)));

  // A* future cost toward the target bounding box (zero when disabled —
  // the box stays invalid). kResidual additionally prices the current
  // layer's wrong-way surcharge, capped by one via (DESIGN.md §2.1g).
  search::ResidualFutureCost future{model_.step, 0, 0, {{0, 0}, {-1, -1}}};
  if (future_cost_ != FutureCost::kNone) {
    for (const GridPoint& t : request.targets) {
      const Rect cell{t.pos, t.pos};
      future.target_box = future.target_box.valid()
                              ? future.target_box.bounding_union(cell)
                              : cell;
    }
  }
  if (future_cost_ == FutureCost::kResidual) {
    future.wrong_way = model_.wrong_way;
    future.via = model_.via;
  }
  const WeightedProvider provider{grid_,  pins_, request,
                                  model_, codec, future};

  auto run = [&](auto& queue) {
    queue.reset(weighted_span(model_));
    for (const GridPoint& s : request.sources)
      if (node_usable(grid_, pins_, s, request))
        search::seed(arena, queue, provider,
                     static_cast<std::uint32_t>(codec.encode(s) * kDirs));
    const std::uint32_t goal =
        search::run(arena, queue, provider, &last_expansions_, request.budget);
    last_overflow_hits_ = queue.overflow_hits();
    return goal;
  };
  const std::uint32_t goal = queue_kind_ == SearchQueue::kBucket
                                 ? run(bucket_queue_)
                                 : run(heap_queue_);
  if (request.budget != nullptr) request.budget->charge(last_expansions_);
  trace_.emit(obs::TraceEvent::search_query(request.net, last_expansions_,
                                            last_overflow_hits_,
                                            goal != search::kNoState));
  if (goal == search::kNoState) return result;

  result.found = true;
  result.cost = arena.cost(goal);
  for (const std::uint32_t s : search::backtrack(arena, goal))
    result.path.nodes.push_back(codec.decode(s / kDirs));
  // The backtrace may revisit a node when entering it with two directions;
  // collapse exact consecutive repeats (can occur at the start state).
  auto& nodes = result.path.nodes;
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  result.crossed = collect_crossed(grid_, result.path, request.net);
  return result;
}

}  // namespace gridroute
