#include "maze/maze_router.hpp"

#include <algorithm>
#include <cassert>

#include "search/future_cost.hpp"
#include "search/goal_search.hpp"

namespace gridroute {

PinBlocks::PinBlocks(const Problem& problem) {
  bounds_ = problem.region().bounds();
  layers_ = problem.region().layer_count();
  map_.assign(static_cast<size_t>(bounds_.width()) *
                  static_cast<size_t>(bounds_.height()) *
                  static_cast<size_t>(layers_),
              kNoNet);
  for (NetId id = 0; id < problem.net_count(); ++id) {
    for (const Pin& pin : problem.net(id).pins) {
      if (pin.any_layer) {
        for (int k = 0; k < layers_; ++k)
          map_[index({pin.pos, layer_at(k)})] = id;
      } else if (layer_index(pin.layer) < layers_) {
        map_[index({pin.pos, pin.layer})] = id;
      }
    }
    // Pre-wire is as immovable as a pin: reserve its nodes so no probe can
    // propose pushing or burying it.
    for (const GridPoint& g : prewire_nodes(problem.net(id)))
      map_[index(g)] = id;
  }
}

namespace {

/// Shared node indexing for both routers: cell-major, layer-minor, over the
/// region's runtime layer count.
struct NodeCodec {
  Rect bounds;
  std::size_t layers;

  std::size_t count() const {
    return static_cast<size_t>(bounds.width()) *
           static_cast<size_t>(bounds.height()) * layers;
  }
  std::size_t encode(GridPoint g) const {
    const auto cell =
        static_cast<size_t>(g.pos.y - bounds.lo.y) *
            static_cast<size_t>(bounds.width()) +
        static_cast<size_t>(g.pos.x - bounds.lo.x);
    return cell * layers + static_cast<size_t>(layer_index(g.layer));
  }
  GridPoint decode(std::size_t idx) const {
    const auto layer = static_cast<Layer>(idx % layers);
    const auto cell = idx / layers;
    const int w = bounds.width();
    return {{bounds.lo.x + static_cast<int>(cell) % w,
             bounds.lo.y + static_cast<int>(cell) / w},
            layer};
  }
};

NodeCodec codec_for(const RoutingGrid& grid) {
  return {grid.region().bounds(),
          static_cast<std::size_t>(grid.region().layer_count())};
}

constexpr Point kPlanarSteps[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};

/// Weighted search states per node: 0 = start/after-via, 1..4 = E,W,N,S.
constexpr std::size_t kDirs = 5;

/// Unions a planar position into a (possibly still invalid) footprint box.
void grow_touched(Rect* box, Point p) {
  if (box == nullptr) return;
  const Rect cell{p, p};
  *box = box->valid() ? box->bounding_union(cell) : cell;
}

bool node_usable(const RoutingGrid& grid, const PinBlocks& pins, GridPoint g,
                 const SearchRequest& req) {
  if (!grid.region().routable(g)) return false;
  if (!pins.admissible(g, req.net)) return false;
  const NetId o = grid.owner(g);
  if (o == kNoNet || o == req.net) return true;
  if (!req.allow_push) return false;
  return std::find(req.frozen.begin(), req.frozen.end(), o) ==
         req.frozen.end();
}

std::vector<GridPoint> collect_crossed(const RoutingGrid& grid,
                                       const Path& path, NetId net) {
  std::vector<GridPoint> crossed;
  for (const GridPoint& g : path.nodes) {
    const NetId o = grid.owner(g);
    if (o != kNoNet && o != net) crossed.push_back(g);
  }
  return crossed;
}

/// Cost provider for the Lee baseline: one state per node, every edge
/// (planar or via) costs 1, no heuristic, no pushing.
struct LeeProvider {
  const RoutingGrid& grid;
  const PinBlocks& pins;
  const SearchRequest& req;
  NodeCodec codec;

  std::uint32_t node_of(std::uint32_t state) const { return state; }
  std::int64_t heuristic(std::uint32_t) const { return 0; }

  template <typename Emit>
  void expand(std::uint32_t state, std::int64_t g, Emit&& emit) const {
    const GridPoint cur = codec.decode(state);
    grow_touched(req.touched, cur.pos);
    for (const Point d : kPlanarSteps) {
      const GridPoint nxt{cur.pos + d, cur.layer};
      if (node_usable(grid, pins, nxt, req))
        emit(static_cast<std::uint32_t>(codec.encode(nxt)), g + 1);
    }
    // Single-cut via moves: down first, then up. On the classic stack each
    // layer has exactly one neighbour, so this emits the historical single
    // other_layer move in the historical order.
    const int k = layer_index(cur.layer);
    if (k > 0) {
      const GridPoint down{cur.pos, layer_at(k - 1)};
      if (node_usable(grid, pins, down, req))
        emit(static_cast<std::uint32_t>(codec.encode(down)), g + 1);
    }
    if (k + 1 < static_cast<int>(codec.layers)) {
      const GridPoint up{cur.pos, layer_at(k + 1)};
      if (node_usable(grid, pins, up, req))
        emit(static_cast<std::uint32_t>(codec.encode(up)), g + 1);
    }
  }
};

/// Cost provider for the weighted maze search. State = node * kDirs +
/// incoming direction. Implements the full cost model: step, via, bend,
/// wrong-way, and the push/history penalties for entering foreign wire.
struct WeightedProvider {
  const RoutingGrid& grid;
  const PinBlocks& pins;
  const SearchRequest& req;
  const CostModel& model;
  const LayerStack& stack;
  NodeCodec codec;
  /// Future cost toward the target box (search/future_cost.hpp); its box
  /// stays invalid when the heuristic is off (h = 0, plain Dijkstra).
  search::ResidualFutureCost future;

  std::uint32_t node_of(std::uint32_t state) const {
    return state / static_cast<std::uint32_t>(kDirs);
  }

  std::int64_t heuristic(std::uint32_t node) const {
    if (!future.target_box.valid()) return 0;
    const GridPoint g = codec.decode(node);
    return future.bound(g.pos, g.layer);
  }

  int enter_penalty(GridPoint g) const {
    const NetId o = grid.owner(g);
    if (o == kNoNet || o == req.net) return 0;
    int c = model.push;
    // Pushing a node that anchors a foreign via (on either cut touching this
    // layer) also severs the via — surcharge it. Classic stack: both layers
    // see exactly cut 0, the historical via_owner(pos) check.
    const int k = layer_index(g.layer);
    auto foreign_via = [&](int cut) {
      const NetId v = grid.via_owner(g.pos, cut);
      return v != kNoNet && v != req.net;
    };
    if (foreign_via(k - 1) || foreign_via(k)) c += model.push_via_extra;
    if (req.push_history != nullptr) {
      const Rect& bounds = codec.bounds;
      const auto cell = static_cast<std::size_t>(
          (g.pos.y - bounds.lo.y) * bounds.width() + (g.pos.x - bounds.lo.x));
      if (cell < req.push_history->size()) c += (*req.push_history)[cell];
    }
    return c;
  }

  template <typename Emit>
  void expand(std::uint32_t state, std::int64_t g, Emit&& emit) const {
    const std::size_t ni = state / kDirs;
    const int dir = static_cast<int>(state % kDirs);
    const GridPoint cur = codec.decode(ni);
    grow_touched(req.touched, cur.pos);

    // Planar steps. Direction ids: 1=E, 2=W, 3=N, 4=S.
    const bool prefers_horizontal = stack.horizontal(cur.layer);
    const bool directed = stack.directed(cur.layer);
    const std::int64_t wrong_way =
        model.wrong_way * stack.wrong_way_mult(cur.layer);
    for (int d = 0; d < 4; ++d) {
      const bool step_is_vertical = d >= 2;
      const bool wrong = step_is_vertical == prefers_horizontal;
      // Hard direction rule: a directed layer admits no wrong-way wire at
      // all — the move is simply never proposed.
      if (wrong && directed) continue;
      const GridPoint nxt{cur.pos + kPlanarSteps[d], cur.layer};
      if (!node_usable(grid, pins, nxt, req)) continue;
      const int ndir = d + 1;
      std::int64_t c = g + model.step + enter_penalty(nxt);
      if (wrong) c += wrong_way;
      if (dir != 0 && dir != ndir) c += model.bend;
      emit(static_cast<std::uint32_t>(codec.encode(nxt) * kDirs +
                                      static_cast<std::size_t>(ndir)),
           c);
    }

    // Via steps (down first, then up) reset direction state — no bend is
    // charged after a via. Each single-cut move prices its own cut. On the
    // classic stack each layer has one neighbour at unit multiplier: the
    // historical single other_layer move, in the historical order.
    const int k = layer_index(cur.layer);
    if (k > 0) {
      const GridPoint nxt{cur.pos, layer_at(k - 1)};
      if (node_usable(grid, pins, nxt, req))
        emit(static_cast<std::uint32_t>(codec.encode(nxt) * kDirs),
             g + model.via * stack.via_mult(k - 1) + enter_penalty(nxt));
    }
    if (k + 1 < static_cast<int>(codec.layers)) {
      const GridPoint nxt{cur.pos, layer_at(k + 1)};
      if (node_usable(grid, pins, nxt, req))
        emit(static_cast<std::uint32_t>(codec.encode(nxt) * kDirs),
             g + model.via * stack.via_mult(k) + enter_penalty(nxt));
    }
  }
};

/// Bucket window for the weighted search: wide enough that every edge
/// without history surcharges lands in the window (the A* f-value moves by
/// at most edge cost + one heuristic step — under the residual future cost
/// a step away from the box can raise h by step + wrong_way, hence the
/// doubled wrong_way term). History-inflated push edges go through the
/// overflow heap — correctness never depends on the span.
std::int64_t weighted_span(const CostModel& m, const LayerStack& stack) {
  // Stack multipliers scale the worst-case edge cost; on the classic stack
  // both maxima are 1 and the span is the historical value bit for bit.
  std::int64_t max_wrong_mult = 1;
  for (int k = 0; k < stack.count(); ++k)
    max_wrong_mult =
        std::max<std::int64_t>(max_wrong_mult, stack.wrong_way_mult(layer_at(k)));
  std::int64_t max_via_mult = 1;
  for (int cut = 0; cut < stack.cuts(); ++cut)
    max_via_mult = std::max<std::int64_t>(max_via_mult, stack.via_mult(cut));
  const std::int64_t span = 2 * static_cast<std::int64_t>(m.step) +
                            2 * m.wrong_way * max_wrong_mult + m.bend +
                            m.via * max_via_mult + m.push +
                            m.push_via_extra + 1;
  return std::clamp<std::int64_t>(span, 2, 4096);
}

}  // namespace

// ---------------------------------------------------------------------------
// LeeRouter
// ---------------------------------------------------------------------------

LeeRouter::LeeRouter(const RoutingGrid& grid, const PinBlocks& pins,
                     SearchArena* arena)
    : grid_(grid), pins_(pins), external_(arena) {}

SearchResult LeeRouter::route(const SearchRequest& request) {
  const NodeCodec codec = codec_for(grid_);
  SearchArena& arena = this->arena();
  arena.resize(codec.count(), codec.count());
  if (arena.begin_search())
    trace_.emit(obs::TraceEvent::epoch_wrap(
        static_cast<std::int64_t>(arena.state_count())));
  last_expansions_ = 0;
  SearchResult result;

  SearchRequest plain = request;
  plain.allow_push = false;
  const LeeProvider provider{grid_, pins_, plain, codec};

  // Sources and targets are probed (owner lookups) even when never expanded.
  for (const GridPoint& s : request.sources)
    grow_touched(request.touched, s.pos);
  for (const GridPoint& t : request.targets)
    grow_touched(request.touched, t.pos);

  for (const GridPoint& t : request.targets)
    if (node_usable(grid_, pins_, t, plain))
      arena.mark_target(static_cast<std::uint32_t>(codec.encode(t)));

  auto run = [&](auto& queue) {
    queue.reset(2);  // unit edges: f advances by at most 1
    for (const GridPoint& s : request.sources)
      if (node_usable(grid_, pins_, s, plain))
        search::seed(arena, queue, provider,
                     static_cast<std::uint32_t>(codec.encode(s)));
    const std::uint32_t goal =
        search::run(arena, queue, provider, &last_expansions_, request.budget);
    last_overflow_hits_ = queue.overflow_hits();
    return goal;
  };
  const std::uint32_t goal = queue_kind_ == SearchQueue::kBucket
                                 ? run(bucket_queue_)
                                 : run(heap_queue_);
  if (request.budget != nullptr) request.budget->charge(last_expansions_);
  trace_.emit(obs::TraceEvent::search_query(request.net, last_expansions_,
                                            last_overflow_hits_,
                                            goal != search::kNoState));
  if (goal == search::kNoState) return result;

  result.found = true;
  result.cost = arena.cost(goal);
  for (const std::uint32_t s : search::backtrack(arena, goal))
    result.path.nodes.push_back(codec.decode(s));
  return result;
}

// ---------------------------------------------------------------------------
// WeightedMazeRouter
// ---------------------------------------------------------------------------

WeightedMazeRouter::WeightedMazeRouter(const RoutingGrid& grid,
                                       const PinBlocks& pins, CostModel model,
                                       SearchArena* arena)
    : grid_(grid), pins_(pins), model_(model), external_(arena) {}

SearchResult WeightedMazeRouter::route(const SearchRequest& request) {
  const NodeCodec codec = codec_for(grid_);
  const LayerStack& stack = grid_.region().layers();
  SearchArena& arena = this->arena();
  arena.resize(codec.count() * kDirs, codec.count());
  if (arena.begin_search())
    trace_.emit(obs::TraceEvent::epoch_wrap(
        static_cast<std::int64_t>(arena.state_count())));
  last_expansions_ = 0;
  SearchResult result;

  // Sources and targets are probed (owner lookups) even when never expanded.
  for (const GridPoint& s : request.sources)
    grow_touched(request.touched, s.pos);
  for (const GridPoint& t : request.targets)
    grow_touched(request.touched, t.pos);

  for (const GridPoint& t : request.targets)
    if (node_usable(grid_, pins_, t, request))
      arena.mark_target(static_cast<std::uint32_t>(codec.encode(t)));

  // A* future cost toward the target bounding box (zero when disabled —
  // the box stays invalid). kResidual additionally prices the current
  // layer's wrong-way surcharge, capped by the cheapest via in the stack
  // (DESIGN.md §2.1g).
  Rect target_box{{0, 0}, {-1, -1}};
  if (future_cost_ != FutureCost::kNone) {
    for (const GridPoint& t : request.targets) {
      const Rect cell{t.pos, t.pos};
      target_box =
          target_box.valid() ? target_box.bounding_union(cell) : cell;
    }
  }
  const bool residual = future_cost_ == FutureCost::kResidual;
  const search::ResidualFutureCost future = search::ResidualFutureCost::
      for_stack(stack, model_.step, residual ? model_.wrong_way : 0,
                residual ? model_.via : 0, target_box);
  const WeightedProvider provider{grid_,  pins_, request, model_,
                                  stack,  codec, future};

  auto run = [&](auto& queue) {
    queue.reset(weighted_span(model_, stack));
    for (const GridPoint& s : request.sources)
      if (node_usable(grid_, pins_, s, request))
        search::seed(arena, queue, provider,
                     static_cast<std::uint32_t>(codec.encode(s) * kDirs));
    const std::uint32_t goal =
        search::run(arena, queue, provider, &last_expansions_, request.budget);
    last_overflow_hits_ = queue.overflow_hits();
    return goal;
  };
  const std::uint32_t goal = queue_kind_ == SearchQueue::kBucket
                                 ? run(bucket_queue_)
                                 : run(heap_queue_);
  if (request.budget != nullptr) request.budget->charge(last_expansions_);
  trace_.emit(obs::TraceEvent::search_query(request.net, last_expansions_,
                                            last_overflow_hits_,
                                            goal != search::kNoState));
  if (goal == search::kNoState) return result;

  result.found = true;
  result.cost = arena.cost(goal);
  for (const std::uint32_t s : search::backtrack(arena, goal))
    result.path.nodes.push_back(codec.decode(s / kDirs));
  // The backtrace may revisit a node when entering it with two directions;
  // collapse exact consecutive repeats (can occur at the start state).
  auto& nodes = result.path.nodes;
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  result.crossed = collect_crossed(grid_, result.path, request.net);
  return result;
}

}  // namespace gridroute
