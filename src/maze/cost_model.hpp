#pragma once

namespace gridroute {

/// Cost weights for the weighted maze search. All costs are in abstract
/// units per grid step; they only matter relative to each other.
///
/// The defaults reproduce the classic detailed-router trade-off: vias are
/// expensive (they consume both layers and hurt yield), bends mildly so,
/// and wiring against a layer's preferred direction is discouraged but not
/// forbidden (unreserved layer model). `push` is the penalty for stepping
/// onto a node owned by another net — the entry ticket for weak
/// modification; it must dwarf ordinary detour costs so pushing only
/// happens when no clean path exists.
struct CostModel {
  int step = 2;            ///< base cost of one planar grid step
  int via = 8;             ///< cost of a layer change
  int bend = 2;            ///< extra cost when a planar step turns 90 deg
  int wrong_way = 1;       ///< extra per-step cost against layer preference
  int push = 120;          ///< extra cost to cross a foreign wire node
  int push_via_extra = 40; ///< additional cost when that node anchors a via

  /// A cost model with every shaping weight switched off: pure shortest
  /// path in steps, the behaviour of the Lee baseline.
  static CostModel unit() {
    CostModel m;
    m.step = 1;
    m.via = 1;
    m.bend = 0;
    m.wrong_way = 0;
    return m;
  }
};

}  // namespace gridroute
