#pragma once

#include <cstdint>
#include <vector>

#include "grid/routing_grid.hpp"
#include "maze/cost_model.hpp"
#include "maze/pin_blocks.hpp"

namespace gridroute {

/// One shortest-connection query against the current grid state.
struct SearchRequest {
  /// Entry nodes (cost 0). Typically one pin, or the whole routed tree of
  /// the net when extending it to the next pin.
  std::vector<GridPoint> sources;
  /// Goal nodes; the search stops at the first one reached.
  std::vector<GridPoint> targets;
  /// The net being routed; its own wire is free to ride on.
  NetId net = kNoNet;
  /// When set, nodes owned by *other* nets are traversable at CostModel::push
  /// penalty (weak-modification probing). Foreign pins stay impassable.
  bool allow_push = false;
  /// Nets that remain impassable even in push mode — victims whose repair
  /// just failed, or nets whose rip-up budget is spent. Lets the router ask
  /// for an alternative victim set.
  std::vector<NetId> frozen;
  /// Optional per-planar-cell surcharge (indexed y*width+x) added when
  /// entering a foreign-owned node in push mode. The incremental router
  /// feeds rip-up history through this, PathFinder-style, so repeated
  /// conflicts over the same cells diversify instead of thrashing.
  const std::vector<int>* push_history = nullptr;
};

struct SearchResult {
  bool found = false;
  Path path;                         ///< source node ... target node
  /// Total path cost under the model. 64-bit: PathFinder-style history
  /// surcharges accumulate across rip-up rounds and long pushed paths can
  /// legitimately exceed 2^31 cost units.
  std::int64_t cost = 0;
  std::vector<GridPoint> crossed;    ///< foreign-owned nodes on the path
};

/// Classic Lee router: breadth-first wavefront over free nodes, unit cost
/// per step (planar or via), no cost shaping, no pushing. The 1961 baseline
/// every incremental router is measured against.
class LeeRouter {
 public:
  LeeRouter(const RoutingGrid& grid, const PinBlocks& pins);

  SearchResult route(const SearchRequest& request);

  /// Test hook: primes the epoch counter so the 2^32-search wrap can be
  /// exercised without running 2^32 queries.
  void set_epoch(std::uint32_t epoch) { epoch_ = epoch; }

 private:
  void advance_epoch();

  const RoutingGrid& grid_;
  const PinBlocks& pins_;
  // Epoch-stamped visit state reused across queries.
  std::vector<std::uint32_t> stamp_;
  std::vector<std::int32_t> parent_;
  std::vector<std::uint8_t> is_target_;
  std::vector<std::uint32_t> target_stamp_;
  std::uint32_t epoch_ = 0;
};

/// Weighted maze search (A* over (node, incoming-direction) states)
/// implementing the full cost model: via cost, bend cost, preferred-direction
/// bias, and — when allowed — finite penalties for crossing foreign wire.
/// Direction is part of the search state so bend costs are exact.
///
/// The heuristic is the Manhattan distance to the bounding box of the
/// target set times the base step cost — admissible (every planar step
/// costs at least CostModel::step) and consistent (1-Lipschitz in planar
/// moves, constant across vias), so results are cost-optimal and identical
/// to plain Dijkstra, only with fewer expansions. set_heuristic(false)
/// recovers Dijkstra exactly (used by tests and the search benchmarks).
class WeightedMazeRouter {
 public:
  WeightedMazeRouter(const RoutingGrid& grid, const PinBlocks& pins,
                     CostModel model = {});

  const CostModel& cost_model() const { return model_; }
  void set_cost_model(CostModel m) { model_ = m; }

  bool heuristic_enabled() const { return use_heuristic_; }
  void set_heuristic(bool enabled) { use_heuristic_ = enabled; }

  SearchResult route(const SearchRequest& request);

  /// Nodes popped from the queue in the last route() call (effort metric).
  long long last_expansions() const { return last_expansions_; }

  /// Test hook: primes the epoch counter so the 2^32-search wrap can be
  /// exercised without running 2^32 queries.
  void set_epoch(std::uint32_t epoch) { epoch_ = epoch; }

 private:
  static constexpr int kDirs = 5;  // 0 = start/after-via, 1..4 = E,W,N,S

  std::size_t node_index(GridPoint g) const;
  std::size_t state_index(GridPoint g, int dir) const {
    return node_index(g) * kDirs + static_cast<size_t>(dir);
  }
  void advance_epoch();

  const RoutingGrid& grid_;
  const PinBlocks& pins_;
  CostModel model_;
  std::vector<std::uint32_t> stamp_;
  // g-costs are 64-bit: step/push/history weights are ints, but they sum
  // over paths, and history-inflated push probes overflow 32 bits in
  // practice on near-saturated instances.
  std::vector<std::int64_t> best_;
  std::vector<std::int32_t> parent_;
  std::vector<std::uint8_t> is_target_;
  std::vector<std::uint32_t> target_stamp_;
  std::uint32_t epoch_ = 0;
  long long last_expansions_ = 0;
  bool use_heuristic_ = true;
};

}  // namespace gridroute
