#pragma once

#include <cstdint>
#include <vector>

#include "grid/routing_grid.hpp"
#include "maze/cost_model.hpp"
#include "maze/pin_blocks.hpp"
#include "obs/budget.hpp"
#include "obs/trace.hpp"
#include "search/bucket_queue.hpp"
#include "search/search_arena.hpp"

namespace gridroute {

/// One shortest-connection query against the current grid state.
struct SearchRequest {
  /// Entry nodes (cost 0). Typically one pin, or the whole routed tree of
  /// the net when extending it to the next pin.
  std::vector<GridPoint> sources;
  /// Goal nodes; the search stops at the first one reached.
  std::vector<GridPoint> targets;
  /// The net being routed; its own wire is free to ride on.
  NetId net = kNoNet;
  /// When set, nodes owned by *other* nets are traversable at CostModel::push
  /// penalty (weak-modification probing). Foreign pins stay impassable.
  bool allow_push = false;
  /// Nets that remain impassable even in push mode — victims whose repair
  /// just failed, or nets whose rip-up budget is spent. Lets the router ask
  /// for an alternative victim set.
  std::vector<NetId> frozen;
  /// Optional per-planar-cell surcharge (indexed y*width+x) added when
  /// entering a foreign-owned node in push mode. The incremental router
  /// feeds rip-up history through this, PathFinder-style, so repeated
  /// conflicts over the same cells diversify instead of thrashing.
  const std::vector<int>* push_history = nullptr;
  /// Optional run budget, checked at the kernel's search-loop checkpoints:
  /// the query aborts (not-found) once the gauge's expansion ceiling or
  /// wall deadline is hit. The routers charge the gauge with each query's
  /// expansions after it returns. Null = unbounded.
  obs::BudgetGauge* budget = nullptr;
  /// Optional read-footprint accumulator. When set, the search unions into
  /// it the planar position of every source, target, and expanded node.
  /// Every grid cell the query's outcome depends on (owner/via lookups
  /// happen only on expanded nodes and their 4-neighbours) lies within this
  /// box inflated by one cell — the conflict test the net-parallel commit
  /// protocol relies on (DESIGN.md §2.1e).
  Rect* touched = nullptr;
};

struct SearchResult {
  bool found = false;
  Path path;                         ///< source node ... target node
  /// Total path cost under the model. 64-bit: PathFinder-style history
  /// surcharges accumulate across rip-up rounds and long pushed paths can
  /// legitimately exceed 2^31 cost units.
  std::int64_t cost = 0;
  std::vector<GridPoint> crossed;    ///< foreign-owned nodes on the path
};

/// Which queue drives a router's kernel search: the Dial-style monotone
/// bucket queue (production default) or the reference binary heap it is
/// differentially tested and benchmarked against. Pop order — and therefore
/// every path, cost, and expansion count — is identical by construction;
/// only the constant factors differ.
enum class SearchQueue { kBucket, kHeap };

/// Which admissible + consistent future cost steers the weighted maze
/// search toward its target set (DESIGN.md §2.1g). Every mode returns
/// cost-optimal results; they differ only in how many states the search
/// expands getting there.
///  - kNone: h = 0, plain Dijkstra (the differential-test reference).
///  - kBboxManhattan: the historical bound — base step cost times Manhattan
///    distance to the target bounding box.
///  - kResidual: the bbox bound plus the per-direction minimum residual
///    edge cost of the remaining distance (wrong-way surcharge on the
///    current layer's non-preferred axis, capped by one via) — sharper,
///    still admissible and consistent, strictly fewer expansions in
///    aggregate. The production default.
enum class FutureCost { kNone, kBboxManhattan, kResidual };

/// Classic Lee router: breadth-first wavefront over free nodes, unit cost
/// per step (planar or via), no cost shaping, no pushing. The 1961 baseline
/// every incremental router is measured against.
///
/// Implemented as a thin adapter over the shared search kernel: BFS is
/// unit-cost Dijkstra, and the FIFO tie order of the bucket queue
/// reproduces the wavefront deque's expansion order exactly.
class LeeRouter {
 public:
  /// `arena` optionally lends shared search scratch (one arena per worker
  /// thread, reused across routers); the router owns its own when null.
  explicit LeeRouter(const RoutingGrid& grid, const PinBlocks& pins,
                     SearchArena* arena = nullptr);

  SearchResult route(const SearchRequest& request);

  /// Nodes popped from the queue in the last route() call (effort metric,
  /// directly comparable with WeightedMazeRouter::last_expansions()).
  long long last_expansions() const { return last_expansions_; }
  /// Overflow-heap hits of the last route() call (0 on the heap queue).
  long long last_overflow_hits() const { return last_overflow_hits_; }

  /// Installs a trace: every route() call then emits one kSearchQuery event
  /// (expansions, overflow-heap hits, found) and a kEpochWrap event when
  /// the arena's epoch counter wraps. No-op-cheap when never called.
  void set_trace(obs::Trace trace) { trace_ = trace; }

  SearchQueue queue_kind() const { return queue_kind_; }
  void set_queue_kind(SearchQueue kind) { queue_kind_ = kind; }

  /// The search scratch this router stamps (owned or lent). Also the home
  /// of the epoch test hooks: arena().set_epoch(...) primes the 2^32-search
  /// wrap without running 2^32 queries.
  SearchArena& arena() { return external_ != nullptr ? *external_ : owned_; }

 private:
  const RoutingGrid& grid_;
  const PinBlocks& pins_;
  SearchArena* external_;
  SearchArena owned_;
  BucketQueue<TieOrder::kFifo> bucket_queue_;
  HeapQueue<TieOrder::kFifo> heap_queue_;
  SearchQueue queue_kind_ = SearchQueue::kBucket;
  long long last_expansions_ = 0;
  long long last_overflow_hits_ = 0;
  obs::Trace trace_;
};

/// Weighted maze search (A* over (node, incoming-direction) states)
/// implementing the full cost model: via cost, bend cost, preferred-direction
/// bias, and — when allowed — finite penalties for crossing foreign wire.
/// Direction is part of the search state so bend costs are exact.
///
/// The heuristic (selected by set_future_cost, default FutureCost::kResidual)
/// is admissible and consistent under every mode — see the enum and
/// DESIGN.md §2.1g — so results are always cost-optimal and cost-identical
/// to plain Dijkstra, only with fewer expansions. set_future_cost(
/// FutureCost::kNone) recovers Dijkstra exactly (used by tests and the
/// search benchmarks).
///
/// An adapter over the shared search kernel: the cost model lives in a
/// provider, the wavefront loop and epoch-stamped state in src/search.
class WeightedMazeRouter {
 public:
  /// `arena` optionally lends shared search scratch (one arena per worker
  /// thread, reused across attempts); the router owns its own when null.
  explicit WeightedMazeRouter(const RoutingGrid& grid, const PinBlocks& pins,
                              CostModel model = {},
                              SearchArena* arena = nullptr);

  const CostModel& cost_model() const { return model_; }
  void set_cost_model(CostModel m) { model_ = m; }

  FutureCost future_cost() const { return future_cost_; }
  void set_future_cost(FutureCost mode) { future_cost_ = mode; }

  SearchResult route(const SearchRequest& request);

  /// Nodes popped from the queue in the last route() call (effort metric).
  long long last_expansions() const { return last_expansions_; }
  /// Overflow-heap hits of the last route() call (0 on the heap queue).
  long long last_overflow_hits() const { return last_overflow_hits_; }

  /// Installs a trace: every route() call then emits one kSearchQuery event
  /// (expansions, overflow-heap hits, found) and a kEpochWrap event when
  /// the arena's epoch counter wraps. No-op-cheap when never called.
  void set_trace(obs::Trace trace) { trace_ = trace; }

  SearchQueue queue_kind() const { return queue_kind_; }
  void set_queue_kind(SearchQueue kind) { queue_kind_ = kind; }

  /// The search scratch this router stamps (owned or lent). Also the home
  /// of the epoch test hooks: arena().set_epoch(...) primes the 2^32-search
  /// wrap without running 2^32 queries.
  SearchArena& arena() { return external_ != nullptr ? *external_ : owned_; }

 private:
  const RoutingGrid& grid_;
  const PinBlocks& pins_;
  CostModel model_;
  SearchArena* external_;
  SearchArena owned_;
  BucketQueue<TieOrder::kByValue> bucket_queue_;
  HeapQueue<TieOrder::kByValue> heap_queue_;
  SearchQueue queue_kind_ = SearchQueue::kBucket;
  long long last_expansions_ = 0;
  long long last_overflow_hits_ = 0;
  obs::Trace trace_;
  FutureCost future_cost_ = FutureCost::kResidual;
};

}  // namespace gridroute
