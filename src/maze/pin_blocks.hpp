#pragma once

#include <vector>

#include "grid/routing_grid.hpp"
#include "problem/problem.hpp"

namespace gridroute {

/// Exclusive-use map derived from a Problem's pins: a node reserved for a
/// pin of net N may only carry wire of net N. Routers consult this so that
/// neither a detouring net nor a pushed victim can ever bury a foreign
/// terminal — a pin, unlike a wire segment, cannot be moved out of the way.
///
/// A single-layer pin reserves only its own layer (the layers above a
/// terminal are legitimate routing resource); an any-layer pin reserves the
/// planar cell on every layer of the stack.
class PinBlocks {
 public:
  PinBlocks() = default;
  explicit PinBlocks(const Problem& problem);

  /// kNoNet when unreserved; otherwise the only net allowed on the node.
  NetId reserved_for(GridPoint g) const {
    if (map_.empty() || !bounds_.contains(g.pos) ||
        layer_index(g.layer) >= layers_)
      return kNoNet;
    return map_[index(g)];
  }

  /// True when net `id` may occupy node g as far as pins are concerned.
  bool admissible(GridPoint g, NetId id) const {
    const NetId r = reserved_for(g);
    return r == kNoNet || r == id;
  }

 private:
  std::size_t index(GridPoint g) const {
    return (static_cast<size_t>(g.pos.y - bounds_.lo.y) *
                static_cast<size_t>(bounds_.width()) +
            static_cast<size_t>(g.pos.x - bounds_.lo.x)) *
               static_cast<size_t>(layers_) +
           static_cast<size_t>(layer_index(g.layer));
  }

  Rect bounds_{{0, 0}, {-1, -1}};
  int layers_ = 2;
  std::vector<NetId> map_;
};

}  // namespace gridroute
