#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace gridroute::obs {

/// Streams every event as one JSON object per line (JSONL), the interchange
/// shape per-stage metrics pipelines expect. Thread-safe: events arriving
/// from multi-start workers are serialized under a mutex, so every line is
/// intact (interleaving across attempts is inherent; consumers order by the
/// "attempt" field, under which each attempt's stream is deterministic).
class JsonlSink : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(out) {}

  void on_event(const TraceEvent& event) override;
  long long lines() const;

  /// Formats one event as its JSONL line (no trailing newline) — the exact
  /// bytes on_event writes; exposed for tests and custom sinks.
  static std::string format(const TraceEvent& event);

 private:
  std::ostream& out_;
  mutable std::mutex mutex_;
  long long lines_ = 0;
};

/// Counts events per kind — the cheapest possible sink, used both as a live
/// dashboard feed and as the "sink installed" case of the overhead bench.
class CountingSink : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override;

  long long count(EventKind kind) const;
  long long total() const;

 private:
  mutable std::mutex mutex_;
  std::array<long long, kEventKindCount> counts_{};
};

/// Ring buffer of the most recent `capacity` events, for post-mortem replay
/// (examples/trace_replay renders these as ASCII frames). Oldest events are
/// dropped once the ring is full; dropped() reports how many.
class ReplaySink : public TraceSink {
 public:
  explicit ReplaySink(std::size_t capacity = 4096);

  void on_event(const TraceEvent& event) override;

  /// The retained events, oldest first.
  std::vector<TraceEvent> events() const;
  std::size_t capacity() const { return capacity_; }
  long long dropped() const;

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;       ///< slot the next event lands in (once full)
  long long dropped_ = 0;
};

}  // namespace gridroute::obs
