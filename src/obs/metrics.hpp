#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace gridroute::obs {

/// Named monotonic counter. Handed out by MetricsRegistry with a stable
/// address, so hot paths bind a reference once and pay one add per tick.
class Counter {
 public:
  void add(std::int64_t delta = 1) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Duration histogram: count/total/min/max plus power-of-two millisecond
/// buckets (bucket i holds durations in [2^(i-1), 2^i) ms; bucket 0 holds
/// everything under 1 ms). Enough shape to spot bimodal phases without a
/// full HDR histogram.
class Timer {
 public:
  static constexpr std::size_t kBuckets = 16;

  void record_ms(double ms);

  long long count() const { return count_; }
  double total_ms() const { return total_ms_; }
  double min_ms() const { return count_ > 0 ? min_ms_ : 0; }
  double max_ms() const { return max_ms_; }
  const std::vector<long long>& buckets() const { return buckets_; }

 private:
  long long count_ = 0;
  double total_ms_ = 0;
  double min_ms_ = 0;
  double max_ms_ = 0;
  std::vector<long long> buckets_ = std::vector<long long>(kBuckets, 0);
};

/// RAII stopwatch recording into a Timer on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer) : timer_(timer) {}
  ~ScopedTimer() { timer_.record_ms(elapsed_ms()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Timer& timer_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// Plain-struct export of a registry — what snapshot() returns and what the
/// text/JSON writers consume. Sorted by name (std::map iteration order), so
/// exports are deterministic.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct TimerValue {
    std::string name;
    long long count = 0;
    double total_ms = 0;
    double min_ms = 0;
    double max_ms = 0;
    std::vector<long long> buckets;
  };

  std::vector<CounterValue> counters;
  std::vector<TimerValue> timers;

  /// Counter value by name, or 0 when absent.
  std::int64_t counter(std::string_view name) const;
};

/// Registry of named counters and histogram timers — the metrics half of
/// src/obs. Routers publish into a registry; RouteStats and friends are
/// snapshot views assembled from it. Handles returned by counter()/timer()
/// stay valid for the registry's lifetime (node-based map storage), so
/// callers bind them once outside their hot loops.
///
/// Not internally synchronized: a registry belongs to one router, and
/// routers are single-threaded by design (multi-start isolation gives each
/// attempt its own router and therefore its own registry).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Timer& timer(std::string_view name);

  MetricsSnapshot snapshot() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Timer, std::less<>> timers_;
};

/// Column-aligned plain-text export (rendered with src/io/table).
void write_text(const MetricsSnapshot& snapshot, std::ostream& out);
/// One JSON object: {"counters":{...},"timers":{name:{...}}}.
void write_json(const MetricsSnapshot& snapshot, std::ostream& out);

}  // namespace gridroute::obs
