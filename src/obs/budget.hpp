#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace gridroute::obs {

/// Resource ceiling for one routing run — the robustness half of
/// observability: instead of running unbounded, a budgeted run stops at the
/// next checkpoint and returns a clean partial outcome (failed-net list
/// intact, routed subset verifiable).
///
/// Zero (or negative) means unlimited for either axis. The expansion budget
/// is deterministic — it is checked against exact queue-pop counts, so two
/// runs with the same budget abort at the same point. The wall budget is
/// inherently timing-dependent.
struct RunBudget {
  double wall_ms = 0;            ///< wall-clock ceiling; <= 0 = unlimited
  long long max_expansions = 0;  ///< search-pop ceiling; <= 0 = unlimited
  /// External cancellation token (non-owning; null = none). When the flag
  /// reads true at a budget checkpoint the run stops exactly like a tripped
  /// wall deadline: cleanly, at the next checkpoint, with a verifiable
  /// partial result. This is how a serving layer cancels an in-flight job —
  /// the token rides the existing budget plumbing, so every layer that
  /// honors deadlines honors cancellation for free.
  const std::atomic<bool>* cancel = nullptr;

  bool unlimited() const {
    return wall_ms <= 0 && max_expansions <= 0 && cancel == nullptr;
  }
};

/// Live tracker for a RunBudget: the deadline is fixed at construction, and
/// expansions are charged as searches complete. Charging is thread-safe
/// (relaxed atomics) so a gauge can be shared; for deterministic multi-start
/// runs each attempt forks its own gauge — fork() copies the budget and the
/// already-running wall deadline but starts expansions at zero, making the
/// expansion ceiling per-attempt (exact) while the deadline stays global.
class BudgetGauge {
 public:
  using Clock = std::chrono::steady_clock;

  BudgetGauge() = default;
  explicit BudgetGauge(const RunBudget& budget)
      : budget_(budget),
        deadline_(budget.wall_ms > 0
                      ? Clock::now() + std::chrono::duration_cast<
                                           Clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                budget.wall_ms))
                      : Clock::time_point::max()) {}

  /// Per-attempt view of this gauge: same budget, same wall deadline,
  /// fresh expansion count.
  BudgetGauge fork() const { return BudgetGauge(budget_, deadline_); }

  const RunBudget& budget() const { return budget_; }

  void charge(long long expansions) {
    spent_.fetch_add(expansions, std::memory_order_relaxed);
  }
  long long spent() const { return spent_.load(std::memory_order_relaxed); }

  /// Expansions still allowed, or -1 when the expansion axis is unlimited.
  long long expansions_left() const {
    if (budget_.max_expansions <= 0) return -1;
    const long long left = budget_.max_expansions - spent();
    return left > 0 ? left : 0;
  }

  bool expansions_exhausted() const { return expansions_left() == 0; }
  /// External cancellation requested (RunBudget::cancel token set and
  /// raised). Folded into wall_exhausted(): cancellation behaves exactly
  /// like a wall deadline that just expired — same checkpoints, same clean
  /// partial result — so no caller needs a third exhaustion case.
  bool cancelled() const {
    return budget_.cancel != nullptr &&
           budget_.cancel->load(std::memory_order_relaxed);
  }
  bool wall_exhausted() const {
    return (budget_.wall_ms > 0 && Clock::now() >= deadline_) || cancelled();
  }
  bool exhausted() const {
    return expansions_exhausted() || wall_exhausted();
  }

 private:
  BudgetGauge(const RunBudget& budget, Clock::time_point deadline)
      : budget_(budget), deadline_(deadline) {}

  RunBudget budget_;
  Clock::time_point deadline_ = Clock::time_point::max();
  std::atomic<long long> spent_{0};
};

}  // namespace gridroute::obs
