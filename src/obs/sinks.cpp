#include "obs/sinks.hpp"

#include <ostream>
#include <sstream>
#include <string>

namespace gridroute::obs {

// ---------------------------------------------------------------------------
// JsonlSink
// ---------------------------------------------------------------------------

std::string JsonlSink::format(const TraceEvent& event) {
  std::ostringstream line;
  line << "{\"event\":\"" << event_name(event.kind)
       << "\",\"attempt\":" << event.attempt;
  if (event.net >= 0) line << ",\"net\":" << event.net;
  line << ",\"value\":" << event.value << ",\"extra\":" << event.extra
       << ",\"ok\":" << (event.ok ? "true" : "false");
  if (!event.nets.empty()) {
    line << ",\"nets\":[";
    for (std::size_t i = 0; i < event.nets.size(); ++i)
      line << (i > 0 ? "," : "") << event.nets[i];
    line << ']';
  }
  line << '}';
  return line.str();
}

void JsonlSink::on_event(const TraceEvent& event) {
  const std::string line = format(event);
  const std::lock_guard<std::mutex> lock(mutex_);
  out_ << line << '\n';
  ++lines_;
}

long long JsonlSink::lines() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

// ---------------------------------------------------------------------------
// CountingSink
// ---------------------------------------------------------------------------

void CountingSink::on_event(const TraceEvent& event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[static_cast<std::size_t>(event.kind)];
}

long long CountingSink::count(EventKind kind) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counts_[static_cast<std::size_t>(kind)];
}

long long CountingSink::total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  long long sum = 0;
  for (const long long c : counts_) sum += c;
  return sum;
}

// ---------------------------------------------------------------------------
// ReplaySink
// ---------------------------------------------------------------------------

ReplaySink::ReplaySink(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {
  ring_.reserve(capacity_);
}

void ReplaySink::on_event(const TraceEvent& event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
  }
}

std::vector<TraceEvent> ReplaySink::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  return out;
}

long long ReplaySink::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

}  // namespace gridroute::obs
