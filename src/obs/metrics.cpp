#include "obs/metrics.hpp"

#include <cmath>
#include <ostream>

#include "io/table.hpp"

namespace gridroute::obs {

void Timer::record_ms(double ms) {
  if (ms < 0) ms = 0;
  if (count_ == 0 || ms < min_ms_) min_ms_ = ms;
  if (ms > max_ms_) max_ms_ = ms;
  ++count_;
  total_ms_ += ms;
  std::size_t bucket = 0;
  for (double edge = 1; bucket + 1 < kBuckets && ms >= edge; edge *= 2)
    ++bucket;
  ++buckets_[bucket];
}

std::int64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const CounterValue& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), Counter{}).first;
  return it->second;
}

Timer& MetricsRegistry::timer(std::string_view name) {
  auto it = timers_.find(name);
  if (it == timers_.end()) it = timers_.emplace(std::string(name), Timer{}).first;
  return it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    snap.counters.push_back({name, counter.value()});
  snap.timers.reserve(timers_.size());
  for (const auto& [name, timer] : timers_)
    snap.timers.push_back({name, timer.count(), timer.total_ms(),
                           timer.min_ms(), timer.max_ms(), timer.buckets()});
  return snap;
}

void write_text(const MetricsSnapshot& snapshot, std::ostream& out) {
  Table counters({"counter", "value"});
  for (const auto& c : snapshot.counters)
    counters.add_row({c.name, Table::num(static_cast<long long>(c.value))});
  if (counters.row_count() > 0) counters.print(out);

  Table timers({"timer", "count", "total ms", "min ms", "max ms"});
  for (const auto& t : snapshot.timers)
    timers.add_row({t.name, Table::num(static_cast<long long>(t.count)),
                    Table::num(t.total_ms, 2), Table::num(t.min_ms, 2),
                    Table::num(t.max_ms, 2)});
  if (timers.row_count() > 0) {
    if (counters.row_count() > 0) out << '\n';
    timers.print(out);
  }
}

void write_json(const MetricsSnapshot& snapshot, std::ostream& out) {
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    out << (i > 0 ? "," : "") << '"' << c.name << "\":" << c.value;
  }
  out << "},\"timers\":{";
  for (std::size_t i = 0; i < snapshot.timers.size(); ++i) {
    const auto& t = snapshot.timers[i];
    out << (i > 0 ? "," : "") << '"' << t.name << "\":{\"count\":" << t.count
        << ",\"total_ms\":" << t.total_ms << ",\"min_ms\":" << t.min_ms
        << ",\"max_ms\":" << t.max_ms << ",\"buckets\":[";
    for (std::size_t b = 0; b < t.buckets.size(); ++b)
      out << (b > 0 ? "," : "") << t.buckets[b];
    out << "]}";
  }
  out << "}}";
}

}  // namespace gridroute::obs
