#pragma once

#include <cstdint>
#include <vector>

namespace gridroute::obs {

/// The event taxonomy of the observability subsystem. Every router layer
/// emits through the same typed stream so one sink sees a whole run:
///
///   router lifecycle   kNetStart, kNetSuccess, kNetFail
///   weak modification  kWeakProbe, kWeakOutcome
///   strong rip-up      kStrongRipup
///   clean-up           kImproveAccept, kImproveReject
///   search kernel      kSearchQuery, kEpochWrap
///   multi-start        kAttemptScheduled, kAttemptCancelled, kAttemptWon
///   budget             kBudgetExhausted
///   net-parallel       kWaveFormed, kSpecCommitted, kSpecInvalidated
///   degradation        kFaultInjected, kDegraded
///   serving layer      kJobSubmitted, kJobAdmitted, kJobRejected,
///                      kJobStarted, kJobCachedHit, kJobCompleted,
///                      kJobCancelled
///   ECO / delta        kDeltaSubmitted, kNetsPreserved, kNetsInvalidated
///   resilience         kWorkerDied, kWorkerRespawned, kJobRetried,
///                      kJobQuarantined, kBrownOutEntered, kBrownOutExited
///
/// Payload conventions per kind are documented on TraceEvent. Events carry
/// no timestamps by design: a trace is a pure function of the routing
/// decisions, so golden-trace tests can assert byte-identical sequences
/// across thread counts (sorted by attempt id).
enum class EventKind : std::uint8_t {
  kNetStart,          ///< net: id being (re)routed
  kNetSuccess,        ///< net: id; value: connections routed
  kNetFail,           ///< net: id; value: connections routed before the block
  kWeakProbe,         ///< net: id; value: probe index; extra: nodes crossed;
                      ///< ok: probe found a path
  kWeakOutcome,       ///< net: id; value: probe index; extra: victims;
                      ///< ok: push applied (false = rolled back)
  kStrongRipup,       ///< net: aggressor; nets: victims ripped; value:
                      ///< victims' total remaining rip-up budget after this
  kImproveAccept,     ///< net: id; value: old wire cost; extra: new cost
  kImproveReject,     ///< net: id; value: old wire cost
  kSearchQuery,       ///< net: query's net; value: expansions (queue pops);
                      ///< extra: bucket-queue overflow-heap hits; ok: found
  kEpochWrap,         ///< value: arena state slots (the 2^32 epoch wrapped)
  kAttemptScheduled,  ///< attempt: index claimed by a worker
  kAttemptCancelled,  ///< attempt: index skipped past the completion mark
  kAttemptWon,        ///< attempt: winning index; ok: winner complete
  kBudgetExhausted,   ///< value: expansions spent; ok: wall-clock (vs
                      ///< expansion) budget tripped
  kWaveFormed,        ///< value: nets in the wave; extra: nets still queued
                      ///< behind it; ok: wave was speculated (size > 1)
  kSpecCommitted,     ///< net: id; value: searches replayed from speculation;
                      ///< ok: speculation covered the whole net (no serial
                      ///< escalation was needed at commit)
  kSpecInvalidated,   ///< net: id; value: searches discarded (net re-routed
                      ///< serially at commit because an earlier commit in the
                      ///< wave dirtied its read footprint)
  kFaultInjected,     ///< net: id the fault hit (-1 when not net-scoped);
                      ///< value: fault::Site as int; extra: armed arrival
  kDegraded,          ///< net: id the fallback concerned (-1 for run-wide);
                      ///< value: Degradation::Kind as int
  // Serving-layer job lifecycle (src/service emits these; `value` is always
  // the service-assigned job id).
  kJobSubmitted,      ///< value: job id; extra: queue depth after enqueue
  kJobAdmitted,       ///< value: job id; extra: queue depth after enqueue
  kJobRejected,       ///< value: job id; extra: rejection reason
                      ///< (service::RejectReason as int)
  kJobStarted,        ///< value: job id; extra: queue wait in whole ms
  kJobCachedHit,      ///< value: job id; extra: canonical problem hash
                      ///< folded to int64
  kJobCompleted,      ///< value: job id; ok: run was complete (no failed
                      ///< nets) and undegraded
  kJobCancelled,      ///< value: job id; ok: job had started (partial
                      ///< result salvaged) vs cancelled while queued
  // Incremental/ECO delta routing (core/delta.hpp emits the triple per
  // route_delta call; the serving layer additionally emits kDeltaSubmitted
  // per submit_delta with the job-style payload: value = job id, extra =
  // session id).
  kDeltaSubmitted,    ///< value: edit op count; extra: dirty-box planar
                      ///< area; ok: the edited problem passed validation
  kNetsPreserved,     ///< value: count; nets: ids replayed as warm start
  kNetsInvalidated,   ///< value: count; nets: ids ripped and re-routed
  // Service resilience (src/service supervision layer; DESIGN.md §2.5).
  kWorkerDied,        ///< value: worker slot; extra: job id in flight (0 =
                      ///< none); ok: a replacement will be spawned
  kWorkerRespawned,   ///< value: worker slot; extra: total respawns so far
  kJobRetried,        ///< value: job id; extra: retry index (1-based);
                      ///< ok: always true (the job re-entered the queue)
  kJobQuarantined,    ///< value: job id; extra: retries burned before
                      ///< quarantine
  kBrownOutEntered,   ///< value: queue depth that tripped the threshold
  kBrownOutExited,    ///< value: queue depth at recovery
};

/// Stable lower_snake names for export (JSONL, counters, tables).
inline const char* event_name(EventKind kind) {
  switch (kind) {
    case EventKind::kNetStart: return "net_start";
    case EventKind::kNetSuccess: return "net_success";
    case EventKind::kNetFail: return "net_fail";
    case EventKind::kWeakProbe: return "weak_probe";
    case EventKind::kWeakOutcome: return "weak_outcome";
    case EventKind::kStrongRipup: return "strong_ripup";
    case EventKind::kImproveAccept: return "improve_accept";
    case EventKind::kImproveReject: return "improve_reject";
    case EventKind::kSearchQuery: return "search_query";
    case EventKind::kEpochWrap: return "epoch_wrap";
    case EventKind::kAttemptScheduled: return "attempt_scheduled";
    case EventKind::kAttemptCancelled: return "attempt_cancelled";
    case EventKind::kAttemptWon: return "attempt_won";
    case EventKind::kBudgetExhausted: return "budget_exhausted";
    case EventKind::kWaveFormed: return "wave_formed";
    case EventKind::kSpecCommitted: return "spec_committed";
    case EventKind::kSpecInvalidated: return "spec_invalidated";
    case EventKind::kFaultInjected: return "fault_injected";
    case EventKind::kDegraded: return "degraded";
    case EventKind::kJobSubmitted: return "job_submitted";
    case EventKind::kJobAdmitted: return "job_admitted";
    case EventKind::kJobRejected: return "job_rejected";
    case EventKind::kJobStarted: return "job_started";
    case EventKind::kJobCachedHit: return "job_cached_hit";
    case EventKind::kJobCompleted: return "job_completed";
    case EventKind::kJobCancelled: return "job_cancelled";
    case EventKind::kDeltaSubmitted: return "delta_submitted";
    case EventKind::kNetsPreserved: return "nets_preserved";
    case EventKind::kNetsInvalidated: return "nets_invalidated";
    case EventKind::kWorkerDied: return "worker_died";
    case EventKind::kWorkerRespawned: return "worker_respawned";
    case EventKind::kJobRetried: return "job_retried";
    case EventKind::kJobQuarantined: return "job_quarantined";
    case EventKind::kBrownOutEntered: return "brownout_entered";
    case EventKind::kBrownOutExited: return "brownout_exited";
  }
  return "unknown";
}

/// Number of distinct EventKind values (CountingSink's table size).
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kBrownOutExited) + 1;

/// One structured trace record. Only the fields a kind documents are
/// meaningful; the rest stay at their defaults. The per-kind factories
/// below encode each kind's payload convention in a signature, so emitters
/// cannot mix fields up.
struct TraceEvent {
  EventKind kind = EventKind::kNetStart;
  int attempt = 0;            ///< multi-start attempt index; 0 on plain runs
  int net = -1;               ///< subject net id, -1 when not net-scoped
  std::int64_t value = 0;     ///< primary scalar payload (see EventKind)
  std::int64_t extra = 0;     ///< secondary scalar payload
  bool ok = false;            ///< success/acceptance flag where documented
  std::vector<int> nets;      ///< victim list (kStrongRipup), else empty

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;

  static TraceEvent net_start(int net) {
    return of(EventKind::kNetStart, net);
  }
  static TraceEvent net_done(bool routed, int net, std::int64_t connections) {
    TraceEvent e = of(routed ? EventKind::kNetSuccess : EventKind::kNetFail,
                      net);
    e.value = connections;
    return e;
  }
  static TraceEvent weak_probe(int net, std::int64_t probe_index,
                               std::int64_t crossed, bool found) {
    TraceEvent e = of(EventKind::kWeakProbe, net);
    e.value = probe_index;
    e.extra = crossed;
    e.ok = found;
    return e;
  }
  static TraceEvent weak_outcome(int net, std::int64_t probe_index,
                                 std::int64_t victims, bool applied) {
    TraceEvent e = of(EventKind::kWeakOutcome, net);
    e.value = probe_index;
    e.extra = victims;
    e.ok = applied;
    return e;
  }
  static TraceEvent strong_ripup(int net, std::int64_t remaining_budget,
                                 std::vector<int> victims) {
    TraceEvent e = of(EventKind::kStrongRipup, net);
    e.value = remaining_budget;
    e.nets = std::move(victims);
    return e;
  }
  static TraceEvent improve_accept(int net, std::int64_t old_cost,
                                   std::int64_t new_cost) {
    TraceEvent e = of(EventKind::kImproveAccept, net);
    e.value = old_cost;
    e.extra = new_cost;
    return e;
  }
  static TraceEvent improve_reject(int net, std::int64_t old_cost) {
    TraceEvent e = of(EventKind::kImproveReject, net);
    e.value = old_cost;
    return e;
  }
  static TraceEvent search_query(int net, std::int64_t expansions,
                                 std::int64_t overflow_hits, bool found) {
    TraceEvent e = of(EventKind::kSearchQuery, net);
    e.value = expansions;
    e.extra = overflow_hits;
    e.ok = found;
    return e;
  }
  static TraceEvent epoch_wrap(std::int64_t arena_states) {
    TraceEvent e = of(EventKind::kEpochWrap, -1);
    e.value = arena_states;
    return e;
  }
  static TraceEvent attempt_scheduled() {
    return of(EventKind::kAttemptScheduled, -1);
  }
  static TraceEvent attempt_cancelled() {
    return of(EventKind::kAttemptCancelled, -1);
  }
  static TraceEvent attempt_won(bool complete) {
    TraceEvent e = of(EventKind::kAttemptWon, -1);
    e.ok = complete;
    return e;
  }
  static TraceEvent budget_exhausted(std::int64_t spent, bool wall) {
    TraceEvent e = of(EventKind::kBudgetExhausted, -1);
    e.value = spent;
    e.ok = wall;
    return e;
  }
  static TraceEvent wave_formed(std::int64_t nets_in_wave,
                                std::int64_t nets_behind, bool speculated) {
    TraceEvent e = of(EventKind::kWaveFormed, -1);
    e.value = nets_in_wave;
    e.extra = nets_behind;
    e.ok = speculated;
    return e;
  }
  static TraceEvent spec_committed(int net, std::int64_t replayed,
                                   bool complete) {
    TraceEvent e = of(EventKind::kSpecCommitted, net);
    e.value = replayed;
    e.ok = complete;
    return e;
  }
  static TraceEvent spec_invalidated(int net, std::int64_t discarded) {
    TraceEvent e = of(EventKind::kSpecInvalidated, net);
    e.value = discarded;
    return e;
  }
  // The degradation pair carries its payloads as plain ints so obs stays
  // independent of src/fault (emitters cast fault::Site / Degradation::Kind).
  static TraceEvent fault_injected(int net, std::int64_t site,
                                   std::int64_t arrival) {
    TraceEvent e = of(EventKind::kFaultInjected, net);
    e.value = site;
    e.extra = arrival;
    return e;
  }
  static TraceEvent degraded(int net, std::int64_t kind) {
    TraceEvent e = of(EventKind::kDegraded, net);
    e.value = kind;
    return e;
  }
  /// Serving-layer lifecycle factory: these events are never net-scoped
  /// (net = -1) and always carry the job id in `value`; `extra` and `ok`
  /// follow the per-kind conventions documented on EventKind.
  static TraceEvent job(EventKind kind, std::int64_t job_id,
                        std::int64_t extra = 0, bool ok = false) {
    TraceEvent e = of(kind, -1);
    e.value = job_id;
    e.extra = extra;
    e.ok = ok;
    return e;
  }
  static TraceEvent delta_submitted(std::int64_t edit_ops,
                                    std::int64_t dirty_area, bool valid) {
    TraceEvent e = of(EventKind::kDeltaSubmitted, -1);
    e.value = edit_ops;
    e.extra = dirty_area;
    e.ok = valid;
    return e;
  }
  /// kNetsPreserved / kNetsInvalidated: the partition route_delta decided
  /// on, id list in `nets`, count duplicated in `value` for counters.
  static TraceEvent delta_nets(EventKind kind, std::vector<int> ids) {
    TraceEvent e = of(kind, -1);
    e.value = static_cast<std::int64_t>(ids.size());
    e.nets = std::move(ids);
    return e;
  }

 private:
  static TraceEvent of(EventKind kind, int net) {
    TraceEvent e;
    e.kind = kind;
    e.net = net;
    return e;
  }
};

/// Receiver interface for the event stream. Implementations installed on a
/// multi-start run receive events from every worker thread concurrently and
/// must be thread-safe (all sinks in obs/sinks.hpp are).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Cheap emission handle held by every instrumented component: a sink
/// pointer plus the attempt id to stamp. When no sink is installed, emit()
/// is one inlined null check and nothing else — the zero-overhead-when-off
/// guarantee the obs_overhead bench measures.
class Trace {
 public:
  Trace() = default;
  Trace(TraceSink* sink, int attempt) : sink_(sink), attempt_(attempt) {}

  bool on() const { return sink_ != nullptr; }
  int attempt() const { return attempt_; }
  TraceSink* sink() const { return sink_; }

  void emit(TraceEvent event) const {
    if (sink_ == nullptr) return;
    event.attempt = attempt_;
    sink_->on_event(event);
  }

 private:
  TraceSink* sink_ = nullptr;
  int attempt_ = 0;
};

}  // namespace gridroute::obs
