#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace gridroute {

/// Tie-breaking policy among queue entries of equal priority.
///  - kFifo: insertion order — what a BFS wavefront deque does; the Lee
///    adapter's policy.
///  - kByValue: ascending value — what a std::priority_queue over
///    (priority, state) pairs does; the weighted-maze and global adapters'
///    policy, preserving the pop order of the binary heaps they replaced.
enum class TieOrder { kFifo, kByValue };

/// Dial-style monotone bucket queue over int64 priorities.
///
/// Built for the goal-oriented searches in this library, whose pushes are
/// monotone: every pushed priority is >= the last popped one (Dijkstra with
/// non-negative edge costs; A* with a consistent heuristic). Under that
/// invariant a circular array of `span` buckets, indexed by priority modulo
/// span, holds every live entry whose priority lies in the moving window
/// [cur, cur+span) — and because the window is exactly span wide, all
/// entries sharing a bucket share one priority, so in-bucket ordering only
/// needs the tie key. For kByValue that is a tiny per-bucket heap; for
/// kFifo the keys are a monotone sequence counter and every bucket receives
/// them in ascending order already (drain_overflow runs before any direct
/// push can reach a newly windowed priority), so a bucket is a plain vector
/// popped from a head index — no heap operations at all.
///
/// Entries pushed past the window — rare: push penalties and PathFinder
/// history surcharges dwarf the span — wait in an overflow binary heap and
/// drain into the window as it advances. When the buckets empty entirely,
/// the window jumps straight to the overflow minimum, so an arbitrarily
/// large cost gap costs O(log n), not O(gap).
///
/// Pop order is exactly lexicographic (priority, tie key) — identical, by
/// construction, to HeapQueue with the same TieOrder; the differential
/// tests assert precisely that.
template <TieOrder Order>
class BucketQueue {
 public:
  /// Empties the queue and (re)configures the window width. Allocations are
  /// kept when the span is unchanged — the pattern is one reset() per
  /// search over a long-lived queue.
  void reset(std::int64_t span) {
    span = std::max<std::int64_t>(span, 2);
    if (span_ != span) {
      span_ = span;
      buckets_.assign(static_cast<std::size_t>(span), {});
      heads_.assign(static_cast<std::size_t>(span), 0);
    } else if (dirty_) {
      // bucketed_ == 0 is not enough here: kFifo pops advance a head index
      // and leave the popped prefix in the vector until the cursor moves on.
      for (auto& bucket : buckets_) bucket.clear();
      std::fill(heads_.begin(), heads_.end(), std::size_t{0});
    }
    overflow_.clear();
    cur_ = 0;
    seq_ = 0;
    bucketed_ = 0;
    overflow_hits_ = 0;
    dirty_ = false;
  }

  bool empty() const { return bucketed_ == 0 && overflow_.empty(); }

  /// Entries that missed the bucket window and took the overflow-heap path
  /// since the last reset() — the observability counter behind the
  /// kSearchQuery event's `extra` payload (high counts mean the window span
  /// is mis-sized for the cost distribution).
  long long overflow_hits() const { return overflow_hits_; }

  void push(std::int64_t priority, std::uint32_t value) {
    assert(priority >= cur_ && "bucket queue requires monotone pushes");
    const std::uint64_t key =
        Order == TieOrder::kFifo ? seq_++ : static_cast<std::uint64_t>(value);
    if (priority < cur_ + span_) {
      bucket_insert(static_cast<std::size_t>(priority % span_), {key, value});
    } else {
      ++overflow_hits_;
      overflow_.push_back({priority, key, value});
      std::push_heap(overflow_.begin(), overflow_.end(), ByPriorityKey{});
    }
  }

  /// Pops the minimum (priority, tie key) entry. False when empty.
  bool pop(std::int64_t& priority, std::uint32_t& value) {
    for (;;) {
      if (bucketed_ == 0) {
        if (overflow_.empty()) return false;
        cur_ = overflow_.front().priority;  // jump over the empty gap
      }
      drain_overflow();
      const auto slot = static_cast<std::size_t>(cur_ % span_);
      auto& bucket = buckets_[slot];
      if constexpr (Order == TieOrder::kFifo) {
        std::size_t& head = heads_[slot];
        if (head == bucket.size()) {
          bucket.clear();
          head = 0;
          ++cur_;
          continue;
        }
        priority = cur_;
        value = bucket[head++].value;
      } else {
        if (bucket.empty()) {
          ++cur_;
          continue;
        }
        std::pop_heap(bucket.begin(), bucket.end(), ByKey{});
        priority = cur_;
        value = bucket.back().value;
        bucket.pop_back();
      }
      --bucketed_;
      return true;
    }
  }

 private:
  struct Entry {
    std::uint64_t key;
    std::uint32_t value;
  };
  struct ByKey {  // min-heap on the tie key (one priority per bucket)
    bool operator()(const Entry& a, const Entry& b) const {
      return a.key > b.key;
    }
  };
  struct OverflowEntry {
    std::int64_t priority;
    std::uint64_t key;
    std::uint32_t value;
  };
  struct ByPriorityKey {  // min-heap on (priority, tie key)
    bool operator()(const OverflowEntry& a, const OverflowEntry& b) const {
      return std::pair{a.priority, a.key} > std::pair{b.priority, b.key};
    }
  };

  /// Appends an entry to a window bucket. kFifo buckets stay key-sorted
  /// without heap ops: direct pushes carry an ever-increasing sequence key,
  /// and overflow drains (which carry older, smaller keys) always happen
  /// before a newly windowed priority can receive a direct push.
  void bucket_insert(std::size_t slot, Entry entry) {
    auto& bucket = buckets_[slot];
    bucket.push_back(entry);
    if constexpr (Order == TieOrder::kByValue) {
      std::push_heap(bucket.begin(), bucket.end(), ByKey{});
    }
    ++bucketed_;
    dirty_ = true;
  }

  /// Moves every overflow entry whose priority entered the window into its
  /// bucket. Called once per pop iteration — immediately after every cursor
  /// advance — so an entry's bucket is always populated before the cursor
  /// can reach it, and before push() can see its priority inside the window.
  void drain_overflow() {
    while (!overflow_.empty() && overflow_.front().priority < cur_ + span_) {
      const OverflowEntry e = overflow_.front();
      std::pop_heap(overflow_.begin(), overflow_.end(), ByPriorityKey{});
      overflow_.pop_back();
      bucket_insert(static_cast<std::size_t>(e.priority % span_),
                    {e.key, e.value});
    }
  }

  std::int64_t span_ = 0;
  std::int64_t cur_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t bucketed_ = 0;
  long long overflow_hits_ = 0;
  bool dirty_ = false;  // any bucket touched since the last reset()
  std::vector<std::vector<Entry>> buckets_;
  std::vector<std::size_t> heads_;  // per-bucket pop cursor (kFifo only)
  std::vector<OverflowEntry> overflow_;
};

/// Reference binary-heap queue with the same interface and the same
/// (priority, tie key) pop order as BucketQueue — the baseline the kernel
/// is differentially tested and benchmarked against.
template <TieOrder Order>
class HeapQueue {
 public:
  void reset(std::int64_t /*span*/) {
    heap_.clear();
    seq_ = 0;
  }

  bool empty() const { return heap_.empty(); }

  /// Interface parity with BucketQueue: a binary heap has no window to
  /// overflow, so this is always 0.
  long long overflow_hits() const { return 0; }

  void push(std::int64_t priority, std::uint32_t value) {
    const std::uint64_t key =
        Order == TieOrder::kFifo ? seq_++ : static_cast<std::uint64_t>(value);
    heap_.push_back({priority, key, value});
    std::push_heap(heap_.begin(), heap_.end(), Greater{});
  }

  bool pop(std::int64_t& priority, std::uint32_t& value) {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Greater{});
    priority = heap_.back().priority;
    value = heap_.back().value;
    heap_.pop_back();
    return true;
  }

 private:
  struct Entry {
    std::int64_t priority;
    std::uint64_t key;
    std::uint32_t value;
  };
  struct Greater {
    bool operator()(const Entry& a, const Entry& b) const {
      return std::pair{a.priority, a.key} > std::pair{b.priority, b.key};
    }
  };

  std::vector<Entry> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace gridroute
