#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace gridroute::search {

/// Sharper goal-oriented future cost for the weighted maze search
/// (DESIGN.md §2.1g). Replaces the plain bbox-Manhattan × step bound with a
/// per-direction minimum-residual-cost bound that also prices the layer the
/// search is currently on:
///
///   h(p, L) = step · (dx + dy) + min(wrong_way · wrong_axis(L), via)
///
/// where dx/dy are the Manhattan components to the target bounding box and
/// wrong_axis(L) is the remaining distance along the axis L does not prefer
/// (dy on METAL1, dx on METAL2). The residual term is a true lower bound on
/// the extra cost beyond bare steps: a path that never changes layers pays
/// wrong_way on every step along its layer's non-preferred axis, and a path
/// that does change layers pays at least one via. Taking the min over those
/// two exhaustive cases keeps the bound admissible; consistency holds
/// because each term is 1-Lipschitz against the matching edge cost (a
/// planar step's h drop is at most step + its wrong-way surcharge, a via's
/// at most the via cost — see the §2.1g derivation). Bend costs are
/// deliberately *not* bounded: a bend term is direction-state dependent and
/// breaks consistency at the last step into the box.
///
/// Setting wrong_way = 0 and via = 0 recovers the historical bbox-Manhattan
/// bound exactly — the legacy FutureCost::kBboxManhattan mode is this
/// struct with the residual term zeroed.
struct ResidualFutureCost {
  std::int64_t step = 0;
  std::int64_t wrong_way = 0;
  std::int64_t via = 0;
  /// Bounding box of the target set; an invalid box disables the bound
  /// (h = 0 everywhere, plain Dijkstra).
  Rect target_box{{0, 0}, {-1, -1}};

  std::int64_t bound(Point p, Layer layer) const {
    if (!target_box.valid()) return 0;
    const int dx =
        std::max({target_box.lo.x - p.x, p.x - target_box.hi.x, 0});
    const int dy =
        std::max({target_box.lo.y - p.y, p.y - target_box.hi.y, 0});
    std::int64_t h = step * (dx + dy);
    const std::int64_t stay =
        wrong_way * (layer == Layer::kMetal1 ? dy : dx);
    if (stay > 0) h += std::min(stay, via);
    return h;
  }
};

/// Congestion-aware lower-bound grid (Ahrens et al., "Faster Goal-Oriented
/// Shortest Path Search..."): per-direction minimum residual edge costs,
/// prefix-summed into O(1) point-to-box queries.
///
/// The grid is cut into vertical cuts (between columns x and x+1) and
/// horizontal cuts (between rows y and y+1). cut_min[i] is a lower bound on
/// the cost of *any* edge crossing cut i — for the global router, the
/// minimum congestion-priced edge cost over the cut, i.e. the congestion
/// map exported as a lower-bound grid. Any path from a point to a target
/// box must cross every cut strictly between them at least once, so the sum
/// of their minima is an admissible future cost; it is consistent because
/// an edge crossing cut i costs at least cut_min[i] (its own cut's minimum)
/// and moves h by exactly that much.
///
/// Cuts with no usable edge carry kUncrossable: the bound saturates high
/// enough to park those states behind every reachable one without ever
/// overflowing 64-bit arithmetic when summed across a grid.
class CutLowerBounds {
 public:
  /// Per-cut minima larger than this are clamped: 2^20 cost units per cut
  /// keeps the worst-case sum across a 2^20-cut grid inside int64.
  static constexpr std::int64_t kUncrossable = std::int64_t{1} << 20;

  CutLowerBounds() = default;

  /// `x_cut_min[i]` prices the cut between columns lo.x+i and lo.x+i+1;
  /// `y_cut_min[j]` the cut between rows lo.y+j and lo.y+j+1.
  CutLowerBounds(Point lo, std::vector<std::int64_t> x_cut_min,
                 std::vector<std::int64_t> y_cut_min)
      : lo_(lo),
        x_prefix_(prefix(std::move(x_cut_min))),
        y_prefix_(prefix(std::move(y_cut_min))) {}

  bool empty() const { return x_prefix_.size() <= 1 && y_prefix_.size() <= 1; }

  /// Sum of the per-cut minima over every cut strictly between `p` and the
  /// target box — 0 when p lies inside the box's span on both axes.
  std::int64_t bound(Point p, const Rect& target_box) const {
    if (!target_box.valid()) return 0;
    return axis_bound(x_prefix_, p.x - lo_.x, target_box.lo.x - lo_.x,
                      target_box.hi.x - lo_.x) +
           axis_bound(y_prefix_, p.y - lo_.y, target_box.lo.y - lo_.y,
                      target_box.hi.y - lo_.y);
  }

 private:
  static std::vector<std::int64_t> prefix(std::vector<std::int64_t> mins) {
    std::vector<std::int64_t> sums(mins.size() + 1, 0);
    for (std::size_t i = 0; i < mins.size(); ++i)
      sums[i + 1] = sums[i] + std::clamp<std::int64_t>(mins[i], 0,
                                                       kUncrossable);
    return sums;
  }

  /// One axis: cuts crossed going from coordinate `from` (0-based) to the
  /// box span [box_lo, box_hi]. Coordinates outside the priced range clamp
  /// to it — a query point off the grid edge simply stops accumulating.
  std::int64_t axis_bound(const std::vector<std::int64_t>& sums, int from,
                          int box_lo, int box_hi) const {
    const int last = static_cast<int>(sums.size()) - 1;  // #cuts on the axis
    auto clamped = [&](int c) { return std::clamp(c, 0, last); };
    if (from < box_lo) return sums[clamped(box_lo)] - sums[clamped(from)];
    if (from > box_hi) return sums[clamped(from)] - sums[clamped(box_hi)];
    return 0;
  }

  Point lo_{0, 0};
  std::vector<std::int64_t> x_prefix_{0};
  std::vector<std::int64_t> y_prefix_{0};
};

}  // namespace gridroute::search
