#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "geom/layer.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace gridroute::search {

/// Sharper goal-oriented future cost for the weighted maze search
/// (DESIGN.md §2.1g). Replaces the plain bbox-Manhattan × step bound with a
/// per-direction minimum-residual-cost bound that also prices the layer the
/// search is currently on:
///
///   h(p, L) = step · (dx + dy) + min(wrong_x[L]·dx + wrong_y[L]·dy, min_via)
///
/// where dx/dy are the Manhattan components to the target bounding box and
/// wrong_x/wrong_y hold, per layer, the extra cost of one step along that
/// axis beyond the base step cost — zero on the layer's preferred axis,
/// wrong_way × the layer's multiplier on the other (each layer prefers one
/// axis, so one of the two terms is always zero). The residual term is a
/// true lower bound on the extra cost beyond bare steps: a path that never
/// changes layers pays its layer's wrong-way surcharge on every step along
/// the non-preferred axis, and a path that does change layers pays at least
/// min_via — the cheapest single-cut via in the stack. Taking the min over
/// those two exhaustive cases keeps the bound admissible for any stack
/// height; consistency holds because each term is 1-Lipschitz against the
/// matching edge cost (a planar step's h drop is at most step + that
/// layer/axis surcharge; a via step leaves dx/dy unchanged and moves the
/// residual term — confined to [0, min_via] — by at most min_via ≤ the
/// actual cut cost). Bend costs are deliberately *not* bounded: a bend term
/// is direction-state dependent and breaks consistency at the last step
/// into the box.
///
/// With wrong-way and via zeroed this recovers the historical bbox-Manhattan
/// bound exactly — the legacy FutureCost::kBboxManhattan mode. On the
/// classic 2-layer stack (unit multipliers) classic() prices identically to
/// the historical scalar h(p, L) = step·(dx+dy) + min(wrong_way·wrong_axis,
/// via), bit for bit.
struct ResidualFutureCost {
  std::int64_t step = 0;
  /// Cheapest single-cut via in the stack; caps every residual term.
  std::int64_t min_via = 0;
  /// Bounding box of the target set; an invalid box disables the bound
  /// (h = 0 everywhere, plain Dijkstra).
  Rect target_box{{0, 0}, {-1, -1}};
  /// Per-layer residual cost of one step along x / y (see above).
  std::array<std::int64_t, kMaxLayers> wrong_x{};
  std::array<std::int64_t, kMaxLayers> wrong_y{};

  /// Classic two-layer configuration: M1 pays `wrong_way` per y step, M2
  /// per x step, capped by `via`.
  static ResidualFutureCost classic(std::int64_t step, std::int64_t wrong_way,
                                    std::int64_t via, Rect box) {
    ResidualFutureCost h;
    h.step = step;
    h.min_via = via;
    h.target_box = box;
    h.wrong_y[0] = wrong_way;
    h.wrong_x[1] = wrong_way;
    return h;
  }

  /// Configuration for an arbitrary stack: per-layer wrong-way terms scaled
  /// by the layer multipliers, min_via = cheapest cut. Zero wrong_way and
  /// via give the bbox-Manhattan bound on any stack.
  static ResidualFutureCost for_stack(const LayerStack& stack,
                                      std::int64_t step,
                                      std::int64_t wrong_way, std::int64_t via,
                                      Rect box) {
    ResidualFutureCost h;
    h.step = step;
    h.target_box = box;
    h.min_via = 0;
    for (int cut = 0; cut < stack.cuts(); ++cut) {
      const std::int64_t c = via * stack.via_mult(cut);
      if (cut == 0 || c < h.min_via) h.min_via = c;
    }
    for (int k = 0; k < stack.count(); ++k) {
      const Layer l = layer_at(k);
      std::int64_t w = wrong_way * stack.wrong_way_mult(l);
      // A directed layer has no wrong-way moves at all: any remaining
      // wrong-axis distance forces at least one via, so the sharpest safe
      // per-step surcharge is the via cap itself (min() then selects
      // min_via whenever the distance is nonzero).
      if (stack.directed(l)) w = std::max(w, h.min_via);
      (stack.horizontal(l) ? h.wrong_y : h.wrong_x)[static_cast<size_t>(k)] =
          w;
    }
    return h;
  }

  std::int64_t bound(Point p, Layer layer) const {
    if (!target_box.valid()) return 0;
    const int dx =
        std::max({target_box.lo.x - p.x, p.x - target_box.hi.x, 0});
    const int dy =
        std::max({target_box.lo.y - p.y, p.y - target_box.hi.y, 0});
    std::int64_t h = step * (dx + dy);
    const auto i = static_cast<std::size_t>(layer_index(layer));
    const std::int64_t stay = wrong_x[i] * dx + wrong_y[i] * dy;
    if (stay > 0) h += std::min(stay, min_via);
    return h;
  }
};

/// Congestion-aware lower-bound grid (Ahrens et al., "Faster Goal-Oriented
/// Shortest Path Search..."): per-direction minimum residual edge costs,
/// prefix-summed into O(1) point-to-box queries.
///
/// The grid is cut into vertical cuts (between columns x and x+1) and
/// horizontal cuts (between rows y and y+1). cut_min[i] is a lower bound on
/// the cost of *any* edge crossing cut i — for the global router, the
/// minimum congestion-priced edge cost over the cut, i.e. the congestion
/// map exported as a lower-bound grid. Any path from a point to a target
/// box must cross every cut strictly between them at least once, so the sum
/// of their minima is an admissible future cost; it is consistent because
/// an edge crossing cut i costs at least cut_min[i] (its own cut's minimum)
/// and moves h by exactly that much.
///
/// Cuts with no usable edge carry kUncrossable: the bound saturates high
/// enough to park those states behind every reachable one without ever
/// overflowing 64-bit arithmetic when summed across a grid.
class CutLowerBounds {
 public:
  /// Per-cut minima larger than this are clamped: 2^20 cost units per cut
  /// keeps the worst-case sum across a 2^20-cut grid inside int64.
  static constexpr std::int64_t kUncrossable = std::int64_t{1} << 20;

  CutLowerBounds() = default;

  /// `x_cut_min[i]` prices the cut between columns lo.x+i and lo.x+i+1;
  /// `y_cut_min[j]` the cut between rows lo.y+j and lo.y+j+1.
  CutLowerBounds(Point lo, std::vector<std::int64_t> x_cut_min,
                 std::vector<std::int64_t> y_cut_min)
      : lo_(lo),
        x_prefix_(prefix(std::move(x_cut_min))),
        y_prefix_(prefix(std::move(y_cut_min))) {}

  bool empty() const { return x_prefix_.size() <= 1 && y_prefix_.size() <= 1; }

  /// Sum of the per-cut minima over every cut strictly between `p` and the
  /// target box — 0 when p lies inside the box's span on both axes.
  std::int64_t bound(Point p, const Rect& target_box) const {
    if (!target_box.valid()) return 0;
    return axis_bound(x_prefix_, p.x - lo_.x, target_box.lo.x - lo_.x,
                      target_box.hi.x - lo_.x) +
           axis_bound(y_prefix_, p.y - lo_.y, target_box.lo.y - lo_.y,
                      target_box.hi.y - lo_.y);
  }

 private:
  static std::vector<std::int64_t> prefix(std::vector<std::int64_t> mins) {
    std::vector<std::int64_t> sums(mins.size() + 1, 0);
    for (std::size_t i = 0; i < mins.size(); ++i)
      sums[i + 1] = sums[i] + std::clamp<std::int64_t>(mins[i], 0,
                                                       kUncrossable);
    return sums;
  }

  /// One axis: cuts crossed going from coordinate `from` (0-based) to the
  /// box span [box_lo, box_hi]. Coordinates outside the priced range clamp
  /// to it — a query point off the grid edge simply stops accumulating.
  std::int64_t axis_bound(const std::vector<std::int64_t>& sums, int from,
                          int box_lo, int box_hi) const {
    const int last = static_cast<int>(sums.size()) - 1;  // #cuts on the axis
    auto clamped = [&](int c) { return std::clamp(c, 0, last); };
    if (from < box_lo) return sums[clamped(box_lo)] - sums[clamped(from)];
    if (from > box_hi) return sums[clamped(from)] - sums[clamped(box_hi)];
    return 0;
  }

  Point lo_{0, 0};
  std::vector<std::int64_t> x_prefix_{0};
  std::vector<std::int64_t> y_prefix_{0};
};

}  // namespace gridroute::search
