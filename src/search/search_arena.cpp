#include "search/search_arena.hpp"

namespace gridroute {

void SearchArena::resize(std::size_t states, std::size_t nodes) {
  if (stamp_.size() == states && is_target_.size() == nodes) return;
  stamp_.assign(states, 0);
  best_.assign(states, 0);
  parent_.assign(states, -1);
  is_target_.assign(nodes, 0);
  target_stamp_.assign(nodes, 0);
  // Stamps are all 0 again; any epoch value except 0 keeps them stale, and
  // begin_search() handles the wrap onto 0 itself.
}

}  // namespace gridroute
