#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gridroute {

/// Epoch-stamped per-state search scratch shared by every goal-oriented
/// router in the library: g-costs, parent links, and target marks, all
/// invalidated in O(1) per search by bumping an epoch counter instead of
/// refilling the arrays.
///
/// One arena serves any router whose states index densely from 0 — the Lee
/// baseline (one state per grid node), the weighted maze search (five
/// direction states per node), and the global router (one state per gcell)
/// all borrow the same object, re-sizing it as they go. A worker thread in
/// the multi-start pool owns one arena and lends it to every attempt it
/// runs; epochs make the reuse stateless by construction.
///
/// States carry costs/parents; targets are marked per *node* (a router with
/// several states per node reaches its goal whenever any state of a marked
/// node is expanded).
class SearchArena {
 public:
  /// Grows (or shrinks) the arena to `states` cost/parent slots and `nodes`
  /// target slots. A no-op when the sizes already match — stamps survive, so
  /// routers sharing an arena over one problem keep O(1) resets. Changing
  /// size re-zeroes the stamps (epoch semantics restart clean).
  void resize(std::size_t states, std::size_t nodes);

  std::size_t state_count() const { return stamp_.size(); }
  std::size_t node_count() const { return is_target_.size(); }

  /// Opens a new search: everything previously stamped becomes stale. This
  /// is the single home of the epoch-wrap reset — when the 32-bit counter
  /// wraps to 0 (the value untouched stamps hold, i.e. "never visited"),
  /// every stamp array is cleared so ancient searches cannot read as fresh.
  /// Returns true when this call wrapped (observability: the routers emit
  /// an obs::EventKind::kEpochWrap event for it).
  bool begin_search() {
    if (++epoch_ != 0) return false;
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    std::fill(target_stamp_.begin(), target_stamp_.end(), 0u);
    epoch_ = 1;
    return true;
  }

  /// Test hook: primes the epoch counter so the 2^32-search wrap can be
  /// exercised without running 2^32 searches.
  void set_epoch(std::uint32_t epoch) { epoch_ = epoch; }
  std::uint32_t epoch() const { return epoch_; }

  // -- per-state cost/parent -------------------------------------------------

  /// Records `cost` for `state` if it improves on the best seen this search.
  /// Strict improvement only: on a tie the earlier relaxation keeps the
  /// parent, which is what makes search results independent of how many
  /// equal-cost relaxations follow.
  bool relax(std::uint32_t state, std::int64_t cost, std::int32_t parent) {
    if (stamp_[state] == epoch_ && best_[state] <= cost) return false;
    stamp_[state] = epoch_;
    best_[state] = cost;
    parent_[state] = parent;
    return true;
  }

  /// True when `cost` is still the state's best this search — the lazy-
  /// deletion test for queue entries (a popped entry whose recorded cost
  /// has since improved is stale and must be skipped unseen).
  bool current(std::uint32_t state, std::int64_t cost) const {
    return stamp_[state] == epoch_ && best_[state] == cost;
  }

  bool visited(std::uint32_t state) const { return stamp_[state] == epoch_; }
  std::int64_t cost(std::uint32_t state) const { return best_[state]; }
  std::int32_t parent(std::uint32_t state) const { return parent_[state]; }

  // -- per-node targets ------------------------------------------------------

  void mark_target(std::uint32_t node) {
    is_target_[node] = 1;
    target_stamp_[node] = epoch_;
  }
  bool is_target(std::uint32_t node) const {
    return is_target_[node] != 0 && target_stamp_[node] == epoch_;
  }

 private:
  std::vector<std::uint32_t> stamp_;
  std::vector<std::int64_t> best_;
  std::vector<std::int32_t> parent_;
  std::vector<std::uint8_t> is_target_;
  std::vector<std::uint32_t> target_stamp_;
  std::uint32_t epoch_ = 0;
};

}  // namespace gridroute
