#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/budget.hpp"
#include "search/search_arena.hpp"

namespace gridroute::search {

/// Sentinel: no goal state was reached.
inline constexpr std::uint32_t kNoState = 0xFFFFFFFFu;

/// Seeds one zero-cost source state into a search.
template <typename Queue, typename Provider>
void seed(SearchArena& arena, Queue& queue, const Provider& provider,
          std::uint32_t state) {
  if (arena.relax(state, 0, -1))
    queue.push(provider.heuristic(provider.node_of(state)), state);
}

/// Goal-oriented Dijkstra/A* to the first expanded target node — the one
/// wavefront loop under every router in the library.
///
/// The cost provider defines the search space:
///   node_of(state)         -> node index (targets are marked per node)
///   heuristic(node)        -> admissible + consistent lower bound to the
///                             goal set (constant 0 recovers plain Dijkstra)
///   expand(state, g, emit) -> calls emit(next_state, next_g) per out-edge
///
/// Queue entries carry f = g + heuristic; g is recovered on pop by
/// subtracting the heuristic, and entries whose g no longer matches the
/// arena's best are stale (lazy deletion) and skipped unseen. Returns the
/// goal state, or kNoState when the queue drains first, and writes the
/// number of expansions — non-stale pops, the goal's included — to
/// *expansions.
///
/// `budget` (optional) is the search-loop checkpoint of the RunBudget
/// machinery: the expansion ceiling is enforced exactly (the query aborts —
/// returning kNoState — once its pops would take the gauge past its cap,
/// which keeps budgeted runs deterministic), and the wall-clock deadline is
/// polled every 1024 expansions so a single huge query cannot overshoot the
/// deadline by more than one checkpoint interval. With no budget installed
/// the loop pays one register compare per pop.
template <typename Queue, typename Provider>
std::uint32_t run(SearchArena& arena, Queue& queue, const Provider& provider,
                  long long* expansions,
                  const obs::BudgetGauge* budget = nullptr) {
  const long long pop_cap = budget != nullptr ? budget->expansions_left() : -1;
  long long popped = 0;
  std::uint32_t goal = kNoState;
  std::int64_t f = 0;
  std::uint32_t state = 0;
  while (queue.pop(f, state)) {
    const std::uint32_t node = provider.node_of(state);
    const std::int64_t g = f - provider.heuristic(node);
    if (!arena.current(state, g)) continue;  // improved since queued
    if (popped == pop_cap) break;  // expansion budget spent (deterministic)
    ++popped;
    if ((popped & 1023) == 0 && budget != nullptr && budget->wall_exhausted())
      break;
    if (arena.is_target(node)) {
      goal = state;
      break;
    }
    provider.expand(state, g, [&](std::uint32_t next, std::int64_t cost) {
      if (arena.relax(next, cost, static_cast<std::int32_t>(state)))
        queue.push(cost + provider.heuristic(provider.node_of(next)), next);
    });
  }
  if (expansions != nullptr) *expansions = popped;
  return goal;
}

/// Parent-chain walk from a goal state back to its source, returned in
/// source-to-goal order.
inline std::vector<std::uint32_t> backtrack(const SearchArena& arena,
                                            std::uint32_t goal) {
  std::vector<std::uint32_t> states;
  for (std::uint32_t s = goal;;) {
    states.push_back(s);
    const std::int32_t parent = arena.parent(s);
    if (parent < 0) break;
    s = static_cast<std::uint32_t>(parent);
  }
  std::reverse(states.begin(), states.end());
  return states;
}

}  // namespace gridroute::search
