#include "grid/routing_grid.hpp"

#include <algorithm>
#include <cassert>

namespace gridroute {

bool Path::well_formed() const {
  for (size_t i = 1; i < nodes.size(); ++i)
    if (!is_grid_step(nodes[i - 1], nodes[i])) return false;
  return true;
}

int Path::via_count() const {
  int v = 0;
  for (size_t i = 1; i < nodes.size(); ++i)
    if (nodes[i - 1].layer != nodes[i].layer) ++v;
  return v;
}

RoutingGrid::RoutingGrid(const Region& region, int net_count)
    : region_(region),
      owners_(static_cast<size_t>(region.width()) *
                  static_cast<size_t>(region.height()) *
                  static_cast<size_t>(region.layer_count()),
              kNoNet),
      vias_(static_cast<size_t>(region.width()) *
                static_cast<size_t>(region.height()) *
                static_cast<size_t>(region.layers().cuts()),
            kNoNet),
      net_nodes_(static_cast<size_t>(net_count)),
      via_counts_(static_cast<size_t>(net_count), 0) {}

int RoutingGrid::total_nodes() const {
  int n = 0;
  for (const auto& v : net_nodes_) n += static_cast<int>(v.size());
  return n;
}

int RoutingGrid::total_vias() const {
  int n = 0;
  for (int v : via_counts_) n += v;
  return n;
}

bool RoutingGrid::occupy(GridPoint g, NetId id) {
  if (!region_.routable(g) || owners_[node_index(g)] != kNoNet) return false;
  owners_[node_index(g)] = id;
  net_nodes_[static_cast<size_t>(id)].push_back(g);
  journal_.push_back({Op::kOccupy, g, id});
  return true;
}

void RoutingGrid::erase_net_node(NetId id, GridPoint g) {
  auto& nodes = net_nodes_[static_cast<size_t>(id)];
  auto it = std::find(nodes.begin(), nodes.end(), g);
  assert(it != nodes.end());
  *it = nodes.back();
  nodes.pop_back();
}

bool RoutingGrid::release(GridPoint g) {
  if (!in_bounds(g.pos) || !region_.layers().valid_layer(g.layer))
    return false;
  const NetId id = owners_[node_index(g)];
  if (id == kNoNet) return false;
  // A via cannot outlive either landing node: drop the cuts touching this
  // layer (below, then above). On the classic stack exactly one cut exists,
  // reproducing the historical single remove_via(p) exactly.
  const int k = layer_index(g.layer);
  if (k > 0) remove_via(g.pos, k - 1);
  if (k < cut_count()) remove_via(g.pos, k);
  owners_[node_index(g)] = kNoNet;
  erase_net_node(id, g);
  journal_.push_back({Op::kRelease, g, id});
  return true;
}

bool RoutingGrid::add_via(Point p, int cut, NetId id) {
  if (!in_bounds(p) || cut < 0 || cut >= cut_count()) return false;
  if (vias_[via_index(p, cut)] != kNoNet) return false;
  if (owners_[node_index({p, layer_at(cut)})] != id ||
      owners_[node_index({p, layer_at(cut + 1)})] != id)
    return false;
  vias_[via_index(p, cut)] = id;
  ++via_counts_[static_cast<size_t>(id)];
  // The journal names the cut extent: layer_at(cut) is the lower landing,
  // the upper is cut+1 by construction (see Entry).
  journal_.push_back({Op::kAddVia, {p, layer_at(cut)}, id});
  return true;
}

bool RoutingGrid::remove_via(Point p, int cut) {
  if (!in_bounds(p) || cut < 0 || cut >= cut_count()) return false;
  const NetId id = vias_[via_index(p, cut)];
  if (id == kNoNet) return false;
  vias_[via_index(p, cut)] = kNoNet;
  --via_counts_[static_cast<size_t>(id)];
  journal_.push_back({Op::kRemoveVia, {p, layer_at(cut)}, id});
  return true;
}

bool RoutingGrid::apply_path(const Path& path, NetId id) {
  assert(path.well_formed());
  const Mark start = mark();
  for (const GridPoint& g : path.nodes) {
    if (owner(g) == id) continue;  // landing on the net's existing tree
    if (!occupy(g, id)) {
      rollback(start);
      return false;
    }
  }
  for (size_t i = 1; i < path.nodes.size(); ++i) {
    if (path.nodes[i - 1].layer == path.nodes[i].layer) continue;
    const Point p = path.nodes[i].pos;
    const int cut = std::min(layer_index(path.nodes[i - 1].layer),
                             layer_index(path.nodes[i].layer));
    if (!has_via(p, cut) && !add_via(p, cut, id)) {
      rollback(start);
      return false;
    }
  }
  return true;
}

int RoutingGrid::rip_net(NetId id) {
  // Copy: release() mutates the per-net node list we iterate.
  const std::vector<GridPoint> nodes = net_nodes_[static_cast<size_t>(id)];
  for (const GridPoint& g : nodes) release(g);
  return static_cast<int>(nodes.size());
}

void RoutingGrid::rollback(Mark m) {
  assert(m <= journal_.size());
  while (journal_.size() > m) {
    const Entry e = journal_.back();
    journal_.pop_back();
    switch (e.op) {
      case Op::kOccupy:
        owners_[node_index(e.node)] = kNoNet;
        erase_net_node(e.net, e.node);
        break;
      case Op::kRelease:
        owners_[node_index(e.node)] = e.net;
        net_nodes_[static_cast<size_t>(e.net)].push_back(e.node);
        break;
      case Op::kAddVia:
        vias_[via_index(e.node.pos, via_cut(e))] = kNoNet;
        --via_counts_[static_cast<size_t>(e.net)];
        break;
      case Op::kRemoveVia:
        vias_[via_index(e.node.pos, via_cut(e))] = e.net;
        ++via_counts_[static_cast<size_t>(e.net)];
        break;
    }
  }
}

}  // namespace gridroute
