#include "grid/routing_grid.hpp"

#include <algorithm>
#include <cassert>

namespace gridroute {

bool Path::well_formed() const {
  for (size_t i = 1; i < nodes.size(); ++i)
    if (!is_grid_step(nodes[i - 1], nodes[i])) return false;
  return true;
}

int Path::via_count() const {
  int v = 0;
  for (size_t i = 1; i < nodes.size(); ++i)
    if (nodes[i - 1].layer != nodes[i].layer) ++v;
  return v;
}

RoutingGrid::RoutingGrid(const Region& region, int net_count)
    : region_(region),
      owners_(static_cast<size_t>(region.width()) *
                  static_cast<size_t>(region.height()) * kLayerCount,
              kNoNet),
      vias_(static_cast<size_t>(region.width()) *
                static_cast<size_t>(region.height()),
            kNoNet),
      net_nodes_(static_cast<size_t>(net_count)),
      via_counts_(static_cast<size_t>(net_count), 0) {}

int RoutingGrid::total_nodes() const {
  int n = 0;
  for (const auto& v : net_nodes_) n += static_cast<int>(v.size());
  return n;
}

int RoutingGrid::total_vias() const {
  int n = 0;
  for (int v : via_counts_) n += v;
  return n;
}

bool RoutingGrid::occupy(GridPoint g, NetId id) {
  if (!region_.routable(g) || owners_[node_index(g)] != kNoNet) return false;
  owners_[node_index(g)] = id;
  net_nodes_[static_cast<size_t>(id)].push_back(g);
  journal_.push_back({Op::kOccupy, g, id});
  return true;
}

void RoutingGrid::erase_net_node(NetId id, GridPoint g) {
  auto& nodes = net_nodes_[static_cast<size_t>(id)];
  auto it = std::find(nodes.begin(), nodes.end(), g);
  assert(it != nodes.end());
  *it = nodes.back();
  nodes.pop_back();
}

bool RoutingGrid::release(GridPoint g) {
  if (!in_bounds(g.pos)) return false;
  const NetId id = owners_[node_index(g)];
  if (id == kNoNet) return false;
  remove_via(g.pos);  // a via cannot outlive either of its landing nodes
  owners_[node_index(g)] = kNoNet;
  erase_net_node(id, g);
  journal_.push_back({Op::kRelease, g, id});
  return true;
}

bool RoutingGrid::add_via(Point p, NetId id) {
  if (!in_bounds(p) || vias_[cell_index(p)] != kNoNet) return false;
  if (owners_[node_index({p, Layer::kMetal1})] != id ||
      owners_[node_index({p, Layer::kMetal2})] != id)
    return false;
  vias_[cell_index(p)] = id;
  ++via_counts_[static_cast<size_t>(id)];
  journal_.push_back({Op::kAddVia, {p, Layer::kMetal1}, id});
  return true;
}

bool RoutingGrid::remove_via(Point p) {
  if (!in_bounds(p)) return false;
  const NetId id = vias_[cell_index(p)];
  if (id == kNoNet) return false;
  vias_[cell_index(p)] = kNoNet;
  --via_counts_[static_cast<size_t>(id)];
  journal_.push_back({Op::kRemoveVia, {p, Layer::kMetal1}, id});
  return true;
}

bool RoutingGrid::apply_path(const Path& path, NetId id) {
  assert(path.well_formed());
  const Mark start = mark();
  for (const GridPoint& g : path.nodes) {
    if (owner(g) == id) continue;  // landing on the net's existing tree
    if (!occupy(g, id)) {
      rollback(start);
      return false;
    }
  }
  for (size_t i = 1; i < path.nodes.size(); ++i) {
    if (path.nodes[i - 1].layer == path.nodes[i].layer) continue;
    const Point p = path.nodes[i].pos;
    if (!has_via(p) && !add_via(p, id)) {
      rollback(start);
      return false;
    }
  }
  return true;
}

int RoutingGrid::rip_net(NetId id) {
  // Copy: release() mutates the per-net node list we iterate.
  const std::vector<GridPoint> nodes = net_nodes_[static_cast<size_t>(id)];
  for (const GridPoint& g : nodes) release(g);
  return static_cast<int>(nodes.size());
}

void RoutingGrid::rollback(Mark m) {
  assert(m <= journal_.size());
  while (journal_.size() > m) {
    const Entry e = journal_.back();
    journal_.pop_back();
    switch (e.op) {
      case Op::kOccupy:
        owners_[node_index(e.node)] = kNoNet;
        erase_net_node(e.net, e.node);
        break;
      case Op::kRelease:
        owners_[node_index(e.node)] = e.net;
        net_nodes_[static_cast<size_t>(e.net)].push_back(e.node);
        break;
      case Op::kAddVia:
        vias_[cell_index(e.node.pos)] = kNoNet;
        --via_counts_[static_cast<size_t>(e.net)];
        break;
      case Op::kRemoveVia:
        vias_[cell_index(e.node.pos)] = e.net;
        ++via_counts_[static_cast<size_t>(e.net)];
        break;
    }
  }
}

}  // namespace gridroute
