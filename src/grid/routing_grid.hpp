#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/point.hpp"
#include "problem/problem.hpp"

namespace gridroute {

/// A routed connection: a walk over grid nodes in which consecutive nodes
/// are either planar-adjacent on the same layer or the same planar cell on
/// different layers (a via).
struct Path {
  std::vector<GridPoint> nodes;

  bool empty() const { return nodes.empty(); }
  int length() const { return static_cast<int>(nodes.size()); }

  /// True when every consecutive pair is a legal grid step.
  bool well_formed() const;
  /// Number of layer changes along the walk.
  int via_count() const;
};

/// Mutable N-layer occupancy state over a Region (layer count and per-layer
/// semantics come from the region's LayerStack; the default stack is the
/// classic two-layer technology).
///
/// Ground truth is the per-node owner map plus an explicit via owner per
/// (cell, cut) — cut k connects layers k and k+1: two same-net nodes stacked
/// on adjacent layers are electrically connected only where that cut's via
/// is recorded, so same-net crossings without a via stay disconnected —
/// exactly the distinction a rip-up router must preserve when it severs and
/// repairs nets. A multi-layer "via stack" is simply a run of consecutive
/// cuts, each with its own record.
///
/// Every mutation is journaled; mark()/rollback() give the cheap
/// checkpointing that tentative weak/strong modification needs.
class RoutingGrid {
 public:
  /// Empty grid (no region, no nets) — placeholder state for containers
  /// like RouteResult that may be returned degraded, before routing built
  /// a real grid. Every query answers "nothing here".
  RoutingGrid() = default;
  explicit RoutingGrid(const Region& region, int net_count);

  const Region& region() const { return region_; }
  int width() const { return region_.width(); }
  int height() const { return region_.height(); }
  int layer_count() const { return region_.layer_count(); }
  /// Number of via cuts (layer_count() - 1).
  int cut_count() const { return region_.layers().cuts(); }
  int net_count() const { return static_cast<int>(net_nodes_.size()); }

  // -- queries --------------------------------------------------------------

  /// kNoNet when free; otherwise the owning net. Blocked nodes answer
  /// kNoNet (ownership is only about wire).
  NetId owner(GridPoint g) const {
    return in_bounds(g.pos) ? owners_[node_index(g)] : kNoNet;
  }
  bool free(GridPoint g) const {
    return region_.routable(g) && owner(g) == kNoNet;
  }
  /// Net owning the via at planar cell p on cut `cut` (connecting layers
  /// cut and cut+1), or kNoNet. The default cut 0 is the classic M1/M2 via,
  /// so two-layer call sites read unchanged.
  NetId via_owner(Point p, int cut = 0) const {
    return in_bounds(p) && cut >= 0 && cut < cut_count()
               ? vias_[via_index(p, cut)]
               : kNoNet;
  }
  bool has_via(Point p, int cut = 0) const {
    return via_owner(p, cut) != kNoNet;
  }

  /// All nodes currently owned by the net (unordered).
  const std::vector<GridPoint>& net_nodes(NetId id) const {
    return net_nodes_[static_cast<size_t>(id)];
  }
  /// Number of wire nodes owned by the net.
  int node_count(NetId id) const {
    return static_cast<int>(net_nodes_[static_cast<size_t>(id)].size());
  }
  int via_count(NetId id) const {
    return via_counts_[static_cast<size_t>(id)];
  }
  int total_nodes() const;
  int total_vias() const;

  // -- mutations (all journaled) ---------------------------------------------

  /// Claims a free routable node for a net. Returns false (no change) if the
  /// node is blocked or already owned — by anyone, including `id` itself.
  bool occupy(GridPoint g, NetId id);
  /// Releases a node. Any via on a cut touching the node's layer is removed
  /// first (a via cannot outlive either landing node). Returns false if not
  /// owned.
  bool release(GridPoint g);
  /// Records a via at p on cut `cut` for net id. Requires the net to own
  /// both landing nodes (layers cut and cut+1). Returns false otherwise.
  bool add_via(Point p, int cut, NetId id);
  /// Classic two-layer shape: cut 0.
  bool add_via(Point p, NetId id) { return add_via(p, 0, id); }
  bool remove_via(Point p, int cut = 0);

  /// Occupies every node of the path for the net and drops vias at layer
  /// changes. Nodes already owned by the same net are skipped (paths are
  /// allowed to land on the net's existing tree). Returns false — rolling
  /// back its own partial work — if any node is blocked or foreign-owned.
  bool apply_path(const Path& path, NetId id);

  /// Removes every node and via of the net. Returns the number of nodes
  /// released.
  int rip_net(NetId id);

  // -- journal ----------------------------------------------------------------

  using Mark = std::size_t;
  Mark mark() const { return journal_.size(); }
  /// Undoes all mutations performed after the mark, most recent first.
  void rollback(Mark m);
  /// Drops undo history (state keeps). Call at stable points to bound
  /// memory. Starts a new commit epoch: a Mark taken before the commit
  /// indexes the *discarded* journal and must not feed rollback() afterwards
  /// — epoch-aware holders (GridTransaction) detect the stale mark through
  /// commit_epoch() and unwind to the committed state (mark 0) instead.
  void commit() {
    journal_.clear();
    ++commit_epoch_;
  }
  /// Journal generation: which commit() era a Mark belongs to.
  std::uint64_t commit_epoch() const { return commit_epoch_; }

  /// Planar bounding box of every cell mutated since the mark (invalid Rect
  /// when nothing changed). Rollbacks shrink the journal, so mutations that
  /// were undone — state restored — correctly drop out of the box. The
  /// net-parallel commit protocol intersects this with each speculation's
  /// read footprint to decide whether the speculation still holds.
  Rect dirty_since(Mark m) const {
    Rect box{{0, 0}, {-1, -1}};
    for (std::size_t i = m; i < journal_.size(); ++i) {
      const Rect cell{journal_[i].node.pos, journal_[i].node.pos};
      box = box.valid() ? box.bounding_union(cell) : cell;
    }
    return box;
  }

 private:
  bool in_bounds(Point p) const { return region_.bounds().contains(p); }
  std::size_t cell_index(Point p) const {
    const Rect& b = region_.bounds();
    return static_cast<size_t>((p.y - b.lo.y) * b.width() + (p.x - b.lo.x));
  }
  std::size_t node_index(GridPoint g) const {
    return cell_index(g.pos) * static_cast<size_t>(layer_count()) +
           static_cast<size_t>(layer_index(g.layer));
  }
  std::size_t via_index(Point p, int cut) const {
    return cell_index(p) * static_cast<size_t>(cut_count()) +
           static_cast<size_t>(cut);
  }

  void erase_net_node(NetId id, GridPoint g);

  enum class Op : std::uint8_t { kOccupy, kRelease, kAddVia, kRemoveVia };
  /// One undo record. Via entries name the full cut extent: node.pos is the
  /// cell and node.layer the cut's *lower* landing layer (layer k for cut k
  /// — the upper landing is layer k+1 by construction), so rollback of a
  /// stacked via restores exactly the cut that changed. On the classic
  /// 2-layer stack the only cut's lower layer is kMetal1, reproducing the
  /// historical journal bytes exactly.
  struct Entry {
    Op op;
    GridPoint node;
    NetId net;
  };
  static int via_cut(const Entry& e) { return layer_index(e.node.layer); }

  Region region_;
  std::vector<NetId> owners_;               // node-indexed
  std::vector<NetId> vias_;                 // (cell, cut)-indexed
  std::vector<std::vector<GridPoint>> net_nodes_;
  std::vector<int> via_counts_;
  std::vector<Entry> journal_;
  std::uint64_t commit_epoch_ = 0;
};

/// RAII journal checkpoint: captures a mark on construction and rolls the
/// grid back to it on destruction unless keep() was called. This is the
/// exception-safety net around multi-mutation sequences (routing one net is
/// dozens of occupy/release/add_via calls): if anything throws mid-sequence
/// — a cost provider, an injected fault, an allocation — the half-applied
/// net commit unwinds to the checkpoint instead of leaving the grid
/// inconsistent (DESIGN.md §2.1f).
class GridTransaction {
 public:
  explicit GridTransaction(RoutingGrid& grid)
      : grid_(&grid), mark_(grid.mark()), epoch_(grid.commit_epoch()) {}
  GridTransaction(const GridTransaction&) = delete;
  GridTransaction& operator=(const GridTransaction&) = delete;
  ~GridTransaction() {
    if (grid_ != nullptr) unwind();
  }

  /// Success: leave the mutations in place (disarms the rollback).
  void keep() { grid_ = nullptr; }
  /// Failure handled explicitly: roll back now and disarm.
  void rollback() {
    if (grid_ != nullptr) unwind();
    grid_ = nullptr;
  }
  RoutingGrid::Mark mark() const { return mark_; }

 private:
  /// A commit() between construction and unwind invalidated mark_: it is a
  /// position in the journal the commit discarded, and rolling back through
  /// it would stop partway into whatever was journaled *after* the commit —
  /// a partial undo of unrelated later work (a half-restored via stack, for
  /// instance). The nearest state that is still restorable is the committed
  /// one, so a stale mark unwinds to the journal's start instead.
  void unwind() {
    grid_->rollback(grid_->commit_epoch() == epoch_ ? mark_ : 0);
  }

  RoutingGrid* grid_;
  RoutingGrid::Mark mark_;
  std::uint64_t epoch_;
};

/// True when a->b is one legal grid step: a planar move on one layer, or a
/// layer change of exactly one (one cut) at the same cell — a via stack is a
/// run of such single-cut steps.
inline bool is_grid_step(GridPoint a, GridPoint b) {
  if (a.layer == b.layer) return manhattan(a.pos, b.pos) == 1;
  const int dl = layer_index(a.layer) - layer_index(b.layer);
  return a.pos == b.pos && (dl == 1 || dl == -1);
}

}  // namespace gridroute
