#pragma once

#include "grid/routing_grid.hpp"
#include "problem/problem.hpp"

namespace gridroute {

/// Post-routing cleanup: removes dangling wire ("antenna stubs").
///
/// Weak modification can strand fragments of a pushed net that no longer
/// carry signal — a severed tail that the repair reconnected around, or a
/// dead-end spur of a rerouted connection. A stub node is one with at most
/// one electrical neighbour (planar same-net neighbour, or via partner)
/// that does not sit on a pin of its net. Pruning iterates until fixpoint,
/// so whole dead branches and isolated pin-free fragments with free ends
/// disappear.
///
/// Returns the number of nodes removed. Never changes electrical
/// connectivity of pins: only degree<=1 non-pin nodes are eligible.
int prune_stubs(const Problem& problem, RoutingGrid& grid, NetId id);

/// Prunes every net; returns total nodes removed.
int prune_all_stubs(const Problem& problem, RoutingGrid& grid);

}  // namespace gridroute
