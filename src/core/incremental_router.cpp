#include "core/incremental_router.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <climits>
#include <deque>
#include <ostream>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "util/disjoint_set.hpp"
#include "util/rng.hpp"
#include "verify/verify.hpp"

namespace gridroute {

IncrementalRouter::IncrementalRouter(const Problem& problem,
                                     RouterOptions options, SearchArena* arena)
    : problem_(problem),
      options_(options),
      grid_(problem.region(), problem.net_count()),
      pins_(problem),
      search_(grid_, pins_, options.costs, arena),
      ripup_count_(static_cast<size_t>(problem.net_count()), 0),
      history_(static_cast<size_t>(problem.region().width()) *
                   static_cast<size_t>(problem.region().height()),
               0) {
  // Lay down every net's pre-wire before any routing happens. Problems
  // with conflicting or unroutable pre-wire are rejected here (validate()
  // reports the same conflicts with friendlier messages).
  for (NetId id = 0; id < problem_.net_count(); ++id) apply_prewire(id);
  grid_.commit();
}

void IncrementalRouter::set_trace(obs::TraceSink* sink, int attempt) {
  trace_ = obs::Trace(sink, attempt);
  search_.set_trace(trace_);
}

RouteStats IncrementalRouter::stats() const {
  RouteStats s;
  s.nets_attempted = static_cast<int>(c_nets_attempted_.value());
  s.nets_routed = static_cast<int>(c_nets_routed_.value());
  s.connections_attempted = static_cast<int>(c_connections_attempted_.value());
  s.connections_routed = static_cast<int>(c_connections_routed_.value());
  s.weak_modifications = static_cast<int>(c_weak_modifications_.value());
  s.weak_attempts = static_cast<int>(c_weak_attempts_.value());
  s.strong_ripups = static_cast<int>(c_strong_ripups_.value());
  s.expansions = c_expansions_.value();
  s.run_ms = t_run_.total_ms();
  s.improve_ms = t_improve_.total_ms();
  s.wall_ms = s.run_ms + s.improve_ms;
  return s;
}

SearchResult IncrementalRouter::search(SearchRequest& req) {
  req.budget = gauge_;
  SearchResult res = search_.route(req);
  c_expansions_.add(search_.last_expansions());
  return res;
}

bool IncrementalRouter::budget_spent() {
  if (budget_exhausted_) return true;
  if (gauge_ == nullptr || !gauge_->exhausted()) return false;
  budget_exhausted_ = true;
  trace_.emit(obs::TraceEvent::budget_exhausted(gauge_->spent(),
                                                gauge_->wall_exhausted()));
  return true;
}

void IncrementalRouter::apply_prewire(NetId id) {
  const Net& net = problem_.net(id);
  for (const GridPoint& g : prewire_nodes(net)) {
    if (grid_.owner(g) == id) continue;  // junction duplicate
    if (!grid_.occupy(g, id))
      throw std::invalid_argument("net '" + net.name +
                                  "': pre-wire conflicts with the region or "
                                  "another net (run Problem::validate)");
  }
  for (const Point& v : net.previas) {
    if (grid_.via_owner(v) == id) continue;
    if (!grid_.add_via(v, id))
      throw std::invalid_argument("net '" + net.name +
                                  "': pre-via not anchored on both layers");
  }
}

void IncrementalRouter::rip_routable_wire(NetId id) {
  grid_.rip_net(id);
  apply_prewire(id);  // pre-wire is permanent
}

void IncrementalRouter::bump_history(Point p) {
  const Rect& b = problem_.region().bounds();
  history_[static_cast<size_t>((p.y - b.lo.y) * b.width() + (p.x - b.lo.x))] +=
      std::max(options_.costs.push / 4, 1);
}

std::vector<GridPoint> IncrementalRouter::pin_nodes(const Pin& pin) const {
  std::vector<GridPoint> nodes;
  if (pin.any_layer) {
    for (Layer l : {Layer::kMetal1, Layer::kMetal2})
      if (problem_.region().routable({pin.pos, l}))
        nodes.push_back({pin.pos, l});
  } else if (problem_.region().routable({pin.pos, pin.layer})) {
    nodes.push_back({pin.pos, pin.layer});
  }
  return nodes;
}

std::vector<Pin> IncrementalRouter::ordered_pins(NetId id) const {
  std::vector<Pin> pins = problem_.net(id).pins;
  if (pins.size() <= 2) return pins;
  // Greedy nearest-neighbour chain: grow the routing tree towards whichever
  // pin is currently closest, which keeps pin-to-tree connections short.
  std::vector<Pin> ordered;
  ordered.reserve(pins.size());
  auto start = std::min_element(pins.begin(), pins.end(),
                                [](const Pin& a, const Pin& b) {
                                  return std::pair{a.pos.x, a.pos.y} <
                                         std::pair{b.pos.x, b.pos.y};
                                });
  ordered.push_back(*start);
  pins.erase(start);
  while (!pins.empty()) {
    auto best = pins.begin();
    int best_d = INT_MAX;
    for (auto it = pins.begin(); it != pins.end(); ++it) {
      int d = INT_MAX;  // distance of *it to the already-chosen set
      for (const Pin& chosen : ordered)
        d = std::min(d, manhattan(it->pos, chosen.pos));
      if (d < best_d) {
        best_d = d;
        best = it;
      }
    }
    ordered.push_back(*best);
    pins.erase(best);
  }
  return ordered;
}

int IncrementalRouter::net_span(NetId id) const {
  const Net& net = problem_.net(id);
  if (net.pins.empty()) return 0;
  Rect box{net.pins.front().pos, net.pins.front().pos};
  for (const Pin& p : net.pins)
    box = box.bounding_union({p.pos, p.pos});
  return box.width() + box.height();
}

std::vector<std::vector<GridPoint>> IncrementalRouter::wire_components(
    NetId id) const {
  const auto& nodes = grid_.net_nodes(id);
  std::unordered_map<GridPoint, std::size_t> index;
  index.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) index.emplace(nodes[i], i);
  DisjointSet ds(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const GridPoint g = nodes[i];
    for (const Point d : {Point{1, 0}, Point{0, 1}}) {
      auto it = index.find({g.pos + d, g.layer});
      if (it != index.end()) ds.unite(i, it->second);
    }
    if (g.layer == Layer::kMetal1 && grid_.via_owner(g.pos) == id) {
      auto it = index.find({g.pos, Layer::kMetal2});
      if (it != index.end()) ds.unite(i, it->second);
    }
  }
  std::unordered_map<std::size_t, std::size_t> root_to_comp;
  std::vector<std::vector<GridPoint>> comps;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::size_t root = ds.find(i);
    auto [it, inserted] = root_to_comp.emplace(root, comps.size());
    if (inserted) comps.emplace_back();
    comps[it->second].push_back(nodes[i]);
  }
  return comps;
}

bool IncrementalRouter::repair_net(NetId victim) {
  const Net& net = problem_.net(victim);
  std::ostream* log = options_.log;
  for (int step = 0; step < options_.max_repair_steps; ++step) {
    if (net_routed_ok(problem_, grid_, victim)) return true;

    const auto comps = wire_components(victim);
    // Locate each pin's component (-1 = pin not on wire).
    auto comp_of_pin = [&](const Pin& pin) -> int {
      for (std::size_t c = 0; c < comps.size(); ++c)
        for (const GridPoint& g : comps[c]) {
          if (g.pos != pin.pos) continue;
          if (pin.any_layer || g.layer == pin.layer)
            return static_cast<int>(c);
        }
      return -1;
    };

    // Main component: the one holding the most pins (largest on ties).
    std::vector<int> pin_comp(net.pins.size(), -1);
    std::vector<int> votes(comps.size(), 0);
    for (std::size_t i = 0; i < net.pins.size(); ++i) {
      pin_comp[i] = comp_of_pin(net.pins[i]);
      if (pin_comp[i] >= 0) ++votes[static_cast<size_t>(pin_comp[i])];
    }
    int main_comp = -1;
    for (std::size_t c = 0; c < comps.size(); ++c) {
      if (main_comp < 0 ||
          votes[c] > votes[static_cast<size_t>(main_comp)] ||
          (votes[c] == votes[static_cast<size_t>(main_comp)] &&
           comps[c].size() > comps[static_cast<size_t>(main_comp)].size()))
        main_comp = static_cast<int>(c);
    }

    // Pick a pin outside the main component and pull it (plus whatever
    // fragment it sits on) back in. No pushing here: weak repair must not
    // cascade into further victims.
    SearchRequest req;
    req.net = victim;
    req.allow_push = false;
    std::size_t detached = net.pins.size();
    for (std::size_t i = 0; i < net.pins.size(); ++i)
      if (pin_comp[i] != main_comp || main_comp < 0) {
        detached = i;
        break;
      }
    if (detached == net.pins.size()) {
      // All pins sit in main_comp yet the net is not ok — cannot happen
      // given the definitions; bail out defensively.
      return false;
    }
    req.sources = pin_nodes(net.pins[detached]);
    if (pin_comp[detached] >= 0) {
      const auto& frag = comps[static_cast<size_t>(pin_comp[detached])];
      req.sources.insert(req.sources.end(), frag.begin(), frag.end());
    }
    if (main_comp >= 0) {
      req.targets = comps[static_cast<size_t>(main_comp)];
    } else {
      // No wire with pins at all: aim for another pin directly.
      for (std::size_t i = 0; i < net.pins.size(); ++i) {
        if (i == detached) continue;
        const auto t = pin_nodes(net.pins[i]);
        req.targets.insert(req.targets.end(), t.begin(), t.end());
      }
    }
    if (req.sources.empty() || req.targets.empty()) return false;

    SearchResult res = search(req);
    if (!res.found) {
      if (log)
        *log << "    repair of '" << net.name << "': pin " << detached
             << " cannot rejoin main component\n";
      return false;
    }
    const bool applied = grid_.apply_path(res.path, victim);
    assert(applied);
    (void)applied;
  }
  return net_routed_ok(problem_, grid_, victim);
}

bool IncrementalRouter::apply_with_push(NetId id, const SearchResult& probe) {
  const RoutingGrid::Mark mark = grid_.mark();

  std::set<NetId> victims;
  for (const GridPoint& g : probe.crossed) victims.insert(grid_.owner(g));
  for (const GridPoint& g : probe.crossed) grid_.release(g);

  if (!grid_.apply_path(probe.path, id)) {
    grid_.rollback(mark);
    return false;
  }
  for (const NetId v : victims) {
    if (!repair_net(v)) {
      if (options_.log)
        *options_.log << "  weak: repair of victim '" << problem_.net(v).name
                      << "' failed, rolling back\n";
      grid_.rollback(mark);
      return false;
    }
  }
  if (options_.log)
    *options_.log << "  weak: pushed through " << probe.crossed.size()
                  << " node(s) of " << victims.size() << " victim(s)\n";
  return true;
}

bool IncrementalRouter::route_connection(NetId id,
                                         const std::vector<GridPoint>& sources,
                                         const std::vector<GridPoint>& targets,
                                         std::vector<NetId>* requeue) {
  SearchRequest req;
  req.sources = sources;
  req.targets = targets;
  req.net = id;

  auto apply_clean = [&](const Path& path) {
    const bool applied = grid_.apply_path(path, id);
    assert(applied);
    (void)applied;
  };

  // Stage 1: clean shortest path.
  SearchResult res = search(req);
  if (res.found) {
    apply_clean(res.path);
    return true;
  }
  if (!options_.enable_weak && !options_.enable_strong) return false;
  if (budget_spent()) return false;

  req.allow_push = true;
  req.push_history = &history_;

  // Stage 2: weak modification. Each failed attempt freezes its victim set
  // and charges the contested cells, so the next probe proposes a different
  // crossing instead of re-proposing the one that cannot be repaired.
  if (options_.enable_weak) {
    for (int attempt = 0; attempt < options_.weak_probe_retries; ++attempt) {
      if (budget_spent()) return false;
      SearchResult probe = search(req);
      trace_.emit(obs::TraceEvent::weak_probe(
          id, attempt, static_cast<std::int64_t>(probe.crossed.size()),
          probe.found));
      if (options_.log)
        *options_.log << "net '" << problem_.net(id).name
                      << "': blocked; push probe "
                      << (probe.found ? "found" : "failed") << ", crosses "
                      << probe.crossed.size() << " node(s)\n";
      if (!probe.found) break;
      if (probe.crossed.empty()) {
        apply_clean(probe.path);
        return true;
      }
      std::int64_t victim_count = 0;
      if (trace_.on()) {
        std::set<NetId> owners;
        for (const GridPoint& g : probe.crossed) owners.insert(grid_.owner(g));
        victim_count = static_cast<std::int64_t>(owners.size());
      }
      c_weak_attempts_.add();
      const bool pushed = apply_with_push(id, probe);
      trace_.emit(
          obs::TraceEvent::weak_outcome(id, attempt, victim_count, pushed));
      if (pushed) {
        c_weak_modifications_.add();
        return true;
      }
      for (const GridPoint& g : probe.crossed) {
        bump_history(g.pos);
        const NetId v = grid_.owner(g);
        if (std::find(req.frozen.begin(), req.frozen.end(), v) ==
            req.frozen.end())
          req.frozen.push_back(v);
      }
    }
    req.frozen.clear();
  }

  // Stage 3: strong modification — rip the blockers up and re-queue them.
  // Nets whose budget is spent are frozen so the probe only ever proposes
  // evictable victims; with every budget exhausted the probe fails and so
  // does the connection, which is what bounds the whole algorithm.
  if (options_.enable_strong && requeue != nullptr) {
    if (budget_spent()) return false;
    for (NetId v = 0; v < problem_.net_count(); ++v)
      if (v != id &&
          ripup_count_[static_cast<size_t>(v)] >= options_.max_ripups_per_net)
        req.frozen.push_back(v);
    SearchResult probe = search(req);
    if (options_.log)
      *options_.log << "net '" << problem_.net(id).name
                    << "': blocked; push probe "
                    << (probe.found ? "found" : "failed")
                    << " (strong stage), crosses " << probe.crossed.size()
                    << " node(s)\n";
    if (!probe.found) return false;
    if (probe.crossed.empty()) {
      apply_clean(probe.path);
      return true;
    }
    std::set<NetId> victims;
    for (const GridPoint& g : probe.crossed) {
      victims.insert(grid_.owner(g));
      bump_history(g.pos);
    }
    for (const NetId v : victims) {
      if (options_.log)
        *options_.log << "  strong: ripping '" << problem_.net(v).name
                      << "' (rip #" << ripup_count_[static_cast<size_t>(v)] + 1
                      << ")\n";
      rip_routable_wire(v);
      ++ripup_count_[static_cast<size_t>(v)];
      c_strong_ripups_.add();
      requeue->push_back(v);
    }
    if (trace_.on()) {
      std::int64_t remaining = 0;
      for (const NetId v : victims)
        remaining += std::max(
            options_.max_ripups_per_net - ripup_count_[static_cast<size_t>(v)],
            0);
      trace_.emit(obs::TraceEvent::strong_ripup(
          id, remaining, {victims.begin(), victims.end()}));
    }
    // The probe path is now clear by construction; prefer a fresh clean
    // search (often shorter), with the probe as fallback witness.
    req.allow_push = false;
    res = search(req);
    apply_clean(res.found ? res.path : probe.path);
    return true;
  }
  return false;
}

bool IncrementalRouter::route_net(NetId id) {
  // Fixed nets are never (re)routed; they are as routed as their pre-wire.
  if (problem_.net(id).fixed) return net_routed_ok(problem_, grid_, id);
  std::vector<NetId> requeue;
  bool ok = true;
  std::deque<NetId> work{id};
  while (!work.empty() && !budget_spent()) {
    const NetId cur = work.front();
    work.pop_front();
    c_nets_attempted_.add();
    trace_.emit(obs::TraceEvent::net_start(cur));
    rip_routable_wire(cur);

    const std::vector<Pin> pins = ordered_pins(cur);
    bool net_ok = true;
    int conns_done = 0;
    for (std::size_t i = 1; i < pins.size(); ++i) {
      c_connections_attempted_.add();
      std::vector<GridPoint> sources = pin_nodes(pins[i]);
      std::vector<GridPoint> targets;
      if (i == 1) {
        targets = pin_nodes(pins[0]);
      } else {
        targets = grid_.net_nodes(cur);
      }
      requeue.clear();
      if (!route_connection(cur, sources, targets, &requeue)) {
        net_ok = false;
        break;
      }
      ++conns_done;
      c_connections_routed_.add();
      for (const NetId v : requeue) work.push_back(v);
    }
    if (!net_ok) {
      rip_routable_wire(cur);  // leave only the permanent pre-wire behind
      if (cur == id) ok = false;
    }
    trace_.emit(obs::TraceEvent::net_done(net_ok, cur, conns_done));
    grid_.commit();
  }
  return ok;
}

int IncrementalRouter::improve(int passes) {
  // ScopedTimer records into the improve_ms phase timer on scope exit, so
  // repeated improve() calls accumulate — they never overwrite run()'s time.
  const obs::ScopedTimer timer(t_improve_);
  int improved = 0;
  for (int pass = 0; pass < passes && !budget_exhausted_; ++pass) {
    bool any = false;
    for (NetId id = 0; id < problem_.net_count(); ++id) {
      if (budget_spent()) break;
      const Net& net = problem_.net(id);
      if (net.fixed || net.pins.size() < 2) continue;
      if (!net_routed_ok(problem_, grid_, id)) continue;

      auto wire_cost = [&] {
        return grid_.node_count(id) * options_.costs.step +
               grid_.via_count(id) * options_.costs.via;
      };
      const int old_cost = wire_cost();
      const RoutingGrid::Mark mark = grid_.mark();
      rip_routable_wire(id);

      // Plain re-route only: clean-up must not disturb other nets.
      const std::vector<Pin> pins = ordered_pins(id);
      bool ok = true;
      for (std::size_t i = 1; i < pins.size() && ok; ++i) {
        SearchRequest req;
        req.net = id;
        req.sources = pin_nodes(pins[i]);
        req.targets = i == 1 ? pin_nodes(pins[0]) : grid_.net_nodes(id);
        const SearchResult res = search(req);
        if (!res.found) {
          ok = false;
          break;
        }
        const bool applied = grid_.apply_path(res.path, id);
        assert(applied);
        (void)applied;
      }
      if (!ok || !net_routed_ok(problem_, grid_, id) ||
          wire_cost() >= old_cost) {
        grid_.rollback(mark);
        trace_.emit(obs::TraceEvent::improve_reject(id, old_cost));
      } else {
        ++improved;
        any = true;
        trace_.emit(
            obs::TraceEvent::improve_accept(id, old_cost, wire_cost()));
      }
    }
    grid_.commit();
    if (!any) break;
  }
  return improved;
}

RouteOutcome IncrementalRouter::run() {
  const auto t0 = std::chrono::steady_clock::now();
  std::deque<NetId> queue;
  for (NetId id = 0; id < problem_.net_count(); ++id)
    if (problem_.net(id).pins.size() >= 2 && !problem_.net(id).fixed)
      queue.push_back(id);
  const int multi_pin = static_cast<int>(queue.size());

  auto by_span = [this](NetId a, NetId b) {
    return std::pair{net_span(a), a} < std::pair{net_span(b), b};
  };
  switch (options_.ordering) {
    case RouterOptions::Ordering::kMostConstrainedFirst:
      std::sort(queue.begin(), queue.end(), by_span);
      break;
    case RouterOptions::Ordering::kLargestFirst:
      std::sort(queue.begin(), queue.end(),
                [&](NetId a, NetId b) { return by_span(b, a); });
      break;
    case RouterOptions::Ordering::kAsGiven:
      break;
    case RouterOptions::Ordering::kShuffled: {
      Rng rng(options_.shuffle_seed);
      for (std::size_t i = queue.size(); i > 1; --i)
        std::swap(queue[i - 1], queue[rng.next_below(i)]);
      break;
    }
  }

  // Every multi-pin net starts unrouted. `routed` tracks live completions
  // so the best state seen can be checkpointed: rip-up is allowed to pass
  // through worse states, but must never *end* in one. The whole run stays
  // journaled (no commit) to make the final best-state rollback possible.
  std::set<NetId> routed;
  std::set<NetId> failed;
  std::size_t best_routed = 0;
  RoutingGrid::Mark best_mark = grid_.mark();

  // Budget checks sit at net boundaries (plus the search-loop checkpoints
  // inside the kernel): an exhausted budget stops the drain between nets,
  // so the grid is always left in a committed, verifiable state.
  auto drain = [&](std::deque<NetId> work) {
    while (!work.empty() && !budget_spent()) {
      const NetId id = work.front();
      work.pop_front();
      c_nets_attempted_.add();
      trace_.emit(obs::TraceEvent::net_start(id));
      rip_routable_wire(id);
      routed.erase(id);

      const std::vector<Pin> pins = ordered_pins(id);
      bool net_ok = true;
      int conns_done = 0;
      std::vector<NetId> requeue;
      for (std::size_t i = 1; i < pins.size(); ++i) {
        c_connections_attempted_.add();
        std::vector<GridPoint> sources = pin_nodes(pins[i]);
        std::vector<GridPoint> targets =
            i == 1 ? pin_nodes(pins[0]) : grid_.net_nodes(id);
        requeue.clear();
        if (!route_connection(id, sources, targets, &requeue)) {
          net_ok = false;
          break;
        }
        ++conns_done;
        c_connections_routed_.add();
        for (const NetId v : requeue) {
          work.push_back(v);
          failed.erase(v);
          routed.erase(v);  // its wire is gone until re-routed
        }
      }
      if (net_ok) {
        failed.erase(id);
        routed.insert(id);
      } else {
        rip_routable_wire(id);  // leave only the permanent pre-wire behind
        failed.insert(id);
      }
      trace_.emit(obs::TraceEvent::net_done(net_ok, id, conns_done));
      if (routed.size() > best_routed) {
        best_routed = routed.size();
        best_mark = grid_.mark();
      }
    }
  };

  drain(queue);
  for (int pass = 0;
       pass < options_.retry_passes && !failed.empty() && !budget_exhausted_;
       ++pass)
    drain({failed.begin(), failed.end()});

  // Land on the best state the run ever reached.
  if (routed.size() < best_routed) grid_.rollback(best_mark);
  grid_.commit();

  RouteOutcome outcome;
  for (NetId id = 0; id < problem_.net_count(); ++id)
    if (problem_.net(id).pins.size() >= 2 && !problem_.net(id).fixed &&
        !net_routed_ok(problem_, grid_, id))
      outcome.failed.push_back(id);
  c_nets_routed_.add(multi_pin - static_cast<int>(outcome.failed.size()));
  t_run_.record_ms(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
  outcome.stats = stats();
  return outcome;
}

}  // namespace gridroute
