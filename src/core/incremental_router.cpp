#include "core/incremental_router.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <climits>
#include <deque>
#include <mutex>
#include <ostream>
#include <set>
#include <thread>
#include <unordered_map>

#include "util/disjoint_set.hpp"
#include "util/rng.hpp"
#include "verify/verify.hpp"

namespace gridroute {

IncrementalRouter::IncrementalRouter(const Problem& problem,
                                     RouterOptions options, SearchArena* arena)
    : problem_(problem),
      options_(options),
      grid_(problem.region(), problem.net_count()),
      pins_(problem),
      search_(grid_, pins_, options.costs, arena),
      ripup_count_(static_cast<size_t>(problem.net_count()), 0),
      history_(static_cast<size_t>(problem.region().width()) *
                   static_cast<size_t>(problem.region().height()),
               0) {
  // Lay down every net's pre-wire before any routing happens. Problems
  // with conflicting or unroutable pre-wire are rejected here (validate()
  // reports the same conflicts with friendlier messages).
  for (NetId id = 0; id < problem_.net_count(); ++id) apply_prewire(id);
  grid_.commit();
}

void IncrementalRouter::apply_prewire(NetId id) {
  const Net& net = problem_.net(id);
  for (const GridPoint& g : prewire_nodes(net)) {
    if (grid_.owner(g) == id) continue;  // junction duplicate
    if (!grid_.occupy(g, id))
      throw std::invalid_argument("net '" + net.name +
                                  "': pre-wire conflicts with the region or "
                                  "another net (run Problem::validate)");
  }
  for (const Point& v : net.previas) {
    if (grid_.via_owner(v) == id) continue;
    if (!grid_.add_via(v, id))
      throw std::invalid_argument("net '" + net.name +
                                  "': pre-via not anchored on both layers");
  }
}

void IncrementalRouter::rip_routable_wire(NetId id) {
  grid_.rip_net(id);
  apply_prewire(id);  // pre-wire is permanent
}

void IncrementalRouter::bump_history(Point p) {
  const Rect& b = problem_.region().bounds();
  history_[static_cast<size_t>((p.y - b.lo.y) * b.width() + (p.x - b.lo.x))] +=
      std::max(options_.costs.push / 4, 1);
}

std::vector<GridPoint> IncrementalRouter::pin_nodes(const Pin& pin) const {
  std::vector<GridPoint> nodes;
  if (pin.any_layer) {
    for (Layer l : {Layer::kMetal1, Layer::kMetal2})
      if (problem_.region().routable({pin.pos, l}))
        nodes.push_back({pin.pos, l});
  } else if (problem_.region().routable({pin.pos, pin.layer})) {
    nodes.push_back({pin.pos, pin.layer});
  }
  return nodes;
}

std::vector<Pin> IncrementalRouter::ordered_pins(NetId id) const {
  std::vector<Pin> pins = problem_.net(id).pins;
  if (pins.size() <= 2) return pins;
  // Greedy nearest-neighbour chain: grow the routing tree towards whichever
  // pin is currently closest, which keeps pin-to-tree connections short.
  std::vector<Pin> ordered;
  ordered.reserve(pins.size());
  auto start = std::min_element(pins.begin(), pins.end(),
                                [](const Pin& a, const Pin& b) {
                                  return std::pair{a.pos.x, a.pos.y} <
                                         std::pair{b.pos.x, b.pos.y};
                                });
  ordered.push_back(*start);
  pins.erase(start);
  while (!pins.empty()) {
    auto best = pins.begin();
    int best_d = INT_MAX;
    for (auto it = pins.begin(); it != pins.end(); ++it) {
      int d = INT_MAX;  // distance of *it to the already-chosen set
      for (const Pin& chosen : ordered)
        d = std::min(d, manhattan(it->pos, chosen.pos));
      if (d < best_d) {
        best_d = d;
        best = it;
      }
    }
    ordered.push_back(*best);
    pins.erase(best);
  }
  return ordered;
}

int IncrementalRouter::net_span(NetId id) const {
  const Net& net = problem_.net(id);
  if (net.pins.empty()) return 0;
  Rect box{net.pins.front().pos, net.pins.front().pos};
  for (const Pin& p : net.pins)
    box = box.bounding_union({p.pos, p.pos});
  return box.width() + box.height();
}

std::vector<std::vector<GridPoint>> IncrementalRouter::wire_components(
    NetId id) const {
  const auto& nodes = grid_.net_nodes(id);
  std::unordered_map<GridPoint, std::size_t> index;
  index.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) index.emplace(nodes[i], i);
  DisjointSet ds(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const GridPoint g = nodes[i];
    for (const Point d : {Point{1, 0}, Point{0, 1}}) {
      auto it = index.find({g.pos + d, g.layer});
      if (it != index.end()) ds.unite(i, it->second);
    }
    if (g.layer == Layer::kMetal1 && grid_.via_owner(g.pos) == id) {
      auto it = index.find({g.pos, Layer::kMetal2});
      if (it != index.end()) ds.unite(i, it->second);
    }
  }
  std::unordered_map<std::size_t, std::size_t> root_to_comp;
  std::vector<std::vector<GridPoint>> comps;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::size_t root = ds.find(i);
    auto [it, inserted] = root_to_comp.emplace(root, comps.size());
    if (inserted) comps.emplace_back();
    comps[it->second].push_back(nodes[i]);
  }
  return comps;
}

bool IncrementalRouter::repair_net(NetId victim) {
  const Net& net = problem_.net(victim);
  std::ostream* log = options_.log;
  for (int step = 0; step < options_.max_repair_steps; ++step) {
    if (net_routed_ok(problem_, grid_, victim)) return true;

    const auto comps = wire_components(victim);
    // Locate each pin's component (-1 = pin not on wire).
    auto comp_of_pin = [&](const Pin& pin) -> int {
      for (std::size_t c = 0; c < comps.size(); ++c)
        for (const GridPoint& g : comps[c]) {
          if (g.pos != pin.pos) continue;
          if (pin.any_layer || g.layer == pin.layer)
            return static_cast<int>(c);
        }
      return -1;
    };

    // Main component: the one holding the most pins (largest on ties).
    std::vector<int> pin_comp(net.pins.size(), -1);
    std::vector<int> votes(comps.size(), 0);
    for (std::size_t i = 0; i < net.pins.size(); ++i) {
      pin_comp[i] = comp_of_pin(net.pins[i]);
      if (pin_comp[i] >= 0) ++votes[static_cast<size_t>(pin_comp[i])];
    }
    int main_comp = -1;
    for (std::size_t c = 0; c < comps.size(); ++c) {
      if (main_comp < 0 ||
          votes[c] > votes[static_cast<size_t>(main_comp)] ||
          (votes[c] == votes[static_cast<size_t>(main_comp)] &&
           comps[c].size() > comps[static_cast<size_t>(main_comp)].size()))
        main_comp = static_cast<int>(c);
    }

    // Pick a pin outside the main component and pull it (plus whatever
    // fragment it sits on) back in. No pushing here: weak repair must not
    // cascade into further victims.
    SearchRequest req;
    req.net = victim;
    req.allow_push = false;
    std::size_t detached = net.pins.size();
    for (std::size_t i = 0; i < net.pins.size(); ++i)
      if (pin_comp[i] != main_comp || main_comp < 0) {
        detached = i;
        break;
      }
    if (detached == net.pins.size()) {
      // All pins sit in main_comp yet the net is not ok — cannot happen
      // given the definitions; bail out defensively.
      return false;
    }
    req.sources = pin_nodes(net.pins[detached]);
    if (pin_comp[detached] >= 0) {
      const auto& frag = comps[static_cast<size_t>(pin_comp[detached])];
      req.sources.insert(req.sources.end(), frag.begin(), frag.end());
    }
    if (main_comp >= 0) {
      req.targets = comps[static_cast<size_t>(main_comp)];
    } else {
      // No wire with pins at all: aim for another pin directly.
      for (std::size_t i = 0; i < net.pins.size(); ++i) {
        if (i == detached) continue;
        const auto t = pin_nodes(net.pins[i]);
        req.targets.insert(req.targets.end(), t.begin(), t.end());
      }
    }
    if (req.sources.empty() || req.targets.empty()) return false;

    SearchResult res = search_.route(req);
    stats_.expansions += search_.last_expansions();
    if (!res.found) {
      if (log)
        *log << "    repair of '" << net.name << "': pin " << detached
             << " cannot rejoin main component\n";
      return false;
    }
    const bool applied = grid_.apply_path(res.path, victim);
    assert(applied);
    (void)applied;
  }
  return net_routed_ok(problem_, grid_, victim);
}

bool IncrementalRouter::apply_with_push(NetId id, const SearchResult& probe) {
  const RoutingGrid::Mark mark = grid_.mark();

  std::set<NetId> victims;
  for (const GridPoint& g : probe.crossed) victims.insert(grid_.owner(g));
  for (const GridPoint& g : probe.crossed) grid_.release(g);

  if (!grid_.apply_path(probe.path, id)) {
    grid_.rollback(mark);
    return false;
  }
  for (const NetId v : victims) {
    if (!repair_net(v)) {
      if (options_.log)
        *options_.log << "  weak: repair of victim '" << problem_.net(v).name
                      << "' failed, rolling back\n";
      grid_.rollback(mark);
      return false;
    }
  }
  if (options_.log)
    *options_.log << "  weak: pushed through " << probe.crossed.size()
                  << " node(s) of " << victims.size() << " victim(s)\n";
  return true;
}

bool IncrementalRouter::route_connection(NetId id,
                                         const std::vector<GridPoint>& sources,
                                         const std::vector<GridPoint>& targets,
                                         std::vector<NetId>* requeue) {
  SearchRequest req;
  req.sources = sources;
  req.targets = targets;
  req.net = id;

  auto apply_clean = [&](const Path& path) {
    const bool applied = grid_.apply_path(path, id);
    assert(applied);
    (void)applied;
  };

  // Stage 1: clean shortest path.
  SearchResult res = search_.route(req);
  stats_.expansions += search_.last_expansions();
  if (res.found) {
    apply_clean(res.path);
    return true;
  }
  if (!options_.enable_weak && !options_.enable_strong) return false;

  req.allow_push = true;
  req.push_history = &history_;

  // Stage 2: weak modification. Each failed attempt freezes its victim set
  // and charges the contested cells, so the next probe proposes a different
  // crossing instead of re-proposing the one that cannot be repaired.
  if (options_.enable_weak) {
    for (int attempt = 0; attempt < options_.weak_probe_retries; ++attempt) {
      SearchResult probe = search_.route(req);
      stats_.expansions += search_.last_expansions();
      if (options_.log)
        *options_.log << "net '" << problem_.net(id).name
                      << "': blocked; push probe "
                      << (probe.found ? "found" : "failed") << ", crosses "
                      << probe.crossed.size() << " node(s)\n";
      if (!probe.found) break;
      if (probe.crossed.empty()) {
        apply_clean(probe.path);
        return true;
      }
      ++stats_.weak_attempts;
      if (apply_with_push(id, probe)) {
        ++stats_.weak_modifications;
        return true;
      }
      for (const GridPoint& g : probe.crossed) {
        bump_history(g.pos);
        const NetId v = grid_.owner(g);
        if (std::find(req.frozen.begin(), req.frozen.end(), v) ==
            req.frozen.end())
          req.frozen.push_back(v);
      }
    }
    req.frozen.clear();
  }

  // Stage 3: strong modification — rip the blockers up and re-queue them.
  // Nets whose budget is spent are frozen so the probe only ever proposes
  // evictable victims; with every budget exhausted the probe fails and so
  // does the connection, which is what bounds the whole algorithm.
  if (options_.enable_strong && requeue != nullptr) {
    for (NetId v = 0; v < problem_.net_count(); ++v)
      if (v != id &&
          ripup_count_[static_cast<size_t>(v)] >= options_.max_ripups_per_net)
        req.frozen.push_back(v);
    SearchResult probe = search_.route(req);
    stats_.expansions += search_.last_expansions();
    if (options_.log)
      *options_.log << "net '" << problem_.net(id).name
                    << "': blocked; push probe "
                    << (probe.found ? "found" : "failed")
                    << " (strong stage), crosses " << probe.crossed.size()
                    << " node(s)\n";
    if (!probe.found) return false;
    if (probe.crossed.empty()) {
      apply_clean(probe.path);
      return true;
    }
    std::set<NetId> victims;
    for (const GridPoint& g : probe.crossed) {
      victims.insert(grid_.owner(g));
      bump_history(g.pos);
    }
    for (const NetId v : victims) {
      if (options_.log)
        *options_.log << "  strong: ripping '" << problem_.net(v).name
                      << "' (rip #" << ripup_count_[static_cast<size_t>(v)] + 1
                      << ")\n";
      rip_routable_wire(v);
      ++ripup_count_[static_cast<size_t>(v)];
      ++stats_.strong_ripups;
      requeue->push_back(v);
    }
    // The probe path is now clear by construction; prefer a fresh clean
    // search (often shorter), with the probe as fallback witness.
    req.allow_push = false;
    res = search_.route(req);
    stats_.expansions += search_.last_expansions();
    apply_clean(res.found ? res.path : probe.path);
    return true;
  }
  return false;
}

bool IncrementalRouter::route_net(NetId id) {
  // Fixed nets are never (re)routed; they are as routed as their pre-wire.
  if (problem_.net(id).fixed) return net_routed_ok(problem_, grid_, id);
  std::vector<NetId> requeue;
  bool ok = true;
  std::deque<NetId> work{id};
  while (!work.empty()) {
    const NetId cur = work.front();
    work.pop_front();
    ++stats_.nets_attempted;
    rip_routable_wire(cur);

    const std::vector<Pin> pins = ordered_pins(cur);
    bool net_ok = true;
    for (std::size_t i = 1; i < pins.size(); ++i) {
      ++stats_.connections_attempted;
      std::vector<GridPoint> sources = pin_nodes(pins[i]);
      std::vector<GridPoint> targets;
      if (i == 1) {
        targets = pin_nodes(pins[0]);
      } else {
        targets = grid_.net_nodes(cur);
      }
      requeue.clear();
      if (!route_connection(cur, sources, targets, &requeue)) {
        net_ok = false;
        break;
      }
      ++stats_.connections_routed;
      for (const NetId v : requeue) work.push_back(v);
    }
    if (!net_ok) {
      rip_routable_wire(cur);  // leave only the permanent pre-wire behind
      if (cur == id) ok = false;
    }
    grid_.commit();
  }
  return ok;
}

int IncrementalRouter::improve(int passes) {
  int improved = 0;
  for (int pass = 0; pass < passes; ++pass) {
    bool any = false;
    for (NetId id = 0; id < problem_.net_count(); ++id) {
      const Net& net = problem_.net(id);
      if (net.fixed || net.pins.size() < 2) continue;
      if (!net_routed_ok(problem_, grid_, id)) continue;

      auto wire_cost = [&] {
        return grid_.node_count(id) * options_.costs.step +
               grid_.via_count(id) * options_.costs.via;
      };
      const int old_cost = wire_cost();
      const RoutingGrid::Mark mark = grid_.mark();
      rip_routable_wire(id);

      // Plain re-route only: clean-up must not disturb other nets.
      const std::vector<Pin> pins = ordered_pins(id);
      bool ok = true;
      for (std::size_t i = 1; i < pins.size() && ok; ++i) {
        SearchRequest req;
        req.net = id;
        req.sources = pin_nodes(pins[i]);
        req.targets = i == 1 ? pin_nodes(pins[0]) : grid_.net_nodes(id);
        const SearchResult res = search_.route(req);
        stats_.expansions += search_.last_expansions();
        if (!res.found) {
          ok = false;
          break;
        }
        const bool applied = grid_.apply_path(res.path, id);
        assert(applied);
        (void)applied;
      }
      if (!ok || !net_routed_ok(problem_, grid_, id) ||
          wire_cost() >= old_cost) {
        grid_.rollback(mark);
      } else {
        ++improved;
        any = true;
      }
    }
    grid_.commit();
    if (!any) break;
  }
  return improved;
}

RouteOutcome IncrementalRouter::run() {
  const auto t0 = std::chrono::steady_clock::now();
  std::deque<NetId> queue;
  for (NetId id = 0; id < problem_.net_count(); ++id)
    if (problem_.net(id).pins.size() >= 2 && !problem_.net(id).fixed)
      queue.push_back(id);
  const int multi_pin = static_cast<int>(queue.size());

  auto by_span = [this](NetId a, NetId b) {
    return std::pair{net_span(a), a} < std::pair{net_span(b), b};
  };
  switch (options_.ordering) {
    case RouterOptions::Ordering::kMostConstrainedFirst:
      std::sort(queue.begin(), queue.end(), by_span);
      break;
    case RouterOptions::Ordering::kLargestFirst:
      std::sort(queue.begin(), queue.end(),
                [&](NetId a, NetId b) { return by_span(b, a); });
      break;
    case RouterOptions::Ordering::kAsGiven:
      break;
    case RouterOptions::Ordering::kShuffled: {
      Rng rng(options_.shuffle_seed);
      for (std::size_t i = queue.size(); i > 1; --i)
        std::swap(queue[i - 1], queue[rng.next_below(i)]);
      break;
    }
  }

  // Every multi-pin net starts unrouted. `routed` tracks live completions
  // so the best state seen can be checkpointed: rip-up is allowed to pass
  // through worse states, but must never *end* in one. The whole run stays
  // journaled (no commit) to make the final best-state rollback possible.
  std::set<NetId> routed;
  std::set<NetId> failed;
  std::size_t best_routed = 0;
  RoutingGrid::Mark best_mark = grid_.mark();

  auto drain = [&](std::deque<NetId> work) {
    while (!work.empty()) {
      const NetId id = work.front();
      work.pop_front();
      ++stats_.nets_attempted;
      rip_routable_wire(id);
      routed.erase(id);

      const std::vector<Pin> pins = ordered_pins(id);
      bool net_ok = true;
      std::vector<NetId> requeue;
      for (std::size_t i = 1; i < pins.size(); ++i) {
        ++stats_.connections_attempted;
        std::vector<GridPoint> sources = pin_nodes(pins[i]);
        std::vector<GridPoint> targets =
            i == 1 ? pin_nodes(pins[0]) : grid_.net_nodes(id);
        requeue.clear();
        if (!route_connection(id, sources, targets, &requeue)) {
          net_ok = false;
          break;
        }
        ++stats_.connections_routed;
        for (const NetId v : requeue) {
          work.push_back(v);
          failed.erase(v);
          routed.erase(v);  // its wire is gone until re-routed
        }
      }
      if (net_ok) {
        failed.erase(id);
        routed.insert(id);
      } else {
        rip_routable_wire(id);  // leave only the permanent pre-wire behind
        failed.insert(id);
      }
      if (routed.size() > best_routed) {
        best_routed = routed.size();
        best_mark = grid_.mark();
      }
    }
  };

  drain(queue);
  for (int pass = 0; pass < options_.retry_passes && !failed.empty(); ++pass)
    drain({failed.begin(), failed.end()});

  // Land on the best state the run ever reached.
  if (routed.size() < best_routed) grid_.rollback(best_mark);
  grid_.commit();

  RouteOutcome outcome;
  for (NetId id = 0; id < problem_.net_count(); ++id)
    if (problem_.net(id).pins.size() >= 2 && !problem_.net(id).fixed &&
        !net_routed_ok(problem_, grid_, id))
      outcome.failed.push_back(id);
  stats_.nets_routed = multi_pin - static_cast<int>(outcome.failed.size());
  stats_.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  outcome.stats = stats_;
  return outcome;
}

RoutedDesign route(const Problem& problem, RouterOptions options,
                   SearchArena* arena) {
  IncrementalRouter router(problem, options, arena);
  RouteOutcome outcome = router.run();
  return {std::move(router.grid()), std::move(outcome), {}, 0, 0, 0};
}

namespace {

/// Options for one multi-start attempt. Attempt 0 keeps the caller's
/// ordering; restarts shuffle with a seed mixed from the base seed and the
/// attempt index, so a kShuffled base run and every restart all explore
/// distinct net orders even when the caller picked a small seed.
RouterOptions attempt_options(const RouterOptions& base, int attempt) {
  if (attempt == 0) return base;
  RouterOptions shuffled = base;
  shuffled.ordering = RouterOptions::Ordering::kShuffled;
  shuffled.shuffle_seed =
      mix_seeds(base.shuffle_seed, static_cast<std::uint64_t>(attempt));
  return shuffled;
}

}  // namespace

RoutedDesign route_best_of(const Problem& problem, int extra_attempts,
                           RouterOptions options) {
  const int total = std::max(extra_attempts, 0) + 1;
  int workers = options.threads;
  if (workers <= 0)
    workers = std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, total);

  // Each attempt is fully isolated: its own IncrementalRouter (grid, pin
  // map, maze search, history) over the shared const Problem. Results land
  // in per-attempt slots; nothing below mutates shared state except the
  // work counter and the early-cancel watermark.
  std::vector<std::optional<RoutedDesign>> results(
      static_cast<std::size_t>(total));
  std::atomic<int> next_attempt{0};
  // Lowest attempt index that routed every net. Serial best-of stops after
  // the first complete attempt; here that becomes a cancellation watermark:
  // attempts above it are skipped, attempts at or below it still finish
  // (one of them could be an even lower-index complete run).
  std::atomic<int> first_complete{total};

  std::mutex error_mutex;
  std::exception_ptr error;

  auto worker = [&] {
    // One search arena per worker, lent to every attempt this worker runs.
    // Epoch stamping makes the reuse stateless: a fresh arena and a
    // well-recycled one produce bit-identical searches.
    SearchArena arena;
    for (;;) {
      const int idx = next_attempt.fetch_add(1);
      if (idx >= total) return;
      if (idx > first_complete.load()) continue;  // cannot win; skip
      try {
        RoutedDesign attempt =
            route(problem, attempt_options(options, idx), &arena);
        if (attempt.outcome.complete()) {
          int seen = first_complete.load();
          while (idx < seen &&
                 !first_complete.compare_exchange_weak(seen, idx)) {
          }
        }
        results[static_cast<std::size_t>(idx)] = std::move(attempt);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        first_complete.store(-1);  // drain remaining work
        return;
      }
    }
  };

  if (workers <= 1) {
    worker();  // serial reference path: same plan, same reduction
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (error) std::rethrow_exception(error);

  // Deterministic reduction — an ascending scan identical to the historical
  // serial loop: keep strictly-better scores (ties therefore break to the
  // lower attempt index) and stop once the incumbent is complete. Every
  // attempt the serial loop would have run is guaranteed present: index i
  // is only skipped when some complete attempt c < i exists, and the scan
  // never reads past the first complete attempt.
  auto score = [](const RoutedDesign& d) {
    // Higher is better: completions dominate, then compact layouts.
    return std::pair{d.outcome.stats.nets_routed,
                     -(d.grid.total_nodes() + 4 * d.grid.total_vias())};
  };
  int winner = 0;
  for (int idx = 1; idx < total; ++idx) {
    if (results[static_cast<std::size_t>(winner)]->outcome.complete()) break;
    const auto& candidate = results[static_cast<std::size_t>(idx)];
    if (!candidate.has_value()) continue;  // early-cancelled
    if (score(*candidate) > score(*results[static_cast<std::size_t>(winner)]))
      winner = idx;
  }

  RoutedDesign best = std::move(*results[static_cast<std::size_t>(winner)]);
  best.winning_attempt = winner;
  best.winning_seed = attempt_options(options, winner).shuffle_seed;
  best.total_expansions = 0;
  best.attempts.clear();
  best.attempts.reserve(static_cast<std::size_t>(total));
  for (int idx = 0; idx < total; ++idx) {
    AttemptReport report;
    report.index = idx;
    report.seed = attempt_options(options, idx).shuffle_seed;
    const RoutedDesign* r = nullptr;
    if (idx == winner)
      r = &best;
    else if (results[static_cast<std::size_t>(idx)].has_value())
      r = &*results[static_cast<std::size_t>(idx)];
    if (r != nullptr) {
      report.ran = true;
      report.complete = r->outcome.complete();
      report.nets_routed = r->outcome.stats.nets_routed;
      report.expansions = r->outcome.stats.expansions;
      report.wall_ms = r->outcome.stats.wall_ms;
      best.total_expansions += report.expansions;
    }
    best.attempts.push_back(report);
  }
  return best;
}

}  // namespace gridroute
