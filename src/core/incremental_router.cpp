#include "core/incremental_router.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <climits>
#include <deque>
#include <ostream>
#include <set>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "core/wave_pool.hpp"
#include "fault/fault.hpp"
#include "util/disjoint_set.hpp"
#include "util/rng.hpp"
#include "verify/verify.hpp"

namespace gridroute {

/// One recorded speculative search (see the header declaration).
struct IncrementalRouter::SpecSearch {
  SearchResult result;
  long long expansions = 0;
  long long overflow_hits = 0;
};

struct IncrementalRouter::SpecNet {
  NetId id = kNoNet;
  /// Stage-1 clean search per connection, in connection order. The last
  /// entry is not-found when the speculation hit a blocked connection.
  std::vector<SpecSearch> clean;
  /// First weak probe after a clean failure (run() only; its frozen set is
  /// empty by construction, so it is independent of commit-time state).
  std::optional<SpecSearch> probe;
  /// Union of every search's read footprint (planar). The commit is valid
  /// only if no earlier commit in the wave dirtied touched.inflated(1).
  Rect touched{{0, 0}, {-1, -1}};
  /// Every connection was found cleanly (observability only; an incomplete
  /// speculation still replays — its recorded failure triggers the same
  /// serial escalation the fully-serial drain would run).
  bool complete = false;
};

/// Per-worker speculation context: its own arena and maze router over the
/// shared grid/pins. The router's trace stays off — speculative queries are
/// invisible until replayed at commit.
struct IncrementalRouter::WaveWorker {
  SearchArena arena;
  WeightedMazeRouter router;
  explicit WaveWorker(const RoutingGrid& grid, const PinBlocks& pins,
                      CostModel costs, FutureCost future_cost)
      : router(grid, pins, costs, &arena) {
    router.set_future_cost(future_cost);
  }
};

/// Wave cap. A thread-count-independent constant: wave formation (and the
/// kWaveFormed trace events) must be identical at every net_threads value.
constexpr std::size_t kMaxWave = 16;

IncrementalRouter::~IncrementalRouter() = default;

IncrementalRouter::IncrementalRouter(const Problem& problem,
                                     RouterOptions options, SearchArena* arena)
    : problem_(problem),
      options_(options),
      grid_(problem.region(), problem.net_count()),
      pins_(problem),
      search_(grid_, pins_, options.costs, arena),
      ripup_count_(static_cast<size_t>(problem.net_count()), 0),
      history_(static_cast<size_t>(problem.region().width()) *
                   static_cast<size_t>(problem.region().height()),
               0) {
  search_.set_future_cost(options_.future_cost);
  for (NetId id = 0; id < problem_.net_count(); ++id)
    if (problem_.net(id).fixed) fixed_nets_.push_back(id);
  // Lay down every net's pre-wire before any routing happens. Problems
  // with conflicting or unroutable pre-wire are rejected here (validate()
  // reports the same conflicts with friendlier messages).
  for (NetId id = 0; id < problem_.net_count(); ++id) apply_prewire(id);
  grid_.commit();
}

void IncrementalRouter::set_trace(obs::TraceSink* sink, int attempt) {
  trace_ = obs::Trace(sink, attempt);
  search_.set_trace(trace_);
}

RouteStats IncrementalRouter::stats() const {
  RouteStats s;
  s.nets_attempted = static_cast<int>(c_nets_attempted_.value());
  s.nets_routed = static_cast<int>(c_nets_routed_.value());
  s.connections_attempted = static_cast<int>(c_connections_attempted_.value());
  s.connections_routed = static_cast<int>(c_connections_routed_.value());
  s.weak_modifications = static_cast<int>(c_weak_modifications_.value());
  s.weak_attempts = static_cast<int>(c_weak_attempts_.value());
  s.strong_ripups = static_cast<int>(c_strong_ripups_.value());
  s.expansions = c_expansions_.value();
  s.waves = static_cast<int>(c_waves_.value());
  s.spec_commits = static_cast<int>(c_spec_commits_.value());
  s.spec_invalidations = static_cast<int>(c_spec_invalidations_.value());
  s.run_ms = t_run_.total_ms();
  s.improve_ms = t_improve_.total_ms();
  s.wall_ms = s.run_ms + s.improve_ms;
  return s;
}

SearchResult IncrementalRouter::search(SearchRequest& req) {
  // Injection point for a throwing search/cost provider: the surrounding
  // net-level transaction absorbs the exception and fails only that net.
  if (faults_ != nullptr) faults_->maybe_throw(fault::Site::kSearchQuery);
  req.budget = gauge_;
  SearchResult res = search_.route(req);
  c_expansions_.add(search_.last_expansions());
  return res;
}

void IncrementalRouter::note_fault(const fault::InjectedFault& f, NetId net,
                                   Degradation::Kind kind,
                                   std::string detail) {
  trace_.emit(obs::TraceEvent::fault_injected(
      net, static_cast<std::int64_t>(f.site()), f.arrival()));
  note_degradation(kind, net, std::move(detail));
}

void IncrementalRouter::note_degradation(Degradation::Kind kind, NetId net,
                                         std::string detail) {
  trace_.emit(
      obs::TraceEvent::degraded(net, static_cast<std::int64_t>(kind)));
  degradations_.push_back(
      {kind, trace_.attempt(), net, std::move(detail)});
}

bool IncrementalRouter::budget_spent() {
  if (budget_exhausted_) return true;
  // Forced exhaustion (operator kill switch / zero headroom): stop exactly
  // like a genuinely spent budget — between nets, grid committed, failed
  // list intact — even when no gauge is installed.
  if (faults_ != nullptr && faults_->fire(fault::Site::kBudgetForce)) {
    budget_exhausted_ = true;
    trace_.emit(obs::TraceEvent::fault_injected(
        -1, static_cast<std::int64_t>(fault::Site::kBudgetForce),
        faults_->arrival()));
    note_degradation(Degradation::Kind::kBudget, kNoNet,
                     "budget exhaustion forced by fault injection");
    return true;
  }
  if (gauge_ == nullptr || !gauge_->exhausted()) return false;
  budget_exhausted_ = true;
  trace_.emit(obs::TraceEvent::budget_exhausted(gauge_->spent(),
                                                gauge_->wall_exhausted()));
  return true;
}

// ---------------------------------------------------------------------------
// Net-parallel wave engine (DESIGN.md §2.1e)
// ---------------------------------------------------------------------------

int IncrementalRouter::wave_width() const {
  int n = options_.net_threads;
  if (n <= 0)
    n = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  return std::min<int>(n, static_cast<int>(kMaxWave));
}

bool IncrementalRouter::ensure_wave_state() {
  if (wave_disabled_) return false;
  try {
    if (faults_ != nullptr) faults_->maybe_throw(fault::Site::kArenaAlloc);
    const int width = wave_width();
    if (wave_pool_ == nullptr)
      wave_pool_ = std::make_unique<WavePool>(width - 1);
    while (static_cast<int>(wave_workers_.size()) < width)
      wave_workers_.push_back(std::make_unique<WaveWorker>(
          grid_, pins_, options_.costs, options_.future_cost));
    return true;
  } catch (const fault::InjectedFault& f) {
    wave_disabled_ = true;
    note_fault(f, kNoNet, Degradation::Kind::kWaveDisabled,
               std::string("wave state allocation failed (") + f.what() +
                   "); serial drain");
    return false;
  } catch (const std::bad_alloc&) {
    // Real per-worker arena/pool allocation failure: the serial drain needs
    // no new memory, so degrade instead of dying.
    wave_disabled_ = true;
    note_degradation(Degradation::Kind::kWaveDisabled,
                     kNoNet, "wave state allocation failed; serial drain");
    return false;
  }
}

Rect IncrementalRouter::wave_box(NetId id, bool for_improve) const {
  Rect box{{0, 0}, {-1, -1}};
  auto grow = [&box](Point p) {
    const Rect cell{p, p};
    box = box.valid() ? box.bounding_union(cell) : cell;
  };
  const Net& net = problem_.net(id);
  for (const Pin& p : net.pins) grow(p.pos);
  for (const GridPoint& g : prewire_nodes(net)) grow(g.pos);
  // improve() rips (and possibly relays) the net's existing wire, so its
  // detours are part of the write estimate, not just the pin box.
  if (for_improve)
    for (const GridPoint& g : grid_.net_nodes(id)) grow(g.pos);
  return box.valid() ? box.inflated(1) : box;
}

std::vector<NetId> IncrementalRouter::form_wave(std::deque<NetId>& work,
                                                bool for_improve) const {
  // Maximal *prefix* with pairwise-disjoint boxes: stopping at the first
  // clash (instead of skipping past it) keeps the commit order exactly the
  // serial drain order, which the bit-identical guarantee rests on. The
  // boxes are only an independence estimate — overlapping searches a box
  // failed to predict are caught by commit-time validation.
  std::vector<NetId> wave;
  std::vector<Rect> boxes;
  while (!work.empty() && wave.size() < kMaxWave) {
    const NetId id = work.front();
    const Rect box = wave_box(id, for_improve);
    bool clash = std::find(wave.begin(), wave.end(), id) != wave.end();
    if (!clash && box.valid())
      for (const Rect& b : boxes)
        if (b.valid() && b.intersects(box)) {
          clash = true;
          break;
        }
    if (clash && !wave.empty()) break;
    wave.push_back(id);
    boxes.push_back(box);
    work.pop_front();
  }
  return wave;
}

void IncrementalRouter::speculate_net(SpecNet& spec, WaveWorker& w,
                                      bool with_probe) const {
  // Injection point for a throwing wave worker. WavePool::run captures the
  // exception, finishes the remaining jobs, joins the round, and rethrows
  // on the calling thread — where the drain falls back to serial routing.
  if (faults_ != nullptr) faults_->maybe_throw(fault::Site::kWaveSpeculate);
  const NetId id = spec.id;
  const std::vector<Pin> pins = ordered_pins(id);
  // The commit rips the net down to its permanent pre-wire before routing,
  // so the simulated routing tree starts from the pre-wire and grows by the
  // speculative paths. The net's current routable wire stays on the grid
  // during speculation — harmless: a clean search treats own wire exactly
  // like free cells in every predicate it evaluates, so the searches here
  // equal the searches the commit would run after the rip.
  std::vector<GridPoint> tree = prewire_nodes(problem_.net(id));
  spec.complete = true;
  for (std::size_t i = 1; i < pins.size(); ++i) {
    SearchRequest req;
    req.net = id;
    req.sources = pin_nodes(pins[i]);
    req.targets = i == 1 ? pin_nodes(pins[0]) : tree;
    req.touched = &spec.touched;
    const SearchResult res = w.router.route(req);
    spec.clean.push_back(
        {res, w.router.last_expansions(), w.router.last_overflow_hits()});
    if (!res.found) {
      spec.complete = false;
      // The commit escalates this connection serially; its first weak
      // probe runs with only the fixed nets frozen (a pure function of the
      // problem), so it too only depends on the snapshot — pre-compute it
      // here. Deeper escalation (probe retries, the strong stage) depends
      // on live commit state and stays serial.
      if (with_probe && options_.enable_weak) {
        req.allow_push = true;
        req.push_history = &history_;
        req.frozen = fixed_nets_;
        const SearchResult probe = w.router.route(req);
        spec.probe = SpecSearch{probe, w.router.last_expansions(),
                                w.router.last_overflow_hits()};
      }
      return;
    }
    tree.insert(tree.end(), res.path.nodes.begin(), res.path.nodes.end());
  }
}

SearchResult IncrementalRouter::replay_search(NetId net, const SpecSearch& s) {
  // Exactly what the live query would have charged and emitted: commit
  // validation guarantees the recorded query equals the query a serial
  // drain would run at this point.
  c_expansions_.add(s.expansions);
  trace_.emit(obs::TraceEvent::search_query(net, s.expansions,
                                            s.overflow_hits, s.result.found));
  return s.result;
}

void IncrementalRouter::commit_wave(
    std::vector<SpecNet>& specs,
    const std::function<void(NetId, const SpecNet*)>& body) {
  // Dirty boxes of the commits performed so far in this wave: one grid box
  // per commit (from the journal) plus one history box per commit that
  // bumped push-history cells. A speculation whose inflated read footprint
  // misses every box would replay bit-identically if re-searched now — so
  // it is replayed; otherwise it is discarded and the net routed serially.
  std::vector<Rect> dirty;
  for (SpecNet& spec : specs) {
    const auto searches = static_cast<std::int64_t>(spec.clean.size()) +
                          (spec.probe.has_value() ? 1 : 0);
    bool valid = true;
    if (spec.touched.valid()) {
      const Rect reads = spec.touched.inflated(1);
      for (const Rect& d : dirty)
        if (d.intersects(reads)) {
          valid = false;
          break;
        }
    }
    const RoutingGrid::Mark pre = grid_.mark();
    history_dirty_ = Rect{{0, 0}, {-1, -1}};
    if (valid) {
      c_spec_commits_.add();
      trace_.emit(
          obs::TraceEvent::spec_committed(spec.id, searches, spec.complete));
      body(spec.id, &spec);
    } else {
      c_spec_invalidations_.add();
      trace_.emit(obs::TraceEvent::spec_invalidated(spec.id, searches));
      body(spec.id, nullptr);
    }
    const Rect d = grid_.dirty_since(pre);
    if (d.valid()) dirty.push_back(d);
    if (history_dirty_.valid()) dirty.push_back(history_dirty_);
  }
}

void IncrementalRouter::apply_prewire(NetId id) {
  const Net& net = problem_.net(id);
  for (const GridPoint& g : prewire_nodes(net)) {
    if (grid_.owner(g) == id) continue;  // junction duplicate
    if (!grid_.occupy(g, id))
      throw std::invalid_argument("net '" + net.name +
                                  "': pre-wire conflicts with the region or "
                                  "another net (run Problem::validate)");
  }
  for (const PreVia& v : net.previas) {
    if (grid_.via_owner(v.pos, v.cut) == id) continue;
    if (!grid_.add_via(v.pos, v.cut, id))
      throw std::invalid_argument("net '" + net.name +
                                  "': pre-via not anchored on both layers");
  }
}

void IncrementalRouter::rip_routable_wire(NetId id) {
  grid_.rip_net(id);
  apply_prewire(id);  // pre-wire is permanent
}

void IncrementalRouter::bump_history(Point p) {
  const Rect& b = problem_.region().bounds();
  history_[static_cast<size_t>((p.y - b.lo.y) * b.width() + (p.x - b.lo.x))] +=
      std::max(options_.costs.push / 4, 1);
  // History is read by speculative push probes but not journaled in the
  // grid, so wave commits track its writes separately (commit_wave).
  const Rect cell{p, p};
  history_dirty_ =
      history_dirty_.valid() ? history_dirty_.bounding_union(cell) : cell;
}

std::vector<GridPoint> IncrementalRouter::pin_nodes(const Pin& pin) const {
  std::vector<GridPoint> nodes;
  if (pin.any_layer) {
    for (int k = 0; k < problem_.region().layer_count(); ++k)
      if (problem_.region().routable({pin.pos, layer_at(k)}))
        nodes.push_back({pin.pos, layer_at(k)});
  } else if (problem_.region().routable({pin.pos, pin.layer})) {
    nodes.push_back({pin.pos, pin.layer});
  }
  return nodes;
}

std::vector<Pin> IncrementalRouter::ordered_pins(NetId id) const {
  std::vector<Pin> pins = problem_.net(id).pins;
  if (pins.size() <= 2) return pins;
  // Greedy nearest-neighbour chain: grow the routing tree towards whichever
  // pin is currently closest, which keeps pin-to-tree connections short.
  std::vector<Pin> ordered;
  ordered.reserve(pins.size());
  auto start = std::min_element(pins.begin(), pins.end(),
                                [](const Pin& a, const Pin& b) {
                                  return std::pair{a.pos.x, a.pos.y} <
                                         std::pair{b.pos.x, b.pos.y};
                                });
  ordered.push_back(*start);
  pins.erase(start);
  while (!pins.empty()) {
    auto best = pins.begin();
    int best_d = INT_MAX;
    for (auto it = pins.begin(); it != pins.end(); ++it) {
      int d = INT_MAX;  // distance of *it to the already-chosen set
      for (const Pin& chosen : ordered)
        d = std::min(d, manhattan(it->pos, chosen.pos));
      if (d < best_d) {
        best_d = d;
        best = it;
      }
    }
    ordered.push_back(*best);
    pins.erase(best);
  }
  return ordered;
}

int IncrementalRouter::net_span(NetId id) const {
  const Net& net = problem_.net(id);
  if (net.pins.empty()) return 0;
  Rect box{net.pins.front().pos, net.pins.front().pos};
  for (const Pin& p : net.pins)
    box = box.bounding_union({p.pos, p.pos});
  return box.width() + box.height();
}

std::vector<std::vector<GridPoint>> IncrementalRouter::wire_components(
    NetId id) const {
  const auto& nodes = grid_.net_nodes(id);
  std::unordered_map<GridPoint, std::size_t> index;
  index.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) index.emplace(nodes[i], i);
  DisjointSet ds(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const GridPoint g = nodes[i];
    for (const Point d : {Point{1, 0}, Point{0, 1}}) {
      auto it = index.find({g.pos + d, g.layer});
      if (it != index.end()) ds.unite(i, it->second);
    }
    const int k = layer_index(g.layer);
    if (k < grid_.cut_count() && grid_.via_owner(g.pos, k) == id) {
      auto it = index.find({g.pos, layer_at(k + 1)});
      if (it != index.end()) ds.unite(i, it->second);
    }
  }
  std::unordered_map<std::size_t, std::size_t> root_to_comp;
  std::vector<std::vector<GridPoint>> comps;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::size_t root = ds.find(i);
    auto [it, inserted] = root_to_comp.emplace(root, comps.size());
    if (inserted) comps.emplace_back();
    comps[it->second].push_back(nodes[i]);
  }
  return comps;
}

bool IncrementalRouter::repair_net(NetId victim) {
  const Net& net = problem_.net(victim);
  // Unreachable while push probes freeze fixed nets; kept as a hard stop so
  // no future probe variant can ever "repair" permanent pre-wire onto a
  // different path (the caller rolls the severing back).
  if (net.fixed) return false;
  std::ostream* log = options_.log;
  for (int step = 0; step < options_.max_repair_steps; ++step) {
    if (net_routed_ok(problem_, grid_, victim)) return true;

    const auto comps = wire_components(victim);
    // Locate each pin's component (-1 = pin not on wire).
    auto comp_of_pin = [&](const Pin& pin) -> int {
      for (std::size_t c = 0; c < comps.size(); ++c)
        for (const GridPoint& g : comps[c]) {
          if (g.pos != pin.pos) continue;
          if (pin.any_layer || g.layer == pin.layer)
            return static_cast<int>(c);
        }
      return -1;
    };

    // Main component: the one holding the most pins (largest on ties).
    std::vector<int> pin_comp(net.pins.size(), -1);
    std::vector<int> votes(comps.size(), 0);
    for (std::size_t i = 0; i < net.pins.size(); ++i) {
      pin_comp[i] = comp_of_pin(net.pins[i]);
      if (pin_comp[i] >= 0) ++votes[static_cast<size_t>(pin_comp[i])];
    }
    int main_comp = -1;
    for (std::size_t c = 0; c < comps.size(); ++c) {
      if (main_comp < 0 ||
          votes[c] > votes[static_cast<size_t>(main_comp)] ||
          (votes[c] == votes[static_cast<size_t>(main_comp)] &&
           comps[c].size() > comps[static_cast<size_t>(main_comp)].size()))
        main_comp = static_cast<int>(c);
    }

    // Pick a pin outside the main component and pull it (plus whatever
    // fragment it sits on) back in. No pushing here: weak repair must not
    // cascade into further victims.
    SearchRequest req;
    req.net = victim;
    req.allow_push = false;
    std::size_t detached = net.pins.size();
    for (std::size_t i = 0; i < net.pins.size(); ++i)
      if (pin_comp[i] != main_comp || main_comp < 0) {
        detached = i;
        break;
      }
    if (detached == net.pins.size()) {
      // All pins sit in main_comp yet the net is not ok — cannot happen
      // given the definitions; bail out defensively.
      return false;
    }
    req.sources = pin_nodes(net.pins[detached]);
    if (pin_comp[detached] >= 0) {
      const auto& frag = comps[static_cast<size_t>(pin_comp[detached])];
      req.sources.insert(req.sources.end(), frag.begin(), frag.end());
    }
    if (main_comp >= 0) {
      req.targets = comps[static_cast<size_t>(main_comp)];
    } else {
      // No wire with pins at all: aim for another pin directly.
      for (std::size_t i = 0; i < net.pins.size(); ++i) {
        if (i == detached) continue;
        const auto t = pin_nodes(net.pins[i]);
        req.targets.insert(req.targets.end(), t.begin(), t.end());
      }
    }
    if (req.sources.empty() || req.targets.empty()) return false;

    SearchResult res = search(req);
    if (!res.found) {
      if (log)
        *log << "    repair of '" << net.name << "': pin " << detached
             << " cannot rejoin main component\n";
      return false;
    }
    const bool applied = grid_.apply_path(res.path, victim);
    assert(applied);
    (void)applied;
  }
  return net_routed_ok(problem_, grid_, victim);
}

bool IncrementalRouter::apply_with_push(NetId id, const SearchResult& probe) {
  const RoutingGrid::Mark mark = grid_.mark();

  std::set<NetId> victims;
  for (const GridPoint& g : probe.crossed) victims.insert(grid_.owner(g));
  for (const GridPoint& g : probe.crossed) grid_.release(g);

  if (!grid_.apply_path(probe.path, id)) {
    grid_.rollback(mark);
    return false;
  }
  for (const NetId v : victims) {
    if (!repair_net(v)) {
      if (options_.log)
        *options_.log << "  weak: repair of victim '" << problem_.net(v).name
                      << "' failed, rolling back\n";
      grid_.rollback(mark);
      return false;
    }
  }
  if (options_.log)
    *options_.log << "  weak: pushed through " << probe.crossed.size()
                  << " node(s) of " << victims.size() << " victim(s)\n";
  return true;
}

bool IncrementalRouter::route_connection(NetId id,
                                         const std::vector<GridPoint>& sources,
                                         const std::vector<GridPoint>& targets,
                                         std::vector<NetId>* requeue,
                                         const SpecSearch* spec_clean,
                                         const SpecSearch* spec_probe) {
  SearchRequest req;
  req.sources = sources;
  req.targets = targets;
  req.net = id;

  auto apply_clean = [&](const Path& path) {
    const bool applied = grid_.apply_path(path, id);
    assert(applied);
    (void)applied;
  };

  // Stage 1: clean shortest path (replayed from a validated speculation
  // when the wave engine recorded it).
  SearchResult res =
      spec_clean != nullptr ? replay_search(id, *spec_clean) : search(req);
  if (res.found) {
    apply_clean(res.path);
    return true;
  }
  if (!options_.enable_weak && !options_.enable_strong) return false;
  if (budget_spent()) return false;

  req.allow_push = true;
  req.push_history = &history_;
  // Fixed nets are frozen in every push probe: their pre-wire is permanent
  // and may never be severed, "repaired", or ripped (empty on problems
  // without fixed nets — no behavior change there).
  req.frozen = fixed_nets_;

  // Stage 2: weak modification. Each failed attempt freezes its victim set
  // and charges the contested cells, so the next probe proposes a different
  // crossing instead of re-proposing the one that cannot be repaired.
  if (options_.enable_weak) {
    for (int attempt = 0; attempt < options_.weak_probe_retries; ++attempt) {
      if (budget_spent()) return false;
      SearchResult probe = attempt == 0 && spec_probe != nullptr
                               ? replay_search(id, *spec_probe)
                               : search(req);
      trace_.emit(obs::TraceEvent::weak_probe(
          id, attempt, static_cast<std::int64_t>(probe.crossed.size()),
          probe.found));
      if (options_.log)
        *options_.log << "net '" << problem_.net(id).name
                      << "': blocked; push probe "
                      << (probe.found ? "found" : "failed") << ", crosses "
                      << probe.crossed.size() << " node(s)\n";
      if (!probe.found) break;
      if (probe.crossed.empty()) {
        apply_clean(probe.path);
        return true;
      }
      std::int64_t victim_count = 0;
      if (trace_.on()) {
        std::set<NetId> owners;
        for (const GridPoint& g : probe.crossed) owners.insert(grid_.owner(g));
        victim_count = static_cast<std::int64_t>(owners.size());
      }
      c_weak_attempts_.add();
      const bool pushed = apply_with_push(id, probe);
      trace_.emit(
          obs::TraceEvent::weak_outcome(id, attempt, victim_count, pushed));
      if (pushed) {
        c_weak_modifications_.add();
        return true;
      }
      for (const GridPoint& g : probe.crossed) {
        bump_history(g.pos);
        const NetId v = grid_.owner(g);
        if (std::find(req.frozen.begin(), req.frozen.end(), v) ==
            req.frozen.end())
          req.frozen.push_back(v);
      }
    }
    req.frozen = fixed_nets_;
  }

  // Stage 3: strong modification — rip the blockers up and re-queue them.
  // Nets whose budget is spent are frozen so the probe only ever proposes
  // evictable victims; with every budget exhausted the probe fails and so
  // does the connection, which is what bounds the whole algorithm.
  if (options_.enable_strong && requeue != nullptr) {
    if (budget_spent()) return false;
    for (NetId v = 0; v < problem_.net_count(); ++v)
      if (v != id &&
          ripup_count_[static_cast<size_t>(v)] >= options_.max_ripups_per_net)
        req.frozen.push_back(v);
    SearchResult probe = search(req);
    if (options_.log)
      *options_.log << "net '" << problem_.net(id).name
                    << "': blocked; push probe "
                    << (probe.found ? "found" : "failed")
                    << " (strong stage), crosses " << probe.crossed.size()
                    << " node(s)\n";
    if (!probe.found) return false;
    if (probe.crossed.empty()) {
      apply_clean(probe.path);
      return true;
    }
    std::set<NetId> victims;
    for (const GridPoint& g : probe.crossed) {
      victims.insert(grid_.owner(g));
      bump_history(g.pos);
    }
    for (const NetId v : victims) {
      if (options_.log)
        *options_.log << "  strong: ripping '" << problem_.net(v).name
                      << "' (rip #" << ripup_count_[static_cast<size_t>(v)] + 1
                      << ")\n";
      rip_routable_wire(v);
      ++ripup_count_[static_cast<size_t>(v)];
      c_strong_ripups_.add();
      requeue->push_back(v);
    }
    if (trace_.on()) {
      std::int64_t remaining = 0;
      for (const NetId v : victims)
        remaining += std::max(
            options_.max_ripups_per_net - ripup_count_[static_cast<size_t>(v)],
            0);
      trace_.emit(obs::TraceEvent::strong_ripup(
          id, remaining, {victims.begin(), victims.end()}));
    }
    // The probe path is now clear by construction; prefer a fresh clean
    // search (often shorter), with the probe as fallback witness.
    req.allow_push = false;
    res = search(req);
    apply_clean(res.found ? res.path : probe.path);
    return true;
  }
  return false;
}

bool IncrementalRouter::route_net(NetId id) {
  // Fixed nets are never (re)routed; they are as routed as their pre-wire.
  if (problem_.net(id).fixed) return net_routed_ok(problem_, grid_, id);
  std::vector<NetId> requeue;
  bool ok = true;
  std::deque<NetId> work{id};
  while (!work.empty() && !budget_spent()) {
    const NetId cur = work.front();
    work.pop_front();
    // One net = one transaction: a throwing search mid-net unwinds here
    // and only this net fails (DESIGN.md §2.1f).
    GridTransaction txn(grid_);
    try {
      c_nets_attempted_.add();
      trace_.emit(obs::TraceEvent::net_start(cur));
      rip_routable_wire(cur);

      const std::vector<Pin> pins = ordered_pins(cur);
      bool net_ok = true;
      int conns_done = 0;
      for (std::size_t i = 1; i < pins.size(); ++i) {
        c_connections_attempted_.add();
        std::vector<GridPoint> sources = pin_nodes(pins[i]);
        std::vector<GridPoint> targets;
        if (i == 1) {
          targets = pin_nodes(pins[0]);
        } else {
          targets = grid_.net_nodes(cur);
        }
        requeue.clear();
        if (!route_connection(cur, sources, targets, &requeue)) {
          net_ok = false;
          break;
        }
        ++conns_done;
        c_connections_routed_.add();
        for (const NetId v : requeue) work.push_back(v);
      }
      if (net_ok && faults_ != nullptr)
        faults_->maybe_throw(fault::Site::kNetCommit);
      if (!net_ok) {
        rip_routable_wire(cur);  // leave only the permanent pre-wire behind
        if (cur == id) ok = false;
      }
      trace_.emit(obs::TraceEvent::net_done(net_ok, cur, conns_done));
      txn.keep();
    } catch (const fault::InjectedFault& f) {
      txn.rollback();
      if (cur == id) ok = false;
      note_fault(f, cur, Degradation::Kind::kFault,
                 std::string(f.what()) + "; net left as before");
      trace_.emit(obs::TraceEvent::net_done(false, cur, 0));
    }
    grid_.commit();
  }
  return ok;
}

int IncrementalRouter::improve(int passes) {
  // ScopedTimer records into the improve_ms phase timer on scope exit, so
  // repeated improve() calls accumulate — they never overwrite run()'s time.
  const obs::ScopedTimer timer(t_improve_);
  // Phase boundary: a fresh strong-modification budget (see run()).
  std::fill(ripup_count_.begin(), ripup_count_.end(), 0);
  int improved = 0;
  const bool wave_engine =
      gauge_ == nullptr && options_.log == nullptr && ensure_wave_state();

  // One net's re-route attempt. Re-checks eligibility (identical to the
  // serial loop's checks; unaffected by other nets' improves, so the wave
  // path sees the same answers). Returns true when the new wire was kept.
  auto improve_one = [&](NetId id, const SpecNet* spec) -> bool {
    const Net& net = problem_.net(id);
    if (net.fixed || net.pins.size() < 2) return false;
    if (!net_routed_ok(problem_, grid_, id)) return false;

    auto wire_cost = [&] {
      return grid_.node_count(id) * options_.costs.step +
             grid_.via_count(id) * options_.costs.via;
    };
    const int old_cost = wire_cost();
    // Transactional: a rejected re-route rolls back explicitly, a throwing
    // search unwinds to the same checkpoint — the net keeps its old wire
    // either way.
    GridTransaction txn(grid_);
    try {
      rip_routable_wire(id);

      // Plain re-route only: clean-up must not disturb other nets.
      const std::vector<Pin> pins = ordered_pins(id);
      bool ok = true;
      for (std::size_t i = 1; i < pins.size() && ok; ++i) {
        SearchRequest req;
        req.net = id;
        req.sources = pin_nodes(pins[i]);
        req.targets = i == 1 ? pin_nodes(pins[0]) : grid_.net_nodes(id);
        const SearchResult res = spec != nullptr && i - 1 < spec->clean.size()
                                     ? replay_search(id, spec->clean[i - 1])
                                     : search(req);
        if (!res.found) {
          ok = false;
          break;
        }
        const bool applied = grid_.apply_path(res.path, id);
        assert(applied);
        (void)applied;
      }
      if (ok && faults_ != nullptr)
        faults_->maybe_throw(fault::Site::kNetCommit);
      if (!ok || !net_routed_ok(problem_, grid_, id) ||
          wire_cost() >= old_cost) {
        txn.rollback();
        trace_.emit(obs::TraceEvent::improve_reject(id, old_cost));
        return false;
      }
      txn.keep();
      trace_.emit(obs::TraceEvent::improve_accept(id, old_cost, wire_cost()));
      return true;
    } catch (const fault::InjectedFault& f) {
      txn.rollback();
      note_fault(f, id, Degradation::Kind::kFault,
                 std::string(f.what()) + "; improve abandoned, old wire kept");
      trace_.emit(obs::TraceEvent::improve_reject(id, old_cost));
      return false;
    }
  };

  for (int pass = 0; pass < passes && !budget_exhausted_; ++pass) {
    bool any = false;
    if (!wave_engine) {
      for (NetId id = 0; id < problem_.net_count(); ++id) {
        if (budget_spent()) break;
        if (improve_one(id, nullptr)) {
          ++improved;
          any = true;
        }
      }
    } else {
      // Wave drain over the eligible nets in id order. Eligibility is
      // stable within a pass (improves never touch other nets' wire), so
      // pre-filtering here matches the serial loop's in-place checks.
      std::deque<NetId> cands;
      for (NetId id = 0; id < problem_.net_count(); ++id) {
        const Net& net = problem_.net(id);
        if (net.fixed || net.pins.size() < 2) continue;
        if (!net_routed_ok(problem_, grid_, id)) continue;
        cands.push_back(id);
      }
      while (!cands.empty()) {
        const std::vector<NetId> wave = form_wave(cands, /*for_improve=*/true);
        c_waves_.add();
        trace_.emit(obs::TraceEvent::wave_formed(
            static_cast<std::int64_t>(wave.size()),
            static_cast<std::int64_t>(cands.size()), wave.size() > 1));
        if (wave.size() == 1) {
          if (improve_one(wave.front(), nullptr)) {
            ++improved;
            any = true;
          }
          continue;
        }
        std::vector<SpecNet> specs(wave.size());
        for (std::size_t j = 0; j < wave.size(); ++j) specs[j].id = wave[j];
        // Rejected improves roll back to the mark, so their dirty box is
        // empty and they never invalidate later speculations in the wave.
        bool speculated = true;
        try {
          wave_pool_->run(static_cast<int>(wave.size()),
                          [&](int worker, int j) {
                            speculate_net(
                                specs[static_cast<std::size_t>(j)],
                                *wave_workers_[static_cast<std::size_t>(worker)],
                                /*with_probe=*/false);
                          });
        } catch (const fault::InjectedFault& f) {
          speculated = false;
          note_fault(f, kNoNet, Degradation::Kind::kWaveDisabled,
                     std::string(f.what()) + "; wave improved serially");
        }
        auto commit_one = [&](NetId id, const SpecNet* s) {
          if (improve_one(id, s)) {
            ++improved;
            any = true;
          }
        };
        if (speculated) {
          commit_wave(specs, commit_one);
        } else {
          for (const NetId id : wave) commit_one(id, nullptr);
        }
      }
    }
    grid_.commit();
    if (!any) break;
  }
  return improved;
}

RouteOutcome IncrementalRouter::run() {
  const auto t0 = std::chrono::steady_clock::now();
  std::deque<NetId> queue;
  for (NetId id = 0; id < problem_.net_count(); ++id)
    if (problem_.net(id).pins.size() >= 2 && !problem_.net(id).fixed)
      queue.push_back(id);
  const int multi_pin = static_cast<int>(queue.size());

  auto by_span = [this](NetId a, NetId b) {
    return std::pair{net_span(a), a} < std::pair{net_span(b), b};
  };
  switch (options_.ordering) {
    case RouterOptions::Ordering::kMostConstrainedFirst:
      std::sort(queue.begin(), queue.end(), by_span);
      break;
    case RouterOptions::Ordering::kLargestFirst:
      std::sort(queue.begin(), queue.end(),
                [&](NetId a, NetId b) { return by_span(b, a); });
      break;
    case RouterOptions::Ordering::kAsGiven:
      break;
    case RouterOptions::Ordering::kShuffled: {
      Rng rng(options_.shuffle_seed);
      for (std::size_t i = queue.size(); i > 1; --i)
        std::swap(queue[i - 1], queue[rng.next_below(i)]);
      break;
    }
  }

  // Every multi-pin net starts unrouted. `routed` tracks live completions
  // so the best state seen can be checkpointed: rip-up is allowed to pass
  // through worse states, but must never *end* in one. The whole run stays
  // journaled (no commit) to make the final best-state rollback possible.
  std::set<NetId> routed;
  std::set<NetId> failed;
  std::size_t best_routed = 0;
  RoutingGrid::Mark best_mark = grid_.mark();

  // The per-net serial body, shared by the plain drain and the wave
  // commits. With a validated speculation its recorded searches replay;
  // everything it mutates, requeues or emits is identical either way.
  auto route_one = [&](NetId id, const SpecNet* spec, std::deque<NetId>& work) {
    c_nets_attempted_.add();
    trace_.emit(obs::TraceEvent::net_start(id));
    // Transactional net commit: a throw anywhere in the body (cost provider,
    // injected fault, allocation) unwinds the rip and every partial path, so
    // the net is left exactly as it was before this attempt. The rollback
    // target is >= best_mark (the journal only grows between checkpoints),
    // so the best-state checkpoint is never disturbed.
    GridTransaction txn(grid_);
    try {
      rip_routable_wire(id);
      routed.erase(id);

      const std::vector<Pin> pins = ordered_pins(id);
      bool net_ok = true;
      int conns_done = 0;
      std::vector<NetId> requeue;
      for (std::size_t i = 1; i < pins.size(); ++i) {
        c_connections_attempted_.add();
        std::vector<GridPoint> sources = pin_nodes(pins[i]);
        std::vector<GridPoint> targets =
            i == 1 ? pin_nodes(pins[0]) : grid_.net_nodes(id);
        const SpecSearch* spec_clean = nullptr;
        const SpecSearch* spec_probe = nullptr;
        if (spec != nullptr && i - 1 < spec->clean.size()) {
          spec_clean = &spec->clean[i - 1];
          if (!spec_clean->result.found && spec->probe.has_value())
            spec_probe = &*spec->probe;
        }
        requeue.clear();
        if (!route_connection(id, sources, targets, &requeue, spec_clean,
                              spec_probe)) {
          net_ok = false;
          break;
        }
        ++conns_done;
        c_connections_routed_.add();
        for (const NetId v : requeue) {
          work.push_back(v);
          failed.erase(v);
          routed.erase(v);  // its wire is gone until re-routed
        }
      }
      if (net_ok && faults_ != nullptr)
        faults_->maybe_throw(fault::Site::kNetCommit);
      if (net_ok) {
        failed.erase(id);
        routed.insert(id);
      } else {
        rip_routable_wire(id);  // leave only the permanent pre-wire behind
        failed.insert(id);
      }
      txn.keep();
      trace_.emit(obs::TraceEvent::net_done(net_ok, id, conns_done));
      if (routed.size() > best_routed) {
        best_routed = routed.size();
        best_mark = grid_.mark();
      }
    } catch (const fault::InjectedFault& f) {
      txn.rollback();
      // The rollback may have restored this net's (or a victim's) old wire;
      // the bookkeeping here is conservative and the final failed list is
      // recomputed from the grid at the end of run(), so it self-corrects.
      routed.erase(id);
      failed.insert(id);
      note_fault(f, id, Degradation::Kind::kFault,
                 std::string(f.what()) + "; net left as before the attempt");
      trace_.emit(obs::TraceEvent::net_done(false, id, 0));
    }
  };

  // Budgeted or narrated runs use the historical serial drain: the kernel's
  // deterministic expansion cap is charged per query in program order, and
  // the wave engine would reorder that accounting. Everything else drains
  // in waves — including net_threads == 1, so traces and stats are one
  // function of the options, not of the thread count.
  const bool wave_engine =
      gauge_ == nullptr && options_.log == nullptr && ensure_wave_state();

  // Budget checks sit at net boundaries (plus the search-loop checkpoints
  // inside the kernel): an exhausted budget stops the drain between nets,
  // so the grid is always left in a committed, verifiable state.
  auto drain = [&](std::deque<NetId> work) {
    while (!work.empty() && !budget_spent()) {
      if (!wave_engine) {
        const NetId id = work.front();
        work.pop_front();
        route_one(id, nullptr, work);
        continue;
      }
      const std::vector<NetId> wave = form_wave(work, /*for_improve=*/false);
      c_waves_.add();
      trace_.emit(obs::TraceEvent::wave_formed(
          static_cast<std::int64_t>(wave.size()),
          static_cast<std::int64_t>(work.size()), wave.size() > 1));
      if (wave.size() == 1) {  // nothing to overlap with — skip speculation
        route_one(wave.front(), nullptr, work);
        continue;
      }
      std::vector<SpecNet> specs(wave.size());
      for (std::size_t j = 0; j < wave.size(); ++j) specs[j].id = wave[j];
      bool speculated = true;
      try {
        // WavePool drains every job and joins the full wave before
        // rethrowing the first captured exception, so no worker is still
        // touching specs/grid state when control reaches the catch.
        wave_pool_->run(static_cast<int>(wave.size()), [&](int worker, int j) {
          speculate_net(specs[static_cast<std::size_t>(j)],
                        *wave_workers_[static_cast<std::size_t>(worker)],
                        /*with_probe=*/true);
        });
      } catch (const fault::InjectedFault& f) {
        speculated = false;
        note_fault(f, kNoNet, Degradation::Kind::kWaveDisabled,
                   std::string(f.what()) + "; wave routed serially");
      }
      if (speculated) {
        commit_wave(specs, [&](NetId id, const SpecNet* s) {
          route_one(id, s, work);
        });
      } else {
        // Speculation is an optimization only: routing the wave serially
        // (no replay) produces the identical committed state.
        for (const NetId id : wave) route_one(id, nullptr, work);
      }
    }
  };

  drain(queue);
  for (int pass = 0;
       pass < options_.retry_passes && !failed.empty() && !budget_exhausted_;
       ++pass)
    drain({failed.begin(), failed.end()});

  // Land on the best state the run ever reached.
  if (routed.size() < best_routed) grid_.rollback(best_mark);
  grid_.commit();

  // Phase boundary: the strong-modification budget is per phase. Rip-ups
  // spent during this run must not silently freeze nets against later
  // incremental work (improve(), route_net() edits) — regression:
  // Improve.RipupBudgetResetsBetweenPhases.
  std::fill(ripup_count_.begin(), ripup_count_.end(), 0);

  RouteOutcome outcome;
  for (NetId id = 0; id < problem_.net_count(); ++id)
    if (problem_.net(id).pins.size() >= 2 && !problem_.net(id).fixed &&
        !net_routed_ok(problem_, grid_, id))
      outcome.failed.push_back(id);
  c_nets_routed_.add(multi_pin - static_cast<int>(outcome.failed.size()));
  t_run_.record_ms(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
  outcome.stats = stats();
  return outcome;
}

}  // namespace gridroute
