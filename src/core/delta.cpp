#include "core/delta.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "search/future_cost.hpp"
#include "verify/verify.hpp"

namespace gridroute {

namespace {

Rect grow_point(Rect box, Point p) {
  const Rect cell{p, p};
  return box.valid() ? box.bounding_union(cell) : cell;
}

Rect grow_rect(Rect box, const Rect& r) {
  if (!r.valid()) return box;
  return box.valid() ? box.bounding_union(r) : r;
}

Rect nodes_bbox(const std::vector<GridPoint>& nodes) {
  Rect box{{0, 0}, {-1, -1}};
  for (const GridPoint& g : nodes) box = grow_point(box, g.pos);
  return box;
}

/// Planar bounding box of a net's pins and pre-wire (the same box the
/// utilization screen prices).
Rect net_shape_bbox(const Net& net) {
  Rect box{{0, 0}, {-1, -1}};
  for (const Pin& p : net.pins) box = grow_point(box, p.pos);
  for (const Segment& s : net.prewire)
    box = grow_rect(box, Rect::spanning(s.a.pos, s.b.pos));
  return box;
}

Status unknown_net(const char* op, NetId id) {
  std::ostringstream os;
  os << "edit: " << op << " names unknown net " << id;
  return Status::validation_error(os.str());
}

Status bad_pin_index(const char* op, NetId id, int pin) {
  std::ostringstream os;
  os << "edit: " << op << " pin index " << pin
     << " out of range for base net " << id;
  return Status::validation_error(os.str());
}

}  // namespace

StatusOr<Problem> apply_edit(const Problem& base, const ProblemEdit& edit) {
  Problem out = base;
  const NetId base_nets = base.net_count();
  const auto in_base = [base_nets](NetId id) {
    return id >= 0 && id < base_nets;
  };

  for (const ProblemEdit::MovePin& m : edit.move_pins) {
    if (!in_base(m.net)) return unknown_net("move_pin", m.net);
    auto& pins = out.net(m.net).pins;
    if (m.pin < 0 || m.pin >= static_cast<int>(base.net(m.net).pins.size()))
      return bad_pin_index("move_pin", m.net, m.pin);
    pins[static_cast<std::size_t>(m.pin)].pos = m.to;
  }
  for (const ProblemEdit::AddPin& a : edit.add_pins) {
    if (!in_base(a.net)) return unknown_net("add_pin", a.net);
    out.net(a.net).pins.push_back(a.pin);
  }
  // Removals name base indices. Applied per net in descending index order
  // (duplicates collapsed) so each erase leaves the smaller indices valid;
  // pins appended above sit past the base list and are unaffected.
  std::vector<ProblemEdit::RemovePin> removals = edit.remove_pins;
  std::sort(removals.begin(), removals.end(),
            [](const ProblemEdit::RemovePin& a, const ProblemEdit::RemovePin& b) {
              return a.net != b.net ? a.net < b.net : a.pin > b.pin;
            });
  removals.erase(std::unique(removals.begin(), removals.end(),
                             [](const ProblemEdit::RemovePin& a,
                                const ProblemEdit::RemovePin& b) {
                               return a.net == b.net && a.pin == b.pin;
                             }),
                 removals.end());
  for (const ProblemEdit::RemovePin& r : removals) {
    if (!in_base(r.net)) return unknown_net("remove_pin", r.net);
    auto& pins = out.net(r.net).pins;
    if (r.pin < 0 || r.pin >= static_cast<int>(base.net(r.net).pins.size()))
      return bad_pin_index("remove_pin", r.net, r.pin);
    pins.erase(pins.begin() + r.pin);
  }
  for (const NetId id : edit.remove_nets) {
    if (!in_base(id)) return unknown_net("remove_net", id);
    // Tombstone: the id and name stay (ids must be stable across the edit,
    // and the name keeps the uniqueness rule trivially satisfied), the
    // geometry goes.
    Net& net = out.net(id);
    net.pins.clear();
    net.prewire.clear();
    net.previas.clear();
    net.fixed = false;
  }
  for (const Net& n : edit.add_nets) out.add_net(n);
  for (const ProblemEdit::AddObstacle& o : edit.add_obstacles) {
    if (o.all_layers)
      out.region().add_obstacle(o.rect);
    else
      out.region().add_obstacle(o.rect, o.layer);
  }
  for (const Rect& r : edit.subtract_region) out.region().subtract(r);
  return out;
}

void export_net_wire(const RoutingGrid& grid, NetId id,
                     std::vector<Segment>* segments,
                     std::vector<PreVia>* vias) {
  segments->clear();
  vias->clear();
  std::vector<GridPoint> nodes = grid.net_nodes(id);
  const std::unordered_set<GridPoint> owned(nodes.begin(), nodes.end());
  const auto has = [&owned](int x, int y, Layer l) {
    return owned.count(GridPoint{{x, y}, l}) != 0;
  };

  // Maximal horizontal runs, then vertical, then isolated cells — every
  // owned node is covered by at least one emitted run (junction cells may
  // appear in two; pre-wire application tolerates same-net overlap).
  std::sort(nodes.begin(), nodes.end(),
            [](const GridPoint& a, const GridPoint& b) {
              if (a.layer != b.layer) return a.layer < b.layer;
              if (a.pos.y != b.pos.y) return a.pos.y < b.pos.y;
              return a.pos.x < b.pos.x;
            });
  for (const GridPoint& g : nodes) {
    if (has(g.pos.x - 1, g.pos.y, g.layer)) continue;  // not a run start
    int x2 = g.pos.x;
    while (has(x2 + 1, g.pos.y, g.layer)) ++x2;
    if (x2 > g.pos.x)
      segments->push_back({g, {{x2, g.pos.y}, g.layer}});
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const GridPoint& a, const GridPoint& b) {
              if (a.layer != b.layer) return a.layer < b.layer;
              if (a.pos.x != b.pos.x) return a.pos.x < b.pos.x;
              return a.pos.y < b.pos.y;
            });
  for (const GridPoint& g : nodes) {
    if (has(g.pos.x, g.pos.y - 1, g.layer)) continue;
    int y2 = g.pos.y;
    while (has(g.pos.x, y2 + 1, g.layer)) ++y2;
    if (y2 > g.pos.y) {
      segments->push_back({g, {{g.pos.x, y2}, g.layer}});
    } else if (!has(g.pos.x - 1, g.pos.y, g.layer) &&
               !has(g.pos.x + 1, g.pos.y, g.layer)) {
      segments->push_back({g, g});  // isolated cell: a via landing or stub
    }
  }

  const int cuts = grid.cut_count();
  for (const GridPoint& g : nodes) {
    const int k = layer_index(g.layer);  // cut k's lower landing layer
    if (k < cuts && grid.via_owner(g.pos, k) == id)
      vias->push_back({g.pos, k});
  }
  std::sort(vias->begin(), vias->end(), [](const PreVia& a, const PreVia& b) {
    if (a.pos != b.pos) return a.pos < b.pos;
    return a.cut < b.cut;
  });
}

DeltaPlan plan_delta(const Problem& base, const RoutingGrid& base_layout,
                     const Problem& edited, const ProblemEdit& edit) {
  DeltaPlan plan;
  const NetId base_nets = base.net_count();

  // Nets an op named directly.
  std::unordered_set<NetId> touched;
  for (const ProblemEdit::MovePin& m : edit.move_pins) touched.insert(m.net);
  for (const ProblemEdit::AddPin& a : edit.add_pins) touched.insert(a.net);
  for (const ProblemEdit::RemovePin& r : edit.remove_pins)
    touched.insert(r.net);
  for (const NetId id : edit.remove_nets) touched.insert(id);

  // Dirty box: every planar cell whose routing-relevant state the edit
  // changed — edited pin positions old and new, the base wire an edited or
  // removed net vacates, new geometry.
  Rect box{{0, 0}, {-1, -1}};
  for (const ProblemEdit::MovePin& m : edit.move_pins) {
    box = grow_point(box, base.net(m.net).pins[static_cast<std::size_t>(m.pin)].pos);
    box = grow_point(box, m.to);
  }
  for (const ProblemEdit::AddPin& a : edit.add_pins)
    box = grow_point(box, a.pin.pos);
  for (const ProblemEdit::RemovePin& r : edit.remove_pins)
    box = grow_point(box, base.net(r.net).pins[static_cast<std::size_t>(r.pin)].pos);
  for (const NetId id : touched)
    if (id >= 0 && id < base_nets) {
      box = grow_rect(box, nodes_bbox(base_layout.net_nodes(id)));
      box = grow_rect(box, net_shape_bbox(base.net(id)));
    }
  for (const Net& n : edit.add_nets) box = grow_rect(box, net_shape_bbox(n));
  for (const ProblemEdit::AddObstacle& o : edit.add_obstacles)
    box = grow_rect(box, o.rect);
  for (const Rect& r : edit.subtract_region) box = grow_rect(box, r);
  plan.dirty_box = box;

  // Reserved pin cells of the edited problem, the verifier's exclusivity
  // rule: an any-layer pin reserves its cell on every layer, a committed
  // pin on its own. Preserved wire may never sit on a foreign reservation.
  struct Reservation {
    NetId net;
    bool any_layer;
    Layer layer;
  };
  std::unordered_map<Point, std::vector<Reservation>> reserved;
  for (NetId id = 0; id < edited.net_count(); ++id)
    for (const Pin& p : edited.net(id).pins)
      reserved[p.pos].push_back({id, p.any_layer, p.layer});

  const auto wire_still_legal = [&](NetId id) {
    for (const GridPoint& g : base_layout.net_nodes(id)) {
      if (!edited.region().routable(g)) return false;
      const auto it = reserved.find(g.pos);
      if (it == reserved.end()) continue;
      for (const Reservation& r : it->second)
        if (r.net != id && (r.any_layer || r.layer == g.layer)) return false;
    }
    return true;
  };

  for (NetId id = 0; id < edited.net_count(); ++id) {
    const Net& net = edited.net(id);
    if (id < base_nets && base.net(id).fixed) {
      // Fixed nets are pre-routed by contract: the router can neither rip
      // nor re-route them, so they pass through every delta unchanged.
      plan.preserved.push_back(id);
      continue;
    }
    if (id >= base_nets && net.fixed) continue;  // new pre-routed wire
    if (net.pins.size() < 2) continue;  // trivial either way, no wire owed
    bool invalid = id >= base_nets || touched.count(id) != 0 ||
                   !net_routed_ok(base, base_layout, id);
    if (!invalid && plan.dirty_box.valid()) {
      Rect fp = nodes_bbox(base_layout.net_nodes(id));
      for (const Pin& p : net.pins) fp = grow_point(fp, p.pos);
      invalid = fp.valid() && fp.inflated(1).intersects(plan.dirty_box);
    }
    // Belt and braces on top of the box test: demote any net whose exact
    // wire the edit made illegal (a new obstacle or pin landing on it).
    if (!invalid && !wire_still_legal(id)) invalid = true;
    (invalid ? plan.invalidated : plan.preserved).push_back(id);
  }

  plan.warm = edited;
  for (const NetId id : plan.preserved) {
    if (id < base_nets && base.net(id).fixed) continue;  // already frozen
    Net& net = plan.warm.net(id);
    export_net_wire(base_layout, id, &net.prewire, &net.previas);
    net.fixed = true;
  }
  return plan;
}

double hpwl_utilization(const Problem& problem) {
  const long long capacity = problem.region().routable_node_count();
  if (capacity <= 0) return problem.net_count() > 0 ? 2.0 : 0.0;
  long long demand = 0;
  for (const Net& net : problem.nets()) {
    // Half-perimeter of the net's pin + pre-wire bounding box: no connected
    // wire shape touching every pin can occupy fewer nodes.
    const Rect box = net_shape_bbox(net);
    if (box.valid()) demand += (box.hi.x - box.lo.x) + (box.hi.y - box.lo.y) + 1;
  }
  return static_cast<double>(demand) / static_cast<double>(capacity);
}

RoutabilityEstimate assess_routability(const Problem& problem) {
  RoutabilityEstimate est;
  est.utilization = hpwl_utilization(problem);

  const Region& region = problem.region();
  const Rect& b = region.bounds();
  if (!b.valid()) return est;
  const LayerStack& stack = region.layers();
  std::vector<std::int64_t> x_demand(static_cast<std::size_t>(b.width() - 1), 0);
  std::vector<std::int64_t> y_demand(static_cast<std::size_t>(b.height() - 1), 0);
  std::vector<std::int64_t> x_cap(x_demand.size(), 0);
  std::vector<std::int64_t> y_cap(y_demand.size(), 0);

  // Capacity of a cut: adjacent routable node pairs across it, on layers
  // whose direction rule permits a step along that axis. A net crossing
  // the cut must make an actual legal planar step across it somewhere, and
  // wire is exclusively owned — so each crossing net consumes at least one
  // pair, making demand > capacity a proof of infeasibility.
  for (int k = 0; k < stack.count(); ++k) {
    const Layer l = layer_at(k);
    const bool step_x = !stack.directed(l) || stack.horizontal(l);
    const bool step_y = !stack.directed(l) || !stack.horizontal(l);
    for (int y = b.lo.y; y <= b.hi.y; ++y)
      for (int x = b.lo.x; x <= b.hi.x; ++x) {
        if (!region.routable({{x, y}, l})) continue;
        if (step_x && x < b.hi.x && region.routable({{x + 1, y}, l}))
          ++x_cap[static_cast<std::size_t>(x - b.lo.x)];
        if (step_y && y < b.hi.y && region.routable({{x, y + 1}, l}))
          ++y_cap[static_cast<std::size_t>(y - b.lo.y)];
      }
  }

  // Demand: a multi-pin net must cross every cut strictly inside its
  // pin + pre-wire bounding box to connect the pins on either side.
  for (const Net& net : problem.nets()) {
    if (net.pins.size() < 2) continue;
    const Rect box = net_shape_bbox(net);
    if (!box.valid()) continue;
    for (int c = box.lo.x; c < box.hi.x; ++c)
      ++x_demand[static_cast<std::size_t>(c - b.lo.x)];
    for (int c = box.lo.y; c < box.hi.y; ++c)
      ++y_demand[static_cast<std::size_t>(c - b.lo.y)];
  }

  std::vector<std::int64_t> x_over(x_cap.size(), 0);
  std::vector<std::int64_t> y_over(y_cap.size(), 0);
  for (std::size_t i = 0; i < x_over.size(); ++i)
    x_over[i] = std::max<std::int64_t>(0, x_demand[i] - x_cap[i]);
  for (std::size_t i = 0; i < y_over.size(); ++i)
    y_over[i] = std::max<std::int64_t>(0, y_demand[i] - y_cap[i]);

  // The congestion map exported as a lower-bound grid (CutLowerBounds);
  // the corner-to-corner query sums every cut's provable overflow.
  const search::CutLowerBounds congestion(b.lo, std::move(x_over),
                                          std::move(y_over));
  est.cut_overflow = congestion.bound(b.lo, Rect{b.hi, b.hi});
  return est;
}

DeltaResult route_delta(const DeltaRequest& request) {
  if (request.base_problem == nullptr || request.base_layout == nullptr)
    throw std::invalid_argument(
        "route_delta: base_problem and base_layout are required");
  DeltaResult out;
  const obs::Trace trace(request.trace, 0);
  const std::int64_t ops = request.edit.op_count();

  StatusOr<Problem> edited = apply_edit(*request.base_problem, request.edit);
  if (!edited.ok()) {
    trace.emit(obs::TraceEvent::delta_submitted(ops, 0, false));
    out.result.status = edited.status();
    out.result.degradation.push_back({Degradation::Kind::kValidation, 0,
                                      kNoNet, edited.status().message()});
    return out;
  }
  out.edited = *std::move(edited);

  // The same mandatory admission gate route() runs: an invalid edited
  // problem is never planned or routed (DESIGN.md §2.1f).
  const std::vector<Status> issues = out.edited.validate_status();
  if (!issues.empty()) {
    trace.emit(obs::TraceEvent::delta_submitted(ops, 0, false));
    out.result.status = issues.front();
    out.result.grid = RoutingGrid(out.edited.region(), out.edited.net_count());
    for (NetId id = 0; id < out.edited.net_count(); ++id) {
      const Net& net = out.edited.net(id);
      if (net.pins.size() >= 2 && !net.fixed) out.result.failed.push_back(id);
    }
    for (const Status& s : issues)
      out.result.degradation.push_back(
          {Degradation::Kind::kValidation, 0, kNoNet, s.message()});
    return out;
  }

  DeltaPlan plan = plan_delta(*request.base_problem, *request.base_layout,
                              out.edited, request.edit);
  out.dirty_box = plan.dirty_box;
  out.preserved = plan.preserved;
  out.rerouted = plan.invalidated;
  trace.emit(obs::TraceEvent::delta_submitted(
      ops, plan.dirty_box.valid() ? plan.dirty_box.area() : 0, true));
  trace.emit(obs::TraceEvent::delta_nets(obs::EventKind::kNetsPreserved,
                                         plan.preserved));
  trace.emit(obs::TraceEvent::delta_nets(obs::EventKind::kNetsInvalidated,
                                         plan.invalidated));

  if (request.prescreen) {
    const RoutabilityEstimate est = assess_routability(out.edited);
    if (est.provably_infeasible()) {
      out.prescreen_rejected = true;
      // Replay the warm start so the caller still holds every preserved
      // net's wire; the invalidated nets are failed without an attempt.
      IncrementalRouter replay(plan.warm, request.options);
      out.result.grid = replay.grid();
      out.result.failed = plan.invalidated;
      std::ostringstream why;
      why << "routability pre-screen rejected the edit: utilization "
          << est.utilization << ", provable cut overflow " << est.cut_overflow;
      out.result.status = Status::resource_error(why.str());
      out.result.degradation.push_back(
          {Degradation::Kind::kPrescreen, 0, kNoNet, why.str()});
      trace.emit(obs::TraceEvent::degraded(
          kNoNet, static_cast<std::int64_t>(Degradation::Kind::kPrescreen)));
      return out;
    }
  }

  RouteRequest run;
  run.problem = &plan.warm;
  run.options = request.options;
  run.budget = request.budget;
  run.trace = request.trace;
  run.extra_attempts = request.extra_attempts;
  run.improve_passes = request.improve_passes;
  run.arena = request.arena;
  run.faults = request.faults;
  out.result = route(run);
  return out;
}

}  // namespace gridroute
