#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "grid/routing_grid.hpp"
#include "maze/maze_router.hpp"
#include "obs/budget.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "problem/problem.hpp"

namespace gridroute {

class WavePool;  // core/wave_pool.hpp — the net-parallel worker pool

namespace fault {
class Injector;       // fault/fault.hpp — deterministic fault injection
class InjectedFault;  // the exception an armed injection site throws
}  // namespace fault

/// One graceful-degradation diagnostic: the router hit a failure it could
/// absorb (injected or real) and fell back instead of crashing. Collected
/// on RouteResult::degradation; an empty list means the run was entirely
/// nominal. Every entry was also emitted as a kDegraded trace event (when a
/// sink was installed and itself alive).
struct Degradation {
  enum class Kind : std::uint8_t {
    kValidation,     ///< invalid problem refused by the route() gate
    kBudget,         ///< budget (or forced exhaustion) stopped the run early
    kFault,          ///< a fault mid-net was absorbed; the net is failed
    kSinkDisabled,   ///< the trace sink threw; tracing stopped, run went on
    kWaveDisabled,   ///< wave engine unavailable/failed; serial fallback
    kAttemptAborted, ///< a multi-start attempt died; partial result salvaged
    kPrescreen,      ///< routability pre-screen proved a delta infeasible;
                     ///< the invalidated nets were never attempted
    kBrownOut,       ///< the serving layer admitted this job under queue
                     ///< pressure with a tightened budget (DESIGN.md §2.5)
  };
  Kind kind = Kind::kFault;
  int attempt = 0;     ///< multi-start attempt the fallback happened in
  NetId net = kNoNet;  ///< affected net, kNoNet when run-wide
  std::string detail;  ///< human-readable cause
};

inline const char* degradation_kind_name(Degradation::Kind kind) {
  switch (kind) {
    case Degradation::Kind::kValidation: return "validation";
    case Degradation::Kind::kBudget: return "budget";
    case Degradation::Kind::kFault: return "fault";
    case Degradation::Kind::kSinkDisabled: return "sink_disabled";
    case Degradation::Kind::kWaveDisabled: return "wave_disabled";
    case Degradation::Kind::kAttemptAborted: return "attempt_aborted";
    case Degradation::Kind::kPrescreen: return "prescreen";
    case Degradation::Kind::kBrownOut: return "brown_out";
  }
  return "unknown";
}

/// Knobs of the incremental router. The defaults are the configuration the
/// benchmark tables report as "full router"; the ablation benches toggle
/// the modification stages.
struct RouterOptions {
  CostModel costs;

  /// Future cost steering every maze search this router runs (the main
  /// search lane and each wave worker's). See FutureCost: every mode is
  /// cost-optimal; they differ in expansions — and, through equal-cost
  /// tie-breaking, in *which* optimal path is returned, so the mode is a
  /// routing-relevant knob, not just a speed dial (DESIGN.md §2.1g).
  FutureCost future_cost = FutureCost::kResidual;

  /// Stage 2: weak modification — push segments of blocking nets aside
  /// (sever locally, repair around the new wire).
  bool enable_weak = true;
  /// Stage 3: strong modification — rip blocking nets up entirely and
  /// re-queue them.
  bool enable_strong = true;

  /// Per-net strong-modification budget. Together with the finite net count
  /// this bounds the total number of rip-ups, giving the guaranteed
  /// termination the original paper proves for its algorithm.
  int max_ripups_per_net = 8;
  /// Cap on reconnection searches inside one weak repair.
  int max_repair_steps = 16;
  /// Push probes per blocked connection: after a probe's victims prove
  /// unrepairable they are frozen and the search proposes a different
  /// crossing, up to this many times. Retuned 3 → 5 alongside the
  /// FutureCost::kResidual default: the sharper bound changes equal-cost
  /// tie-breaking, and the extra victim diversity restores the Table 1
  /// density results at *less* total effort than escalating to rip-up
  /// (deutsch-class-b at density: 38 rip-ups vs 185 at 3 retries).
  int weak_probe_retries = 5;
  /// After the main loop, failed nets get this many whole extra passes.
  int retry_passes = 1;

  enum class Ordering {
    kMostConstrainedFirst,  ///< short bounding half-perimeter first (default)
    kLargestFirst,          ///< long nets first
    kAsGiven,               ///< netlist order (stress test for rip-up)
    kShuffled,              ///< deterministic shuffle from `shuffle_seed`
  };
  Ordering ordering = Ordering::kMostConstrainedFirst;
  /// Seed for Ordering::kShuffled (ignored otherwise). Multi-start routing
  /// (RouteRequest::extra_attempts) mixes this with each attempt index, so
  /// restarts explore orders distinct from each other and from a kShuffled
  /// base run.
  std::uint64_t shuffle_seed = 1;

  /// Worker threads for multi-start routing. 0 = one per hardware thread
  /// (std::thread::hardware_concurrency, at least 1); 1 = run attempts
  /// serially on the calling thread; n = a pool of n workers. The winner is
  /// bit-identical for every value — threads only change wall-clock time.
  int threads = 0;

  /// Worker threads for the net-parallel wave engine inside one attempt's
  /// run()/improve(): a prefix of queued nets with pairwise-disjoint
  /// bounding boxes is searched speculatively in parallel against the
  /// current grid, then committed in the exact serial net order; a commit
  /// whose read footprint was dirtied by an earlier commit in the wave
  /// re-routes that net serially (DESIGN.md §2.1e). 0 = one per hardware
  /// thread; n = n workers. Results, stats (minus wall times) and traces
  /// are bit-identical for every value — and identical to the historical
  /// serial drain — so threads only change wall-clock time. Runs with a
  /// RunBudget installed or a narration `log` fall back to the serial
  /// drain (and emit no wave events).
  int net_threads = 1;

  /// When set, the router narrates every modification decision (weak
  /// probes, victim repairs, rip-ups) to this stream. Diagnostic aid; no
  /// effect on routing. For machine-readable observability use the typed
  /// event trace (RouteRequest::trace / IncrementalRouter::set_trace).
  std::ostream* log = nullptr;
};

/// Aggregate effort/result counters for one routing run — a snapshot view
/// assembled from the router's obs::MetricsRegistry (the registry is the
/// source of truth; this struct is the stable export shape every table and
/// test reads).
struct RouteStats {
  int nets_attempted = 0;
  int nets_routed = 0;
  int connections_attempted = 0;
  int connections_routed = 0;
  int weak_modifications = 0;   ///< successful segment pushes
  int weak_attempts = 0;        ///< weak probes (successful or not)
  int strong_ripups = 0;        ///< victim nets ripped and re-queued
  long long expansions = 0;     ///< maze-search node pops (work measure)
  // Net-parallel wave engine (zero on the serial fallback drain). All
  // three are pure functions of routing decisions — identical at any
  // net_threads value.
  int waves = 0;               ///< waves formed across run() and improve()
  int spec_commits = 0;        ///< speculations committed as recorded
  int spec_invalidations = 0;  ///< speculations discarded at commit time
  /// Wall-clock split by phase (observability only; never feeds back into
  /// decisions). wall_ms is always run_ms + improve_ms — the phases are
  /// reported distinctly and the total accumulates, it is never
  /// overwritten by a later phase.
  double run_ms = 0;      ///< time inside run()
  double improve_ms = 0;  ///< time inside improve() passes
  double wall_ms = 0;     ///< run_ms + improve_ms
};

struct RouteOutcome {
  RouteStats stats;
  std::vector<NetId> failed;  ///< multi-pin nets left unrouted

  bool complete() const { return failed.empty(); }
};

/// One attempt of a multi-start run (RouteResult::attempts observability).
struct AttemptReport {
  int index = 0;           ///< 0 = base ordering, 1.. = shuffled restarts
  std::uint64_t seed = 0;  ///< shuffle seed the attempt routed with
  bool ran = false;        ///< false when early-cancelled before starting
  bool complete = false;
  int nets_routed = 0;
  /// Search-kernel expansions (queue pops) the attempt spent. Lee and
  /// weighted searches count through the same kernel counter, so the metric
  /// is comparable across router baselines.
  long long expansions = 0;
  double wall_ms = 0;
};

/// The library's core: a general two-layer detailed router for channels,
/// switchboxes, and irregular, partially blocked regions.
///
/// It routes nets incrementally with a weighted maze search and, when a
/// connection is blocked, escalates through two modification stages:
///
///   1. plain attempt   — shortest clean path, no disturbance;
///   2. weak (push)     — probe a path through foreign wire at a penalty,
///                        sever exactly the crossed nodes, and locally
///                        repair each victim around the new wire (all under
///                        a journal, rolled back atomically on failure);
///   3. strong (rip-up) — evict the blocking nets entirely and re-queue
///                        them, bounded by a per-net rip-up budget.
///
/// The budget makes termination unconditional; the metrics registry and the
/// event trace expose how much of each stage a run needed.
///
/// This class is the engine. The preferred entry point is the unified
/// route(RouteRequest) API in core/api.hpp, which wires up tracing, budgets
/// and multi-start around it.
class IncrementalRouter {
 public:
  /// `arena` optionally lends search scratch to the router's maze search
  /// (the multi-start engine gives each worker thread one arena reused
  /// across all of its attempts); the router's search owns its own arena
  /// when null.
  explicit IncrementalRouter(const Problem& problem, RouterOptions options = {},
                             SearchArena* arena = nullptr);
  ~IncrementalRouter();

  /// Routes every multi-pin net. Call once.
  RouteOutcome run();

  /// Routes one net on the current state (used by examples/tests to build
  /// scenarios step by step). No strong modification is triggered by this
  /// entry point unless the victim budget allows re-queuing — victims that
  /// get ripped are routed again immediately.
  bool route_net(NetId id);

  /// Post-routing clean-up: re-routes each completed net in the context of
  /// the finished layout and keeps the new wire only when strictly cheaper
  /// (cells weighted by step cost, vias by via cost). Rip-up and pushing
  /// leave detours behind; a few passes of this recovers most of them.
  /// Never un-completes a net (journal rollback on regression). Returns the
  /// number of successful re-routes across all passes.
  int improve(int passes = 1);

  /// Installs a structured event trace: net lifecycle, weak probes, strong
  /// rip-ups, improve decisions, plus the search kernel's per-query events.
  /// `attempt` stamps every emitted event (multi-start attempt index).
  /// Pass nullptr to uninstall. Instrumentation is an inlined null check
  /// when no sink is installed.
  void set_trace(obs::TraceSink* sink, int attempt = 0);

  /// Installs a run budget gauge (non-owning). Checked at stage boundaries
  /// and, through the search kernel, at search-loop checkpoints; once
  /// exhausted the run stops cleanly with the failed-net list intact.
  void set_budget(obs::BudgetGauge* gauge) { gauge_ = gauge; }
  /// True once a budget check tripped during run()/improve().
  bool budget_exhausted() const { return budget_exhausted_; }

  /// Installs a fault injector (non-owning; see fault/fault.hpp). Named
  /// sites across the router — the search kernel, wave speculation, net
  /// commit, budget checks — consult it; a fired site degrades the run (the
  /// affected net fails, the wave engine falls back to the serial drain, or
  /// the run stops as if budget-exhausted) but never crashes, deadlocks, or
  /// leaves the grid journal inconsistent. Null (the default) removes every
  /// check down to a pointer test.
  void set_faults(fault::Injector* faults) { faults_ = faults; }
  /// Fallbacks taken during run()/improve(), in the order they happened.
  const std::vector<Degradation>& degradations() const {
    return degradations_;
  }

  const RoutingGrid& grid() const { return grid_; }
  RoutingGrid& grid() { return grid_; }
  /// Snapshot view over the metrics registry (see RouteStats).
  RouteStats stats() const;
  /// The underlying metrics registry (counters + phase timers) for export
  /// via obs::write_text / obs::write_json.
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  const Problem& problem() const { return problem_; }

 private:
  /// All grid nodes a pin may attach on (filters unroutable layers).
  std::vector<GridPoint> pin_nodes(const Pin& pin) const;
  /// Orders a net's pins for tree growth (nearest-unrouted-first).
  std::vector<Pin> ordered_pins(NetId id) const;

  /// One kernel query: attaches the budget gauge, routes, and charges the
  /// expansion counter. All router searches go through here.
  SearchResult search(SearchRequest& req);

  /// Stage-boundary budget check: true when the budget is exhausted (and
  /// records/emits the exhaustion exactly once).
  bool budget_spent();

  // -- net-parallel wave engine (DESIGN.md §2.1e) ---------------------------

  /// One recorded speculative search: the result plus the effort numbers
  /// the trace/stats replay charges at commit.
  struct SpecSearch;
  /// One net's speculation: the stage-1 clean search per connection (in
  /// connection order), optionally the first weak probe after a clean
  /// failure, and the union of every search's read footprint.
  struct SpecNet;
  struct WaveWorker;  ///< per-worker arena + maze router for speculation

  /// Resolved net_threads (0 -> hardware concurrency, floor 1).
  int wave_width() const;
  /// Lazily builds the wave pool and per-worker search contexts. False when
  /// the state cannot be built (allocation failure, injected kArenaAlloc):
  /// the run degrades to the serial drain for its whole lifetime.
  bool ensure_wave_state();
  /// Independence estimate for wave formation: pins + pre-wire (+ current
  /// wire during improve()) bounding box, inflated by one cell.
  Rect wave_box(NetId id, bool for_improve) const;
  /// Pops the maximal prefix of `work` (capped at a constant, so formation
  /// is independent of net_threads) whose wave_box()es are pairwise
  /// disjoint. Always pops at least one net.
  std::vector<NetId> form_wave(std::deque<NetId>& work, bool for_improve) const;
  /// Runs one net's speculative searches on a worker context. Read-only on
  /// all shared state (grid, pins, history) — safe to run concurrently for
  /// every net of a wave.
  void speculate_net(SpecNet& spec, WaveWorker& w, bool with_probe) const;
  /// Replays a recorded search as if it ran here: charges the expansion
  /// counter and emits the kSearchQuery event with the recorded numbers.
  SearchResult replay_search(NetId net, const SpecSearch& s);
  /// Commits a speculated wave in net order: validates each speculation's
  /// read footprint against the dirty boxes of the earlier commits, then
  /// invokes `body` with the speculation (valid) or nullptr (invalidated —
  /// the body re-routes serially).
  void commit_wave(std::vector<SpecNet>& specs,
                   const std::function<void(NetId, const SpecNet*)>& body);

  /// Routes one pin-to-tree connection, escalating through the stages.
  /// On strong modification, victims are appended to *requeue. When a
  /// validated speculation covers this connection, `spec_clean` (stage-1
  /// result) and `spec_probe` (first weak probe, only recorded after a
  /// clean failure) replay instead of searching live.
  bool route_connection(NetId id, const std::vector<GridPoint>& sources,
                        const std::vector<GridPoint>& targets,
                        std::vector<NetId>* requeue,
                        const SpecSearch* spec_clean = nullptr,
                        const SpecSearch* spec_probe = nullptr);

  /// Applies a pushing path: severs crossed foreign nodes, lays the new
  /// wire, then repairs every victim. Atomic (journal rollback on failure).
  bool apply_with_push(NetId id, const SearchResult& probe);

  /// Reconnects a severed net with plain (non-pushing) searches.
  bool repair_net(NetId victim);

  /// Partitions the net's current wire into electrically connected pieces.
  std::vector<std::vector<GridPoint>> wire_components(NetId id) const;

  /// Ordering key: bounding half-perimeter of the net's pins.
  int net_span(NetId id) const;

  /// Charges a conflicted planar cell in the PathFinder-style history map.
  void bump_history(Point p);

  /// Records an absorbed fault: emits kFaultInjected + kDegraded trace
  /// events and appends the Degradation diagnostic.
  void note_fault(const fault::InjectedFault& f, NetId net,
                  Degradation::Kind kind, std::string detail);
  /// Records a non-exception fallback (forced budget, wave disable).
  void note_degradation(Degradation::Kind kind, NetId net,
                        std::string detail);

  /// Lays the net's pre-wire onto the grid (throws std::invalid_argument on
  /// conflicts — validate() reports the same problems non-fatally).
  void apply_prewire(NetId id);
  /// Rips the net's routed wire but restores its permanent pre-wire.
  void rip_routable_wire(NetId id);

  const Problem& problem_;
  RouterOptions options_;
  RoutingGrid grid_;
  PinBlocks pins_;
  WeightedMazeRouter search_;
  std::vector<int> ripup_count_;
  /// Fixed nets, precomputed once: seeded into every push probe's frozen
  /// set so neither weak modification nor strong rip-up can ever propose a
  /// fixed net as a victim — pre-wire is permanent, and a pushed "repair"
  /// would re-route it (empty on problems without fixed nets, which is the
  /// common case and keeps those runs bit-identical to before this guard).
  std::vector<NetId> fixed_nets_;
  /// Per-planar-cell conflict surcharge fed into push probes.
  std::vector<int> history_;

  // Net-parallel wave engine state (built lazily by ensure_wave_state).
  std::unique_ptr<WavePool> wave_pool_;
  std::vector<std::unique_ptr<WaveWorker>> wave_workers_;
  /// Cells whose history_ surcharge changed during the current wave commit
  /// (bump_history unions into it; commit_wave resets it per net). Spec
  /// probes read history_, so these count as dirty for validation.
  Rect history_dirty_{{0, 0}, {-1, -1}};

  // Observability state. The registry is the single home of every effort
  // counter (RouteStats is a snapshot of it); the bound references keep the
  // hot paths at one add per tick.
  obs::MetricsRegistry metrics_;
  obs::Counter& c_nets_attempted_ = metrics_.counter("nets_attempted");
  obs::Counter& c_nets_routed_ = metrics_.counter("nets_routed");
  obs::Counter& c_connections_attempted_ =
      metrics_.counter("connections_attempted");
  obs::Counter& c_connections_routed_ = metrics_.counter("connections_routed");
  obs::Counter& c_weak_attempts_ = metrics_.counter("weak_attempts");
  obs::Counter& c_weak_modifications_ =
      metrics_.counter("weak_modifications");
  obs::Counter& c_strong_ripups_ = metrics_.counter("strong_ripups");
  obs::Counter& c_expansions_ = metrics_.counter("expansions");
  obs::Counter& c_waves_ = metrics_.counter("waves");
  obs::Counter& c_spec_commits_ = metrics_.counter("spec_commits");
  obs::Counter& c_spec_invalidations_ =
      metrics_.counter("spec_invalidations");
  obs::Timer& t_run_ = metrics_.timer("run_ms");
  obs::Timer& t_improve_ = metrics_.timer("improve_ms");
  obs::Trace trace_;
  obs::BudgetGauge* gauge_ = nullptr;
  bool budget_exhausted_ = false;

  // Fault-injection + graceful-degradation state (DESIGN.md §2.1f).
  fault::Injector* faults_ = nullptr;
  std::vector<Degradation> degradations_;
  /// Set when wave state failed to build; the serial drain is used for the
  /// rest of this router's lifetime (cleared never — the allocation already
  /// failed once).
  bool wave_disabled_ = false;
};

// The historical one-shot wrapper functions that used to live here are
// retired: every call shape they expressed is a RouteRequest field. See
// core/api.hpp.

}  // namespace gridroute
