#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gridroute {

/// A small persistent worker pool for the net-parallel wave engine
/// (DESIGN.md §2.1e). The multi-start pool in core/api.cpp spawns one
/// thread per run because attempts are minutes-scale; waves are
/// milliseconds-scale and fire hundreds of times per run, so here the
/// threads outlive the rounds: they park on a condition variable between
/// waves and are woken by a generation bump.
///
/// The pool itself imposes no ordering — callers that need determinism
/// (the wave commit protocol does) must make worker output independent of
/// which worker ran which job and of completion order. The engine stores
/// each job's result in a per-job slot and consumes them in job order.
class WavePool {
 public:
  /// Spawns `helpers` parked threads; the calling thread participates in
  /// every round as worker 0, so total parallelism is helpers + 1.
  explicit WavePool(int helpers) {
    threads_.reserve(static_cast<std::size_t>(helpers > 0 ? helpers : 0));
    for (int t = 0; t < helpers; ++t)
      threads_.emplace_back([this, t] { worker_loop(t + 1); });
  }

  WavePool(const WavePool&) = delete;
  WavePool& operator=(const WavePool&) = delete;

  ~WavePool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  int helpers() const { return static_cast<int>(threads_.size()); }

  /// Runs fn(worker, job) for every job in [0, jobs), distributed over the
  /// helpers plus the calling thread (worker ids 0..helpers()). Jobs are
  /// claimed from a shared counter, so assignment is nondeterministic —
  /// see the class comment. Blocks until every job finished; rethrows the
  /// first exception a job raised (remaining jobs still drain).
  ///
  /// Exception-safety contract (audited; regression:
  /// tests/fault_injection_test.cpp, WavePoolExceptions.*): a throwing job
  /// never stops the drain — drain() captures the first exception under
  /// the mutex and the shared counter keeps handing out the remaining
  /// jobs — and the rethrow happens only after the full barrier (every
  /// helper parked, active_ == 0), so when the caller's catch runs no
  /// worker is still executing fn or touching the caller's state. The
  /// pool stays usable for subsequent rounds. This is what lets the wave
  /// engine fall back to serial routing after an injected speculation
  /// fault (DESIGN.md §2.1f).
  void run(int jobs, const std::function<void(int worker, int job)>& fn) {
    if (jobs <= 0) return;
    if (threads_.empty() || jobs == 1) {
      for (int i = 0; i < jobs; ++i) fn(0, i);
      return;
    }
    fn_ = &fn;
    jobs_ = jobs;
    next_.store(0, std::memory_order_relaxed);
    active_.store(static_cast<int>(threads_.size()));
    error_ = nullptr;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++generation_;
    }
    wake_cv_.notify_all();
    drain(0);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return active_.load() == 0; });
    fn_ = nullptr;
    if (error_ != nullptr) std::rethrow_exception(error_);
  }

 private:
  void worker_loop(int worker) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      drain(worker);
      // Lock-then-notify: run()'s waiter is either still before its
      // predicate check (and will read active_ == 0) or already parked in
      // done_cv_ (and gets this notify). No lost wakeup either way.
      if (active_.fetch_sub(1) == 1) {
        const std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  }

  void drain(int worker) {
    for (;;) {
      const int idx = next_.fetch_add(1);
      if (idx >= jobs_) return;
      try {
        (*fn_)(worker, idx);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  const std::function<void(int, int)>* fn_ = nullptr;
  int jobs_ = 0;
  std::atomic<int> next_{0};
  std::atomic<int> active_{0};
  std::exception_ptr error_;
};

}  // namespace gridroute
