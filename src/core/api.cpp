#include "core/api.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "fault/fault.hpp"
#include "util/rng.hpp"
#include "verify/verify.hpp"

namespace gridroute {

namespace {

/// Options for one multi-start attempt. Attempt 0 keeps the caller's
/// ordering; restarts shuffle with a seed mixed from the base seed and the
/// attempt index, so a kShuffled base run and every restart all explore
/// distinct net orders even when the caller picked a small seed.
RouterOptions attempt_options(const RouterOptions& base, int attempt) {
  if (attempt == 0) return base;
  RouterOptions shuffled = base;
  shuffled.ordering = RouterOptions::Ordering::kShuffled;
  shuffled.shuffle_seed =
      mix_seeds(base.shuffle_seed, static_cast<std::uint64_t>(attempt));
  return shuffled;
}

/// One fully isolated attempt: its own IncrementalRouter (grid, pin map,
/// maze search, history) over the shared const Problem, with the request's
/// sink and a forked budget gauge wired in. improve() runs inside the
/// attempt (skipped once the budget is spent), so the returned stats carry
/// both phases and multi-start scores the cleaned-up layout.
RouteResult run_attempt(const Problem& problem, const RouterOptions& options,
                        int improve_passes, obs::TraceSink* sink, int attempt,
                        obs::BudgetGauge* gauge, SearchArena* arena,
                        fault::Injector* faults) {
  IncrementalRouter router(problem, options, arena);
  router.set_trace(sink, attempt);
  router.set_budget(gauge);
  router.set_faults(faults);

  RouteResult result;
  bool aborted = false;
  std::string abort_detail;
  try {
    if (faults != nullptr) faults->maybe_throw(fault::Site::kAttemptStart);
    RouteOutcome outcome = router.run();
    result.failed = std::move(outcome.failed);
    if (improve_passes > 0 && !router.budget_exhausted())
      result.improved = router.improve(improve_passes);
  } catch (const fault::InjectedFault& f) {
    // Salvage: drop any half-applied journal back to the last committed
    // stable point (run() commits at net boundaries and on exit, so what
    // remains is a verifier-clean partial layout), then report every net
    // the salvage left unrouted.
    router.grid().rollback(0);
    router.grid().commit();
    obs::Trace(sink, attempt)
        .emit(obs::TraceEvent::fault_injected(
            kNoNet, static_cast<std::int64_t>(f.site()), f.arrival()));
    aborted = true;
    abort_detail = std::string(f.what()) + "; attempt salvaged";
    result.failed.clear();
    for (NetId id = 0; id < problem.net_count(); ++id)
      if (problem.net(id).pins.size() >= 2 && !problem.net(id).fixed &&
          !net_routed_ok(problem, router.grid(), id))
        result.failed.push_back(id);
  }
  result.stats = router.stats();  // includes improve()'s phase time
  result.metrics = router.metrics().snapshot();
  result.budget_exhausted = router.budget_exhausted();
  result.degradation = router.degradations();
  if (aborted) {
    obs::Trace(sink, attempt)
        .emit(obs::TraceEvent::degraded(
            kNoNet,
            static_cast<std::int64_t>(Degradation::Kind::kAttemptAborted)));
    result.degradation.push_back({Degradation::Kind::kAttemptAborted, attempt,
                                  kNoNet, std::move(abort_detail)});
  }
  result.grid = std::move(router.grid());
  return result;
}

AttemptReport report_of(int index, std::uint64_t seed, const RouteResult* r) {
  AttemptReport report;
  report.index = index;
  report.seed = seed;
  if (r != nullptr) {
    report.ran = true;
    report.complete = r->complete();
    report.nets_routed = r->stats.nets_routed;
    report.expansions = r->stats.expansions;
    report.wall_ms = r->stats.wall_ms;
  }
  return report;
}

}  // namespace

RouteResult route(const RouteRequest& request) {
  if (request.problem == nullptr)
    throw std::invalid_argument("RouteRequest::problem must be set");
  const Problem& problem = *request.problem;
  const RouterOptions& options = request.options;

  // Mandatory admission gate (DESIGN.md §2.1f): an invalid problem is never
  // routed. The result degrades instead of throwing — status carries the
  // first issue, degradation the full list, and the grid is an honest
  // empty layout (no pre-wire either: the pre-wire may be exactly what is
  // invalid).
  {
    const std::vector<Status> issues = problem.validate_status();
    if (!issues.empty()) {
      RouteResult result;
      result.status = issues.front();
      result.grid = RoutingGrid(problem.region(), problem.net_count());
      for (NetId id = 0; id < problem.net_count(); ++id)
        if (problem.net(id).pins.size() >= 2 && !problem.net(id).fixed)
          result.failed.push_back(id);
      result.degradation.reserve(issues.size());
      for (const Status& s : issues)
        result.degradation.push_back(
            {Degradation::Kind::kValidation, 0, kNoNet, s.message()});
      result.attempts.push_back(report_of(0, options.shuffle_seed, nullptr));
      return result;
    }
  }

  // The caller's sink rides behind a failsafe: a sink that throws (or an
  // injected kSinkEmit fault) disables tracing for the rest of the run
  // instead of aborting it — routing outlives its observability.
  fault::FailsafeSink failsafe(request.trace, request.faults);
  obs::TraceSink* sink = request.trace != nullptr ? &failsafe : nullptr;
  auto note_sink_trip = [&](RouteResult& result) {
    if (!failsafe.disabled()) return;
    result.degradation.push_back(
        {Degradation::Kind::kSinkDisabled, 0, kNoNet,
         "trace sink threw and was disabled; " +
             std::to_string(failsafe.dropped()) + " event(s) dropped"});
  };

  const bool budgeted = !request.budget.unlimited();
  // The wall deadline starts here and is shared by every attempt; forks
  // restart only the expansion count.
  const obs::BudgetGauge base_gauge(request.budget);

  if (request.extra_attempts <= 0) {
    // Plain run: one attempt on the calling thread, honoring request.arena.
    obs::BudgetGauge gauge = base_gauge.fork();
    RouteResult result =
        run_attempt(problem, options, request.improve_passes, sink, 0,
                    budgeted ? &gauge : nullptr, request.arena,
                    request.faults);
    result.winning_attempt = 0;
    result.winning_seed = options.shuffle_seed;
    result.total_expansions = result.stats.expansions;
    result.attempts.push_back(report_of(0, options.shuffle_seed, &result));
    note_sink_trip(result);
    return result;
  }

  const int total = request.extra_attempts + 1;
  int workers = options.threads;
  if (workers <= 0)
    workers = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  workers = std::min(workers, total);

  // Results land in per-attempt slots; nothing below mutates shared state
  // except the work counter, the early-cancel watermark, and the (thread-
  // safe) trace sink.
  std::vector<std::optional<RouteResult>> results(
      static_cast<std::size_t>(total));
  std::atomic<int> next_attempt{0};
  // Lowest attempt index that routed every net. Serial best-of stops after
  // the first complete attempt; here that becomes a cancellation watermark:
  // attempts above it are skipped, attempts at or below it still finish
  // (one of them could be an even lower-index complete run).
  std::atomic<int> first_complete{total};

  std::mutex error_mutex;
  std::exception_ptr error;

  auto worker = [&] {
    // One search arena per worker, lent to every attempt this worker runs.
    // Epoch stamping makes the reuse stateless: a fresh arena and a
    // well-recycled one produce bit-identical searches.
    SearchArena arena;
    for (;;) {
      const int idx = next_attempt.fetch_add(1);
      if (idx >= total) return;
      if (idx > first_complete.load()) {  // cannot win; skip
        obs::Trace(sink, idx).emit(obs::TraceEvent::attempt_cancelled());
        continue;
      }
      try {
        obs::Trace(sink, idx).emit(obs::TraceEvent::attempt_scheduled());
        obs::BudgetGauge gauge = base_gauge.fork();
        RouteResult attempt =
            run_attempt(problem, attempt_options(options, idx),
                        request.improve_passes, sink, idx,
                        budgeted ? &gauge : nullptr, &arena, request.faults);
        if (attempt.complete()) {
          int seen = first_complete.load();
          while (idx < seen &&
                 !first_complete.compare_exchange_weak(seen, idx)) {
          }
        }
        results[static_cast<std::size_t>(idx)] = std::move(attempt);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        first_complete.store(-1);  // drain remaining work
        return;
      }
    }
  };

  if (workers <= 1) {
    worker();  // serial reference path: same plan, same reduction
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  // Join-path audit: the rethrow sits strictly after every thread joined
  // (a failing worker first drains the queue via the first_complete
  // watermark so its siblings exit promptly), so an escaping exception
  // can never leave a detached attempt mutating `results`. Injected
  // faults never reach here — run_attempt salvages them into a degraded
  // per-attempt result — so this path is for genuinely unexpected errors.
  if (error) std::rethrow_exception(error);

  // Deterministic reduction — an ascending scan identical to the historical
  // serial loop: keep strictly-better scores (ties therefore break to the
  // lower attempt index) and stop once the incumbent is complete. Every
  // attempt the serial loop would have run is guaranteed present: index i
  // is only skipped when some complete attempt c < i exists, and the scan
  // never reads past the first complete attempt.
  auto score = [](const RouteResult& r) {
    // Higher is better: completions dominate, then compact layouts.
    return std::pair{r.stats.nets_routed,
                     -(r.grid.total_nodes() + 4 * r.grid.total_vias())};
  };
  int winner = 0;
  for (int idx = 1; idx < total; ++idx) {
    if (results[static_cast<std::size_t>(winner)]->complete()) break;
    const auto& candidate = results[static_cast<std::size_t>(idx)];
    if (!candidate.has_value()) continue;  // early-cancelled
    if (score(*candidate) > score(*results[static_cast<std::size_t>(winner)]))
      winner = idx;
  }

  RouteResult best = std::move(*results[static_cast<std::size_t>(winner)]);
  best.winning_attempt = winner;
  best.winning_seed = attempt_options(options, winner).shuffle_seed;
  best.total_expansions = 0;
  best.attempts.clear();
  best.attempts.reserve(static_cast<std::size_t>(total));
  // Degradations are reported for the whole call, not just the winner, in
  // ascending attempt order (each entry carries its attempt index).
  std::vector<Degradation> degradation;
  for (int idx = 0; idx < total; ++idx) {
    const RouteResult* r = nullptr;
    if (idx == winner)
      r = &best;
    else if (results[static_cast<std::size_t>(idx)].has_value())
      r = &*results[static_cast<std::size_t>(idx)];
    best.attempts.push_back(
        report_of(idx, attempt_options(options, idx).shuffle_seed, r));
    if (r != nullptr) {
      best.total_expansions += r->stats.expansions;
      best.budget_exhausted |= r->budget_exhausted;
      degradation.insert(degradation.end(), r->degradation.begin(),
                         r->degradation.end());
    }
  }
  best.degradation = std::move(degradation);
  obs::Trace(sink, winner).emit(obs::TraceEvent::attempt_won(best.complete()));
  note_sink_trip(best);
  return best;
}

}  // namespace gridroute
