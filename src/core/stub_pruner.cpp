#include "core/stub_pruner.hpp"

#include <deque>
#include <unordered_set>

namespace gridroute {

namespace {

/// Number of electrical neighbours of g within its own net.
int degree(const RoutingGrid& grid, GridPoint g, NetId id) {
  int deg = 0;
  for (const Point d : {Point{1, 0}, Point{-1, 0}, Point{0, 1}, Point{0, -1}})
    if (grid.owner({g.pos + d, g.layer}) == id) ++deg;
  // A via on either cut touching this layer joins the stacked neighbour.
  const int k = layer_index(g.layer);
  if (grid.via_owner(g.pos, k - 1) == id &&
      grid.owner({g.pos, layer_at(k - 1)}) == id)
    ++deg;
  if (grid.via_owner(g.pos, k) == id &&
      grid.owner({g.pos, layer_at(k + 1)}) == id)
    ++deg;
  return deg;
}

bool on_pin(const Problem& problem, GridPoint g, NetId id) {
  for (const Pin& pin : problem.net(id).pins) {
    if (pin.pos != g.pos) continue;
    if (pin.any_layer || pin.layer == g.layer) return true;
  }
  return false;
}

}  // namespace

int prune_stubs(const Problem& problem, RoutingGrid& grid, NetId id) {
  int removed = 0;
  // Seed with all current leaf candidates, then chase each removal's
  // neighbours — classic topological peel, O(nodes) per net.
  std::deque<GridPoint> candidates(grid.net_nodes(id).begin(),
                                   grid.net_nodes(id).end());
  while (!candidates.empty()) {
    const GridPoint g = candidates.front();
    candidates.pop_front();
    if (grid.owner(g) != id) continue;  // already peeled
    if (on_pin(problem, g, id)) continue;
    if (degree(grid, g, id) > 1) continue;
    // Collect neighbours before the release so they can be re-examined.
    for (const Point d :
         {Point{1, 0}, Point{-1, 0}, Point{0, 1}, Point{0, -1}})
      if (grid.owner({g.pos + d, g.layer}) == id)
        candidates.push_back({g.pos + d, g.layer});
    const int k = layer_index(g.layer);
    if (grid.via_owner(g.pos, k - 1) == id)
      candidates.push_back({g.pos, layer_at(k - 1)});
    if (grid.via_owner(g.pos, k) == id)
      candidates.push_back({g.pos, layer_at(k + 1)});
    grid.release(g);
    ++removed;
  }
  return removed;
}

int prune_all_stubs(const Problem& problem, RoutingGrid& grid) {
  int removed = 0;
  for (NetId id = 0; id < problem.net_count(); ++id)
    removed += prune_stubs(problem, grid, id);
  return removed;
}

}  // namespace gridroute
