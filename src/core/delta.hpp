#pragma once

#include <vector>

#include "core/api.hpp"
#include "geom/rect.hpp"
#include "grid/routing_grid.hpp"
#include "problem/problem.hpp"
#include "util/status.hpp"

namespace gridroute {

/// Incremental/ECO delta routing (DESIGN.md §2.4): re-route a committed
/// layout after a small problem edit instead of from scratch. The engine
/// computes the edit's planar dirty box, keeps every net whose footprint
/// stays clear of it as permanent pre-wire replayed byte-identically onto a
/// fresh grid, and sends only the invalidated nets back through the
/// standard route() pipeline (improve included — fixed warm-start nets are
/// never touched by it).

/// One structural edit of a Problem. Ops are applied in declaration order:
/// pin moves, then pin additions, then pin removals (indices name the
/// *base* pin list; additions append past it), then net removals, then net
/// additions, then obstacles, then region subtraction. NetIds are stable
/// across the edit: removed nets become empty tombstones that keep their id
/// and name, added nets take fresh ids past the base count.
struct ProblemEdit {
  struct MovePin {
    NetId net = kNoNet;
    int pin = 0;  ///< index into the base net's pin list
    Point to;
  };
  struct AddPin {
    NetId net = kNoNet;
    Pin pin;
  };
  struct RemovePin {
    NetId net = kNoNet;
    int pin = 0;  ///< index into the base net's pin list
  };
  struct AddObstacle {
    Rect rect;
    Layer layer = Layer::kMetal1;
    bool all_layers = true;
  };

  std::vector<MovePin> move_pins;
  std::vector<AddPin> add_pins;
  std::vector<RemovePin> remove_pins;
  std::vector<NetId> remove_nets;
  std::vector<Net> add_nets;
  std::vector<AddObstacle> add_obstacles;
  /// Region re-sizing within bounds: rectangles carved out of the region
  /// (Region::subtract). Growing past the original bounds is not an edit —
  /// it is a new problem.
  std::vector<Rect> subtract_region;

  int op_count() const {
    return static_cast<int>(move_pins.size() + add_pins.size() +
                            remove_pins.size() + remove_nets.size() +
                            add_nets.size() + add_obstacles.size() +
                            subtract_region.size());
  }
  bool empty() const { return op_count() == 0; }
};

/// Applies the edit to a copy of the base problem. Fails (kValidation) on
/// structurally impossible ops — unknown net ids, pin indices past the base
/// pin list — without attempting full Problem validation; route_delta runs
/// the mandatory validate_status() gate on the result.
StatusOr<Problem> apply_edit(const Problem& base, const ProblemEdit& edit);

/// The invalidation decision for one edit against one committed layout.
struct DeltaPlan {
  /// Planar union of every cell the edit touches: old+new positions of
  /// edited pins, the base wire of edited/removed nets, new obstacle and
  /// subtraction rectangles. !valid() for an empty edit.
  Rect dirty_box{{0, 0}, {-1, -1}};
  /// Nets replayed byte-identically from the base layout (base fixed nets
  /// included — they pass through unchanged). Disjointness contract: a
  /// multi-pin net is preserved iff it was routed-ok in the base, was not
  /// directly edited, and its footprint — pins plus base wire, inflated by
  /// one cell — misses the dirty box.
  std::vector<NetId> preserved;
  /// Multi-pin nets the delta run routes from scratch: new, edited, failed
  /// in the base, or footprint-intersecting the dirty box.
  std::vector<NetId> invalidated;
  /// The edited problem with every preserved net's base wire frozen in as
  /// fixed pre-wire — the warm-start problem the delta run actually routes.
  Problem warm;
};

/// Computes the delta plan. `edited` must be apply_edit's output for the
/// same (base, edit) pair and must have passed validate_status();
/// route_delta guarantees both. Exposed separately so tests can probe the
/// invalidation rule without routing.
DeltaPlan plan_delta(const Problem& base, const RoutingGrid& base_layout,
                     const Problem& edited, const ProblemEdit& edit);

/// Exports a net's wire in a grid as maximal straight pre-wire runs plus
/// the vias it owns — the byte-exact replay form plan_delta freezes
/// preserved nets with. Deterministic: runs and vias come out sorted.
void export_net_wire(const RoutingGrid& grid, NetId id,
                     std::vector<Segment>* segments,
                     std::vector<PreVia>* vias);

/// Fast routability pre-screen (Kar et al., "Early Routability Assessment
/// ..."): two sound lower bounds that together reject provably-infeasible
/// problems before a routing attempt burns search effort.
struct RoutabilityEstimate {
  /// Summed half-perimeter wirelength demand (per net: pin+pre-wire bbox
  /// half-perimeter + 1 cells) over the routable node supply. > 1 proves
  /// infeasibility: wire cells are exclusively owned.
  double utilization = 0;
  /// Summed provable per-cut overflow from the CutLowerBounds congestion
  /// map: for every grid cut, max(0, spanning-net demand − crossing
  /// capacity), where capacity counts adjacent routable node pairs on
  /// layers whose direction rule permits that crossing axis. Any positive
  /// total proves at least one cut cannot carry the nets that must span it.
  std::int64_t cut_overflow = 0;

  bool provably_infeasible() const {
    return utilization > 1.0 || cut_overflow > 0;
  }
};

RoutabilityEstimate assess_routability(const Problem& problem);

/// Half-perimeter wirelength demand over routable supply (the utilization
/// component of assess_routability; also the serving layer's admission
/// screen). 0 on an empty or zero-capacity region.
double hpwl_utilization(const Problem& problem);

/// One delta-routing job: a committed base layout plus an edit, and the
/// same knobs route(RouteRequest) takes for the re-route of the
/// invalidated nets.
struct DeltaRequest {
  const Problem* base_problem = nullptr;      ///< required; not owned
  const RoutingGrid* base_layout = nullptr;   ///< required; not owned
  ProblemEdit edit;
  RouterOptions options;
  obs::RunBudget budget;
  obs::TraceSink* trace = nullptr;
  int extra_attempts = 0;
  int improve_passes = 0;
  SearchArena* arena = nullptr;
  fault::Injector* faults = nullptr;
  /// Run assess_routability on the edited problem first and reject
  /// provably-infeasible edits (Degradation::Kind::kPrescreen, status
  /// kResource) with the warm start replayed but no routing attempted.
  bool prescreen = true;
};

/// Everything a delta run produced. `result` is a full RouteResult against
/// `edited` — grid, stats, failed list, degradations — so the serving
/// layer and the verifier consume it exactly like a from-scratch result.
struct DeltaResult {
  RouteResult result;
  /// base + edit: the problem `result.grid` answers to. Default-constructed
  /// when the edit itself was malformed (apply_edit failed).
  Problem edited;
  Rect dirty_box{{0, 0}, {-1, -1}};
  std::vector<NetId> preserved;
  std::vector<NetId> rerouted;  ///< the plan's invalidated set
  /// True when the routability pre-screen rejected the edit: preserved nets
  /// are replayed in result.grid, rerouted nets are failed unattempted.
  bool prescreen_rejected = false;
};

/// Routes a delta request. Throws std::invalid_argument when base_problem
/// or base_layout is null; every other failure degrades the result
/// (malformed edit / invalid edited problem → kValidation degradation with
/// an empty or warm-only grid, pre-screen rejection → kPrescreen).
/// Emits kDeltaSubmitted plus the kNetsPreserved / kNetsInvalidated
/// partition through `trace` before routing starts.
DeltaResult route_delta(const DeltaRequest& request);

}  // namespace gridroute
