#pragma once

#include <cstdint>
#include <vector>

#include "core/incremental_router.hpp"
#include "obs/budget.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gridroute {

/// One routing job, fully described — the single entry point of the
/// library. Everything the historical one-shot wrappers and raw
/// IncrementalRouter call shapes expressed is a field here, plus the
/// observability surface (budget, trace) that only exists on this path.
///
/// extra_attempts selects between a plain run and multi-start:
///   0   one attempt with `options` as given, on the calling thread,
///       honoring `arena`;
///   n>0 the base ordering plus n shuffled restarts on a worker pool
///       (options.threads wide), keeping the best attempt under the
///       deterministic reduction — most nets completed, ties to fewer wire
///       cells + vias, then to the lower attempt index. The winner is
///       bit-identical for every thread count. `arena` is ignored (each
///       worker owns one).
///
/// improve_passes runs IncrementalRouter::improve() after each attempt's
/// run — inside the attempt, so clean-up influences the multi-start
/// reduction and is reported per attempt.
///
/// options.net_threads is the orthogonal, intra-attempt axis: each attempt
/// drains its nets in speculative waves committed in serial order
/// (DESIGN.md §2.1e), bit-identical at every value. A finite expansion
/// budget or a narration log forces the legacy serial drain instead.
struct RouteRequest {
  const Problem* problem = nullptr;  ///< required; not owned
  RouterOptions options;
  /// Resource ceiling; default-constructed = unlimited. Multi-start forks
  /// the gauge per attempt: the expansion ceiling is per-attempt (exact and
  /// deterministic), the wall deadline is global to the call.
  obs::RunBudget budget;
  /// Structured event sink (see obs/trace.hpp); null = tracing off, at an
  /// inlined null check per would-be event. Multi-start delivers from all
  /// workers concurrently — sinks must be thread-safe (all of
  /// obs/sinks.hpp is).
  obs::TraceSink* trace = nullptr;
  int extra_attempts = 0;  ///< shuffled restarts beyond the base attempt
  int improve_passes = 0;  ///< clean-up passes after each attempt's run
  /// Optional lent search scratch (plain runs only; see IncrementalRouter).
  SearchArena* arena = nullptr;
  /// Optional deterministic fault injector (src/fault): named sites across
  /// the routing stack probe it, and when the armed site+arrival is reached
  /// the run degrades gracefully — rolled-back net, serial wave fallback,
  /// salvaged attempt — instead of failing (RouteResult::degradation lists
  /// what happened). Null = off; probing an unarmed injector is one relaxed
  /// counter bump, so zero-fault runs stay bit-identical to faults == null.
  /// The injector is shared across multi-start attempts (arrival
  /// interleaving across workers is then timing-dependent; use
  /// extra_attempts = 0 for exactly reproducible fault placement).
  fault::Injector* faults = nullptr;
};

/// Everything a routing job produced — the one result shape of the library,
/// and (field for field) the stability contract the serving layer's C ABI
/// exposes; see DESIGN.md §2.2. `stats` and `attempts` carry what the
/// historical names RouteStats / AttemptReport carried, unchanged.
struct RouteResult {
  RoutingGrid grid;
  RouteStats stats;            ///< winning attempt's counters and phase times
  std::vector<NetId> failed;   ///< multi-pin nets left unrouted
  obs::MetricsSnapshot metrics;  ///< winning attempt's full registry export

  // Multi-start observability (single-attempt runs report themselves as
  // attempt 0).
  std::vector<AttemptReport> attempts;
  int winning_attempt = 0;
  std::uint64_t winning_seed = 0;
  long long total_expansions = 0;  ///< summed over attempts that ran

  int improved = 0;  ///< winning attempt's successful improve() re-routes
  /// True when the budget stopped the winning attempt (or any attempt that
  /// ran) early; `failed` then lists every net the run did not finish, and
  /// the routed subset still verifies.
  bool budget_exhausted = false;

  /// Admission status. Not ok only when the mandatory
  /// Problem::validate_status() gate rejected the request (first issue,
  /// ErrorCode::kValidation): the problem was never routed, `grid` carries
  /// no wire, `failed` lists every routable net, and `degradation` holds one
  /// kValidation entry per issue (DESIGN.md §2.1f).
  Status status;
  /// Everything that made this result less than the full-fidelity run, in
  /// the order observed: validation rejections, injected faults, forced
  /// budget exhaustion, serial wave fallbacks, salvaged attempts, a tripped
  /// trace sink. Empty on an undegraded run.
  std::vector<Degradation> degradation;

  bool complete() const { return failed.empty(); }
};

/// Routes a RouteRequest: the one entry point behind which the plain,
/// multi-start, and channel call shapes all sit. Throws
/// std::invalid_argument when request.problem is null; every other failure
/// mode degrades the result instead of throwing — see RouteResult::status
/// and RouteResult::degradation.
RouteResult route(const RouteRequest& request);

}  // namespace gridroute
