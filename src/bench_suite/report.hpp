#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace gridroute::bench {

/// How a metric is compared against its committed baseline by
/// check_against_baseline (and therefore by `scripts/bench.sh --check`).
///
///   kExact        must match the baseline bit-for-bit. For determinism
///                 fingerprints: expansions, cost sums, event counts —
///                 anything that is a pure function of the routing
///                 decisions, never of the host.
///   kLowerBetter  current <= baseline * (1 + tolerance). For wall-clock
///                 metrics, where machine noise demands headroom but a
///                 real regression must still trip the gate.
///   kHigherBetter current >= baseline * (1 - tolerance). For speedups
///                 and coverage ratios.
///   kInfo         recorded for the trajectory, never gated (host
///                 metadata, derived ratios).
enum class Gate { kExact, kLowerBetter, kHigherBetter, kInfo };

const char* gate_name(Gate gate);

/// One named number in a bench report. Names are path-style
/// ("instance/family/metric") so reports stay greppable and diffs read
/// naturally. The gate and tolerance travel with the metric: the
/// *committed baseline* is the policy document, so re-gating a metric is
/// a reviewed change to the checked-in JSON, not a flag-day in the
/// harness.
struct Metric {
  std::string name;
  double value = 0;
  Gate gate = Gate::kInfo;
  /// Relative headroom for kLowerBetter / kHigherBetter; ignored by
  /// kExact / kInfo. The default 0.5 (50%) absorbs shared-hardware noise
  /// while still catching step-change regressions; per-metric overrides
  /// live in the baseline file.
  double tolerance = 0.5;
};

/// Machine-readable result of one bench harness run — the BENCH_<name>.json
/// schema (version 1, DESIGN.md §2.1g). Every harness in bench/ that takes
/// a `--json <path>` flag writes one of these next to its human table;
/// committed baselines under bench/baselines/ accumulate the performance
/// trajectory and gate regressions.
struct BenchReport {
  static constexpr int kSchemaVersion = 1;

  int schema = kSchemaVersion;
  std::string bench;  ///< harness name, e.g. "search_kernel"

  // Host metadata — context for reading absolute numbers, never gated.
  std::string os;
  std::string compiler;
  int hardware_threads = 0;

  std::vector<Metric> metrics;

  void add(std::string name, double value, Gate gate = Gate::kInfo,
           double tolerance = 0.5);
  const Metric* find(std::string_view name) const;
};

/// A report pre-filled with this binary's host metadata.
BenchReport make_report(std::string bench_name);

std::string to_json(const BenchReport& report);

/// Parses a schema-1 report. Unknown fields are skipped (forward
/// compatibility); a wrong schema version or malformed JSON is a kParse
/// error with the offending line/column.
StatusOr<BenchReport> parse_report(std::string_view json,
                                   std::string source_name = "<string>");

Status write_report_file(const BenchReport& report, const std::string& path);
StatusOr<BenchReport> read_report_file(const std::string& path);

/// Outcome of gating one report against its committed baseline.
struct GateCheck {
  bool ok = true;
  /// One human-readable line per gated comparison ("PASS ..."/"FAIL ...");
  /// also notes baseline metrics missing from the current report (a
  /// coverage regression — FAIL) and current metrics with no baseline
  /// (informational; they join the baseline on the next --update).
  std::vector<std::string> lines;
};

/// Compares `current` against `baseline`, metric by metric, under the
/// *baseline's* gate policy.
GateCheck check_against_baseline(const BenchReport& current,
                                 const BenchReport& baseline);

}  // namespace gridroute::bench
