#include "bench_suite/query_batch.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace gridroute::suite {

std::vector<SearchRequest> make_query_batch(const Problem& problem,
                                            std::uint64_t seed,
                                            const QueryBatchOptions& options) {
  std::vector<SearchRequest> batch;
  batch.reserve(static_cast<std::size_t>(std::max(options.queries, 0)));
  Rng rng(seed);
  const Rect b = problem.region().bounds();
  const int layers = problem.region().layer_count();
  const auto draw = [&]() {
    const Point p{rng.next_int(b.lo.x, b.hi.x),
                  rng.next_int(b.lo.y, b.hi.y)};
    // The two-layer draw keeps the historical next_bool RNG consumption so
    // classic batches stay bit-identical; taller stacks draw uniformly.
    const Layer l =
        layers == 2
            ? (rng.next_bool(0.5) ? Layer::kMetal1 : Layer::kMetal2)
            : layer_at(static_cast<int>(
                  rng.next_below(static_cast<std::uint64_t>(layers))));
    return GridPoint{p, l};
  };
  for (int q = 0; q < options.queries; ++q) {
    SearchRequest req;
    if (problem.net_count() > 0)
      req.net = static_cast<NetId>(
          rng.next_below(static_cast<std::uint64_t>(problem.net_count())));
    req.sources.push_back(draw());
    req.targets.push_back(draw());
    // Bounded reroll: 16 tries separates any region with at least two
    // nodes with probability ~1; a 1x1 single-layer region keeps the
    // degenerate pair.
    for (int tries = 0; tries < 16 && req.targets[0] == req.sources[0];
         ++tries)
      req.targets[0] = draw();
    req.allow_push = rng.next_bool(options.push_probability);
    batch.push_back(std::move(req));
  }
  return batch;
}

}  // namespace gridroute::suite
