#pragma once

#include <cstdint>
#include <vector>

#include "maze/maze_router.hpp"
#include "problem/problem.hpp"

namespace gridroute::suite {

struct QueryBatchOptions {
  int queries = 300;
  /// Probability a query probes in push mode (allow_push = true).
  double push_probability = 0.3;
};

/// Builds a deterministic batch of pin-to-pin search queries over a
/// problem's region — the shared workload generator behind the kernel
/// benchmarks and the differential search tests.
///
/// Two contract guards the original in-harness generator lacked:
///  - A zero-net problem draws no net id at all (Rng::next_below requires a
///    positive bound); every query then runs as kNoNet, which every router
///    accepts.
///  - A degenerate draw (source == target, same position and layer) is
///    rerolled — seed-stably, since the reroll consumes the same
///    deterministic stream — so timed batches never contain queries the
///    kernel answers without doing any work. Rerolling is bounded; a
///    region too small to separate two draws keeps the degenerate query
///    rather than looping forever.
std::vector<SearchRequest> make_query_batch(const Problem& problem,
                                            std::uint64_t seed,
                                            const QueryBatchOptions& options =
                                                {});

}  // namespace gridroute::suite
