#include "bench_suite/suite.hpp"

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace gridroute::suite {

// ---------------------------------------------------------------------------
// Hand-crafted instances
// ---------------------------------------------------------------------------

ChannelSpec simple_channel() {
  // Density 2, acyclic VCG (2 above 3 at col 2; 4 above 3 at col 5).
  return {{1, 2, 2, 3, 0, 4},   // top
          {1, 0, 3, 0, 4, 3}};  // bottom
}

ChannelSpec vcg_cycle_channel() {
  // Pure two-net constraint cycle with detour room at both ends:
  // col 1 wants 1 above 2, col 2 wants 2 above 1. Both nets are two-pin,
  // so doglegging cannot break the cycle either.
  return {{0, 1, 2, 0},   // top
          {0, 2, 1, 0}};  // bottom
}

ChannelSpec constraint_chain_channel() {
  // LEA sees the cycle 1->2 (col 0) and 2->1 (col 2); the middle pin of
  // net 1 lets the dogleg router split it and place the pieces on separate
  // tracks. The textbook dogleg motivation, three columns wide.
  return {{1, 0, 2},   // top
          {2, 1, 1}};  // bottom
}

ChannelSpec dense_channel() {
  // Deterministic mid-size instance from the interval-packing generator:
  // 24 columns, target density 6.
  return deutsch_class_channel(2718, 24, 6);
}

SwitchboxSpec cross_switchbox() {
  // 5x4: two straight crossing nets plus an L-shaped third.
  //        top:   . 1 . 3 .
  //   left: 2 . . .         right: . 2 . .
  //        bottom:. 1 3 . .
  return {{0, 1, 0, 3, 0},   // top (x = 0..4)
          {0, 1, 3, 0, 0},   // bottom
          {0, 2, 0, 0},      // left (y = 0..3)
          {0, 0, 2, 0}};     // right
}

SwitchboxSpec dense_switchbox() {
  // 8x8 full-reversal box: the six nets entering the top leave the bottom
  // in reversed order, so every pair of nets crosses every other. Routable
  // on two layers, but only after substantial weak and strong modification
  // — the canonical stress pattern for rip-up routers.
  return {
      {1, 2, 3, 4, 5, 6, 0, 0},  // top
      {6, 5, 4, 3, 2, 1, 0, 0},  // bottom
      {0, 0, 0, 0, 0, 0, 0, 0},  // left (y = 0 bottom .. 7 top)
      {0, 0, 0, 0, 0, 0, 0, 0}   // right
  };
}

// ---------------------------------------------------------------------------
// Seeded generators
// ---------------------------------------------------------------------------

ChannelSpec deutsch_class_channel(std::uint64_t seed, int columns,
                                  int tracks) {
  Rng rng(seed);
  ChannelSpec spec;
  spec.top.assign(static_cast<size_t>(columns), 0);
  spec.bottom.assign(static_cast<size_t>(columns), 0);

  auto side_of = [&](bool top) -> std::vector<int>& {
    return top ? spec.top : spec.bottom;
  };
  auto slot_free = [&](bool top, int col) {
    return side_of(top)[static_cast<size_t>(col)] == 0;
  };
  auto claim = [&](bool top, int col, int net) {
    side_of(top)[static_cast<size_t>(col)] = net;
  };

  // Claims a pin at `col` or, failing that, up to `slack` columns toward
  // `dir`; returns the column used, or -1.
  auto place_near = [&](int col, int dir, int slack, int net) -> int {
    for (int k = 0; k <= slack; ++k) {
      const int c = col + dir * k;
      if (c < 0 || c >= columns) break;
      const bool first_top = rng.next_bool(0.5);
      for (const bool top : {first_top, !first_top})
        if (slot_free(top, c)) {
          claim(top, c, net);
          return c;
        }
    }
    return -1;
  };

  // Pack net intervals into `tracks` lanes: within a lane, intervals are
  // disjoint, so the column density can never exceed `tracks`, and the
  // packing itself is a witness that a `tracks`-track trunk assignment
  // exists (ignoring vertical constraints). Interval lengths scale with the
  // lane count so that total pin demand (2 per net) stays below the 2 slots
  // per column the boundary offers — otherwise endpoint collisions thin the
  // packing and the achieved density falls short of the target.
  const int min_len = std::max(4, (6 * tracks) / 5);
  const int max_len = std::max(8, (5 * tracks) / 2);
  int next_net = 1;
  for (int lane = 0; lane < tracks; ++lane) {
    int pos = static_cast<int>(rng.next_below(3));
    while (pos < columns - 3) {
      const int len = rng.next_int(min_len, max_len);
      const int left = pos;
      const int right = std::min(pos + len - 1, columns - 1);
      pos = right + 2 + static_cast<int>(rng.next_below(2));

      const int net = next_net;
      const int l = place_near(left, +1, 3, net);
      if (l < 0) continue;
      const int r = place_near(right, -1, 3, net);
      if (r < 0 || r <= l) {
        // Could not pin the right end: demote to a single-pin stub by
        // withdrawing the net (clear the left pin).
        for (const bool top : {true, false})
          if (side_of(top)[static_cast<size_t>(l)] == net)
            side_of(top)[static_cast<size_t>(l)] = 0;
        continue;
      }
      // Optional interior pins: long nets in the difficult channels are
      // multi-terminal.
      const int interior = rng.next_int(0, (r - l) / 6);
      for (int k = 0; k < interior; ++k) {
        const int c = rng.next_int(l + 1, r - 1);
        const bool top = rng.next_bool(0.5);
        if (slot_free(top, c)) claim(top, c, net);
      }
      ++next_net;
    }
  }
  return spec;
}

SwitchboxSpec burstein_class_switchbox(std::uint64_t seed, int width,
                                       int height, int nets) {
  Rng rng(seed);
  SwitchboxSpec spec;
  spec.top.assign(static_cast<size_t>(width), 0);
  spec.bottom.assign(static_cast<size_t>(width), 0);
  spec.left.assign(static_cast<size_t>(height), 0);
  spec.right.assign(static_cast<size_t>(height), 0);

  // Unique boundary slots: corners belong to top/bottom only, so a corner
  // can never carry two different nets.
  struct Slot {
    std::vector<int>* side;
    int index;
  };
  std::vector<Slot> slots;
  for (int x = 0; x < width; ++x) {
    slots.push_back({&spec.top, x});
    slots.push_back({&spec.bottom, x});
  }
  for (int y = 1; y < height - 1; ++y) {
    slots.push_back({&spec.left, y});
    slots.push_back({&spec.right, y});
  }
  // Fisher-Yates shuffle with our deterministic generator.
  for (std::size_t i = slots.size(); i > 1; --i)
    std::swap(slots[i - 1], slots[rng.next_below(i)]);

  // Deal pins round-robin: net k gets 2 + (k mod 3) pins — the 2/3/4-pin
  // mix of the classic difficult switchboxes.
  std::size_t cursor = 0;
  for (int net = 1; net <= nets; ++net) {
    const int pins = 2 + (net - 1) % 3;
    for (int p = 0; p < pins && cursor < slots.size(); ++p, ++cursor)
      (*slots[cursor].side)[static_cast<size_t>(slots[cursor].index)] = net;
  }
  return spec;
}

SwitchboxSpec random_switchbox(std::uint64_t seed, int width, int height,
                               int nets, int max_pins_per_net, double fill) {
  Rng rng(seed);
  SwitchboxSpec spec;
  spec.top.assign(static_cast<size_t>(width), 0);
  spec.bottom.assign(static_cast<size_t>(width), 0);
  spec.left.assign(static_cast<size_t>(height), 0);
  spec.right.assign(static_cast<size_t>(height), 0);

  struct Slot {
    std::vector<int>* side;
    int index;
  };
  std::vector<Slot> slots;
  for (int x = 0; x < width; ++x) {
    slots.push_back({&spec.top, x});
    slots.push_back({&spec.bottom, x});
  }
  for (int y = 1; y < height - 1; ++y) {
    slots.push_back({&spec.left, y});
    slots.push_back({&spec.right, y});
  }
  for (std::size_t i = slots.size(); i > 1; --i)
    std::swap(slots[i - 1], slots[rng.next_below(i)]);

  const auto budget = static_cast<std::size_t>(
      fill * static_cast<double>(slots.size()));
  std::size_t cursor = 0;
  int net = 1;
  while (cursor < budget && net <= nets) {
    const int pins = rng.next_int(2, max_pins_per_net);
    for (int p = 0; p < pins && cursor < slots.size(); ++p, ++cursor)
      (*slots[cursor].side)[static_cast<size_t>(slots[cursor].index)] = net;
    ++net;
  }
  return spec;
}

SwitchboxSpec overfilled_switchbox(std::uint64_t seed, int width, int height,
                                   int nets) {
  // 92% of the boundary slots carry pins — past what two layers can
  // complete, so multi-start always exhausts its attempt budget. The
  // speedup bench and the parallel determinism tests rely on that.
  return random_switchbox(seed, width, height, nets, 4, 0.92);
}

Problem macrocell_region(std::uint64_t seed, int width, int height,
                         int nets) {
  Rng rng(seed);
  Region region(width, height);
  // Notch a corner (rectilinear outline) and drop two full obstacles plus
  // an M1-only strap, the shape of a macro-cell routing pocket.
  region.subtract({{0, height - height / 4}, {width / 5, height - 1}});
  region.add_obstacle(
      {{width / 4, height / 3}, {width / 4 + width / 6, height / 3 + 2}});
  region.add_obstacle(
      {{(2 * width) / 3, height / 2}, {(2 * width) / 3 + 2, height - 3}});
  region.add_obstacle({{0, height / 6}, {width - 1, height / 6}},
                      Layer::kMetal1);

  Problem problem{std::move(region)};
  std::set<Point> used;
  auto free_spot = [&]() -> Point {
    for (int tries = 0; tries < 1000; ++tries) {
      const Point p{rng.next_int(0, width - 1), rng.next_int(0, height - 1)};
      if (used.contains(p)) continue;
      if (!problem.region().in_region(p)) continue;
      if (!problem.region().routable({p, Layer::kMetal1}) &&
          !problem.region().routable({p, Layer::kMetal2}))
        continue;
      used.insert(p);
      return p;
    }
    return {-1, -1};
  };
  for (int k = 0; k < nets; ++k) {
    Net net;
    net.name = "m";
    net.name += std::to_string(k + 1);
    const int pins = rng.next_int(2, 4);
    for (int p = 0; p < pins; ++p) {
      const Point spot = free_spot();
      if (spot.x < 0) break;
      net.pins.push_back({spot, Layer::kMetal1, /*any_layer=*/true});
    }
    if (net.pins.size() >= 2) problem.add_net(std::move(net));
  }
  return problem;
}

Problem multilayer_region(std::uint64_t seed, int width, int height, int nets,
                          LayerStack stack) {
  Rng rng(seed);
  Region region(width, height, std::move(stack));
  // One full-stack block in the middle and an M1-only strap: forces routes
  // around on every layer and up off the bottom layer respectively.
  region.add_obstacle(
      {{width / 3, height / 3}, {width / 3 + 1, height / 3 + 1}});
  region.add_obstacle({{1, height / 5}, {width - 2, height / 5}},
                      Layer::kMetal1);

  Problem problem{std::move(region)};
  std::set<Point> used;
  auto free_spot = [&]() -> Point {
    for (int tries = 0; tries < 1000; ++tries) {
      const Point p{rng.next_int(0, width - 1), rng.next_int(0, height - 1)};
      if (used.contains(p)) continue;
      bool routable = false;
      for (int k = 0; k < problem.region().layer_count() && !routable; ++k)
        routable = problem.region().routable({p, layer_at(k)});
      if (!routable) continue;
      used.insert(p);
      return p;
    }
    return {-1, -1};
  };
  for (int k = 0; k < nets; ++k) {
    Net net;
    net.name = "n";
    net.name += std::to_string(k + 1);
    const int pins = rng.next_int(2, 3);
    for (int p = 0; p < pins; ++p) {
      const Point spot = free_spot();
      if (spot.x < 0) break;
      net.pins.push_back({spot, Layer::kMetal1, /*any_layer=*/true});
    }
    if (net.pins.size() >= 2) problem.add_net(std::move(net));
  }
  return problem;
}

// ---------------------------------------------------------------------------
// Named suites
// ---------------------------------------------------------------------------

std::vector<NamedChannel> channel_suite() {
  return {
      {"simple", simple_channel()},
      {"vcg-cycle", vcg_cycle_channel()},
      {"chain", constraint_chain_channel()},
      {"dense-24", dense_channel()},
      {"deutsch-class-a", deutsch_class_channel(1976, 174, 19)},
      {"deutsch-class-b", deutsch_class_channel(1977, 174, 19)},
      {"deutsch-class-half", deutsch_class_channel(1978, 87, 12)},
      {"packed-60", deutsch_class_channel(42, 60, 10)},
      {"wide-low-120", deutsch_class_channel(7, 120, 5)},
      {"narrow-dense-40", deutsch_class_channel(8, 40, 14)},
  };
}

std::vector<NamedSwitchbox> switchbox_suite() {
  return {
      {"cross", cross_switchbox()},
      {"dense-8x8", dense_switchbox()},
      {"burstein-class-a", burstein_class_switchbox(1983)},
      {"burstein-class-b", burstein_class_switchbox(1984)},
      {"burstein-class-c", burstein_class_switchbox(1985)},
      {"sparse-16", random_switchbox(11, 16, 12, 10, 3, 0.35)},
      {"mid-16", random_switchbox(12, 16, 12, 14, 4, 0.55)},
      {"full-12", random_switchbox(13, 12, 10, 12, 4, 0.75)},
      {"wide-24", random_switchbox(14, 24, 8, 14, 3, 0.45)},
      {"tall-10", random_switchbox(15, 10, 20, 12, 4, 0.5)},
  };
}

std::vector<NamedProblem> multilayer_suite() {
  // A directed layer admits no wrong-way wire at all (hard rule, enforced
  // by router and verifier alike).
  const LayerStack tri_directed{{Axis::kHorizontal, /*directed=*/true},
                                {Axis::kVertical, /*directed=*/true},
                                {Axis::kHorizontal, /*directed=*/false}};
  std::vector<NamedProblem> suite;
  suite.push_back({"tri-16", multilayer_region(21, 16, 12, 14, LayerStack(3))});
  suite.push_back(
      {"tri-directed-12", multilayer_region(22, 12, 10, 8, tri_directed)});
  suite.push_back({"quad-18", multilayer_region(23, 18, 14, 16, LayerStack(4))});
  return suite;
}

}  // namespace gridroute::suite
