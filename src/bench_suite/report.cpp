#include "bench_suite/report.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

namespace gridroute::bench {

namespace {

// ---------------------------------------------------------------------------
// JSON writing
// ---------------------------------------------------------------------------

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Shortest representation that round-trips: integers (the exact-gated
/// fingerprints) print without a fraction, everything else with enough
/// digits to reparse bit-identically.
void append_number(std::string& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

// ---------------------------------------------------------------------------
// JSON parsing — a minimal recursive-descent reader for the report schema.
// Tolerant of field order, whitespace, and unknown fields (skipped), strict
// about structure; errors carry the 1-based line/column of the offending
// character.
// ---------------------------------------------------------------------------

class Reader {
 public:
  Reader(std::string_view text, std::string source)
      : text_(text), source_(std::move(source)) {}

  Status error(const std::string& message) const {
    SourceContext where{source_, 1, 1};
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++where.line;
        where.column = 1;
      } else {
        ++where.column;
      }
    }
    return Status::parse_error(message, where);
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Status expect(char c) {
    if (peek() != c)
      return error(std::string("expected '") + c + "', got '" + peek() + "'");
    ++pos_;
    return {};
  }

  StatusOr<std::string> parse_string() {
    if (Status s = expect('"'); !s.ok()) return s;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return error("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return error("bad hex digit in \\u escape");
            }
            // Reports are ASCII; anything else degrades to '?' rather than
            // growing a UTF-8 encoder nobody needs here.
            c = code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return error(std::string("unknown escape '\\") + e + "'");
        }
      }
      out += c;
    }
    if (Status s = expect('"'); !s.ok()) return error("unterminated string");
    return out;
  }

  StatusOr<double> parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    if (pos_ == start) return error("expected a number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0')
      return error("bad number '" + token + "'");
    return v;
  }

  /// Skips any JSON value (used for unknown fields).
  Status skip_value() {
    const char c = peek();
    if (c == '"') {
      auto s = parse_string();
      return s.ok() ? Status{} : s.status();
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos_;
      if (peek() == close) { ++pos_; return {}; }
      while (true) {
        if (c == '{') {
          if (auto key = parse_string(); !key.ok()) return key.status();
          if (Status s = expect(':'); !s.ok()) return s;
        }
        if (Status s = skip_value(); !s.ok()) return s;
        const char next = peek();
        if (next == ',') { ++pos_; continue; }
        if (next == close) { ++pos_; return {}; }
        return error("expected ',' or container close");
      }
    }
    if (c == 't' || c == 'f' || c == 'n') {
      skip_ws();
      const std::string_view rest = text_.substr(pos_);
      for (const std::string_view word : {"true", "false", "null"})
        if (rest.substr(0, word.size()) == word) {
          pos_ += word.size();
          return {};
        }
      return error("bad literal");
    }
    auto n = parse_number();
    return n.ok() ? Status{} : n.status();
  }

  /// Iterates the fields of an object: calls field(key) for each, which
  /// must consume the value (or skip it).
  template <typename FieldFn>
  Status parse_object(FieldFn&& field) {
    if (Status s = expect('{'); !s.ok()) return s;
    if (peek() == '}') { ++pos_; return {}; }
    while (true) {
      auto key = parse_string();
      if (!key.ok()) return key.status();
      if (Status s = expect(':'); !s.ok()) return s;
      if (Status s = field(*key); !s.ok()) return s;
      const char next = peek();
      if (next == ',') { ++pos_; continue; }
      if (next == '}') { ++pos_; return {}; }
      return error("expected ',' or '}' in object");
    }
  }

  /// Iterates an array: calls element() once per entry.
  template <typename ElementFn>
  Status parse_array(ElementFn&& element) {
    if (Status s = expect('['); !s.ok()) return s;
    if (peek() == ']') { ++pos_; return {}; }
    while (true) {
      if (Status s = element(); !s.ok()) return s;
      const char next = peek();
      if (next == ',') { ++pos_; continue; }
      if (next == ']') { ++pos_; return {}; }
      return error("expected ',' or ']' in array");
    }
  }

 private:
  std::string_view text_;
  std::string source_;
  std::size_t pos_ = 0;
};

StatusOr<Gate> gate_from_name(const std::string& name, const Reader& reader) {
  for (const Gate g : {Gate::kExact, Gate::kLowerBetter, Gate::kHigherBetter,
                       Gate::kInfo})
    if (name == gate_name(g)) return g;
  return reader.error("unknown gate '" + name + "'");
}

}  // namespace

const char* gate_name(Gate gate) {
  switch (gate) {
    case Gate::kExact: return "exact";
    case Gate::kLowerBetter: return "lower_better";
    case Gate::kHigherBetter: return "higher_better";
    case Gate::kInfo: return "info";
  }
  return "unknown";
}

void BenchReport::add(std::string name, double value, Gate gate,
                      double tolerance) {
  metrics.push_back({std::move(name), value, gate, tolerance});
}

const Metric* BenchReport::find(std::string_view name) const {
  for (const Metric& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

BenchReport make_report(std::string bench_name) {
  BenchReport report;
  report.bench = std::move(bench_name);
#if defined(__linux__)
  report.os = "linux";
#elif defined(__APPLE__)
  report.os = "darwin";
#elif defined(_WIN32)
  report.os = "windows";
#else
  report.os = "unknown";
#endif
#if defined(__VERSION__)
  report.compiler = __VERSION__;
#else
  report.compiler = "unknown";
#endif
  report.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  return report;
}

std::string to_json(const BenchReport& report) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": ";
  append_number(out, report.schema);
  out += ",\n  \"bench\": ";
  append_escaped(out, report.bench);
  out += ",\n  \"host\": {\"os\": ";
  append_escaped(out, report.os);
  out += ", \"compiler\": ";
  append_escaped(out, report.compiler);
  out += ", \"hardware_threads\": ";
  append_number(out, report.hardware_threads);
  out += "},\n  \"metrics\": [\n";
  for (std::size_t i = 0; i < report.metrics.size(); ++i) {
    const Metric& m = report.metrics[i];
    out += "    {\"name\": ";
    append_escaped(out, m.name);
    out += ", \"value\": ";
    append_number(out, m.value);
    out += ", \"gate\": ";
    append_escaped(out, gate_name(m.gate));
    if (m.gate == Gate::kLowerBetter || m.gate == Gate::kHigherBetter) {
      out += ", \"tolerance\": ";
      append_number(out, m.tolerance);
    }
    out += i + 1 < report.metrics.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

StatusOr<BenchReport> parse_report(std::string_view json,
                                   std::string source_name) {
  Reader reader(json, std::move(source_name));
  BenchReport report;
  bool saw_schema = false;

  const Status status = reader.parse_object([&](const std::string& key) {
    if (key == "schema") {
      auto v = reader.parse_number();
      if (!v.ok()) return v.status();
      report.schema = static_cast<int>(*v);
      saw_schema = true;
      if (report.schema != BenchReport::kSchemaVersion)
        return reader.error("unsupported schema version " +
                            std::to_string(report.schema));
      return Status{};
    }
    if (key == "bench") {
      auto v = reader.parse_string();
      if (!v.ok()) return v.status();
      report.bench = *v;
      return Status{};
    }
    if (key == "host") {
      return reader.parse_object([&](const std::string& host_key) {
        if (host_key == "os" || host_key == "compiler") {
          auto v = reader.parse_string();
          if (!v.ok()) return v.status();
          (host_key == "os" ? report.os : report.compiler) = *v;
          return Status{};
        }
        if (host_key == "hardware_threads") {
          auto v = reader.parse_number();
          if (!v.ok()) return v.status();
          report.hardware_threads = static_cast<int>(*v);
          return Status{};
        }
        return reader.skip_value();
      });
    }
    if (key == "metrics") {
      return reader.parse_array([&]() {
        Metric m;
        bool saw_name = false, saw_value = false;
        const Status s = reader.parse_object([&](const std::string& mk) {
          if (mk == "name") {
            auto v = reader.parse_string();
            if (!v.ok()) return v.status();
            m.name = *v;
            saw_name = true;
            return Status{};
          }
          if (mk == "value") {
            auto v = reader.parse_number();
            if (!v.ok()) return v.status();
            m.value = *v;
            saw_value = true;
            return Status{};
          }
          if (mk == "gate") {
            auto v = reader.parse_string();
            if (!v.ok()) return v.status();
            auto g = gate_from_name(*v, reader);
            if (!g.ok()) return g.status();
            m.gate = *g;
            return Status{};
          }
          if (mk == "tolerance") {
            auto v = reader.parse_number();
            if (!v.ok()) return v.status();
            m.tolerance = *v;
            return Status{};
          }
          return reader.skip_value();
        });
        if (!s.ok()) return s;
        if (!saw_name || !saw_value)
          return reader.error("metric missing required 'name' or 'value'");
        report.metrics.push_back(std::move(m));
        return Status{};
      });
    }
    return reader.skip_value();
  });
  if (!status.ok()) return status;
  if (!reader.at_end()) return reader.error("trailing garbage after report");
  if (!saw_schema) return reader.error("report has no 'schema' field");
  if (report.bench.empty()) return reader.error("report has no 'bench' field");
  return report;
}

Status write_report_file(const BenchReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out)
    return Status::resource_error("cannot open '" + path + "' for writing");
  out << to_json(report);
  out.flush();
  if (!out) return Status::resource_error("write to '" + path + "' failed");
  return {};
}

StatusOr<BenchReport> read_report_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::resource_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_report(buffer.str(), path);
}

GateCheck check_against_baseline(const BenchReport& current,
                                 const BenchReport& baseline) {
  GateCheck check;
  auto fail = [&](std::string line) {
    check.ok = false;
    check.lines.push_back("FAIL " + std::move(line));
  };
  auto pass = [&](std::string line) {
    check.lines.push_back("PASS " + std::move(line));
  };

  if (current.bench != baseline.bench)
    fail("bench name mismatch: current '" + current.bench + "' vs baseline '" +
         baseline.bench + "'");

  for (const Metric& base : baseline.metrics) {
    const Metric* cur = current.find(base.name);
    if (cur == nullptr) {
      if (base.gate != Gate::kInfo)
        fail(base.name + ": present in baseline but missing from the "
                         "current report");
      continue;
    }
    char detail[160];
    std::snprintf(detail, sizeof detail, "%s: %.6g vs baseline %.6g",
                  base.name.c_str(), cur->value, base.value);
    switch (base.gate) {
      case Gate::kExact:
        if (cur->value == base.value) pass(std::string(detail) + " (exact)");
        else fail(std::string(detail) + " (exact mismatch)");
        break;
      case Gate::kLowerBetter:
        if (cur->value <= base.value * (1.0 + base.tolerance))
          pass(std::string(detail) + " (within +" +
               std::to_string(static_cast<int>(base.tolerance * 100)) + "%)");
        else
          fail(std::string(detail) + " (regressed past +" +
               std::to_string(static_cast<int>(base.tolerance * 100)) + "%)");
        break;
      case Gate::kHigherBetter:
        if (cur->value >= base.value * (1.0 - base.tolerance))
          pass(std::string(detail) + " (within -" +
               std::to_string(static_cast<int>(base.tolerance * 100)) + "%)");
        else
          fail(std::string(detail) + " (regressed past -" +
               std::to_string(static_cast<int>(base.tolerance * 100)) + "%)");
        break;
      case Gate::kInfo:
        break;
    }
  }
  for (const Metric& cur : current.metrics)
    if (baseline.find(cur.name) == nullptr)
      check.lines.push_back("NOTE " + cur.name +
                            ": new metric, no baseline yet (joins on the "
                            "next --update)");
  return check;
}

}  // namespace gridroute::bench
