#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "problem/problem.hpp"

namespace gridroute::suite {

// ---------------------------------------------------------------------------
// Hand-crafted classic-style instances (exact, deterministic)
// ---------------------------------------------------------------------------

/// Small textbook channel: density 2, acyclic VCG — every router must route
/// it in density.
ChannelSpec simple_channel();

/// The canonical 2-net vertical-constraint cycle (top: 1 2 / bottom: 2 1).
/// Left-Edge must fail; dogleg, greedy, and the incremental router must
/// route it.
ChannelSpec vcg_cycle_channel();

/// A channel whose VCG chain is longer than its density, so dogleg-free
/// routing needs more than density tracks. Separates LEA from dogleg.
ChannelSpec constraint_chain_channel();

/// A mid-size dense channel (density 6) with multi-terminal nets.
ChannelSpec dense_channel();

/// Minimal switchbox with crossing straight nets (routable on two layers
/// with zero modification).
SwitchboxSpec cross_switchbox();

/// Hand-built dense 8x8 switchbox that forces the incremental router into
/// weak/strong modification but is fully routable.
SwitchboxSpec dense_switchbox();

// ---------------------------------------------------------------------------
// Seeded benchmark families (substitutes for unpublishable classic data —
// see DESIGN.md "Substitutions")
// ---------------------------------------------------------------------------

/// Channels with the shape parameters of Deutsch's Difficult Example:
/// long (default 174 columns), high density (default 19), long
/// multi-terminal nets. Built by packing net intervals into `tracks` lanes,
/// so a solution at `tracks` trunk-tracks exists by construction and the
/// instance's density equals (or is close to) `tracks`.
ChannelSpec deutsch_class_channel(std::uint64_t seed = 1976,
                                  int columns = 174, int tracks = 19);

/// Switchboxes with the shape of Burstein's difficult switchbox: default
/// 23x15 with 24 nets and a near-saturated boundary.
SwitchboxSpec burstein_class_switchbox(std::uint64_t seed = 1983,
                                       int width = 23, int height = 15,
                                       int nets = 24);

/// Uniform random switchbox; `fill` is the fraction of boundary slots
/// carrying pins (congestion knob for the completion-rate sweeps).
SwitchboxSpec random_switchbox(std::uint64_t seed, int width, int height,
                               int nets, int max_pins_per_net = 4,
                               double fill = 0.6);

/// Deliberately over-saturated switchbox (boundary ~92% full): no two-layer
/// router completes it, so best-of-N multi-start runs every attempt. Used
/// by the parallel-determinism tests and the multi-start speedup bench.
SwitchboxSpec overfilled_switchbox(std::uint64_t seed = 5, int width = 12,
                                   int height = 10, int nets = 16);

/// Irregular macro-cell style region: a notched rectangle with obstacles on
/// both layers plus an M1-only strap, pins on the boundary and inside.
Problem macrocell_region(std::uint64_t seed = 7, int width = 40,
                         int height = 28, int nets = 18);

/// Routing pocket on an arbitrary layer stack (N >= 2): scattered any-layer
/// pins, a full-stack obstacle block, and an M1-only strap. The workhorse
/// instance family for multi-layer routing and layer assignment.
Problem multilayer_region(std::uint64_t seed, int width, int height, int nets,
                          LayerStack stack);

// ---------------------------------------------------------------------------
// Named suites driven by the benchmark tables
// ---------------------------------------------------------------------------

struct NamedChannel {
  std::string name;
  ChannelSpec spec;
};
std::vector<NamedChannel> channel_suite();

struct NamedSwitchbox {
  std::string name;
  SwitchboxSpec spec;
};
std::vector<NamedSwitchbox> switchbox_suite();

struct NamedProblem {
  std::string name;
  Problem problem;
};
/// Multi-layer instances: one 3-layer, one directed 3-layer, one 4-layer.
std::vector<NamedProblem> multilayer_suite();

}  // namespace gridroute::suite
