#pragma once

#include <compare>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iosfwd>

namespace gridroute {

/// A point on the routing grid plane. Coordinates are signed so that
/// off-by-one arithmetic at region boundaries stays well-defined.
struct Point {
  int x = 0;
  int y = 0;

  friend auto operator<=>(const Point&, const Point&) = default;

  Point operator+(Point o) const { return {x + o.x, y + o.y}; }
  Point operator-(Point o) const { return {x - o.x, y - o.y}; }
};

/// Rectilinear (L1) distance — the natural wirelength metric on a grid.
inline int manhattan(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

std::ostream& operator<<(std::ostream& os, Point p);

/// Routing layer index, bottom to top. The named constants are the two
/// layers of the classic stack the library grew up on — METAL1 (index 0,
/// horizontal-preferred) and METAL2 (index 1, vertical-preferred) — but the
/// enum is an open index type: taller stacks use layer_at(k) for k >= 2, and
/// which directions/costs a layer carries is runtime data (geom/layer.hpp's
/// LayerStack), not baked into the type. Preferences are soft costs unless a
/// stack marks a layer directed (unreserved model otherwise, matching the
/// general two-dimensional routers this library reproduces).
enum class Layer : std::uint8_t { kMetal1 = 0, kMetal2 = 1 };

inline int layer_index(Layer l) { return static_cast<int>(l); }

inline Layer layer_at(int k) { return static_cast<Layer>(k); }

/// Classic-stack helper: the other layer of a *two-layer* technology. Only
/// meaningful for code that is inherently two-layer (channel realization,
/// 2-layer tests); N-layer code iterates cuts/adjacent layers instead.
inline Layer other_layer(Layer l) {
  return l == Layer::kMetal1 ? Layer::kMetal2 : Layer::kMetal1;
}

std::ostream& operator<<(std::ostream& os, Layer l);

/// A grid node: a planar point plus its layer. This is the vertex type of
/// the routing graph searched by the maze routers.
struct GridPoint {
  Point pos;
  Layer layer = Layer::kMetal1;

  friend auto operator<=>(const GridPoint&, const GridPoint&) = default;
};

std::ostream& operator<<(std::ostream& os, GridPoint g);

}  // namespace gridroute

template <>
struct std::hash<gridroute::Point> {
  std::size_t operator()(gridroute::Point p) const noexcept {
    // Szudzik-style mix; fine for grid coordinates.
    auto ux = static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x));
    auto uy = static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.y));
    std::uint64_t v = (ux << 32) | uy;
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    return static_cast<std::size_t>(v);
  }
};

template <>
struct std::hash<gridroute::GridPoint> {
  std::size_t operator()(const gridroute::GridPoint& g) const noexcept {
    std::size_t h = std::hash<gridroute::Point>{}(g.pos);
    return h * 3 + static_cast<std::size_t>(g.layer);
  }
};
