#include <ostream>

#include "geom/layer.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace gridroute {

std::ostream& operator<<(std::ostream& os, Point p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

std::ostream& operator<<(std::ostream& os, Layer l) {
  // M<k+1> for any index — traces and diagnostics stay truthful past M2.
  return os << 'M' << (layer_index(l) + 1);
}

std::ostream& operator<<(std::ostream& os, Axis a) {
  return os << (a == Axis::kHorizontal ? 'H' : 'V');
}

std::ostream& operator<<(std::ostream& os, GridPoint g) {
  return os << g.pos << '/' << g.layer;
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.lo << ".." << r.hi << ']';
}

std::ostream& operator<<(std::ostream& os, const Segment& s) {
  return os << s.a << '-' << s.b;
}

}  // namespace gridroute
