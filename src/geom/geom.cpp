#include <ostream>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace gridroute {

std::ostream& operator<<(std::ostream& os, Point p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

std::ostream& operator<<(std::ostream& os, Layer l) {
  return os << (l == Layer::kMetal1 ? "M1" : "M2");
}

std::ostream& operator<<(std::ostream& os, GridPoint g) {
  return os << g.pos << '/' << g.layer;
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.lo << ".." << r.hi << ']';
}

std::ostream& operator<<(std::ostream& os, const Segment& s) {
  return os << s.a << '-' << s.b;
}

}  // namespace gridroute
