#pragma once

#include <algorithm>
#include <iosfwd>

#include "geom/point.hpp"

namespace gridroute {

/// Axis-aligned rectangle over grid cells, inclusive of both corners:
/// it covers every cell (x, y) with lo.x <= x <= hi.x and lo.y <= y <= hi.y.
/// Inclusive semantics match grid-cell reasoning (a 1x1 rect is one cell).
struct Rect {
  Point lo;
  Point hi;

  friend auto operator<=>(const Rect&, const Rect&) = default;

  /// Builds the normalized rectangle spanning two arbitrary corners.
  static Rect spanning(Point a, Point b) {
    return {{std::min(a.x, b.x), std::min(a.y, b.y)},
            {std::max(a.x, b.x), std::max(a.y, b.y)}};
  }

  bool valid() const { return lo.x <= hi.x && lo.y <= hi.y; }

  int width() const { return hi.x - lo.x + 1; }
  int height() const { return hi.y - lo.y + 1; }
  long long area() const {
    return static_cast<long long>(width()) * height();
  }

  bool contains(Point p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  bool contains(const Rect& r) const {
    return contains(r.lo) && contains(r.hi);
  }

  bool intersects(const Rect& r) const {
    return lo.x <= r.hi.x && r.lo.x <= hi.x && lo.y <= r.hi.y &&
           r.lo.y <= hi.y;
  }

  /// Smallest rectangle containing both this and r.
  Rect bounding_union(const Rect& r) const {
    return {{std::min(lo.x, r.lo.x), std::min(lo.y, r.lo.y)},
            {std::max(hi.x, r.hi.x), std::max(hi.y, r.hi.y)}};
  }

  /// Intersection; result is !valid() when the rectangles are disjoint.
  Rect intersection(const Rect& r) const {
    return {{std::max(lo.x, r.lo.x), std::max(lo.y, r.lo.y)},
            {std::min(hi.x, r.hi.x), std::min(hi.y, r.hi.y)}};
  }

  /// Rectangle grown by d cells on every side (shrunk for negative d).
  Rect inflated(int d) const {
    return {{lo.x - d, lo.y - d}, {hi.x + d, hi.y + d}};
  }
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

/// One straight run of wire on a single layer: axis-parallel, inclusive of
/// both endpoints. Degenerate (single-cell) segments are allowed — they
/// represent a stub or a via landing.
struct Segment {
  GridPoint a;
  GridPoint b;

  friend auto operator<=>(const Segment&, const Segment&) = default;

  bool axis_parallel() const {
    return a.layer == b.layer && (a.pos.x == b.pos.x || a.pos.y == b.pos.y);
  }

  bool horizontal() const { return a.pos.y == b.pos.y; }
  bool vertical() const { return a.pos.x == b.pos.x; }

  /// Number of grid cells covered (length in cells, not edges).
  int cell_count() const { return manhattan(a.pos, b.pos) + 1; }
};

std::ostream& operator<<(std::ostream& os, const Segment& s);

}  // namespace gridroute
