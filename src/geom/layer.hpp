#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "geom/point.hpp"

namespace gridroute {

/// Routing axis a layer prefers. The preference is a soft cost unless the
/// layer is marked `directed` (see LayerSpec).
enum class Axis : std::uint8_t { kHorizontal = 0, kVertical = 1 };

/// One metal layer of a LayerStack.
///
/// The multipliers scale the CostModel's base terms, so the classic stack
/// (all multipliers 1) prices exactly like the historical two-layer model —
/// that equality is what keeps the N=2 refactor bit-identical.
struct LayerSpec {
  Axis preferred = Axis::kHorizontal;
  /// Hard direction rule: wrong-way wire on this layer is illegal — the
  /// maze routers never propose it and the verifier rejects it. False (the
  /// default, and the classic-stack value) keeps the preference soft.
  bool directed = false;
  /// Scales CostModel::wrong_way for planar steps along the non-preferred
  /// axis of this layer.
  int wrong_way_mult = 1;
  /// Scales CostModel::via for the cut *above* this layer (cut k connects
  /// layers k and k+1; the top layer's value is unused).
  int via_up_mult = 1;

  friend bool operator==(const LayerSpec&, const LayerSpec&) = default;
};

/// Hard cap on stack height. Lets per-layer hot-path tables (future-cost
/// residuals, region masks) be fixed-size; 16 covers every technology this
/// library targets with headroom.
constexpr int kMaxLayers = 16;

/// A runtime metal stack: N >= 2 layers, bottom (index 0) to top. Layer k
/// and layer k+1 are connected by vias at *cut* k — a stack of N layers has
/// N-1 cuts, and a multi-layer "via stack" is a run of consecutive cuts.
///
/// The default-constructed stack is the classic two-layer technology the
/// library historically baked in: METAL1 horizontal-preferred, METAL2
/// vertical-preferred, soft preferences, unit multipliers.
class LayerStack {
 public:
  /// Classic 2-layer stack (M1 horizontal, M2 vertical, soft, unit costs).
  LayerStack() : LayerStack(2) {}

  /// Alternating-direction stack of `count` layers starting horizontal
  /// (HVHV...), soft preferences, unit multipliers.
  explicit LayerStack(int count) {
    assert(count >= 2 && count <= kMaxLayers);
    layers_.resize(static_cast<std::size_t>(count));
    for (int k = 0; k < count; ++k)
      layers_[static_cast<std::size_t>(k)].preferred =
          (k % 2 == 0) ? Axis::kHorizontal : Axis::kVertical;
  }

  explicit LayerStack(std::vector<LayerSpec> layers)
      : layers_(std::move(layers)) {
    assert(static_cast<int>(layers_.size()) >= 2 &&
           static_cast<int>(layers_.size()) <= kMaxLayers);
  }
  LayerStack(std::initializer_list<LayerSpec> layers)
      : LayerStack(std::vector<LayerSpec>(layers)) {}

  int count() const { return static_cast<int>(layers_.size()); }
  /// Number of via cuts (count() - 1); cut k connects layers k and k+1.
  int cuts() const { return count() - 1; }

  const LayerSpec& spec(Layer l) const {
    return layers_[static_cast<std::size_t>(layer_index(l))];
  }
  LayerSpec& spec(Layer l) {
    return layers_[static_cast<std::size_t>(layer_index(l))];
  }

  bool horizontal(Layer l) const {
    return spec(l).preferred == Axis::kHorizontal;
  }
  bool directed(Layer l) const { return spec(l).directed; }
  int wrong_way_mult(Layer l) const { return spec(l).wrong_way_mult; }
  /// Via cost multiplier of cut k (scales CostModel::via).
  int via_mult(int cut) const {
    return layers_[static_cast<std::size_t>(cut)].via_up_mult;
  }

  bool valid_layer(Layer l) const {
    return layer_index(l) >= 0 && layer_index(l) < count();
  }

  /// True when any layer carries the hard direction rule (lets callers skip
  /// wrong-way bookkeeping entirely on soft stacks, the classic one
  /// included).
  bool any_directed() const {
    for (const LayerSpec& s : layers_)
      if (s.directed) return true;
    return false;
  }

  /// True for the default-constructed classic two-layer stack — the
  /// configuration under which every output (layout, trace, problem text)
  /// must stay bit-identical to the pre-LayerStack router.
  bool classic() const { return *this == LayerStack(); }

  friend bool operator==(const LayerStack&, const LayerStack&) = default;

 private:
  std::vector<LayerSpec> layers_;
};

std::ostream& operator<<(std::ostream& os, Axis a);

}  // namespace gridroute
