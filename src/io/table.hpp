#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gridroute {

/// Column-aligned plain-text table, the output device of every benchmark
/// harness. Also emits CSV so results can be post-processed.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::size_t row_count() const { return rows_.size(); }

  /// Pretty-printed with aligned columns and a header rule.
  void print(std::ostream& out) const;
  /// Comma-separated, one line per row, header first.
  void print_csv(std::ostream& out) const;

  /// Formats a double with fixed precision (locale-independent).
  static std::string num(double value, int precision = 2);
  static std::string num(long long value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gridroute
