#include "io/text_format.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace gridroute {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("line " + std::to_string(line) + ": " + what);
}

/// Splits a line into whitespace tokens, dropping '#' comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line.substr(0, line.find('#')));
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

int to_int(const std::string& tok, int line) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(tok, &used);
    if (used != tok.size()) fail(line, "bad integer '" + tok + "'");
    return v;
  } catch (const std::logic_error&) {
    fail(line, "bad integer '" + tok + "'");
  }
}

std::vector<int> to_ints(const std::vector<std::string>& tokens,
                         std::size_t from, int line) {
  std::vector<int> values;
  for (std::size_t i = from; i < tokens.size(); ++i)
    values.push_back(to_int(tokens[i], line));
  return values;
}

}  // namespace

Problem parse_problem(std::istream& in) {
  std::string line;
  int line_no = 0;
  Problem problem;
  bool have_region = false;
  Net* open_net = nullptr;

  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& kw = tokens[0];

    if (kw == "region") {
      if (tokens.size() != 3) fail(line_no, "region needs W H");
      const int w = to_int(tokens[1], line_no);
      const int h = to_int(tokens[2], line_no);
      if (w <= 0 || h <= 0) fail(line_no, "region dimensions must be > 0");
      problem = Problem{Region(w, h)};
      have_region = true;
      open_net = nullptr;
    } else if (kw == "subtract" || kw == "obstacle") {
      if (!have_region) fail(line_no, kw + " before region");
      const bool is_obstacle = kw == "obstacle";
      const std::size_t want = is_obstacle ? 6 : 5;
      if (tokens.size() != want)
        fail(line_no, kw + " needs lo.x lo.y hi.x hi.y" +
                          (is_obstacle ? " layer" : ""));
      const Rect r{{to_int(tokens[1], line_no), to_int(tokens[2], line_no)},
                   {to_int(tokens[3], line_no), to_int(tokens[4], line_no)}};
      if (!r.valid()) fail(line_no, "rectangle corners out of order");
      if (!is_obstacle) {
        problem.region().subtract(r);
      } else if (tokens[5] == "m1") {
        problem.region().add_obstacle(r, Layer::kMetal1);
      } else if (tokens[5] == "m2") {
        problem.region().add_obstacle(r, Layer::kMetal2);
      } else if (tokens[5] == "both") {
        problem.region().add_obstacle(r);
      } else {
        fail(line_no, "obstacle layer must be m1, m2 or both");
      }
    } else if (kw == "net") {
      if (!have_region) fail(line_no, "net before region");
      if (tokens.size() != 2) fail(line_no, "net needs a name");
      const NetId id = problem.add_net(tokens[1]);
      open_net = &problem.net(id);
    } else if (kw == "pin") {
      if (open_net == nullptr) fail(line_no, "pin before net");
      if (tokens.size() != 4) fail(line_no, "pin needs X Y LAYER");
      Pin pin;
      pin.pos = {to_int(tokens[1], line_no), to_int(tokens[2], line_no)};
      if (tokens[3] == "m1") {
        pin.layer = Layer::kMetal1;
      } else if (tokens[3] == "m2") {
        pin.layer = Layer::kMetal2;
      } else if (tokens[3] == "any") {
        pin.any_layer = true;
      } else {
        fail(line_no, "pin layer must be m1, m2 or any");
      }
      open_net->pins.push_back(pin);
    } else if (kw == "wire") {
      if (open_net == nullptr) fail(line_no, "wire before net");
      if (tokens.size() != 6) fail(line_no, "wire needs X0 Y0 X1 Y1 LAYER");
      Layer layer;
      if (tokens[5] == "m1") {
        layer = Layer::kMetal1;
      } else if (tokens[5] == "m2") {
        layer = Layer::kMetal2;
      } else {
        fail(line_no, "wire layer must be m1 or m2");
      }
      const Segment seg{
          {{to_int(tokens[1], line_no), to_int(tokens[2], line_no)}, layer},
          {{to_int(tokens[3], line_no), to_int(tokens[4], line_no)}, layer}};
      if (!seg.axis_parallel()) fail(line_no, "wire must be axis-parallel");
      open_net->prewire.push_back(seg);
    } else if (kw == "via") {
      if (open_net == nullptr) fail(line_no, "via before net");
      if (tokens.size() != 3) fail(line_no, "via needs X Y");
      open_net->previas.push_back(
          {to_int(tokens[1], line_no), to_int(tokens[2], line_no)});
    } else if (kw == "fixed") {
      if (open_net == nullptr) fail(line_no, "fixed before net");
      if (tokens.size() != 1) fail(line_no, "fixed takes no arguments");
      open_net->fixed = true;
    } else {
      fail(line_no, "unknown keyword '" + kw + "'");
    }
  }
  if (!have_region) throw std::runtime_error("no region in problem text");
  return problem;
}

Problem parse_problem_string(const std::string& text) {
  std::istringstream in(text);
  return parse_problem(in);
}

namespace {

/// Shared reader for the channel/switchbox side-row formats.
std::map<std::string, std::vector<int>> parse_sides(
    std::istream& in, const std::string& header,
    const std::vector<std::string>& required) {
  std::string line;
  int line_no = 0;
  bool seen_header = false;
  std::map<std::string, std::vector<int>> sides;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (!seen_header) {
      if (tokens.size() != 1 || tokens[0] != header)
        fail(line_no, "expected '" + header + "'");
      seen_header = true;
      continue;
    }
    bool known = false;
    for (const std::string& side : required) known |= tokens[0] == side;
    if (!known) fail(line_no, "unknown side '" + tokens[0] + "'");
    sides[tokens[0]] = to_ints(tokens, 1, line_no);
  }
  for (const std::string& side : required)
    if (!sides.contains(side))
      throw std::runtime_error("missing side '" + side + "'");
  return sides;
}

}  // namespace

ChannelSpec parse_channel(std::istream& in) {
  auto sides = parse_sides(in, "channel", {"top", "bottom"});
  ChannelSpec spec{std::move(sides["top"]), std::move(sides["bottom"])};
  if (spec.top.size() != spec.bottom.size())
    throw std::runtime_error("top and bottom rows differ in length");
  return spec;
}

ChannelSpec parse_channel_string(const std::string& text) {
  std::istringstream in(text);
  return parse_channel(in);
}

SwitchboxSpec parse_switchbox(std::istream& in) {
  auto sides = parse_sides(in, "switchbox", {"top", "bottom", "left", "right"});
  SwitchboxSpec spec{std::move(sides["top"]), std::move(sides["bottom"]),
                     std::move(sides["left"]), std::move(sides["right"])};
  if (spec.top.size() != spec.bottom.size())
    throw std::runtime_error("top and bottom rows differ in length");
  if (spec.left.size() != spec.right.size())
    throw std::runtime_error("left and right rows differ in length");
  return spec;
}

SwitchboxSpec parse_switchbox_string(const std::string& text) {
  std::istringstream in(text);
  return parse_switchbox(in);
}

void write_problem(std::ostream& out, const Problem& problem) {
  const Region& region = problem.region();
  out << "region " << region.width() << ' ' << region.height() << '\n';
  const Rect& b = region.bounds();
  for (int y = b.lo.y; y <= b.hi.y; ++y)
    for (int x = b.lo.x; x <= b.hi.x; ++x) {
      const Point p{x, y};
      if (!region.in_region(p)) {
        out << "subtract " << x << ' ' << y << ' ' << x << ' ' << y << '\n';
        continue;
      }
      const bool m1 = region.blocked({p, Layer::kMetal1});
      const bool m2 = region.blocked({p, Layer::kMetal2});
      if (m1 && m2)
        out << "obstacle " << x << ' ' << y << ' ' << x << ' ' << y
            << " both\n";
      else if (m1)
        out << "obstacle " << x << ' ' << y << ' ' << x << ' ' << y
            << " m1\n";
      else if (m2)
        out << "obstacle " << x << ' ' << y << ' ' << x << ' ' << y
            << " m2\n";
    }
  for (const Net& net : problem.nets()) {
    out << "net " << net.name << '\n';
    if (net.fixed) out << "fixed\n";
    for (const Pin& pin : net.pins) {
      out << "pin " << pin.pos.x << ' ' << pin.pos.y << ' ';
      if (pin.any_layer)
        out << "any";
      else
        out << (pin.layer == Layer::kMetal1 ? "m1" : "m2");
      out << '\n';
    }
    for (const Segment& seg : net.prewire)
      out << "wire " << seg.a.pos.x << ' ' << seg.a.pos.y << ' '
          << seg.b.pos.x << ' ' << seg.b.pos.y << ' '
          << (seg.a.layer == Layer::kMetal1 ? "m1" : "m2") << '\n';
    for (const Point& v : net.previas)
      out << "via " << v.x << ' ' << v.y << '\n';
  }
}

std::string problem_to_string(const Problem& problem) {
  std::ostringstream out;
  write_problem(out, problem);
  return out.str();
}

namespace {

void write_row(std::ostream& out, const std::string& name,
               const std::vector<int>& row) {
  out << name;
  for (int v : row) out << ' ' << v;
  out << '\n';
}

}  // namespace

void write_channel(std::ostream& out, const ChannelSpec& spec) {
  out << "channel\n";
  write_row(out, "top   ", spec.top);
  write_row(out, "bottom", spec.bottom);
}

std::string channel_to_string(const ChannelSpec& spec) {
  std::ostringstream out;
  write_channel(out, spec);
  return out.str();
}

void write_switchbox(std::ostream& out, const SwitchboxSpec& spec) {
  out << "switchbox\n";
  write_row(out, "top   ", spec.top);
  write_row(out, "bottom", spec.bottom);
  write_row(out, "left  ", spec.left);
  write_row(out, "right ", spec.right);
}

std::string switchbox_to_string(const SwitchboxSpec& spec) {
  std::ostringstream out;
  write_switchbox(out, spec);
  return out.str();
}

}  // namespace gridroute
