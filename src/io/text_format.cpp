#include "io/text_format.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace gridroute {

namespace {

/// Where the parser currently is: source name, 1-based line, and the raw
/// line text (for recovering a token's column on error).
struct Cursor {
  const std::string* source;
  int line = 0;
  const std::string* raw = nullptr;

  SourceContext at(const std::string& token = {}) const {
    int column = 0;
    if (raw != nullptr && !token.empty()) {
      const auto pos = raw->find(token);
      if (pos != std::string::npos) column = static_cast<int>(pos) + 1;
    }
    return {*source, line, column};
  }
};

[[noreturn]] void fail(const Cursor& cur, const std::string& what,
                       const std::string& token = {}) {
  throw StatusError(Status::parse_error(what, cur.at(token)));
}

/// Splits a line into whitespace tokens, dropping '#' comments. Embedded
/// NUL bytes terminate the line like a comment would — they cannot start a
/// silent second document.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string head = line.substr(0, line.find('#'));
  head = head.substr(0, head.find('\0'));
  std::istringstream in(head);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

int to_int(const std::string& tok, const Cursor& cur) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(tok, &used);
    if (used != tok.size()) fail(cur, "bad integer '" + tok + "'", tok);
    return v;
  } catch (const std::logic_error&) {
    fail(cur, "bad integer '" + tok + "'", tok);
  }
}

std::vector<int> to_ints(const std::vector<std::string>& tokens,
                         std::size_t from, const Cursor& cur) {
  std::vector<int> values;
  for (std::size_t i = from; i < tokens.size(); ++i)
    values.push_back(to_int(tokens[i], cur));
  return values;
}

}  // namespace

Problem parse_problem(std::istream& in, const std::string& source) {
  std::string line;
  Cursor cur{&source, 0, &line};
  Problem problem;
  bool have_region = false;
  Net* open_net = nullptr;
  std::set<std::string> net_names;

  while (std::getline(in, line)) {
    ++cur.line;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& kw = tokens[0];

    if (kw == "region") {
      if (tokens.size() != 3) fail(cur, "region needs W H");
      const int w = to_int(tokens[1], cur);
      const int h = to_int(tokens[2], cur);
      if (w <= 0 || h <= 0) fail(cur, "region dimensions must be > 0");
      if (static_cast<long long>(w) * h > kMaxRegionCells)
        throw StatusError(Status::resource_error(
            "region " + std::to_string(w) + " x " + std::to_string(h) +
                " exceeds the cell cap (" + std::to_string(kMaxRegionCells) +
                ")",
            cur.at()));
      problem = Problem{Region(w, h)};
      have_region = true;
      open_net = nullptr;
      net_names.clear();
    } else if (kw == "subtract" || kw == "obstacle") {
      if (!have_region) fail(cur, kw + " before region");
      const bool is_obstacle = kw == "obstacle";
      const std::size_t want = is_obstacle ? 6 : 5;
      if (tokens.size() != want)
        fail(cur, kw + " needs lo.x lo.y hi.x hi.y" +
                      (is_obstacle ? " layer" : ""));
      const Rect r{{to_int(tokens[1], cur), to_int(tokens[2], cur)},
                   {to_int(tokens[3], cur), to_int(tokens[4], cur)}};
      if (!r.valid()) fail(cur, "rectangle corners out of order");
      if (!is_obstacle) {
        problem.region().subtract(r);
      } else if (tokens[5] == "m1") {
        problem.region().add_obstacle(r, Layer::kMetal1);
      } else if (tokens[5] == "m2") {
        problem.region().add_obstacle(r, Layer::kMetal2);
      } else if (tokens[5] == "both") {
        problem.region().add_obstacle(r);
      } else {
        fail(cur, "obstacle layer must be m1, m2 or both", tokens[5]);
      }
    } else if (kw == "net") {
      if (!have_region) fail(cur, "net before region");
      if (tokens.size() != 2) fail(cur, "net needs a name");
      if (!net_names.insert(tokens[1]).second)
        fail(cur, "duplicate net '" + tokens[1] + "'", tokens[1]);
      const NetId id = problem.add_net(tokens[1]);
      open_net = &problem.net(id);
    } else if (kw == "pin") {
      if (open_net == nullptr) fail(cur, "pin before net");
      if (tokens.size() != 4) fail(cur, "pin needs X Y LAYER");
      Pin pin;
      pin.pos = {to_int(tokens[1], cur), to_int(tokens[2], cur)};
      if (tokens[3] == "m1") {
        pin.layer = Layer::kMetal1;
      } else if (tokens[3] == "m2") {
        pin.layer = Layer::kMetal2;
      } else if (tokens[3] == "any") {
        pin.any_layer = true;
      } else {
        fail(cur, "pin layer must be m1, m2 or any", tokens[3]);
      }
      open_net->pins.push_back(pin);
    } else if (kw == "wire") {
      if (open_net == nullptr) fail(cur, "wire before net");
      if (tokens.size() != 6) fail(cur, "wire needs X0 Y0 X1 Y1 LAYER");
      Layer layer;
      if (tokens[5] == "m1") {
        layer = Layer::kMetal1;
      } else if (tokens[5] == "m2") {
        layer = Layer::kMetal2;
      } else {
        fail(cur, "wire layer must be m1 or m2", tokens[5]);
      }
      const Segment seg{
          {{to_int(tokens[1], cur), to_int(tokens[2], cur)}, layer},
          {{to_int(tokens[3], cur), to_int(tokens[4], cur)}, layer}};
      if (!seg.axis_parallel()) fail(cur, "wire must be axis-parallel");
      open_net->prewire.push_back(seg);
    } else if (kw == "via") {
      if (open_net == nullptr) fail(cur, "via before net");
      if (tokens.size() != 3) fail(cur, "via needs X Y");
      open_net->previas.push_back(
          {to_int(tokens[1], cur), to_int(tokens[2], cur)});
    } else if (kw == "fixed") {
      if (open_net == nullptr) fail(cur, "fixed before net");
      if (tokens.size() != 1) fail(cur, "fixed takes no arguments");
      open_net->fixed = true;
    } else {
      fail(cur, "unknown keyword '" + kw + "'", kw);
    }
  }
  if (!have_region) {
    cur.raw = nullptr;
    fail(cur, "no region in problem text");
  }
  return problem;
}

Problem parse_problem_string(const std::string& text,
                             const std::string& source) {
  std::istringstream in(text);
  return parse_problem(in, source);
}

StatusOr<Problem> try_parse_problem(std::istream& in,
                                    const std::string& source) {
  try {
    return parse_problem(in, source);
  } catch (const StatusError& e) {
    return e.status();
  }
}

StatusOr<Problem> try_parse_problem_string(const std::string& text,
                                           const std::string& source) {
  std::istringstream in(text);
  return try_parse_problem(in, source);
}

namespace {

struct SideRow {
  std::vector<int> values;
  int line = 0;  ///< where the row was declared (for mismatch diagnostics)
};

/// Shared reader for the channel/switchbox side-row formats.
std::map<std::string, SideRow> parse_sides(
    std::istream& in, const std::string& source, const std::string& header,
    const std::vector<std::string>& required) {
  std::string line;
  Cursor cur{&source, 0, &line};
  bool seen_header = false;
  std::map<std::string, SideRow> sides;
  while (std::getline(in, line)) {
    ++cur.line;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (!seen_header) {
      if (tokens.size() != 1 || tokens[0] != header)
        fail(cur, "expected '" + header + "'");
      seen_header = true;
      continue;
    }
    bool known = false;
    for (const std::string& side : required) known |= tokens[0] == side;
    if (!known) fail(cur, "unknown side '" + tokens[0] + "'", tokens[0]);
    sides[tokens[0]] = {to_ints(tokens, 1, cur), cur.line};
  }
  cur.raw = nullptr;
  if (!seen_header) fail(cur, "expected '" + header + "'");
  for (const std::string& side : required)
    if (!sides.contains(side)) fail(cur, "missing side '" + side + "'");
  return sides;
}

/// Reports rows `a` and `b` differing in length, anchored at the later of
/// the two declaration lines.
[[noreturn]] void fail_mismatch(const std::string& source,
                                const std::string& a_name, const SideRow& a,
                                const std::string& b_name, const SideRow& b) {
  throw StatusError(Status::parse_error(
      a_name + " and " + b_name + " rows differ in length (" +
          std::to_string(a.values.size()) + " vs " +
          std::to_string(b.values.size()) + ")",
      {source, std::max(a.line, b.line), 0}));
}

}  // namespace

ChannelSpec parse_channel(std::istream& in, const std::string& source) {
  auto sides = parse_sides(in, source, "channel", {"top", "bottom"});
  if (sides["top"].values.size() != sides["bottom"].values.size())
    fail_mismatch(source, "top", sides["top"], "bottom", sides["bottom"]);
  return ChannelSpec{std::move(sides["top"].values),
                     std::move(sides["bottom"].values)};
}

ChannelSpec parse_channel_string(const std::string& text,
                                 const std::string& source) {
  std::istringstream in(text);
  return parse_channel(in, source);
}

StatusOr<ChannelSpec> try_parse_channel_string(const std::string& text,
                                               const std::string& source) {
  try {
    return parse_channel_string(text, source);
  } catch (const StatusError& e) {
    return e.status();
  }
}

SwitchboxSpec parse_switchbox(std::istream& in, const std::string& source) {
  auto sides =
      parse_sides(in, source, "switchbox", {"top", "bottom", "left", "right"});
  if (sides["top"].values.size() != sides["bottom"].values.size())
    fail_mismatch(source, "top", sides["top"], "bottom", sides["bottom"]);
  if (sides["left"].values.size() != sides["right"].values.size())
    fail_mismatch(source, "left", sides["left"], "right", sides["right"]);
  return SwitchboxSpec{
      std::move(sides["top"].values), std::move(sides["bottom"].values),
      std::move(sides["left"].values), std::move(sides["right"].values)};
}

SwitchboxSpec parse_switchbox_string(const std::string& text,
                                     const std::string& source) {
  std::istringstream in(text);
  return parse_switchbox(in, source);
}

StatusOr<SwitchboxSpec> try_parse_switchbox_string(const std::string& text,
                                                   const std::string& source) {
  try {
    return parse_switchbox_string(text, source);
  } catch (const StatusError& e) {
    return e.status();
  }
}

void write_problem(std::ostream& out, const Problem& problem) {
  const Region& region = problem.region();
  out << "region " << region.width() << ' ' << region.height() << '\n';
  const Rect& b = region.bounds();
  for (int y = b.lo.y; y <= b.hi.y; ++y)
    for (int x = b.lo.x; x <= b.hi.x; ++x) {
      const Point p{x, y};
      if (!region.in_region(p)) {
        out << "subtract " << x << ' ' << y << ' ' << x << ' ' << y << '\n';
        continue;
      }
      const bool m1 = region.blocked({p, Layer::kMetal1});
      const bool m2 = region.blocked({p, Layer::kMetal2});
      if (m1 && m2)
        out << "obstacle " << x << ' ' << y << ' ' << x << ' ' << y
            << " both\n";
      else if (m1)
        out << "obstacle " << x << ' ' << y << ' ' << x << ' ' << y
            << " m1\n";
      else if (m2)
        out << "obstacle " << x << ' ' << y << ' ' << x << ' ' << y
            << " m2\n";
    }
  for (const Net& net : problem.nets()) {
    out << "net " << net.name << '\n';
    if (net.fixed) out << "fixed\n";
    for (const Pin& pin : net.pins) {
      out << "pin " << pin.pos.x << ' ' << pin.pos.y << ' ';
      if (pin.any_layer)
        out << "any";
      else
        out << (pin.layer == Layer::kMetal1 ? "m1" : "m2");
      out << '\n';
    }
    for (const Segment& seg : net.prewire)
      out << "wire " << seg.a.pos.x << ' ' << seg.a.pos.y << ' '
          << seg.b.pos.x << ' ' << seg.b.pos.y << ' '
          << (seg.a.layer == Layer::kMetal1 ? "m1" : "m2") << '\n';
    for (const Point& v : net.previas)
      out << "via " << v.x << ' ' << v.y << '\n';
  }
}

std::string problem_to_string(const Problem& problem) {
  std::ostringstream out;
  write_problem(out, problem);
  return out.str();
}

namespace {

void write_row(std::ostream& out, const std::string& name,
               const std::vector<int>& row) {
  out << name;
  for (int v : row) out << ' ' << v;
  out << '\n';
}

}  // namespace

void write_channel(std::ostream& out, const ChannelSpec& spec) {
  out << "channel\n";
  write_row(out, "top   ", spec.top);
  write_row(out, "bottom", spec.bottom);
}

std::string channel_to_string(const ChannelSpec& spec) {
  std::ostringstream out;
  write_channel(out, spec);
  return out.str();
}

void write_switchbox(std::ostream& out, const SwitchboxSpec& spec) {
  out << "switchbox\n";
  write_row(out, "top   ", spec.top);
  write_row(out, "bottom", spec.bottom);
  write_row(out, "left  ", spec.left);
  write_row(out, "right ", spec.right);
}

std::string switchbox_to_string(const SwitchboxSpec& spec) {
  std::ostringstream out;
  write_switchbox(out, spec);
  return out.str();
}

}  // namespace gridroute
