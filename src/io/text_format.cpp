#include "io/text_format.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace gridroute {

namespace {

/// Where the parser currently is: source name, 1-based line, and the raw
/// line text (for recovering a token's column on error).
struct Cursor {
  const std::string* source;
  int line = 0;
  const std::string* raw = nullptr;

  SourceContext at(const std::string& token = {}) const {
    int column = 0;
    if (raw != nullptr && !token.empty()) {
      const auto pos = raw->find(token);
      if (pos != std::string::npos) column = static_cast<int>(pos) + 1;
    }
    return {*source, line, column};
  }
};

[[noreturn]] void fail(const Cursor& cur, const std::string& what,
                       const std::string& token = {}) {
  throw StatusError(Status::parse_error(what, cur.at(token)));
}

/// Splits a line into whitespace tokens, dropping '#' comments. Embedded
/// NUL bytes terminate the line like a comment would — they cannot start a
/// silent second document.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string head = line.substr(0, line.find('#'));
  head = head.substr(0, head.find('\0'));
  std::istringstream in(head);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

int to_int(const std::string& tok, const Cursor& cur) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(tok, &used);
    if (used != tok.size()) fail(cur, "bad integer '" + tok + "'", tok);
    return v;
  } catch (const std::logic_error&) {
    fail(cur, "bad integer '" + tok + "'", tok);
  }
}

std::vector<int> to_ints(const std::vector<std::string>& tokens,
                         std::size_t from, const Cursor& cur) {
  std::vector<int> values;
  for (std::size_t i = from; i < tokens.size(); ++i)
    values.push_back(to_int(tokens[i], cur));
  return values;
}

/// Parses a metal-layer token "m<k>" (1-based) against the problem's layer
/// stack; `extra` names the keyword's other accepted token for the error
/// message ("both", "any", or nullptr).
Layer parse_layer_token(const std::string& tok, const Problem& problem,
                        const Cursor& cur, const char* what,
                        const char* extra) {
  const int n = problem.region().layer_count();
  if (tok.size() >= 2 && tok[0] == 'm') {
    bool digits = true;
    for (std::size_t i = 1; i < tok.size(); ++i)
      digits = digits && (tok[i] >= '0' && tok[i] <= '9');
    if (digits) {
      const int k = std::stoi(tok.substr(1));
      if (k >= 1 && k <= n) return layer_at(k - 1);
    }
  }
  std::string want = std::string(what) + " layer must be m1..m" +
                     std::to_string(n);
  if (extra != nullptr) want += std::string(" or ") + extra;
  fail(cur, want, tok);
}

/// Layer-stack pattern over {h,v,H,V}: axis per layer, uppercase = directed.
LayerStack parse_stack_pattern(int n, const std::string& pattern,
                               const Cursor& cur) {
  if (static_cast<int>(pattern.size()) != n)
    fail(cur, "layers pattern must have one letter per layer", pattern);
  std::vector<LayerSpec> specs;
  for (const char c : pattern) {
    LayerSpec s;
    switch (c) {
      case 'h': break;
      case 'v': s.preferred = Axis::kVertical; break;
      case 'H': s.directed = true; break;
      case 'V': s.preferred = Axis::kVertical; s.directed = true; break;
      default:
        fail(cur, "layers pattern letters must be h, v, H or V", pattern);
    }
    specs.push_back(s);
  }
  return LayerStack(std::move(specs));
}

}  // namespace

Problem parse_problem(std::istream& in, const std::string& source) {
  std::string line;
  Cursor cur{&source, 0, &line};
  Problem problem;
  bool have_region = false;
  Net* open_net = nullptr;
  std::set<std::string> net_names;

  while (std::getline(in, line)) {
    ++cur.line;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& kw = tokens[0];

    if (kw == "region") {
      if (tokens.size() != 3) fail(cur, "region needs W H");
      const int w = to_int(tokens[1], cur);
      const int h = to_int(tokens[2], cur);
      if (w <= 0 || h <= 0) fail(cur, "region dimensions must be > 0");
      if (static_cast<long long>(w) * h > kMaxRegionCells)
        throw StatusError(Status::resource_error(
            "region " + std::to_string(w) + " x " + std::to_string(h) +
                " exceeds the cell cap (" + std::to_string(kMaxRegionCells) +
                ")",
            cur.at()));
      problem = Problem{Region(w, h)};
      have_region = true;
      open_net = nullptr;
      net_names.clear();
    } else if (kw == "layers") {
      // Optional stack header: "layers N [pattern]". Must directly follow
      // region (before obstacles resize the per-layer mask) and defaults to
      // the classic two-layer technology when absent.
      if (!have_region) fail(cur, "layers before region");
      if (problem.net_count() > 0 || open_net != nullptr)
        fail(cur, "layers must come before nets");
      if (tokens.size() != 2 && tokens.size() != 3)
        fail(cur, "layers needs N [pattern]");
      const int n = to_int(tokens[1], cur);
      if (n < 2 || n > kMaxLayers)
        fail(cur, "layer count must be between 2 and " +
                      std::to_string(kMaxLayers));
      problem.region().set_layers(tokens.size() == 3
                                      ? parse_stack_pattern(n, tokens[2], cur)
                                      : LayerStack(n));
    } else if (kw == "subtract" || kw == "obstacle") {
      if (!have_region) fail(cur, kw + " before region");
      const bool is_obstacle = kw == "obstacle";
      const std::size_t want = is_obstacle ? 6 : 5;
      if (tokens.size() != want)
        fail(cur, kw + " needs lo.x lo.y hi.x hi.y" +
                      (is_obstacle ? " layer" : ""));
      const Rect r{{to_int(tokens[1], cur), to_int(tokens[2], cur)},
                   {to_int(tokens[3], cur), to_int(tokens[4], cur)}};
      if (!r.valid()) fail(cur, "rectangle corners out of order");
      if (!is_obstacle) {
        problem.region().subtract(r);
      } else if (tokens[5] == "both") {
        problem.region().add_obstacle(r);  // all layers of the stack
      } else {
        problem.region().add_obstacle(
            r, parse_layer_token(tokens[5], problem, cur, "obstacle",
                                 "both"));
      }
    } else if (kw == "net") {
      if (!have_region) fail(cur, "net before region");
      if (tokens.size() != 2) fail(cur, "net needs a name");
      if (!net_names.insert(tokens[1]).second)
        fail(cur, "duplicate net '" + tokens[1] + "'", tokens[1]);
      const NetId id = problem.add_net(tokens[1]);
      open_net = &problem.net(id);
    } else if (kw == "pin") {
      if (open_net == nullptr) fail(cur, "pin before net");
      if (tokens.size() != 4) fail(cur, "pin needs X Y LAYER");
      Pin pin;
      pin.pos = {to_int(tokens[1], cur), to_int(tokens[2], cur)};
      if (tokens[3] == "any") {
        pin.any_layer = true;
      } else {
        pin.layer = parse_layer_token(tokens[3], problem, cur, "pin", "any");
      }
      open_net->pins.push_back(pin);
    } else if (kw == "wire") {
      if (open_net == nullptr) fail(cur, "wire before net");
      if (tokens.size() != 6) fail(cur, "wire needs X0 Y0 X1 Y1 LAYER");
      const Layer layer =
          parse_layer_token(tokens[5], problem, cur, "wire", nullptr);
      const Segment seg{
          {{to_int(tokens[1], cur), to_int(tokens[2], cur)}, layer},
          {{to_int(tokens[3], cur), to_int(tokens[4], cur)}, layer}};
      if (!seg.axis_parallel()) fail(cur, "wire must be axis-parallel");
      open_net->prewire.push_back(seg);
    } else if (kw == "via") {
      if (open_net == nullptr) fail(cur, "via before net");
      if (tokens.size() != 3 && tokens.size() != 4)
        fail(cur, "via needs X Y [CUT]");
      PreVia v;
      v.pos = {to_int(tokens[1], cur), to_int(tokens[2], cur)};
      if (tokens.size() == 4) v.cut = to_int(tokens[3], cur);
      open_net->previas.push_back(v);
    } else if (kw == "fixed") {
      if (open_net == nullptr) fail(cur, "fixed before net");
      if (tokens.size() != 1) fail(cur, "fixed takes no arguments");
      open_net->fixed = true;
    } else {
      fail(cur, "unknown keyword '" + kw + "'", kw);
    }
  }
  if (!have_region) {
    cur.raw = nullptr;
    fail(cur, "no region in problem text");
  }
  return problem;
}

Problem parse_problem_string(const std::string& text,
                             const std::string& source) {
  std::istringstream in(text);
  return parse_problem(in, source);
}

StatusOr<Problem> try_parse_problem(std::istream& in,
                                    const std::string& source) {
  try {
    return parse_problem(in, source);
  } catch (const StatusError& e) {
    return e.status();
  }
}

StatusOr<Problem> try_parse_problem_string(const std::string& text,
                                           const std::string& source) {
  std::istringstream in(text);
  return try_parse_problem(in, source);
}

namespace {

struct SideRow {
  std::vector<int> values;
  int line = 0;  ///< where the row was declared (for mismatch diagnostics)
};

/// Shared reader for the channel/switchbox side-row formats.
std::map<std::string, SideRow> parse_sides(
    std::istream& in, const std::string& source, const std::string& header,
    const std::vector<std::string>& required) {
  std::string line;
  Cursor cur{&source, 0, &line};
  bool seen_header = false;
  std::map<std::string, SideRow> sides;
  while (std::getline(in, line)) {
    ++cur.line;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (!seen_header) {
      if (tokens.size() != 1 || tokens[0] != header)
        fail(cur, "expected '" + header + "'");
      seen_header = true;
      continue;
    }
    bool known = false;
    for (const std::string& side : required) known |= tokens[0] == side;
    if (!known) fail(cur, "unknown side '" + tokens[0] + "'", tokens[0]);
    sides[tokens[0]] = {to_ints(tokens, 1, cur), cur.line};
  }
  cur.raw = nullptr;
  if (!seen_header) fail(cur, "expected '" + header + "'");
  for (const std::string& side : required)
    if (!sides.contains(side)) fail(cur, "missing side '" + side + "'");
  return sides;
}

/// Reports rows `a` and `b` differing in length, anchored at the later of
/// the two declaration lines.
[[noreturn]] void fail_mismatch(const std::string& source,
                                const std::string& a_name, const SideRow& a,
                                const std::string& b_name, const SideRow& b) {
  throw StatusError(Status::parse_error(
      a_name + " and " + b_name + " rows differ in length (" +
          std::to_string(a.values.size()) + " vs " +
          std::to_string(b.values.size()) + ")",
      {source, std::max(a.line, b.line), 0}));
}

}  // namespace

ChannelSpec parse_channel(std::istream& in, const std::string& source) {
  auto sides = parse_sides(in, source, "channel", {"top", "bottom"});
  if (sides["top"].values.size() != sides["bottom"].values.size())
    fail_mismatch(source, "top", sides["top"], "bottom", sides["bottom"]);
  return ChannelSpec{std::move(sides["top"].values),
                     std::move(sides["bottom"].values)};
}

ChannelSpec parse_channel_string(const std::string& text,
                                 const std::string& source) {
  std::istringstream in(text);
  return parse_channel(in, source);
}

StatusOr<ChannelSpec> try_parse_channel_string(const std::string& text,
                                               const std::string& source) {
  try {
    return parse_channel_string(text, source);
  } catch (const StatusError& e) {
    return e.status();
  }
}

SwitchboxSpec parse_switchbox(std::istream& in, const std::string& source) {
  auto sides =
      parse_sides(in, source, "switchbox", {"top", "bottom", "left", "right"});
  if (sides["top"].values.size() != sides["bottom"].values.size())
    fail_mismatch(source, "top", sides["top"], "bottom", sides["bottom"]);
  if (sides["left"].values.size() != sides["right"].values.size())
    fail_mismatch(source, "left", sides["left"], "right", sides["right"]);
  return SwitchboxSpec{
      std::move(sides["top"].values), std::move(sides["bottom"].values),
      std::move(sides["left"].values), std::move(sides["right"].values)};
}

SwitchboxSpec parse_switchbox_string(const std::string& text,
                                     const std::string& source) {
  std::istringstream in(text);
  return parse_switchbox(in, source);
}

StatusOr<SwitchboxSpec> try_parse_switchbox_string(const std::string& text,
                                                   const std::string& source) {
  try {
    return parse_switchbox_string(text, source);
  } catch (const StatusError& e) {
    return e.status();
  }
}

namespace {

/// Layer token for the problem text format: "m<k>" 1-based.
std::string layer_token(Layer l) {
  return "m" + std::to_string(layer_index(l) + 1);
}

}  // namespace

void write_problem(std::ostream& out, const Problem& problem) {
  const Region& region = problem.region();
  const LayerStack& stack = region.layers();
  out << "region " << region.width() << ' ' << region.height() << '\n';
  // The stack header is only written when it deviates from the classic
  // default, keeping classic problem text byte-identical.
  if (!stack.classic()) {
    out << "layers " << stack.count() << ' ';
    for (int k = 0; k < stack.count(); ++k) {
      const bool h = stack.horizontal(layer_at(k));
      const bool d = stack.directed(layer_at(k));
      out << (h ? (d ? 'H' : 'h') : (d ? 'V' : 'v'));
    }
    out << '\n';
  }
  const Rect& b = region.bounds();
  for (int y = b.lo.y; y <= b.hi.y; ++y)
    for (int x = b.lo.x; x <= b.hi.x; ++x) {
      const Point p{x, y};
      if (!region.in_region(p)) {
        out << "subtract " << x << ' ' << y << ' ' << x << ' ' << y << '\n';
        continue;
      }
      int blocked = 0;
      for (int k = 0; k < stack.count(); ++k)
        if (region.blocked({p, layer_at(k)})) ++blocked;
      if (blocked == 0) continue;
      if (blocked == stack.count()) {
        out << "obstacle " << x << ' ' << y << ' ' << x << ' ' << y
            << " both\n";
      } else {
        for (int k = 0; k < stack.count(); ++k)
          if (region.blocked({p, layer_at(k)}))
            out << "obstacle " << x << ' ' << y << ' ' << x << ' ' << y
                << ' ' << layer_token(layer_at(k)) << '\n';
      }
    }
  for (const Net& net : problem.nets()) {
    out << "net " << net.name << '\n';
    if (net.fixed) out << "fixed\n";
    for (const Pin& pin : net.pins) {
      out << "pin " << pin.pos.x << ' ' << pin.pos.y << ' ';
      if (pin.any_layer)
        out << "any";
      else
        out << layer_token(pin.layer);
      out << '\n';
    }
    for (const Segment& seg : net.prewire)
      out << "wire " << seg.a.pos.x << ' ' << seg.a.pos.y << ' '
          << seg.b.pos.x << ' ' << seg.b.pos.y << ' '
          << layer_token(seg.a.layer) << '\n';
    for (const PreVia& v : net.previas) {
      out << "via " << v.pos.x << ' ' << v.pos.y;
      if (v.cut != 0) out << ' ' << v.cut;
      out << '\n';
    }
  }
}

std::string problem_to_string(const Problem& problem) {
  std::ostringstream out;
  write_problem(out, problem);
  return out.str();
}

namespace {

void write_row(std::ostream& out, const std::string& name,
               const std::vector<int>& row) {
  out << name;
  for (int v : row) out << ' ' << v;
  out << '\n';
}

}  // namespace

void write_channel(std::ostream& out, const ChannelSpec& spec) {
  out << "channel\n";
  write_row(out, "top   ", spec.top);
  write_row(out, "bottom", spec.bottom);
}

std::string channel_to_string(const ChannelSpec& spec) {
  std::ostringstream out;
  write_channel(out, spec);
  return out.str();
}

void write_switchbox(std::ostream& out, const SwitchboxSpec& spec) {
  out << "switchbox\n";
  write_row(out, "top   ", spec.top);
  write_row(out, "bottom", spec.bottom);
  write_row(out, "left  ", spec.left);
  write_row(out, "right ", spec.right);
}

std::string switchbox_to_string(const SwitchboxSpec& spec) {
  std::ostringstream out;
  write_switchbox(out, spec);
  return out.str();
}

}  // namespace gridroute
