#pragma once

#include <string>

#include "grid/routing_grid.hpp"
#include "problem/problem.hpp"

namespace gridroute {

/// One printable symbol per net: 0-9, then a-z, then A-Z, then '?'.
char net_symbol(NetId id);

/// Renders one layer as ASCII, top row first. Cell legend:
///   '.' free   '#' blocked/outside   '0'..'Z' wire of that net
/// A '*' suffix row is not used; vias are visible in render() only.
std::string render_layer(const Problem& problem, const RoutingGrid& grid,
                         Layer layer);

/// Renders both layers side by side plus a via map and a legend — the
/// debugging view used throughout the examples. In the via map, a net
/// symbol marks a via of that net; '.' means no via.
std::string render(const Problem& problem, const RoutingGrid& grid);

}  // namespace gridroute
