#pragma once

#include <iosfwd>
#include <string>

#include "problem/problem.hpp"
#include "util/status.hpp"

namespace gridroute {

/// Plain-text problem format, round-trippable. Example:
///
///   region 12 8
///   subtract 0 6 2 7          # rect lo.x lo.y hi.x hi.y
///   obstacle 4 2 6 3 both     # layer: m1 | m2 | both
///   net a
///   pin 0 3 m1
///   pin 11 5 any
///   net b
///   pin 2 0 m2
///
/// Lines starting with '#' (or inline '#' tails) are comments. Keywords:
/// region W H; subtract/obstacle rects; net NAME opens a net; pin X Y LAYER
/// adds to the open net.
///
/// Channel format (parse_channel):
///
///   channel
///   top    1 0 2 2 0 1
///   bottom 2 1 0 1 2 0
///
/// Switchbox format (parse_switchbox):
///
///   switchbox
///   top    1 2 0 3
///   bottom 3 0 2 1
///   left   0 1 2
///   right  2 3 0
///
/// Error contract (DESIGN.md §2.1f): parse errors throw StatusError — a
/// std::runtime_error carrying a typed Status. Malformed text is
/// ErrorCode::kParse; a region whose cell count exceeds the library's
/// resource cap is kParse-adjacent kResource. Every error names its source
/// (the `source` argument, e.g. a file path; empty by default) and 1-based
/// line, plus the offending token's column when unambiguous — what() always
/// contains "line N". The try_* variants return the same Status instead of
/// throwing.
Problem parse_problem(std::istream& in, const std::string& source = {});
Problem parse_problem_string(const std::string& text,
                             const std::string& source = {});
StatusOr<Problem> try_parse_problem(std::istream& in,
                                    const std::string& source = {});
StatusOr<Problem> try_parse_problem_string(const std::string& text,
                                           const std::string& source = {});
ChannelSpec parse_channel(std::istream& in, const std::string& source = {});
ChannelSpec parse_channel_string(const std::string& text,
                                 const std::string& source = {});
StatusOr<ChannelSpec> try_parse_channel_string(const std::string& text,
                                               const std::string& source = {});
SwitchboxSpec parse_switchbox(std::istream& in,
                              const std::string& source = {});
SwitchboxSpec parse_switchbox_string(const std::string& text,
                                     const std::string& source = {});
StatusOr<SwitchboxSpec> try_parse_switchbox_string(
    const std::string& text, const std::string& source = {});

/// Largest region (width * height in cells) the parser will build. Inputs
/// beyond this are rejected with ErrorCode::kResource before any allocation
/// — a hostile "region 1000000 1000000" must not OOM the process.
inline constexpr long long kMaxRegionCells = 1LL << 24;

/// Writers producing text the parsers accept. Region writers emit the
/// bounding rectangle plus per-cell subtract/obstacle rows (cell granular:
/// correct, if not minimal, for arbitrary rectilinear shapes).
void write_problem(std::ostream& out, const Problem& problem);
std::string problem_to_string(const Problem& problem);
void write_channel(std::ostream& out, const ChannelSpec& spec);
std::string channel_to_string(const ChannelSpec& spec);
void write_switchbox(std::ostream& out, const SwitchboxSpec& spec);
std::string switchbox_to_string(const SwitchboxSpec& spec);

}  // namespace gridroute
