#include "io/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace gridroute {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      out << "| " << cells[c]
          << std::string(widths[c] - cells[c].size() + 1, ' ');
    out << "|\n";
  };
  line(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out << "|-" << std::string(widths[c] + 1, '-');
  out << "|\n";
  for (const auto& row : rows_) line(row);
}

void Table::print_csv(std::ostream& out) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      out << cells[c] << (c + 1 < cells.size() ? "," : "");
    out << '\n';
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

std::string Table::num(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string Table::num(long long value) { return std::to_string(value); }

}  // namespace gridroute
