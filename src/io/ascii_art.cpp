#include "io/ascii_art.hpp"

#include <sstream>

namespace gridroute {

char net_symbol(NetId id) {
  if (id < 0) return '?';
  if (id < 10) return static_cast<char>('0' + id);
  if (id < 36) return static_cast<char>('a' + id - 10);
  if (id < 62) return static_cast<char>('A' + id - 36);
  return '?';
}

namespace {

char cell_char(const Region& region, const RoutingGrid& grid, GridPoint g) {
  if (region.blocked(g)) return '#';
  const NetId o = grid.owner(g);
  return o == kNoNet ? '.' : net_symbol(o);
}

}  // namespace

std::string render_layer(const Problem& problem, const RoutingGrid& grid,
                         Layer layer) {
  const Region& region = problem.region();
  const Rect& b = region.bounds();
  std::ostringstream out;
  for (int y = b.hi.y; y >= b.lo.y; --y) {
    for (int x = b.lo.x; x <= b.hi.x; ++x)
      out << cell_char(region, grid, {{x, y}, layer});
    out << '\n';
  }
  return out.str();
}

std::string render(const Problem& problem, const RoutingGrid& grid) {
  const Region& region = problem.region();
  const Rect& b = region.bounds();
  std::ostringstream out;
  if (region.layer_count() == 2) {
    // Classic layout, byte-identical to the historical renderer.
    out << "M1 (horizontal pref)" << std::string(
               static_cast<size_t>(std::max(b.width() - 18, 3)), ' ')
        << "M2 (vertical pref)" << std::string(
               static_cast<size_t>(std::max(b.width() - 16, 3)), ' ')
        << "vias\n";
  } else {
    for (int k = 0; k < region.layer_count(); ++k) {
      const Layer l = layer_at(k);
      out << l << " ("
          << (region.layers().horizontal(l) ? "horizontal" : "vertical")
          << (region.layers().directed(l) ? ", directed)" : " pref)")
          << std::string(
                 static_cast<size_t>(std::max(b.width() - 18, 3)), ' ');
    }
    out << "vias (lowest cut)\n";
  }
  for (int y = b.hi.y; y >= b.lo.y; --y) {
    for (int k = 0; k < region.layer_count(); ++k) {
      for (int x = b.lo.x; x <= b.hi.x; ++x)
        out << cell_char(region, grid, {{x, y}, layer_at(k)});
      out << "   ";
    }
    for (int x = b.lo.x; x <= b.hi.x; ++x) {
      // One via column: the owner of the lowest occupied cut at the cell
      // (classic stack: exactly the historical cut-0 column).
      NetId v = kNoNet;
      for (int cut = 0; cut < grid.cut_count() && v == kNoNet; ++cut)
        v = grid.via_owner({x, y}, cut);
      out << (v == kNoNet ? '.' : net_symbol(v));
    }
    out << '\n';
  }
  out << "nets:";
  for (NetId id = 0; id < problem.net_count(); ++id)
    out << ' ' << net_symbol(id) << '=' << problem.net(id).name;
  out << '\n';
  return out.str();
}

}  // namespace gridroute
