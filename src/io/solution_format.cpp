#include "io/solution_format.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace gridroute {

namespace {

std::string layer_name(Layer l) {
  return "m" + std::to_string(layer_index(l) + 1);
}

/// Emits maximal straight runs covering every node of the net on `layer`.
/// Horizontal runs cover every cell with a horizontal neighbour; vertical
/// runs likewise; isolated cells become one-cell runs. Junction cells may
/// appear in two runs — harmless, same net.
void write_runs(std::ostream& out, const RoutingGrid& grid, NetId id,
                Layer layer) {
  const Rect& b = grid.region().bounds();
  auto mine = [&](int x, int y) {
    return grid.owner({{x, y}, layer}) == id;
  };
  for (int y = b.lo.y; y <= b.hi.y; ++y) {
    for (int x = b.lo.x; x <= b.hi.x; ++x) {
      if (!mine(x, y) || mine(x - 1, y)) continue;  // not a run start
      int end = x;
      while (mine(end + 1, y)) ++end;
      if (end > x)
        out << "seg " << x << ' ' << y << ' ' << end << ' ' << y << ' '
            << layer_name(layer) << '\n';
    }
  }
  for (int x = b.lo.x; x <= b.hi.x; ++x) {
    for (int y = b.lo.y; y <= b.hi.y; ++y) {
      if (!mine(x, y) || mine(x, y - 1)) continue;
      int end = y;
      while (mine(x, end + 1)) ++end;
      if (end > y) {
        out << "seg " << x << ' ' << y << ' ' << x << ' ' << end << ' '
            << layer_name(layer) << '\n';
      } else if (!mine(x - 1, y) && !mine(x + 1, y)) {
        out << "seg " << x << ' ' << y << ' ' << x << ' ' << y << ' '
            << layer_name(layer) << '\n';  // isolated cell
      }
    }
  }
}

/// Embedded NUL bytes terminate the line like a comment would.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string head = line.substr(0, line.find('#'));
  head = head.substr(0, head.find('\0'));
  std::istringstream in(head);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

/// Parser position for diagnostics; raw recovers a token's column.
struct Cursor {
  const std::string* source;
  int line = 0;
  const std::string* raw = nullptr;
};

[[noreturn]] void fail(const Cursor& cur, const std::string& what,
                       const std::string& token = {}) {
  int column = 0;
  if (cur.raw != nullptr && !token.empty()) {
    const auto pos = cur.raw->find(token);
    if (pos != std::string::npos) column = static_cast<int>(pos) + 1;
  }
  throw StatusError(Status::parse_error("solution: " + what,
                                        {*cur.source, cur.line, column}));
}

int to_int(const std::string& tok, const Cursor& cur) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(tok, &used);
    if (used != tok.size()) fail(cur, "bad integer '" + tok + "'", tok);
    return v;
  } catch (const std::logic_error&) {
    fail(cur, "bad integer '" + tok + "'", tok);
  }
}

}  // namespace

void write_solution(std::ostream& out, const Problem& problem,
                    const RoutingGrid& grid) {
  out << "solution\n";
  for (NetId id = 0; id < problem.net_count(); ++id) {
    if (grid.node_count(id) == 0) continue;
    out << "net " << problem.net(id).name << '\n';
    for (int k = 0; k < grid.layer_count(); ++k)
      write_runs(out, grid, id, layer_at(k));
    // Vias, ordered (cut-major, then position) for determinism. Cut 0 vias
    // keep the classic two-token line so classic solutions stay
    // byte-identical; higher cuts append the cut index.
    for (int cut = 0; cut < grid.cut_count(); ++cut) {
      std::vector<Point> vias;
      for (const GridPoint& g : grid.net_nodes(id))
        if (g.layer == layer_at(cut) && grid.via_owner(g.pos, cut) == id)
          vias.push_back(g.pos);
      std::sort(vias.begin(), vias.end());
      for (const Point& v : vias) {
        out << "via " << v.x << ' ' << v.y;
        if (cut != 0) out << ' ' << cut;
        out << '\n';
      }
    }
  }
}

std::string solution_to_string(const Problem& problem,
                               const RoutingGrid& grid) {
  std::ostringstream out;
  write_solution(out, problem, grid);
  return out.str();
}

RoutingGrid parse_solution(std::istream& in, const Problem& problem,
                           const std::string& source) {
  RoutingGrid grid(problem.region(), problem.net_count());
  std::map<std::string, NetId> by_name;
  for (NetId id = 0; id < problem.net_count(); ++id)
    if (!by_name.emplace(problem.net(id).name, id).second)
      throw StatusError(Status::validation_error(
          "duplicate net name '" + problem.net(id).name +
          "' in problem makes solution net references ambiguous"));

  std::string line;
  Cursor cur{&source, 0, &line};
  bool seen_header = false;
  NetId open_net = kNoNet;

  while (std::getline(in, line)) {
    ++cur.line;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (!seen_header) {
      if (tokens.size() != 1 || tokens[0] != "solution")
        fail(cur, "expected 'solution'");
      seen_header = true;
      continue;
    }
    const std::string& kw = tokens[0];
    if (kw == "net") {
      if (tokens.size() != 2) fail(cur, "net needs a name");
      auto it = by_name.find(tokens[1]);
      if (it == by_name.end())
        fail(cur, "unknown net '" + tokens[1] + "'", tokens[1]);
      open_net = it->second;
    } else if (kw == "seg") {
      if (open_net == kNoNet) fail(cur, "seg before net");
      if (tokens.size() != 6) fail(cur, "seg needs X0 Y0 X1 Y1 LAYER");
      Layer layer{};
      bool ok = false;
      const std::string& tok = tokens[5];
      if (tok.size() >= 2 && tok[0] == 'm' &&
          tok.find_first_not_of("0123456789", 1) == std::string::npos) {
        const int k = to_int(tok.substr(1), cur);
        if (k >= 1 && k <= grid.layer_count()) {
          layer = layer_at(k - 1);
          ok = true;
        }
      }
      if (!ok)
        fail(cur,
             "seg layer must be m1..m" + std::to_string(grid.layer_count()),
             tok);
      const Point a{to_int(tokens[1], cur), to_int(tokens[2], cur)};
      const Point b{to_int(tokens[3], cur), to_int(tokens[4], cur)};
      if (a.x != b.x && a.y != b.y) fail(cur, "seg must be straight");
      const Point step{a.x == b.x ? 0 : (b.x > a.x ? 1 : -1),
                       a.y == b.y ? 0 : (b.y > a.y ? 1 : -1)};
      Point p = a;
      while (true) {
        const GridPoint g{p, layer};
        if (grid.owner(g) != open_net && !grid.occupy(g, open_net))
          fail(cur, "wire conflicts with region or another net");
        if (p == b) break;
        p = p + step;
      }
    } else if (kw == "via") {
      if (open_net == kNoNet) fail(cur, "via before net");
      if (tokens.size() != 3 && tokens.size() != 4)
        fail(cur, "via needs X Y [CUT]");
      const Point v{to_int(tokens[1], cur), to_int(tokens[2], cur)};
      const int cut = tokens.size() == 4 ? to_int(tokens[3], cur) : 0;
      if (cut < 0 || cut >= grid.cut_count())
        fail(cur, "via cut " + std::to_string(cut) +
                      " is outside the layer stack");
      if (grid.via_owner(v, cut) != open_net &&
          !grid.add_via(v, cut, open_net))
        fail(cur, "via not anchored on both layers by its net");
    } else {
      fail(cur, "unknown keyword '" + kw + "'", kw);
    }
  }
  if (!seen_header) {
    cur.raw = nullptr;
    fail(cur, "no 'solution' header");
  }
  grid.commit();
  return grid;
}

RoutingGrid parse_solution_string(const std::string& text,
                                  const Problem& problem,
                                  const std::string& source) {
  std::istringstream in(text);
  return parse_solution(in, problem, source);
}

StatusOr<RoutingGrid> try_parse_solution_string(const std::string& text,
                                                const Problem& problem,
                                                const std::string& source) {
  try {
    return parse_solution_string(text, problem, source);
  } catch (const StatusError& e) {
    return e.status();
  }
}

}  // namespace gridroute
