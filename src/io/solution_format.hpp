#pragma once

#include <iosfwd>
#include <string>

#include "grid/routing_grid.hpp"
#include "problem/problem.hpp"
#include "util/status.hpp"

namespace gridroute {

/// Plain-text routed-layout format, round-trippable against a Problem:
///
///   solution
///   net a
///   seg 0 3 7 3 m1       # maximal straight run, inclusive endpoints
///   seg 4 3 4 5 m2
///   via 4 3
///   net b
///   ...
///
/// Nets are matched by name. write_solution() emits maximal straight runs
/// (overlaps at junctions are fine — they belong to the same net), so
/// parse_solution() reconstructs the exact node and via sets. A degraded
/// partial layout (failed nets absent from the grid) writes and re-parses
/// cleanly — the format never requires completeness.
void write_solution(std::ostream& out, const Problem& problem,
                    const RoutingGrid& grid);
std::string solution_to_string(const Problem& problem,
                               const RoutingGrid& grid);

/// Rebuilds a grid state from solution text. Error contract (DESIGN.md
/// §2.1f): throws StatusError (a std::runtime_error carrying a typed
/// Status). Syntax errors, unknown net names, and wire conflicting with the
/// region or another net are ErrorCode::kParse with source + line (+ column
/// where unambiguous); a Problem whose net names are ambiguous (duplicates)
/// is kValidation. The try_* variant returns the Status instead.
RoutingGrid parse_solution(std::istream& in, const Problem& problem,
                           const std::string& source = {});
RoutingGrid parse_solution_string(const std::string& text,
                                  const Problem& problem,
                                  const std::string& source = {});
StatusOr<RoutingGrid> try_parse_solution_string(
    const std::string& text, const Problem& problem,
    const std::string& source = {});

}  // namespace gridroute
