#pragma once

#include <iosfwd>
#include <string>

#include "grid/routing_grid.hpp"
#include "problem/problem.hpp"

namespace gridroute {

/// Plain-text routed-layout format, round-trippable against a Problem:
///
///   solution
///   net a
///   seg 0 3 7 3 m1       # maximal straight run, inclusive endpoints
///   seg 4 3 4 5 m2
///   via 4 3
///   net b
///   ...
///
/// Nets are matched by name. write_solution() emits maximal straight runs
/// (overlaps at junctions are fine — they belong to the same net), so
/// parse_solution() reconstructs the exact node and via sets.
void write_solution(std::ostream& out, const Problem& problem,
                    const RoutingGrid& grid);
std::string solution_to_string(const Problem& problem,
                               const RoutingGrid& grid);

/// Rebuilds a grid state from solution text. Throws std::runtime_error on
/// syntax errors, unknown net names, or wire that conflicts with the
/// region, another net, or itself inconsistently.
RoutingGrid parse_solution(std::istream& in, const Problem& problem);
RoutingGrid parse_solution_string(const std::string& text,
                                  const Problem& problem);

}  // namespace gridroute
