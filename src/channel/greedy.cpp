#include <algorithm>
#include <climits>
#include <map>
#include <vector>

#include "channel/channel_routers.hpp"

namespace gridroute {

namespace {

/// One attempt at routing the channel with a fixed number of tracks.
/// Returns success/failure plus the solution; the caller widens the channel
/// and retries on failure (a simpler, equivalent formulation of the classic
/// router's "add a track in the middle" move — the metric, minimum feasible
/// tracks, is identical).
class GreedyAttempt {
 public:
  GreedyAttempt(const ChannelSpec& spec, int tracks,
                const GreedyOptions& options)
      : spec_(spec), tracks_(tracks), options_(options) {
    track_net_.assign(static_cast<size_t>(tracks_) + 2, 0);
    h_open_.assign(static_cast<size_t>(tracks_) + 2, -1);
    for (int col = 0; col < spec_.columns(); ++col)
      for (const int n : {spec_.top[static_cast<size_t>(col)],
                          spec_.bottom[static_cast<size_t>(col)]})
        if (n != 0) last_pin_col_[n] = col;  // columns scanned left to right
  }

  bool run(TrackSolution* out) {
    for (col_ = 0; col_ < spec_.columns(); ++col_) {
      col_vsegs_.clear();
      if (!bring_in_pins()) return false;
      collapse_split_nets();
      reduce_ranges();
      close_completed_nets();
    }
    // Still-split nets get extra pin-free columns to finish collapsing.
    int extra = 0;
    while (any_split_net() && extra < options_.max_extra_columns) {
      col_ = spec_.columns() + extra;
      ++extra;
      col_vsegs_.clear();
      collapse_split_nets();
      reduce_ranges();
      close_completed_nets();
    }
    if (any_split_net()) return false;

    // Close any trunk that is still open (single-track nets whose last
    // junction was their final pin column are already closed; this catches
    // none in practice but keeps the invariant airtight).
    const int last_col = extra > 0 ? col_ : std::max(col_ - 1, 0);
    for (int r = 1; r <= tracks_; ++r)
      if (track_net_[static_cast<size_t>(r)] != 0) close_track(r, last_col);

    out->tracks = tracks_;
    out->extra_columns = extra;
    out->horizontals = horizontals_;
    out->verticals = verticals_;
    return true;
  }

 private:
  // -- vertical bookkeeping for the current column ---------------------------

  bool v_free(int net, int r0, int r1) const {
    for (const VSeg& v : col_vsegs_)
      if (v.net != net && r0 <= v.r1 && v.r0 <= r1) return false;
    return true;
  }

  void add_vseg(int net, int r0, int r1) {
    col_vsegs_.push_back({net, col_, r0, r1});
    verticals_.push_back({net, col_, r0, r1});
  }

  // -- track bookkeeping ------------------------------------------------------

  std::vector<int> tracks_of(int net) const {
    std::vector<int> rows;
    for (int r = 1; r <= tracks_; ++r)
      if (track_net_[static_cast<size_t>(r)] == net) rows.push_back(r);
    return rows;
  }

  void open_track(int row, int net) {
    track_net_[static_cast<size_t>(row)] = net;
    h_open_[static_cast<size_t>(row)] = col_;
  }

  void close_track(int row, int end_col) {
    const int net = track_net_[static_cast<size_t>(row)];
    horizontals_.push_back(
        {net, row, h_open_[static_cast<size_t>(row)], end_col});
    track_net_[static_cast<size_t>(row)] = 0;
    h_open_[static_cast<size_t>(row)] = -1;
  }

  // -- the three per-column phases --------------------------------------------

  /// Connects this column's boundary pins to tracks with minimal jogs:
  /// nearest own track first, else nearest empty track, scanning inward
  /// from the pin's side of the channel.
  bool bring_in(int net, bool from_top) {
    const int pin_row = from_top ? tracks_ + 1 : 0;
    auto reachable = [&](int row) {
      const auto [lo, hi] = std::minmax(pin_row, row);
      return v_free(net, lo, hi);
    };
    int chosen = 0;
    // Own tracks, nearest to the pin first.
    {
      int best_d = INT_MAX;
      for (const int r : tracks_of(net)) {
        const int d = std::abs(pin_row - r);
        if (d < best_d && reachable(r)) {
          best_d = d;
          chosen = r;
        }
      }
    }
    // Else the first reachable empty track scanning from the pin inward.
    if (chosen == 0) {
      if (from_top) {
        for (int r = tracks_; r >= 1 && chosen == 0; --r)
          if (track_net_[static_cast<size_t>(r)] == 0 && reachable(r))
            chosen = r;
      } else {
        for (int r = 1; r <= tracks_ && chosen == 0; ++r)
          if (track_net_[static_cast<size_t>(r)] == 0 && reachable(r))
            chosen = r;
      }
      if (chosen != 0) open_track(chosen, net);
    }
    if (chosen == 0) return false;
    const auto [lo, hi] = std::minmax(pin_row, chosen);
    add_vseg(net, lo, hi);
    return true;
  }

  /// Candidate landing tracks for a pin of `net`: its own tracks plus the
  /// currently empty tracks. `own` flags which, so the chooser can charge a
  /// split penalty for landing on an empty track.
  struct Candidate {
    int row = 0;
    bool own = false;
  };
  std::vector<Candidate> landing_candidates(int net) const {
    std::vector<Candidate> cands;
    for (int r = 1; r <= tracks_; ++r) {
      const int occupant = track_net_[static_cast<size_t>(r)];
      if (occupant == net)
        cands.push_back({r, true});
      else if (occupant == 0)
        cands.push_back({r, false});
    }
    return cands;
  }

  void commit_landing(int net, const Candidate& c, int pin_row) {
    if (!c.own && track_net_[static_cast<size_t>(c.row)] == 0)
      open_track(c.row, net);
    const auto [lo, hi] = std::minmax(pin_row, c.row);
    add_vseg(net, lo, hi);
  }

  /// Both sides pinned by different nets: their verticals share this column
  /// and must not overlap, so the top net has to land strictly above the
  /// bottom net. Choosing the pair jointly (minimal jogs, split penalised)
  /// is what lets the greedy router absorb vertical-constraint cycles that
  /// defeat the left-edge family.
  bool bring_in_both(int t, int b) {
    const int top_row = tracks_ + 1;
    const auto top_cands = landing_candidates(t);
    const auto bottom_cands = landing_candidates(b);
    const Candidate* best_t = nullptr;
    const Candidate* best_b = nullptr;
    int best_cost = INT_MAX;
    for (const Candidate& ct : top_cands)
      for (const Candidate& cb : bottom_cands) {
        if (ct.row <= cb.row) continue;  // verticals would overlap
        const int cost = (top_row - ct.row) + cb.row +
                         (ct.own ? 0 : tracks_) + (cb.own ? 0 : tracks_);
        if (cost < best_cost) {
          best_cost = cost;
          best_t = &ct;
          best_b = &cb;
        }
      }
    if (best_t == nullptr) return false;
    commit_landing(t, *best_t, top_row);
    commit_landing(b, *best_b, 0);
    return true;
  }

  bool bring_in_pins() {
    const int t = spec_.top[static_cast<size_t>(col_)];
    const int b = spec_.bottom[static_cast<size_t>(col_)];
    if (t != 0 && t == b) {
      // Same net on both sides: a through-vertical serves both pins and
      // every incident track; the net still needs at least one track if it
      // continues to the right.
      if (!v_free(t, 0, tracks_ + 1)) return false;
      if (tracks_of(t).empty()) {
        int chosen = 0;
        for (int r = 1; r <= tracks_ && chosen == 0; ++r)
          if (track_net_[static_cast<size_t>(r)] == 0) chosen = r;
        if (chosen == 0) return false;
        open_track(chosen, t);
      }
      add_vseg(t, 0, tracks_ + 1);
      return true;
    }
    if (t != 0 && b != 0) return bring_in_both(t, b);
    if (t != 0) return bring_in(t, /*from_top=*/true);
    if (b != 0) return bring_in(b, /*from_top=*/false);
    return true;
  }

  /// Joins pairs of tracks held by the same net with free verticals,
  /// releasing one track per join. The kept track is the one nearer the
  /// side of the net's next pin (a small amount of steering for free).
  void collapse_split_nets() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (int net : nets_on_tracks()) {
        const std::vector<int> rows = tracks_of(net);
        if (rows.size() < 2) continue;
        for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
          const int r_low = rows[i];
          const int r_high = rows[i + 1];
          if (!v_free(net, r_low, r_high)) continue;
          add_vseg(net, r_low, r_high);
          const int drop = prefer_high_side(net) ? r_low : r_high;
          close_track(drop, col_);
          progress = true;
          break;  // track set changed; recompute
        }
      }
    }
  }

  /// Classic "reduce the range of split nets": a split net that could not
  /// fully collapse jogs its outermost tracks inward onto free tracks,
  /// shrinking the gap so a later column can finish the merge.
  void reduce_ranges() {
    for (int net : nets_on_tracks()) {
      const std::vector<int> rows = tracks_of(net);
      if (rows.size() < 2) continue;
      const int r_lo = rows.front();
      const int r_hi = rows.back();
      if (r_hi - r_lo <= options_.collapse_distance) continue;
      // Jog the low end up as far as a free, vertically reachable track
      // strictly inside the current range allows (and symmetrically the
      // high end down). One jog per net per column keeps verticals short.
      auto jog = [&](int from, int towards) {
        const int step = towards > from ? 1 : -1;
        int best = 0;
        for (int r = from + step; r != towards; r += step) {
          if (track_net_[static_cast<size_t>(r)] != 0) continue;
          const auto [lo, hi] = std::minmax(from, r);
          if (!v_free(net, lo, hi)) break;  // a farther jog only gets worse
          best = r;
        }
        if (best == 0) return false;
        const auto [lo, hi] = std::minmax(from, best);
        add_vseg(net, lo, hi);
        open_track(best, net);
        close_track(from, col_);
        return true;
      };
      if (!jog(r_lo, r_hi)) jog(r_hi, r_lo);
    }
  }

  /// True when the net's next pin (strictly right of this column) is on the
  /// top edge — used to pick which track survives a collapse.
  bool prefer_high_side(int net) const {
    for (int c = col_ + 1; c < spec_.columns(); ++c) {
      if (spec_.top[static_cast<size_t>(c)] == net) return true;
      if (spec_.bottom[static_cast<size_t>(c)] == net) return false;
    }
    return false;
  }

  void close_completed_nets() {
    for (int net : nets_on_tracks()) {
      auto it = last_pin_col_.find(net);
      if (it == last_pin_col_.end() || it->second > col_) continue;
      const std::vector<int> rows = tracks_of(net);
      if (rows.size() != 1) continue;  // still split: keep collapsing
      close_track(rows.front(), col_);
    }
  }

  std::vector<int> nets_on_tracks() const {
    std::vector<int> nets;
    for (int r = 1; r <= tracks_; ++r) {
      const int n = track_net_[static_cast<size_t>(r)];
      if (n != 0 && std::find(nets.begin(), nets.end(), n) == nets.end())
        nets.push_back(n);
    }
    return nets;
  }

  bool any_split_net() const {
    for (int net : nets_on_tracks())
      if (tracks_of(net).size() > 1) return true;
    return false;
  }

  const ChannelSpec& spec_;
  const int tracks_;
  const GreedyOptions options_;
  int col_ = 0;
  std::vector<int> track_net_;  // rows 1..tracks_; 0 = free
  std::vector<int> h_open_;
  std::map<int, int> last_pin_col_;
  std::vector<VSeg> col_vsegs_;
  std::vector<HSeg> horizontals_;
  std::vector<VSeg> verticals_;
};

}  // namespace

ChannelResult route_greedy(const ChannelSpec& spec, GreedyOptions options) {
  ChannelResult result;
  result.router = "greedy";
  const int density = ChannelAnalysis(spec).density();
  const int floor_tracks = std::max(density, 1);
  for (int tracks = floor_tracks;
       tracks <= floor_tracks + options.max_extra_tracks; ++tracks) {
    GreedyAttempt attempt(spec, tracks, options);
    TrackSolution sol;
    if (attempt.run(&sol)) {
      result.success = true;
      result.solution = std::move(sol);
      return result;
    }
  }
  result.reason = "no feasible width within density + " +
                  std::to_string(options.max_extra_tracks) + " tracks";
  return result;
}

}  // namespace gridroute
