#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "channel/track_solution.hpp"

namespace gridroute {

namespace {

/// Net-number -> NetId map for a channel problem, recovered from the net
/// names ("n<number>") so it can never drift from ChannelSpec::to_problem.
std::map<int, NetId> net_ids(const Problem& problem) {
  std::map<int, NetId> ids;
  for (NetId id = 0; id < problem.net_count(); ++id) {
    const std::string& name = problem.net(id).name;
    ids[std::stoi(name.substr(1))] = id;
  }
  return ids;
}

}  // namespace

RealizedChannel realize(const ChannelSpec& spec, const TrackSolution& sol) {
  ChannelSpec padded = spec;
  padded.top.resize(padded.top.size() + static_cast<size_t>(sol.extra_columns),
                    0);
  padded.bottom.resize(
      padded.bottom.size() + static_cast<size_t>(sol.extra_columns), 0);

  Problem problem = padded.to_problem(sol.tracks);
  RoutingGrid grid(problem.region(), problem.net_count());
  const std::map<int, NetId> ids = net_ids(problem);

  auto claim = [&](GridPoint g, int net_number) {
    const NetId id = ids.at(net_number);
    if (grid.owner(g) == id) return;  // same-net overlap: merge silently
    if (!grid.occupy(g, id)) {
      std::ostringstream msg;
      msg << "channel solution overlap: net " << net_number
          << " cannot claim " << g << " (owner: "
          << (grid.owner(g) == kNoNet ? std::string("blocked")
                                      : problem.net(grid.owner(g)).name)
          << ")";
      throw std::logic_error(msg.str());
    }
  };

  for (const HSeg& h : sol.horizontals) {
    const auto [c0, c1] = std::minmax(h.c0, h.c1);
    for (int c = c0; c <= c1; ++c)
      claim({{c, h.row}, Layer::kMetal1}, h.net);
  }
  for (const VSeg& v : sol.verticals) {
    const auto [r0, r1] = std::minmax(v.r0, v.r1);
    for (int r = r0; r <= r1; ++r)
      claim({{v.col, r}, Layer::kMetal2}, v.net);
  }

  // Same-net stacked cells become vias: never a short, always a junction.
  const Rect& b = problem.region().bounds();
  for (int y = b.lo.y; y <= b.hi.y; ++y)
    for (int x = b.lo.x; x <= b.hi.x; ++x) {
      const NetId m1 = grid.owner({{x, y}, Layer::kMetal1});
      if (m1 != kNoNet && m1 == grid.owner({{x, y}, Layer::kMetal2}))
        grid.add_via({x, y}, m1);
    }

  return {std::move(problem), std::move(grid)};
}

}  // namespace gridroute
