#include "channel/channel_incremental.hpp"

#include <algorithm>
#include <chrono>

#include "channel/channel_analysis.hpp"

namespace gridroute {

RouterOptions channel_router_options() {
  return RouterOptions{};
}

ChannelRouteResult route_channel(const ChannelSpec& spec,
                                 const RouteRequest& base,
                                 int max_extra_tracks) {
  ChannelRouteResult result;
  const auto t0 = std::chrono::steady_clock::now();
  const int density = ChannelAnalysis(spec).density();
  const int floor_tracks = std::max(density, 1);
  for (int tracks = floor_tracks; tracks <= floor_tracks + max_extra_tracks;
       ++tracks) {
    const Problem problem = spec.to_problem(tracks);
    RouteRequest request = base;
    request.problem = &problem;
    request.arena = nullptr;
    if (base.budget.wall_ms > 0) {
      // The wall budget spans the whole ladder: each width runs against
      // whatever the earlier widths left of it.
      const double elapsed =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      request.budget.wall_ms = base.budget.wall_ms - elapsed;
      if (request.budget.wall_ms <= 0) return result;  // ladder budget spent
    }
    RouteResult routed = route(request);
    if (!routed.complete()) {
      // An exhausted budget would only be exhausted again one track wider.
      if (routed.budget_exhausted) return result;
      continue;
    }
    const VerifyReport report = verify(problem, routed.grid);
    if (!report.all_ok()) continue;
    result.success = true;
    result.tracks = tracks;
    result.wire_nodes = report.total_wire_nodes;
    result.vias = report.total_vias;
    result.result = std::move(routed);
    return result;
  }
  return result;
}

}  // namespace gridroute
