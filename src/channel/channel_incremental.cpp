#include "channel/channel_incremental.hpp"

#include <algorithm>

#include "channel/channel_analysis.hpp"

namespace gridroute {

RouterOptions channel_router_options() {
  return RouterOptions{};
}

IncrementalChannelResult route_channel_incremental(const ChannelSpec& spec,
                                                   RouterOptions options,
                                                   int max_extra_tracks) {
  IncrementalChannelResult result;
  const int density = ChannelAnalysis(spec).density();
  const int floor_tracks = std::max(density, 1);
  for (int tracks = floor_tracks; tracks <= floor_tracks + max_extra_tracks;
       ++tracks) {
    const Problem problem = spec.to_problem(tracks);
    IncrementalRouter router(problem, options);
    const RouteOutcome outcome = router.run();
    if (!outcome.complete()) continue;
    const VerifyReport report = verify(problem, router.grid());
    if (!report.all_ok()) continue;
    result.success = true;
    result.tracks = tracks;
    result.stats = outcome.stats;
    result.wire_nodes = report.total_wire_nodes;
    result.vias = report.total_vias;
    return result;
  }
  return result;
}

}  // namespace gridroute
