#pragma once

#include <string>
#include <vector>

#include "grid/routing_grid.hpp"
#include "problem/problem.hpp"

namespace gridroute {

/// Horizontal trunk piece: net `net` occupies row `row` (a track index in
/// grid coordinates, 1..tracks) from column c0 to c1 inclusive, on METAL1.
struct HSeg {
  int net = 0;
  int row = 0;
  int c0 = 0;
  int c1 = 0;

  friend bool operator==(const HSeg&, const HSeg&) = default;
};

/// Vertical branch piece: net `net` occupies column `col` from row r0 to r1
/// inclusive, on METAL2 (rows 0 and tracks+1 are the pin rows).
struct VSeg {
  int net = 0;
  int col = 0;
  int r0 = 0;
  int r1 = 0;

  friend bool operator==(const VSeg&, const VSeg&) = default;
};

/// The abstract output of a channel router: a reserved-layer HV layout as
/// segment lists, independent of any grid realization.
struct TrackSolution {
  int tracks = 0;
  /// Columns appended beyond the pinned channel (the greedy router may need
  /// them to collapse still-split nets at the right edge).
  int extra_columns = 0;
  std::vector<HSeg> horizontals;
  std::vector<VSeg> verticals;
};

/// Outcome of a channel-routing attempt.
struct ChannelResult {
  bool success = false;
  std::string router;   ///< algorithm name, for tables
  std::string reason;   ///< failure explanation when !success
  TrackSolution solution;

  int tracks() const { return solution.tracks; }
};

/// A realized channel layout: the grid problem (with the solution's track
/// count and any extra columns padded in) plus the occupied grid. Always
/// run the verifier on `grid` — realization refuses nothing, it just lays
/// the segments down and lets verification be the judge.
struct RealizedChannel {
  Problem problem;
  RoutingGrid grid;
};

/// Materializes a TrackSolution on a grid. Vias are dropped at every cell
/// where the net holds both layers (same-net extra vias are electrically
/// harmless and guarantee all HV junctions connect). Throws std::logic_error
/// if two different nets claim one node — routers must not emit overlaps.
RealizedChannel realize(const ChannelSpec& spec, const TrackSolution& sol);

}  // namespace gridroute
