#pragma once

#include <optional>

#include "core/incremental_router.hpp"
#include "problem/problem.hpp"
#include "verify/verify.hpp"

namespace gridroute {

/// Result of routing a channel with the incremental rip-up router at the
/// smallest feasible track count.
struct IncrementalChannelResult {
  bool success = false;
  int tracks = 0;          ///< smallest track count that routed completely
  RouteStats stats;        ///< effort counters at the successful width
  int wire_nodes = 0;
  int vias = 0;
};

/// RouterOptions tuned for channel problems. Currently identical to the
/// defaults: with victim-freezing probe retries and conflict-history costs
/// in place, the default most-constrained-first ordering reaches the
/// density bound on every suite channel (see bench/table4, section (a) —
/// earlier revisions needed largest-first here to avoid trunk thrash).
/// Kept as the single place channel-specific tuning would live.
RouterOptions channel_router_options();

/// Routes the channel with the incremental router, searching upward from
/// the density lower bound for the smallest track count that completes and
/// verifies. This is the procedure behind the "routed difficult channels in
/// density" comparison row: tracks == density means optimal.
IncrementalChannelResult route_channel_incremental(
    const ChannelSpec& spec, RouterOptions options = channel_router_options(),
    int max_extra_tracks = 10);

}  // namespace gridroute
