#pragma once

#include <optional>

#include "core/api.hpp"
#include "core/incremental_router.hpp"
#include "problem/problem.hpp"
#include "verify/verify.hpp"

namespace gridroute {

/// Result of routing a channel at the smallest feasible track count through
/// the unified route(RouteRequest) entry point.
struct ChannelRouteResult {
  bool success = false;
  int tracks = 0;  ///< smallest track count that routed completely
  /// The successful width's full result (grid, stats, attempts, metrics);
  /// empty when no width in the ladder succeeded.
  std::optional<RouteResult> result;
  int wire_nodes = 0;
  int vias = 0;
};

/// RouterOptions tuned for channel problems. Currently identical to the
/// defaults: with victim-freezing probe retries and conflict-history costs
/// in place, the default most-constrained-first ordering reaches the
/// density bound on every suite channel (see bench/table4, section (a) —
/// earlier revisions needed largest-first here to avoid trunk thrash).
/// Kept as the single place channel-specific tuning would live.
RouterOptions channel_router_options();

/// Routes the channel through the unified route(RouteRequest) entry point,
/// searching upward from the density lower bound for the smallest track
/// count that completes and verifies (tracks == density means optimal).
/// `base` carries the options, budget, trace sink, multi-start attempts and
/// improve passes applied at every width; base.problem and base.arena are
/// ignored (each width builds its own Problem). A wall budget spans the
/// whole track ladder — each width gets what is left of it — while an
/// expansion budget applies per width; the ladder stops early once the
/// budget is exhausted.
ChannelRouteResult route_channel(const ChannelSpec& spec,
                                 const RouteRequest& base = {},
                                 int max_extra_tracks = 10);

}  // namespace gridroute
