#include <algorithm>
#include <climits>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "channel/channel_routers.hpp"

namespace gridroute {

namespace {

/// An interval to be placed by the constrained left-edge engine. `key`
/// identifies the item (net number for LEA, subnet id for dogleg); `net`
/// is the owning net (same-net items may share a track).
struct Item {
  int key = 0;
  int net = 0;
  int left = 0;
  int right = 0;
};

/// Constrained left-edge track assignment. `above` lists (a, b) pairs
/// meaning item-key a must land on a strictly higher track than item-key b.
/// Returns track ordinals (0 = topmost) per key, or nullopt when the
/// constraints are cyclic.
std::optional<std::map<int, int>> assign_tracks(
    std::vector<Item> items, const std::vector<std::pair<int, int>>& above) {
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return std::tuple{a.left, a.right, a.key} <
           std::tuple{b.left, b.right, b.key};
  });

  // parents[k] = keys that must sit strictly above k.
  std::map<int, std::vector<int>> parents;
  for (const auto& [a, b] : above) parents[b].push_back(a);

  std::map<int, int> ordinal;  // key -> assigned track ordinal
  std::set<int> unplaced;
  for (const Item& it : items) unplaced.insert(it.key);

  for (int track = 0; !unplaced.empty(); ++track) {
    bool placed_any = false;
    int last_right = INT_MIN;
    int last_net = 0;
    for (const Item& it : items) {
      if (!unplaced.contains(it.key)) continue;
      // Horizontal fit: a free cell between different-net trunks; same-net
      // trunks may merge (abut or overlap).
      const bool fits =
          it.net == last_net ? it.left >= last_right : it.left > last_right;
      if (!fits) continue;
      // Vertical fit: every parent already on a strictly higher track.
      bool ok = true;
      if (auto p = parents.find(it.key); p != parents.end())
        for (int a : p->second) {
          auto o = ordinal.find(a);
          if (o == ordinal.end() || o->second >= track) {
            ok = false;
            break;
          }
        }
      if (!ok) continue;
      ordinal[it.key] = track;
      unplaced.erase(it.key);
      last_right = std::max(last_right, it.right);
      last_net = it.net;
      placed_any = true;
    }
    if (!placed_any) return std::nullopt;  // constraint cycle
  }
  return ordinal;
}

int track_count(const std::map<int, int>& ordinals) {
  int t = 0;
  for (const auto& [key, ord] : ordinals) t = std::max(t, ord + 1);
  return t;
}

}  // namespace

// ---------------------------------------------------------------------------
// Left-Edge
// ---------------------------------------------------------------------------

ChannelResult route_left_edge(const ChannelSpec& spec) {
  ChannelResult result;
  result.router = "left-edge";
  const ChannelAnalysis analysis(spec);

  std::vector<Item> items;
  for (const NetInterval& iv : analysis.intervals())
    items.push_back({iv.net, iv.net, iv.left, iv.right});
  std::vector<std::pair<int, int>> above;
  for (const auto& [a, below] : analysis.vcg())
    for (int b : below) above.emplace_back(a, b);

  const auto ordinals = assign_tracks(items, above);
  if (!ordinals) {
    result.reason = "vertical constraint cycle (left-edge cannot dogleg)";
    return result;
  }

  const int tracks = track_count(*ordinals);
  result.solution.tracks = tracks;
  // Ordinal 0 (top) -> grid row `tracks`; pin rows are 0 and tracks+1.
  auto row_of = [&](int net) { return tracks - ordinals->at(net); };

  for (const NetInterval& iv : analysis.intervals())
    result.solution.horizontals.push_back(
        {iv.net, row_of(iv.net), iv.left, iv.right});
  for (int col = 0; col < spec.columns(); ++col) {
    if (const int t = spec.top[static_cast<size_t>(col)]; t != 0)
      result.solution.verticals.push_back({t, col, row_of(t), tracks + 1});
    if (const int b = spec.bottom[static_cast<size_t>(col)]; b != 0)
      result.solution.verticals.push_back({b, col, 0, row_of(b)});
  }
  result.success = true;
  return result;
}

// ---------------------------------------------------------------------------
// Dogleg
// ---------------------------------------------------------------------------

ChannelResult route_dogleg(const ChannelSpec& spec) {
  ChannelResult result;
  result.router = "dogleg";
  const ChannelAnalysis analysis(spec);

  // Split every net at its pin columns into consecutive two-pin subnets.
  struct Subnet {
    int id;
    int net;
    int left;
    int right;
  };
  std::vector<Subnet> subnets;
  std::map<int, std::vector<int>> pin_cols;  // net -> sorted pin columns
  for (int col = 0; col < spec.columns(); ++col)
    for (const int n : {spec.top[static_cast<size_t>(col)],
                        spec.bottom[static_cast<size_t>(col)]})
      if (n != 0) {
        auto& cols = pin_cols[n];
        if (cols.empty() || cols.back() != col) cols.push_back(col);
      }
  int next_id = 0;
  std::map<int, std::vector<int>> net_subnets;  // net -> subnet ids
  for (const auto& [net, cols] : pin_cols)
    for (std::size_t i = 0; i + 1 < cols.size(); ++i) {
      subnets.push_back({next_id, net, cols[i], cols[i + 1]});
      net_subnets[net].push_back(next_id);
      ++next_id;
    }

  // Vertical constraints between subnets incident at constrained columns.
  std::vector<std::pair<int, int>> above;
  auto incident = [&](int net, int col) {
    std::vector<int> ids;
    for (const int sid : net_subnets[net]) {
      const Subnet& s = subnets[static_cast<size_t>(sid)];
      if (s.left == col || s.right == col) ids.push_back(sid);
    }
    return ids;
  };
  for (int col = 0; col < spec.columns(); ++col) {
    const int t = spec.top[static_cast<size_t>(col)];
    const int b = spec.bottom[static_cast<size_t>(col)];
    if (t == 0 || b == 0 || t == b) continue;
    for (const int sa : incident(t, col))
      for (const int sb : incident(b, col)) above.emplace_back(sa, sb);
  }

  std::vector<Item> items;
  for (const Subnet& s : subnets)
    items.push_back({s.id, s.net, s.left, s.right});
  const auto ordinals = assign_tracks(items, above);
  if (!ordinals) {
    result.reason = "constraint cycle survives doglegging";
    return result;
  }

  const int tracks = std::max(track_count(*ordinals), 1);
  result.solution.tracks = tracks;
  auto row_of = [&](int sid) { return tracks - ordinals->at(sid); };

  for (const Subnet& s : subnets)
    result.solution.horizontals.push_back(
        {s.net, row_of(s.id), s.left, s.right});

  // Verticals: at each pin column, span from the pin row to the farthest
  // incident trunk (covering every incident trunk on the way).
  for (int col = 0; col < spec.columns(); ++col) {
    const int t = spec.top[static_cast<size_t>(col)];
    const int b = spec.bottom[static_cast<size_t>(col)];
    auto trunk_rows = [&](int net) {
      std::vector<int> rows;
      for (const int sid : incident(net, col)) rows.push_back(row_of(sid));
      return rows;
    };
    if (t != 0 && t == b) {
      // Same net touches both sides here: one full-height vertical serves
      // the pins and any incident trunks.
      result.solution.verticals.push_back({t, col, 0, tracks + 1});
      continue;
    }
    if (t != 0) {
      const auto rows = trunk_rows(t);
      // A single-pin net has no subnets; the pin cell itself is its wire.
      const int lowest = rows.empty()
                             ? tracks + 1
                             : *std::min_element(rows.begin(), rows.end());
      result.solution.verticals.push_back({t, col, lowest, tracks + 1});
    }
    if (b != 0) {
      const auto rows = trunk_rows(b);
      const int highest =
          rows.empty() ? 0 : *std::max_element(rows.begin(), rows.end());
      result.solution.verticals.push_back({b, col, 0, highest});
    }
  }
  result.success = true;
  return result;
}

}  // namespace gridroute
