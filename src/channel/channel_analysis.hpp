#pragma once

#include <map>
#include <vector>

#include "problem/problem.hpp"

namespace gridroute {

/// Horizontal extent of one net in a channel (columns of its leftmost and
/// rightmost pins, inclusive).
struct NetInterval {
  int net = 0;  ///< net number as written in the spec
  int left = 0;
  int right = 0;

  bool spans(int col) const { return left <= col && col <= right; }
  /// Trunks on the same track need a free cell between them.
  bool overlaps(const NetInterval& o) const {
    return left <= o.right && o.left <= right;
  }

  friend bool operator==(const NetInterval&, const NetInterval&) = default;
};

/// Static analysis of a channel instance: intervals, density profile, and
/// the vertical constraint graph (VCG). Every classic channel router starts
/// from these three objects; the density is also the provable lower bound
/// each benchmark table compares track counts against.
class ChannelAnalysis {
 public:
  explicit ChannelAnalysis(const ChannelSpec& spec);

  const ChannelSpec& spec() const { return spec_; }

  /// One interval per net, sorted by left edge (ties: by net number).
  const std::vector<NetInterval>& intervals() const { return intervals_; }
  const NetInterval& interval_of(int net) const {
    return intervals_[index_of_.at(net)];
  }

  /// Local density at each column (nets whose interval spans it).
  const std::vector<int>& column_density() const { return column_density_; }
  /// Channel density: max over columns — the track lower bound.
  int density() const { return density_; }

  /// Vertical constraint graph over net numbers: an edge a -> b means the
  /// trunk of a must lie on a strictly higher track than the trunk of b
  /// (because some column has a's pin on top and b's on the bottom).
  const std::map<int, std::vector<int>>& vcg() const { return vcg_; }
  /// Nets that must be placed above `net` (its VCG parents).
  std::vector<int> must_be_above(int net) const;

  /// A zone of the channel: a maximal clique of mutually overlapping net
  /// intervals (Yoshimura–Kuh zone representation). `nets` lists the member
  /// net numbers; [column_lo, column_hi] is the column range over which
  /// exactly this clique is live.
  struct Zone {
    int column_lo = 0;
    int column_hi = 0;
    std::vector<int> nets;

    friend bool operator==(const Zone&, const Zone&) = default;
  };

  /// The zone table, left to right. Every net appears in at least one zone;
  /// the largest zone's size equals density(). Classic channel routers use
  /// zones to reason about track sharing — two nets may share a track iff
  /// they never share a zone.
  std::vector<Zone> zones() const;

  /// True when the VCG contains a directed cycle — the case that defeats
  /// single-trunk routers (Left-Edge) and motivates doglegs.
  bool vcg_has_cycle() const;

  /// Longest path length (in edges) through the VCG; a second lower bound
  /// on tracks for dogleg-free routing. Returns -1 on a cyclic graph.
  int vcg_longest_path() const;

 private:
  ChannelSpec spec_;
  std::vector<NetInterval> intervals_;
  std::map<int, std::size_t> index_of_;
  std::vector<int> column_density_;
  int density_ = 0;
  std::map<int, std::vector<int>> vcg_;  // a -> nets that must be below a
};

}  // namespace gridroute
