#include "channel/channel_analysis.hpp"

#include <algorithm>
#include <functional>
#include <set>

namespace gridroute {

ChannelAnalysis::ChannelAnalysis(const ChannelSpec& spec) : spec_(spec) {
  // Intervals.
  std::map<int, NetInterval> by_net;
  auto feed = [&](const std::vector<int>& row) {
    for (int col = 0; col < static_cast<int>(row.size()); ++col) {
      const int n = row[static_cast<size_t>(col)];
      if (n == 0) continue;
      auto [it, inserted] = by_net.emplace(n, NetInterval{n, col, col});
      if (!inserted) {
        it->second.left = std::min(it->second.left, col);
        it->second.right = std::max(it->second.right, col);
      }
    }
  };
  feed(spec_.top);
  feed(spec_.bottom);
  intervals_.reserve(by_net.size());
  for (const auto& [net, iv] : by_net) intervals_.push_back(iv);
  std::sort(intervals_.begin(), intervals_.end(),
            [](const NetInterval& a, const NetInterval& b) {
              return std::pair{a.left, a.net} < std::pair{b.left, b.net};
            });
  for (std::size_t i = 0; i < intervals_.size(); ++i)
    index_of_[intervals_[i].net] = i;

  // Density profile.
  column_density_.assign(static_cast<size_t>(spec_.columns()), 0);
  for (const NetInterval& iv : intervals_)
    for (int c = iv.left; c <= iv.right; ++c)
      ++column_density_[static_cast<size_t>(c)];
  density_ = column_density_.empty()
                 ? 0
                 : *std::max_element(column_density_.begin(),
                                     column_density_.end());

  // Vertical constraints.
  for (int col = 0; col < spec_.columns(); ++col) {
    const int t = spec_.top[static_cast<size_t>(col)];
    const int b = spec_.bottom[static_cast<size_t>(col)];
    if (t != 0 && b != 0 && t != b) {
      auto& below = vcg_[t];
      if (std::find(below.begin(), below.end(), b) == below.end())
        below.push_back(b);
    }
  }
}

std::vector<ChannelAnalysis::Zone> ChannelAnalysis::zones() const {
  // S(c) = nets spanning column c. The maximal cliques of an interval
  // graph are exactly the column sets S(c) that are not contained in a
  // neighbouring column's set; scanning left to right and keeping the
  // columns where S(c) is about to lose a member yields them in order.
  auto column_set = [&](int c) {
    std::vector<int> nets;
    for (const NetInterval& iv : intervals_)
      if (iv.spans(c)) nets.push_back(iv.net);
    return nets;  // sorted: intervals_ iteration is by left edge, but
                  // membership order does not matter — sort for stability
  };

  std::vector<Zone> zones;
  int zone_start = 0;
  for (int c = 0; c < spec_.columns(); ++c) {
    std::vector<int> cur = column_set(c);
    std::sort(cur.begin(), cur.end());
    if (cur.empty()) {
      zone_start = c + 1;
      continue;
    }
    // Keep this column's set if it is not a subset of the next column's.
    std::vector<int> next;
    if (c + 1 < spec_.columns()) {
      next = column_set(c + 1);
      std::sort(next.begin(), next.end());
    }
    const bool subset_of_next =
        std::includes(next.begin(), next.end(), cur.begin(), cur.end());
    if (subset_of_next) continue;
    // Contiguity of intervals makes the immediately previous zone the only
    // earlier clique that could contain cur; fold such columns into it.
    if (!zones.empty() &&
        std::includes(zones.back().nets.begin(), zones.back().nets.end(),
                      cur.begin(), cur.end())) {
      zones.back().column_hi = c;
      zone_start = c + 1;
      continue;
    }
    zones.push_back({zone_start, c, std::move(cur)});
    zone_start = c + 1;
  }
  return zones;
}

std::vector<int> ChannelAnalysis::must_be_above(int net) const {
  std::vector<int> parents;
  for (const auto& [a, below] : vcg_)
    if (std::find(below.begin(), below.end(), net) != below.end())
      parents.push_back(a);
  return parents;
}

bool ChannelAnalysis::vcg_has_cycle() const {
  return vcg_longest_path() < 0;
}

int ChannelAnalysis::vcg_longest_path() const {
  // Iterative DFS with colours; depth[v] = longest path (edges) from v.
  enum class Colour { kWhite, kGrey, kBlack };
  std::map<int, Colour> colour;
  std::map<int, int> depth;
  for (const NetInterval& iv : intervals_) colour[iv.net] = Colour::kWhite;

  bool cyclic = false;
  std::function<int(int)> dfs = [&](int v) -> int {
    if (colour[v] == Colour::kGrey) {
      cyclic = true;
      return 0;
    }
    if (colour[v] == Colour::kBlack) return depth[v];
    colour[v] = Colour::kGrey;
    int best = 0;
    if (auto it = vcg_.find(v); it != vcg_.end())
      for (int w : it->second) best = std::max(best, dfs(w) + 1);
    colour[v] = Colour::kBlack;
    depth[v] = best;
    return best;
  };
  int longest = 0;
  for (const NetInterval& iv : intervals_) {
    longest = std::max(longest, dfs(iv.net));
    if (cyclic) return -1;
  }
  return longest;
}

}  // namespace gridroute
