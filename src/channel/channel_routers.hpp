#pragma once

#include "channel/channel_analysis.hpp"
#include "channel/track_solution.hpp"

namespace gridroute {

/// Classic (constrained) Left-Edge channel router: one trunk per net,
/// tracks filled top-down by left edge, vertical constraints respected.
/// Fails — honestly, with a reason — on VCG cycles, which is precisely the
/// limitation that motivated doglegs and, later, rip-up routers.
ChannelResult route_left_edge(const ChannelSpec& spec);

/// Dogleg channel router (Deutsch-style): nets are split at their pin
/// columns into two-pin subnets, which the constrained left-edge engine
/// then places independently. Breaks most VCG cycles and typically lands
/// near density.
ChannelResult route_dogleg(const ChannelSpec& spec);

/// Yoshimura–Kuh channel router: the classic 1982 net-merging algorithm.
/// Nets that never share a zone are merged to share tracks, choosing merges
/// that least lengthen the critical vertical-constraint chain; merged
/// groups are then layered by constraint level. Like all single-trunk
/// routers it fails (with a reason) on VCG cycles.
ChannelResult route_yoshimura_kuh(const ChannelSpec& spec);

struct GreedyOptions {
  /// Extra tracks to try beyond channel density before giving up
  /// (the attempt loop runs tracks = density .. density + max_extra_tracks).
  int max_extra_tracks = 12;
  /// Columns the router may append past the right channel edge to collapse
  /// nets that are still split there.
  int max_extra_columns = 24;
  /// Split nets further apart than this are jogged together preemptively.
  int collapse_distance = 4;
};

/// Greedy channel router (Rivest–Fiduccia-style): sweeps the channel column
/// by column, bringing pins onto tracks with minimal jogs, collapsing split
/// nets, and steering nets toward their next pin. Unlike left-edge routers
/// it never fails on constraint cycles; it pays with occasional extra tracks
/// or extra end columns.
ChannelResult route_greedy(const ChannelSpec& spec, GreedyOptions options = {});

}  // namespace gridroute
