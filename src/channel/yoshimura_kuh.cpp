#include <algorithm>
#include <functional>
#include <climits>
#include <map>
#include <set>
#include <vector>

#include "channel/channel_routers.hpp"

namespace gridroute {

namespace {

/// Net-merging state for the Yoshimura–Kuh algorithm: nets that never
/// coexist in a zone may be merged to share one track, provided the merge
/// keeps the vertical constraint graph acyclic. The heuristic picks the
/// merge that least lengthens the critical constraint chain.
class MergeGraph {
 public:
  explicit MergeGraph(const ChannelAnalysis& analysis) {
    for (const NetInterval& iv : analysis.intervals()) group_[iv.net] = iv.net;
    for (const auto& [a, below] : analysis.vcg())
      for (const int b : below) edges_.insert({a, b});
  }

  int group_of(int net) const { return group_.at(net); }

  /// All nets currently represented by `g`.
  std::vector<int> members(int g) const {
    std::vector<int> nets;
    for (const auto& [net, rep] : group_)
      if (rep == g) nets.push_back(net);
    return nets;
  }

  std::set<int> groups() const {
    std::set<int> gs;
    for (const auto& [net, rep] : group_) gs.insert(rep);
    return gs;
  }

  /// Group-level edges (a's group must be above b's group).
  std::set<std::pair<int, int>> group_edges() const {
    std::set<std::pair<int, int>> es;
    for (const auto& [a, b] : edges_) {
      const int ga = group_.at(a);
      const int gb = group_.at(b);
      if (ga != gb) es.insert({ga, gb});
    }
    return es;
  }

  bool reachable(int from, int to) const {
    const auto es = group_edges();
    std::set<int> seen{from};
    std::vector<int> stack{from};
    while (!stack.empty()) {
      const int g = stack.back();
      stack.pop_back();
      if (g == to) return true;
      for (const auto& [a, b] : es)
        if (a == g && seen.insert(b).second) stack.push_back(b);
    }
    return false;
  }

  bool mergeable(int ga, int gb) const {
    return ga != gb && !reachable(ga, gb) && !reachable(gb, ga);
  }

  /// Longest chain (in edges) ending at / starting from a group.
  int up_depth(int g) const { return depth(g, /*upwards=*/true); }
  int down_depth(int g) const { return depth(g, /*upwards=*/false); }

  /// Merges gb into ga (ga becomes the representative).
  void merge(int ga, int gb) {
    for (auto& [net, rep] : group_)
      if (rep == gb) rep = ga;
  }

  bool has_cycle() const {
    // Kahn over group edges.
    const auto es = group_edges();
    std::map<int, int> indeg;
    for (const int g : groups()) indeg[g] = 0;
    for (const auto& [a, b] : es) ++indeg[b];
    std::vector<int> ready;
    for (const auto& [g, d] : indeg)
      if (d == 0) ready.push_back(g);
    std::size_t seen = 0;
    while (!ready.empty()) {
      const int g = ready.back();
      ready.pop_back();
      ++seen;
      for (const auto& [a, b] : es)
        if (a == g && --indeg[b] == 0) ready.push_back(b);
    }
    return seen != indeg.size();
  }

 private:
  int depth(int g, bool upwards) const {
    const auto es = group_edges();
    // Memoless DFS; group counts are small (channel nets).
    int best = 0;
    for (const auto& [a, b] : es) {
      if (upwards && b == g) best = std::max(best, depth(a, true) + 1);
      if (!upwards && a == g) best = std::max(best, depth(b, false) + 1);
    }
    return best;
  }

  std::map<int, int> group_;              // net -> representative net
  std::set<std::pair<int, int>> edges_;  // net-level VCG
};

}  // namespace

ChannelResult route_yoshimura_kuh(const ChannelSpec& spec) {
  ChannelResult result;
  result.router = "yoshimura-kuh";
  const ChannelAnalysis analysis(spec);

  if (analysis.vcg_has_cycle()) {
    result.reason = "vertical constraint cycle (single-trunk router)";
    return result;
  }

  MergeGraph mg(analysis);
  const auto zones = analysis.zones();

  // Sweep zone boundaries: nets whose interval ended stay in the candidate
  // pool; each net starting in the next zone tries to merge with the pool
  // member that least lengthens the constraint chain through the pair.
  std::set<int> pool;
  std::set<int> seen_nets;
  for (std::size_t z = 0; z + 1 < zones.size(); ++z) {
    const auto& cur = zones[z].nets;
    const auto& next = zones[z + 1].nets;
    seen_nets.insert(cur.begin(), cur.end());
    for (const int net : cur)
      if (std::find(next.begin(), next.end(), net) == next.end())
        pool.insert(mg.group_of(net));
    for (const int net : next) {
      if (seen_nets.contains(net)) continue;  // continuing net, not new
      const int gv = mg.group_of(net);
      int best_u = 0;
      int best_cost = INT_MAX;
      for (const int gu : pool) {
        if (!mg.mergeable(gu, gv)) continue;
        // Chain through the merged node if u sits above and v below.
        const int cost = mg.up_depth(gu) + mg.down_depth(gv);
        if (cost < best_cost) {
          best_cost = cost;
          best_u = gu;
        }
      }
      if (best_u != 0) {
        pool.erase(best_u);
        mg.merge(best_u, gv);  // keep v's id: it is the live end
      }
    }
  }

  if (mg.has_cycle()) {
    result.reason = "merge created a constraint cycle (heuristic bug)";
    return result;
  }

  // Track assignment: topological levels of the merged constraint graph,
  // then greedy level compaction is implicit — groups on the same level
  // never overlap horizontally only if they avoid each other; levels alone
  // do not guarantee that, so pack levels with a left-edge pass per level.
  const auto es = mg.group_edges();
  std::map<int, int> level;
  std::function<int(int)> lvl = [&](int g) -> int {
    if (auto it = level.find(g); it != level.end()) return it->second;
    int best = 0;
    for (const auto& [a, b] : es)
      if (b == g) best = std::max(best, lvl(a) + 1);
    level[g] = best;
    return best;
  };
  for (const int g : mg.groups()) lvl(g);

  // Groups ordered by level, then packed onto tracks left-edge style with
  // the level order preserved (a group may share a track with a group of
  // the same level when their member intervals do not collide).
  struct GroupItem {
    int id;
    int lv;
    std::vector<NetInterval> spans;
  };
  std::vector<GroupItem> items;
  for (const int g : mg.groups()) {
    GroupItem item{g, level[g], {}};
    for (const int net : mg.members(g))
      item.spans.push_back(analysis.interval_of(net));
    items.push_back(item);
  }
  std::sort(items.begin(), items.end(), [](const GroupItem& a,
                                           const GroupItem& b) {
    return std::pair{a.lv, a.id} < std::pair{b.lv, b.id};
  });

  // One track per level batch, splitting a level over several tracks when
  // member intervals collide within it.
  std::vector<std::vector<const GroupItem*>> tracks;
  std::vector<int> track_level;
  auto collides = [](const std::vector<const GroupItem*>& track,
                     const GroupItem& cand) {
    for (const GroupItem* g : track)
      for (const NetInterval& a : g->spans)
        for (const NetInterval& b : cand.spans)
          if (a.left <= b.right + 1 && b.left <= a.right + 1) return true;
    return false;
  };
  for (const GroupItem& item : items) {
    bool placed = false;
    for (std::size_t t = 0; t < tracks.size() && !placed; ++t) {
      if (track_level[t] != item.lv) continue;  // strict level layering
      if (collides(tracks[t], item)) continue;
      tracks[t].push_back(&item);
      placed = true;
    }
    if (!placed) {
      tracks.push_back({&item});
      track_level.push_back(item.lv);
    }
  }

  const int n_tracks = static_cast<int>(tracks.size());
  result.solution.tracks = std::max(n_tracks, 1);
  // Track 0 in `tracks` is the topmost level; grid row = tracks - index.
  std::map<int, int> net_row;
  for (std::size_t t = 0; t < tracks.size(); ++t)
    for (const GroupItem* g : tracks[t])
      for (const NetInterval& iv : g->spans)
        net_row[iv.net] = n_tracks - static_cast<int>(t);

  for (const NetInterval& iv : analysis.intervals())
    result.solution.horizontals.push_back(
        {iv.net, net_row.at(iv.net), iv.left, iv.right});
  for (int col = 0; col < spec.columns(); ++col) {
    if (const int t = spec.top[static_cast<size_t>(col)]; t != 0)
      result.solution.verticals.push_back(
          {t, col, net_row.at(t), n_tracks + 1});
    if (const int b = spec.bottom[static_cast<size_t>(col)]; b != 0)
      result.solution.verticals.push_back({b, col, 0, net_row.at(b)});
  }
  result.success = true;
  return result;
}

}  // namespace gridroute
