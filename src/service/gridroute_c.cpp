#include "service/gridroute_c.h"

#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>

#include "io/solution_format.hpp"
#include "io/text_format.hpp"
#include "service/routing_service.hpp"
#include "util/status.hpp"

namespace {

using gridroute::ErrorCode;
using gridroute::Problem;
using gridroute::Status;
using gridroute::service::JobOutcome;
using gridroute::service::JobRequest;
using gridroute::service::JobState;
using gridroute::service::RoutingService;
using gridroute::service::ServiceOptions;

thread_local std::string g_last_error;

void set_last_error(std::string message) { g_last_error = std::move(message); }

gr_status map_code(ErrorCode code) {
  // The enums are defined value-for-value; keep the switch anyway so a
  // future taxonomy change fails loudly here instead of aliasing silently.
  switch (code) {
    case ErrorCode::kOk: return GR_STATUS_OK;
    case ErrorCode::kParse: return GR_STATUS_PARSE;
    case ErrorCode::kValidation: return GR_STATUS_VALIDATION;
    case ErrorCode::kResource: return GR_STATUS_RESOURCE;
    case ErrorCode::kCancelled: return GR_STATUS_CANCELLED;
    case ErrorCode::kInternal: return GR_STATUS_INTERNAL;
  }
  return GR_STATUS_INTERNAL;
}

gr_status fail(const Status& status) {
  set_last_error(status.to_string());
  return map_code(status.code());
}

gr_status fail_validation(const char* message) {
  set_last_error(message);
  return GR_STATUS_VALIDATION;
}

/// Runs `body` with every exception fenced off the C boundary.
template <typename Fn>
gr_status guarded(Fn&& body) {
  try {
    return body();
  } catch (const gridroute::StatusError& e) {
    return fail(e.status());
  } catch (const std::exception& e) {
    set_last_error(e.what());
    return GR_STATUS_INTERNAL;
  } catch (...) {
    set_last_error("unknown exception");
    return GR_STATUS_INTERNAL;
  }
}

char* copy_to_c_string(const std::string& text) {
  char* out = static_cast<char*>(std::malloc(text.size() + 1));
  if (out == nullptr) return nullptr;
  std::memcpy(out, text.c_str(), text.size() + 1);
  return out;
}

/// Live-handle registry (misuse hardening, see the header contract): every
/// create registers its pointer, every free checks-and-unregisters, every
/// use checks membership before dereferencing. A stale or fabricated handle
/// is thus *detected* — never dereferenced — turning double frees and
/// use-after-free into typed errors instead of crashes.
class HandleRegistry {
 public:
  void add(const void* handle) {
    const std::lock_guard<std::mutex> lock(mutex_);
    live_.insert(handle);
  }
  bool contains(const void* handle) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return live_.count(handle) != 0;
  }
  /// False when the handle was never registered (or already removed).
  bool remove(const void* handle) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return live_.erase(handle) != 0;
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_set<const void*> live_;
};

HandleRegistry& problem_handles() {
  static HandleRegistry* registry = new HandleRegistry;
  return *registry;
}
HandleRegistry& service_handles() {
  static HandleRegistry* registry = new HandleRegistry;
  return *registry;
}
HandleRegistry& result_handles() {
  static HandleRegistry* registry = new HandleRegistry;
  return *registry;
}

/// NULL or not-live: sets gr_last_error and reports invalid.
bool check_handle(const HandleRegistry& registry, const void* handle,
                  const char* kind) {
  if (handle == nullptr) {
    set_last_error(std::string(kind) + " handle must not be NULL");
    return false;
  }
  if (!registry.contains(handle)) {
    set_last_error(std::string("invalid ") + kind +
                   " handle (already freed, or never created by this "
                   "library)");
    return false;
  }
  return true;
}

}  // namespace

struct gr_problem {
  std::shared_ptr<const Problem> problem;
};

struct gr_service {
  std::unique_ptr<RoutingService> service;
};

struct gr_result {
  JobOutcome outcome;  // carries the problem the job routed
};

extern "C" {

const char* gr_status_name(gr_status status) {
  switch (status) {
    case GR_STATUS_OK: return "ok";
    case GR_STATUS_PARSE: return "parse";
    case GR_STATUS_VALIDATION: return "validation";
    case GR_STATUS_RESOURCE: return "resource";
    case GR_STATUS_CANCELLED: return "cancelled";
    case GR_STATUS_INTERNAL: return "internal";
  }
  return "unknown";
}

const char* gr_last_error(void) { return g_last_error.c_str(); }

gr_status gr_problem_parse(const char* text, gr_problem** out) {
  if (out == nullptr) return fail_validation("out must not be NULL");
  *out = nullptr;
  if (text == nullptr) return fail_validation("text must not be NULL");
  return guarded([&] {
    auto parsed = gridroute::try_parse_problem_string(text, "<c-api>");
    if (!parsed.ok()) return fail(parsed.status());
    *out = new gr_problem{
        std::make_shared<const Problem>(std::move(parsed).value())};
    problem_handles().add(*out);
    set_last_error("");
    return GR_STATUS_OK;
  });
}

void gr_problem_free(gr_problem* problem) {
  if (problem == nullptr) return;  // free(NULL) convention: silent no-op
  if (!problem_handles().remove(problem)) {
    set_last_error("gr_problem_free: double free or invalid handle");
    return;  // detected misuse: never touch the pointer
  }
  delete problem;
}

int gr_problem_net_count(const gr_problem* problem) {
  if (!check_handle(problem_handles(), problem, "gr_problem")) return 0;
  return problem->problem->net_count();
}

uint64_t gr_problem_canonical_hash(const gr_problem* problem) {
  if (!check_handle(problem_handles(), problem, "gr_problem")) return 0;
  return problem->problem->canonical_hash();
}

void gr_service_options_init(gr_service_options* options) {
  if (options == nullptr) return;
  const ServiceOptions defaults;
  options->workers = defaults.workers;
  options->max_queue_depth = defaults.max_queue_depth;
  options->cache_capacity = defaults.cache_capacity;
  options->prescreen = defaults.prescreen ? 1 : 0;
  options->prescreen_max_utilization = defaults.prescreen_max_utilization;
}

void gr_job_options_init(gr_job_options* options) {
  if (options == nullptr) return;
  options->wall_ms = 0;
  options->max_expansions = 0;
  options->extra_attempts = 0;
  options->improve_passes = 0;
  options->use_cache = 1;
}

gr_status gr_service_create(const gr_service_options* options,
                            gr_service** out) {
  if (out == nullptr) return fail_validation("out must not be NULL");
  *out = nullptr;
  return guarded([&] {
    ServiceOptions opts;
    if (options != nullptr) {
      opts.workers = options->workers;
      opts.max_queue_depth = options->max_queue_depth;
      opts.cache_capacity = options->cache_capacity;
      opts.prescreen = options->prescreen != 0;
      opts.prescreen_max_utilization = options->prescreen_max_utilization;
    }
    *out = new gr_service{std::make_unique<RoutingService>(opts)};
    service_handles().add(*out);
    set_last_error("");
    return GR_STATUS_OK;
  });
}

void gr_service_free(gr_service* service) {
  if (service == nullptr) return;
  if (!service_handles().remove(service)) {
    set_last_error("gr_service_free: double free or invalid handle");
    return;
  }
  delete service;
}

gr_status gr_service_submit(gr_service* service, const gr_problem* problem,
                            const gr_job_options* options,
                            uint64_t* out_job_id) {
  if (out_job_id == nullptr)
    return fail_validation("out_job_id must not be NULL");
  *out_job_id = 0;
  if (!check_handle(service_handles(), service, "gr_service"))
    return GR_STATUS_VALIDATION;
  if (!check_handle(problem_handles(), problem, "gr_problem"))
    return GR_STATUS_VALIDATION;
  return guarded([&] {
    JobRequest request;
    request.problem = problem->problem;  // shares, never copies, the problem
    if (options != nullptr) {
      request.budget.wall_ms = options->wall_ms;
      request.budget.max_expansions = options->max_expansions;
      request.extra_attempts = options->extra_attempts;
      request.improve_passes = options->improve_passes;
      request.use_cache = options->use_cache != 0;
    }
    auto submitted = service->service->submit(std::move(request));
    if (!submitted.ok()) return fail(submitted.status());
    *out_job_id = *submitted;
    set_last_error("");
    return GR_STATUS_OK;
  });
}

gr_status gr_service_wait(gr_service* service, uint64_t job_id,
                          gr_result** out) {
  if (out == nullptr) return fail_validation("out must not be NULL");
  *out = nullptr;
  if (!check_handle(service_handles(), service, "gr_service"))
    return GR_STATUS_VALIDATION;
  return guarded([&] {
    auto outcome = service->service->wait(job_id);
    if (!outcome.ok()) return fail(outcome.status());
    *out = new gr_result{std::move(*outcome)};
    result_handles().add(*out);
    set_last_error("");
    return GR_STATUS_OK;
  });
}

int gr_service_cancel(gr_service* service, uint64_t job_id) {
  if (!check_handle(service_handles(), service, "gr_service")) return 0;
  return service->service->cancel(job_id) ? 1 : 0;
}

gr_status gr_service_health(const gr_service* service, gr_health* out) {
  if (out == nullptr) return fail_validation("out must not be NULL");
  std::memset(out, 0, sizeof(*out));
  if (!check_handle(service_handles(), service, "gr_service"))
    return GR_STATUS_VALIDATION;
  return guarded([&] {
    const gridroute::service::ServiceHealth health =
        service->service->health();
    out->workers_alive = health.workers_alive;
    out->brownout_active = health.brownout_active ? 1 : 0;
    out->workers_respawned = health.workers_respawned;
    out->workers_abandoned = health.workers_abandoned;
    out->queue_depth = health.queue_depth;
    out->running_jobs = health.running_jobs;
    out->jobs_retried = health.jobs_retried;
    out->jobs_quarantined = health.jobs_quarantined;
    out->brownouts_entered = health.brownouts_entered;
    out->watchdog_cancels = health.watchdog_cancels;
    out->cache_insert_failures = health.cache_insert_failures;
    set_last_error("");
    return GR_STATUS_OK;
  });
}

gr_job_state gr_result_state(const gr_result* result) {
  if (!check_handle(result_handles(), result, "gr_result"))
    return GR_JOB_CANCELLED;
  switch (result->outcome.state) {
    case JobState::kQueued: return GR_JOB_QUEUED;
    case JobState::kRunning: return GR_JOB_RUNNING;
    case JobState::kCompleted: return GR_JOB_COMPLETED;
    case JobState::kRejected: return GR_JOB_REJECTED;
    case JobState::kCancelled: return GR_JOB_CANCELLED;
    case JobState::kFailed: return GR_JOB_FAILED;
  }
  return GR_JOB_CANCELLED;
}

int gr_result_from_cache(const gr_result* result) {
  if (!check_handle(result_handles(), result, "gr_result")) return 0;
  return result->outcome.from_cache ? 1 : 0;
}

double gr_result_queue_wait_ms(const gr_result* result) {
  if (!check_handle(result_handles(), result, "gr_result")) return 0;
  return result->outcome.queue_wait_ms;
}

int gr_result_has_solution(const gr_result* result) {
  if (!check_handle(result_handles(), result, "gr_result")) return 0;
  return result->outcome.result != nullptr ? 1 : 0;
}

int gr_result_failed_net_count(const gr_result* result) {
  if (!check_handle(result_handles(), result, "gr_result")) return -1;
  if (result->outcome.result == nullptr) return -1;
  return static_cast<int>(result->outcome.result->failed.size());
}

char* gr_result_solution_string(const gr_result* result) {
  if (!check_handle(result_handles(), result, "gr_result")) return nullptr;
  if (result->outcome.result == nullptr ||
      result->outcome.problem == nullptr)
    return nullptr;
  try {
    return copy_to_c_string(gridroute::solution_to_string(
        *result->outcome.problem, result->outcome.result->grid));
  } catch (...) {
    return nullptr;
  }
}

void gr_result_free(gr_result* result) {
  if (result == nullptr) return;
  if (!result_handles().remove(result)) {
    set_last_error("gr_result_free: double free or invalid handle");
    return;
  }
  delete result;
}

void gr_string_free(char* text) { std::free(text); }

}  // extern "C"
