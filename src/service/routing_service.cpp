#include "service/routing_service.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "io/text_format.hpp"

namespace gridroute::service {

using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point start, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - start).count();
}

bool terminal(JobState state) {
  return state == JobState::kCompleted || state == JobState::kCancelled ||
         state == JobState::kRejected || state == JobState::kFailed;
}

}  // namespace

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kPrescreen: return "prescreen";
    case RejectReason::kShutdown: return "shutdown";
  }
  return "unknown";
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kRejected: return "rejected";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

double estimated_utilization(const Problem& problem) {
  // The estimate lives in the core now (it doubles as the delta
  // pre-screen's utilization bound); this name stays as the serving-layer
  // alias the ABI and docs reference.
  return hpwl_utilization(problem);
}

/// One job's service-side record. The atomic cancel token is what the
/// job's BudgetGauge polls (RunBudget::cancel); everything else is guarded
/// by RoutingService::mutex_.
struct RoutingService::Job {
  std::uint64_t id = 0;
  JobRequest request;
  JobState state = JobState::kQueued;
  std::atomic<bool> cancel_token{false};
  bool cancel_requested = false;  ///< cancel() reached a running job
  Status status;
  std::shared_ptr<const RouteResult> result;
  bool from_cache = false;
  Clock::time_point admitted_at;
  double queue_wait_ms = 0;

  // Resilience bookkeeping (DESIGN.md §2.5).
  int retries = 0;                        ///< worker-body escapes absorbed
  std::vector<std::string> fault_history; ///< one entry per escape
  std::uint64_t eligible_at = 0;  ///< virtual-time backoff gate (0 = now)
  bool brownout = false;          ///< admitted with a tightened budget
  /// Whether the *client's* request qualified for the result cache —
  /// pinned at admission, before the service tightens the budget (the
  /// deadline default and brown-out must not poison cache identity).
  bool cache_eligible = false;
  double max_wall_ms = 0;         ///< effective deadline the watchdog holds
  Clock::time_point started_at;   ///< set when a worker picks the job up
  int worker_slot = -1;           ///< seat running the job (-1 = none)
  bool watchdog_cancelled = false;

  // ECO session binding. session != 0 ties the job's terminal state to the
  // session (finalize_locked settles it); a delta job additionally carries
  // the edit and the base-layout snapshot taken at admission.
  std::uint64_t session = 0;
  std::optional<ProblemEdit> edit;
  std::shared_ptr<const RouteResult> base_layout;
  bool delta_prescreen = true;
  std::shared_ptr<const DeltaOutcome> delta;
};

/// One ECO session: the committed (problem, layout) pair deltas iterate
/// on. Guarded by RoutingService::mutex_; the shared_ptrs are immutable
/// snapshots, so a worker that copied them at admission reads lock-free.
struct RoutingService::Session {
  std::uint64_t id = 0;
  std::shared_ptr<const Problem> problem;
  std::shared_ptr<const RouteResult> layout;  ///< null until the base lands
  std::uint64_t active_job = 0;               ///< 0 = idle
  int committed_deltas = 0;
};

struct RoutingService::CacheSlot {
  std::uint64_t hash = 0;
  std::string identity;
  std::shared_ptr<const RouteResult> result;
};

RoutingService::RoutingService(ServiceOptions options)
    : options_(std::move(options)) {
  paused_ = options_.start_paused;
  if (options_.trace != nullptr) safe_trace_.emplace(options_.trace);
  int workers = options_.workers;
  if (workers <= 0)
    workers =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  worker_slots_.resize(static_cast<std::size_t>(workers));
  workers_alive_ = workers;
  for (int i = 0; i < workers; ++i)
    worker_slots_[static_cast<std::size_t>(i)].thread =
        std::thread([this, i] { worker_loop(i, 0); });
  supervisor_ = std::thread([this] { supervisor_loop(); });
}

RoutingService::~RoutingService() { shutdown(); }

void RoutingService::emit(const obs::TraceEvent& event) {
  // The failsafe wrapper means a throwing lifecycle sink degrades tracing,
  // never the service (the library-side route() sinks have their own).
  if (safe_trace_.has_value()) safe_trace_->on_event(event);
}

StatusOr<std::uint64_t> RoutingService::submit(JobRequest request) {
  return submit_impl(std::move(request), /*open_session=*/false, nullptr);
}

StatusOr<SessionTicket> RoutingService::open_session(JobRequest base) {
  SessionTicket ticket;
  StatusOr<std::uint64_t> id =
      submit_impl(std::move(base), /*open_session=*/true, &ticket.session);
  if (!id.ok()) return id.status();
  ticket.base_job = *id;
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter("sessions_opened").add();
  }
  return ticket;
}

bool RoutingService::admit_policies_locked(const std::shared_ptr<Job>& job,
                                           std::size_t depth_after) {
  job->cache_eligible = options_.cache_capacity > 0 && cacheable(job->request);
  obs::RunBudget& budget = job->request.budget;
  if (options_.default_max_wall_ms > 0 && budget.wall_ms <= 0)
    budget.wall_ms = options_.default_max_wall_ms;
  bool entered = false;
  if (options_.brownout_queue_threshold > 0) {
    if (!brownout_ && static_cast<int>(depth_after) >=
                          options_.brownout_queue_threshold) {
      brownout_ = true;
      entered = true;
    }
    if (brownout_) {
      job->brownout = true;
      if (options_.brownout_wall_ms > 0 &&
          (budget.wall_ms <= 0 || budget.wall_ms > options_.brownout_wall_ms))
        budget.wall_ms = options_.brownout_wall_ms;
      if (options_.brownout_max_expansions > 0 &&
          (budget.max_expansions <= 0 ||
           budget.max_expansions > options_.brownout_max_expansions))
        budget.max_expansions = options_.brownout_max_expansions;
    }
  }
  job->max_wall_ms = budget.wall_ms;
  return entered;
}

StatusOr<std::uint64_t> RoutingService::submit_impl(
    JobRequest request, bool open_session, std::uint64_t* session_out) {
  if (request.problem == nullptr)
    return Status::validation_error("JobRequest::problem must be set");

  auto job = std::make_shared<Job>();
  job->request = std::move(request);

  std::uint64_t id = 0;
  std::optional<RejectReason> reject;
  std::size_t depth_after = 0;
  bool brownout_entered = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    job->id = id;
    if (stopping_)
      reject = RejectReason::kShutdown;
    else if (static_cast<int>(queue_.size()) >= options_.max_queue_depth)
      reject = RejectReason::kQueueFull;
  }
  emit(obs::TraceEvent::job(obs::EventKind::kJobSubmitted,
                            static_cast<std::int64_t>(id)));
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter("jobs_submitted").add();
  }

  // The pre-screen runs outside the queue lock — it reads only the
  // (immutable) problem, and an O(cells) capacity scan must not serialize
  // admissions behind it.
  if (!reject && options_.prescreen &&
      estimated_utilization(*job->request.problem) >
          options_.prescreen_max_utilization)
    reject = RejectReason::kPrescreen;

  if (!reject) {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Re-check under the lock: admissions race, and the bound is hard.
    if (stopping_)
      reject = RejectReason::kShutdown;
    else if (static_cast<int>(queue_.size()) >= options_.max_queue_depth)
      reject = RejectReason::kQueueFull;
    else {
      if (open_session) {
        // Create the session atomically with the enqueue: the base job is
        // its first in-flight job, so finalize always finds the session.
        auto session = std::make_shared<Session>();
        session->id = next_session_++;
        session->problem = job->request.problem;
        session->active_job = id;
        job->session = session->id;
        sessions_.emplace(session->id, session);
        *session_out = session->id;
      }
      // Policies run before the push: once queued the job is visible to
      // workers, and its budget must never change underneath one.
      brownout_entered = admit_policies_locked(job, queue_.size() + 1);
      job->admitted_at = Clock::now();
      queue_.push_back(job);
      jobs_.emplace(id, job);
      depth_after = queue_.size();
    }
  }

  if (reject) {
    emit(obs::TraceEvent::job(obs::EventKind::kJobRejected,
                              static_cast<std::int64_t>(id),
                              static_cast<std::int64_t>(*reject)));
    const char* name = reject_reason_name(*reject);
    {
      const std::lock_guard<std::mutex> lock(metrics_mutex_);
      metrics_.counter(std::string("jobs_rejected_") + name).add();
    }
    const std::string message =
        "job rejected at admission: " + std::string(name);
    if (*reject == RejectReason::kShutdown)
      return Status::cancelled(message);
    return Status::resource_error(message);
  }

  if (brownout_entered)
    emit(obs::TraceEvent::job(obs::EventKind::kBrownOutEntered,
                              static_cast<std::int64_t>(depth_after)));
  emit(obs::TraceEvent::job(obs::EventKind::kJobAdmitted,
                            static_cast<std::int64_t>(id),
                            static_cast<std::int64_t>(depth_after)));
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter("jobs_admitted").add();
    if (brownout_entered) metrics_.counter("brownouts_entered").add();
    if (job->brownout) metrics_.counter("jobs_browned_out").add();
    auto& peak = metrics_.counter("peak_queue_depth");
    if (static_cast<long long>(depth_after) > peak.value())
      peak.add(static_cast<long long>(depth_after) - peak.value());
  }
  work_cv_.notify_one();
  return id;
}

StatusOr<std::uint64_t> RoutingService::submit_delta(std::uint64_t session,
                                                     DeltaJobRequest request) {
  auto job = std::make_shared<Job>();
  job->request.options = request.options;
  job->request.budget = request.budget;
  job->request.extra_attempts = request.extra_attempts;
  job->request.improve_passes = request.improve_passes;
  job->request.use_cache = false;  // delta results are layout-dependent
  job->request.trace = request.trace;
  job->edit = std::move(request.edit);
  job->delta_prescreen = request.prescreen;

  std::uint64_t id = 0;
  std::optional<RejectReason> reject;
  Status session_error;
  std::size_t depth_after = 0;
  bool brownout_entered = false;
  {
    // One critical section validates the session, claims it, and enqueues:
    // a claim that could not be enqueued must never leak, and two clients
    // racing deltas onto one session must serialize here.
    const std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    job->id = id;
    if (stopping_) {
      reject = RejectReason::kShutdown;
    } else {
      const auto it = sessions_.find(session);
      if (it == sessions_.end()) {
        session_error = Status::validation_error("unknown session id " +
                                                 std::to_string(session));
      } else if (it->second->active_job != 0) {
        session_error = Status::resource_error(
            "session " + std::to_string(session) + " is busy: job " +
            std::to_string(it->second->active_job) + " is in flight");
      } else if (it->second->layout == nullptr) {
        session_error = Status::validation_error(
            "session " + std::to_string(session) +
            " has no committed base layout (base job failed or cancelled?)");
      } else if (static_cast<int>(queue_.size()) >= options_.max_queue_depth) {
        reject = RejectReason::kQueueFull;
      } else {
        Session& s = *it->second;
        job->session = session;
        job->request.problem = s.problem;
        job->base_layout = s.layout;
        s.active_job = id;
        brownout_entered = admit_policies_locked(job, queue_.size() + 1);
        job->admitted_at = Clock::now();
        queue_.push_back(job);
        jobs_.emplace(id, job);
        depth_after = queue_.size();
      }
    }
  }
  // A session-state failure is a request-shape error, like submit()'s null
  // problem: reported before the job lifecycle begins.
  if (!session_error.ok()) return session_error;

  emit(obs::TraceEvent::job(obs::EventKind::kJobSubmitted,
                            static_cast<std::int64_t>(id)));
  // Serving-layer delta marker (job-style payload: job id, session id);
  // route_delta emits the core triple once the job runs.
  emit(obs::TraceEvent::job(obs::EventKind::kDeltaSubmitted,
                            static_cast<std::int64_t>(id),
                            static_cast<std::int64_t>(session)));
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter("jobs_submitted").add();
    metrics_.counter("deltas_submitted").add();
  }

  if (reject) {
    emit(obs::TraceEvent::job(obs::EventKind::kJobRejected,
                              static_cast<std::int64_t>(id),
                              static_cast<std::int64_t>(*reject)));
    const char* name = reject_reason_name(*reject);
    {
      const std::lock_guard<std::mutex> lock(metrics_mutex_);
      metrics_.counter(std::string("jobs_rejected_") + name).add();
    }
    const std::string message =
        "delta rejected at admission: " + std::string(name);
    if (*reject == RejectReason::kShutdown) return Status::cancelled(message);
    return Status::resource_error(message);
  }

  if (brownout_entered)
    emit(obs::TraceEvent::job(obs::EventKind::kBrownOutEntered,
                              static_cast<std::int64_t>(depth_after)));
  emit(obs::TraceEvent::job(obs::EventKind::kJobAdmitted,
                            static_cast<std::int64_t>(id),
                            static_cast<std::int64_t>(depth_after)));
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter("jobs_admitted").add();
    if (brownout_entered) metrics_.counter("brownouts_entered").add();
    if (job->brownout) metrics_.counter("jobs_browned_out").add();
    auto& peak = metrics_.counter("peak_queue_depth");
    if (static_cast<long long>(depth_after) > peak.value())
      peak.add(static_cast<long long>(depth_after) - peak.value());
  }
  work_cv_.notify_one();
  return id;
}

bool RoutingService::close_session(std::uint64_t session) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end() || it->second->active_job != 0) return false;
  sessions_.erase(it);
  return true;
}

std::optional<SessionInfo> RoutingService::session_info(
    std::uint64_t session) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return std::nullopt;
  const Session& s = *it->second;
  SessionInfo info;
  info.id = s.id;
  info.busy = s.active_job != 0;
  info.committed_deltas = s.committed_deltas;
  info.problem = s.problem;
  info.layout = s.layout;
  return info;
}

std::shared_ptr<RoutingService::Job> RoutingService::dequeue_locked() {
  const auto eligible = [this](const std::shared_ptr<Job>& j) {
    return j->eligible_at <= vnow_;
  };
  auto it = std::find_if(queue_.begin(), queue_.end(), eligible);
  if (it == queue_.end()) {
    // Every queued job is still backing off. Backoff orders retries behind
    // fresher work — it never idles a worker — so warp the virtual clock
    // to the earliest eligibility instead of sleeping.
    std::uint64_t min_eligible = queue_.front()->eligible_at;
    for (const std::shared_ptr<Job>& j : queue_)
      min_eligible = std::min(min_eligible, j->eligible_at);
    vnow_ = min_eligible;
    it = std::find_if(queue_.begin(), queue_.end(), eligible);
  }
  std::shared_ptr<Job> job = *it;
  queue_.erase(it);
  ++vnow_;  // one tick per dequeue: the backoff clock is traffic, not time
  return job;
}

void RoutingService::worker_loop(int slot, std::uint64_t generation) {
  // One persistent arena per worker incarnation, lent to every plain-run
  // job it executes; epoch stamping keeps the reuse bit-identical. A
  // respawned worker starts from a fresh arena — a corrupted one dies with
  // its thread.
  SearchArena arena;
  for (;;) {
    std::shared_ptr<Job> job;
    std::optional<obs::TraceEvent> brownout_exit;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stopping_ ||
               worker_slots_[static_cast<std::size_t>(slot)].generation !=
                   generation ||
               (!paused_ && !queue_.empty());
      });
      if (stopping_) return;  // shutdown() finalizes what is still queued
      if (worker_slots_[static_cast<std::size_t>(slot)].generation !=
          generation)
        return;  // seat was re-issued while we idled
      job = dequeue_locked();
      job->state = JobState::kRunning;
      job->started_at = Clock::now();
      job->worker_slot = slot;
      job->queue_wait_ms = ms_since(job->admitted_at, job->started_at);
      ++running_jobs_;
      if (brownout_ && options_.brownout_queue_threshold > 0) {
        const int exit_threshold =
            options_.brownout_exit_threshold >= 0
                ? options_.brownout_exit_threshold
                : options_.brownout_queue_threshold / 2;
        if (static_cast<int>(queue_.size()) <= exit_threshold) {
          brownout_ = false;
          brownout_exit = obs::TraceEvent::job(
              obs::EventKind::kBrownOutExited,
              static_cast<std::int64_t>(queue_.size()));
        }
      }
    }
    if (brownout_exit.has_value()) emit(*brownout_exit);
    try {
      if (options_.faults != nullptr)
        options_.faults->maybe_throw(fault::Site::kJobDequeue);
      execute(job, &arena);
    } catch (const fault::InjectedFault& f) {
      absorb_worker_failure(job, slot, f.what(), /*resource=*/false);
      return;
    } catch (const std::bad_alloc&) {
      absorb_worker_failure(job, slot, "std::bad_alloc", /*resource=*/true);
      return;
    } catch (const std::exception& e) {
      absorb_worker_failure(job, slot, e.what(), /*resource=*/false);
      return;
    } catch (...) {
      absorb_worker_failure(job, slot, "unknown exception",
                            /*resource=*/false);
      return;
    }
    bool stale = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stale = worker_slots_[static_cast<std::size_t>(slot)].generation !=
              generation;
      // An abandoned job was already taken off the running count by the
      // watchdog when it finalized it; only a live seat decrements here.
      if (!stale) --running_jobs_;
    }
    done_cv_.notify_all();
    if (stale) return;  // the watchdog abandoned us mid-job; seat re-issued
  }
}

void RoutingService::absorb_worker_failure(const std::shared_ptr<Job>& job,
                                           int slot, const std::string& what,
                                           bool resource) {
  std::vector<obs::TraceEvent> events;
  bool retried = false;
  bool quarantined = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job->fault_history.push_back(what);
    events.push_back(obs::TraceEvent::job(
        obs::EventKind::kWorkerDied, static_cast<std::int64_t>(slot),
        static_cast<std::int64_t>(job->id), /*ok=*/!stopping_));
    if (!terminal(job->state)) {  // the watchdog may have settled it already
      if (stopping_ || job->cancel_requested ||
          job->cancel_token.load(std::memory_order_relaxed)) {
        // The client (or shutdown) no longer wants the job; a retry would
        // only delay the terminal outcome it is waiting for.
        if (auto e = finalize_locked(
                job, JobState::kCancelled,
                Status::cancelled("job cancelled; worker failed before a "
                                  "result was produced (" +
                                  what + ")")))
          events.push_back(*e);
      } else if (job->retries < options_.max_retries) {
        ++job->retries;
        job->state = JobState::kQueued;
        job->worker_slot = -1;
        const int shift = std::min(job->retries - 1, 62);
        job->eligible_at =
            vnow_ + (options_.retry_backoff_base << shift);
        queue_.push_back(job);
        retried = true;
        events.push_back(obs::TraceEvent::job(
            obs::EventKind::kJobRetried, static_cast<std::int64_t>(job->id),
            static_cast<std::int64_t>(job->retries)));
      } else {
        // Poison quarantine: the job has now failed max_retries + 1
        // workers; assume the job, not the worker, and stop feeding it to
        // the pool. The typed outcome carries the full fault history.
        std::string message =
            "job quarantined after " + std::to_string(job->retries) +
            " retries; fault history:";
        for (const std::string& f : job->fault_history)
          message += " [" + f + "]";
        Status status = resource ? Status::resource_error(std::move(message))
                                 : Status::internal_error(std::move(message));
        quarantined = true;
        if (auto e =
                finalize_locked(job, JobState::kFailed, std::move(status)))
          events.push_back(*e);
      }
    }
    --running_jobs_;
    --workers_alive_;
    dead_worker_slots_.push_back(slot);
  }
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter("workers_died").add();
    if (retried) metrics_.counter("jobs_retried").add();
    if (quarantined) metrics_.counter("jobs_quarantined").add();
  }
  for (const obs::TraceEvent& e : events) emit(e);
  done_cv_.notify_all();
  if (retried) work_cv_.notify_one();
  supervisor_cv_.notify_one();
}

void RoutingService::supervisor_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const auto poll = std::chrono::duration<double, std::milli>(
        std::max(1.0, options_.watchdog_poll_ms));
    supervisor_cv_.wait_for(lock, poll, [this] {
      return stopping_ || !dead_worker_slots_.empty();
    });
    if (stopping_) return;

    std::vector<obs::TraceEvent> events;

    // Respawn every dead seat with a fresh thread (fresh SearchArena). The
    // dead thread's handle parks in zombies_ and is joined at shutdown —
    // it has already returned (or is returning) from worker_loop.
    while (!dead_worker_slots_.empty()) {
      const int slot = dead_worker_slots_.back();
      dead_worker_slots_.pop_back();
      WorkerSlot& seat = worker_slots_[static_cast<std::size_t>(slot)];
      if (seat.thread.joinable()) zombies_.push_back(std::move(seat.thread));
      ++seat.generation;
      const std::uint64_t generation = seat.generation;
      seat.thread =
          std::thread([this, slot, generation] { worker_loop(slot, generation); });
      ++workers_alive_;
      long long respawns = 0;
      {
        const std::lock_guard<std::mutex> mlock(metrics_mutex_);
        auto& counter = metrics_.counter("workers_respawned");
        counter.add();
        respawns = counter.value();
      }
      events.push_back(obs::TraceEvent::job(
          obs::EventKind::kWorkerRespawned, static_cast<std::int64_t>(slot),
          static_cast<std::int64_t>(respawns)));
    }

    // Watchdog scan: escalate running jobs past their wall deadline —
    // first the cooperative cancel token (salvage-partial at the next
    // budget checkpoint), then, for a worker provably ignoring it, seat
    // replacement so the pool cannot be pinned down by one stuck job.
    const auto now = Clock::now();
    for (const auto& [id, job] : jobs_) {
      (void)id;
      if (job->state != JobState::kRunning || job->max_wall_ms <= 0) continue;
      const double over = ms_since(job->started_at, now) - job->max_wall_ms;
      if (over <= options_.watchdog_cancel_grace_ms) continue;
      if (!job->cancel_requested) {
        job->cancel_requested = true;
        job->watchdog_cancelled = true;
        job->cancel_token.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> mlock(metrics_mutex_);
        metrics_.counter("watchdog_cancels").add();
      }
      if (options_.watchdog_replace_grace_ms >
              options_.watchdog_cancel_grace_ms &&
          over > options_.watchdog_replace_grace_ms && job->worker_slot >= 0) {
        const int slot = job->worker_slot;
        job->fault_history.push_back(
            "watchdog: wall deadline exceeded and cancel token ignored");
        if (auto e = finalize_locked(
                job, JobState::kFailed,
                Status::internal_error(
                    "watchdog replaced the worker: job exceeded its " +
                    std::to_string(job->max_wall_ms) +
                    " ms deadline and ignored cancellation")))
          events.push_back(*e);
        // The job is terminal now; running_jobs_ counts jobs, not threads.
        // The stale thread skips its own decrement when it finally returns
        // (generation check in worker_loop).
        --running_jobs_;
        // Abandon the seat: the stale thread keeps running until its next
        // generation check, off the books (zombies_), and a fresh worker
        // takes over the queue.
        WorkerSlot& seat = worker_slots_[static_cast<std::size_t>(slot)];
        ++seat.generation;
        if (seat.thread.joinable()) zombies_.push_back(std::move(seat.thread));
        const std::uint64_t generation = seat.generation;
        seat.thread = std::thread(
            [this, slot, generation] { worker_loop(slot, generation); });
        long long respawns = 0;
        {
          const std::lock_guard<std::mutex> mlock(metrics_mutex_);
          metrics_.counter("workers_abandoned").add();
          auto& counter = metrics_.counter("workers_respawned");
          counter.add();
          respawns = counter.value();
        }
        events.push_back(obs::TraceEvent::job(
            obs::EventKind::kWorkerDied, static_cast<std::int64_t>(slot),
            static_cast<std::int64_t>(job->id), /*ok=*/true));
        events.push_back(obs::TraceEvent::job(
            obs::EventKind::kWorkerRespawned, static_cast<std::int64_t>(slot),
            static_cast<std::int64_t>(respawns)));
      }
    }

    if (!events.empty()) {
      lock.unlock();
      for (const obs::TraceEvent& e : events) emit(e);
      done_cv_.notify_all();
      work_cv_.notify_all();
      lock.lock();
    }
  }
}

bool RoutingService::cacheable(const JobRequest& request) {
  // Only runs whose result is a pure function of (problem, options) may be
  // served from or inserted into the cache: a wall deadline or an external
  // cancel token makes the outcome timing-dependent, and an expansion
  // ceiling is deterministic but is part of neither the problem nor the
  // rendered options — simplest to keep budgeted runs out entirely.
  return request.use_cache && request.budget.unlimited();
}

std::string RoutingService::cache_identity(const JobRequest& request) {
  const RouterOptions& o = request.options;
  std::ostringstream key;
  // Every decision-relevant knob, rendered; threads/net_threads/log are
  // deliberately absent (results are proven identical across them).
  key << "v1 step=" << o.costs.step << " via=" << o.costs.via
      << " bend=" << o.costs.bend << " wrong_way=" << o.costs.wrong_way
      << " push=" << o.costs.push << " push_via=" << o.costs.push_via_extra
      << " future=" << static_cast<int>(o.future_cost)
      << " weak=" << o.enable_weak << " strong=" << o.enable_strong
      << " ripups=" << o.max_ripups_per_net
      << " repair=" << o.max_repair_steps
      << " probes=" << o.weak_probe_retries << " retries=" << o.retry_passes
      << " order=" << static_cast<int>(o.ordering)
      << " seed=" << o.shuffle_seed
      << " extra=" << request.extra_attempts
      << " improve=" << request.improve_passes << '\n';
  write_problem(key, *request.problem);
  return std::move(key).str();
}

std::shared_ptr<const RouteResult> RoutingService::cache_lookup(
    std::uint64_t hash, const std::string& identity) {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  auto bucket = cache_index_.find(hash);
  if (bucket == cache_index_.end()) return nullptr;
  for (auto it : bucket->second) {
    if (it->identity != identity) continue;  // net-order twin or collision
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it);
    return it->result;
  }
  return nullptr;
}

void RoutingService::cache_insert(std::uint64_t hash, std::string identity,
                                  std::shared_ptr<const RouteResult> result) {
  if (options_.cache_capacity <= 0) return;
  if (options_.faults != nullptr)
    options_.faults->maybe_throw(fault::Site::kCacheInsert);
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  auto& slots = cache_index_[hash];
  for (auto it : slots)
    if (it->identity == identity) {  // racing duplicate insert: refresh LRU
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it);
      return;
    }
  cache_lru_.push_front({hash, std::move(identity), std::move(result)});
  slots.push_back(cache_lru_.begin());
  while (static_cast<int>(cache_lru_.size()) > options_.cache_capacity) {
    auto victim = std::prev(cache_lru_.end());
    auto& vslots = cache_index_[victim->hash];
    vslots.erase(std::find(vslots.begin(), vslots.end(), victim));
    if (vslots.empty()) cache_index_.erase(victim->hash);
    cache_lru_.pop_back();
  }
}

void RoutingService::execute(const std::shared_ptr<Job>& job,
                             SearchArena* arena) {
  if (options_.faults != nullptr)
    options_.faults->maybe_throw(fault::Site::kWorkerBody);

  emit(obs::TraceEvent::job(
      obs::EventKind::kJobStarted, static_cast<std::int64_t>(job->id),
      static_cast<std::int64_t>(job->queue_wait_ms)));
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter("jobs_started").add();
    metrics_.timer("queue_wait_ms").record_ms(job->queue_wait_ms);
  }

  if (job->edit.has_value()) {
    execute_delta(job, arena);
    return;
  }

  const JobRequest& request = job->request;
  // cache_eligible was pinned at admission against the *client's* budget,
  // before the service imposed its deadline default or brown-out ceiling —
  // those must not change which cache identity a job answers to.
  const bool use_cache = job->cache_eligible;
  std::uint64_t hash = 0;
  std::string identity;
  if (use_cache) {
    hash = request.problem->canonical_hash();
    identity = cache_identity(request);
    if (std::shared_ptr<const RouteResult> hit = cache_lookup(hash, identity)) {
      emit(obs::TraceEvent::job(obs::EventKind::kJobCachedHit,
                                static_cast<std::int64_t>(job->id),
                                static_cast<std::int64_t>(hash)));
      std::optional<obs::TraceEvent> done;
      {
        const std::lock_guard<std::mutex> lock(metrics_mutex_);
        metrics_.counter("cache_hits").add();
      }
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!terminal(job->state)) {
          job->result = hit;
          job->from_cache = true;
          done = finalize_locked(job, JobState::kCompleted, Status());
        }
      }
      if (done.has_value()) emit(*done);
      return;
    }
  }

  RouteRequest route_request;
  route_request.problem = request.problem.get();
  route_request.options = request.options;
  route_request.budget = request.budget;
  route_request.budget.cancel = &job->cancel_token;  // service cancellation
  route_request.trace = request.trace;
  route_request.extra_attempts = request.extra_attempts;
  route_request.improve_passes = request.improve_passes;
  route_request.faults = options_.faults;  // route-level sites share the plan
  if (request.extra_attempts <= 0) route_request.arena = arena;

  auto result = std::make_shared<RouteResult>(route(route_request));

  if (job->brownout)
    result->degradation.push_back(
        {Degradation::Kind::kBrownOut, 0, kNoNet,
         "admitted under brown-out: budget tightened to shed queue "
         "pressure"});

  const bool was_cancelled =
      job->cancel_token.load(std::memory_order_relaxed);
  if (use_cache && !job->brownout && !was_cancelled &&
      !result->budget_exhausted) {
    // Poison guard: only results that are a pure function of
    // (problem, options) may enter the cache. Any degradation except the
    // wave-engine serial fallback (which is bit-identical by design) marks
    // the run impure — an injected fault's rolled-back net, a disabled
    // sink, a salvaged attempt must never be served to a later client.
    bool impure = false;
    for (const Degradation& d : result->degradation)
      impure |= d.kind != Degradation::Kind::kWaveDisabled;
    if (!impure) {
      try {
        cache_insert(hash, std::move(identity), result);
      } catch (...) {
        // A failing cache must never fail the job: the result is in hand,
        // only its reuse is lost.
        const std::lock_guard<std::mutex> lock(metrics_mutex_);
        metrics_.counter("cache_insert_failed").add();
      }
    }
  }

  std::optional<obs::TraceEvent> done;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!terminal(job->state)) {  // the watchdog may have settled it already
      job->result = std::move(result);
      if (was_cancelled) {
        done = finalize_locked(job, JobState::kCancelled,
                               Status::cancelled("job cancelled while running; "
                                                 "partial result attached"));
      } else {
        done = finalize_locked(job, JobState::kCompleted, Status());
      }
    }
  }
  if (done.has_value()) emit(*done);
}

void RoutingService::execute_delta(const std::shared_ptr<Job>& job,
                                   SearchArena* arena) {
  // The base (problem, layout) snapshot was pinned at admission; the
  // session claim (active_job) guarantees it cannot advance underneath us.
  DeltaRequest delta_request;
  delta_request.base_problem = job->request.problem.get();
  delta_request.base_layout = &job->base_layout->grid;
  delta_request.edit = *job->edit;
  delta_request.options = job->request.options;
  delta_request.budget = job->request.budget;
  delta_request.budget.cancel = &job->cancel_token;
  delta_request.trace = job->request.trace;
  delta_request.extra_attempts = job->request.extra_attempts;
  delta_request.improve_passes = job->request.improve_passes;
  delta_request.prescreen = job->delta_prescreen;
  delta_request.faults = options_.faults;
  if (job->request.extra_attempts <= 0) delta_request.arena = arena;

  DeltaResult delta = route_delta(delta_request);

  auto outcome = std::make_shared<DeltaOutcome>();
  outcome->dirty_box = delta.dirty_box;
  outcome->preserved = std::move(delta.preserved);
  outcome->rerouted = std::move(delta.rerouted);
  outcome->prescreen_rejected = delta.prescreen_rejected;
  auto result = std::make_shared<RouteResult>(std::move(delta.result));
  auto edited = std::make_shared<const Problem>(std::move(delta.edited));

  if (job->brownout)
    result->degradation.push_back(
        {Degradation::Kind::kBrownOut, 0, kNoNet,
         "admitted under brown-out: budget tightened to shed queue "
         "pressure"});

  const bool was_cancelled = job->cancel_token.load(std::memory_order_relaxed);
  std::optional<obs::TraceEvent> done;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!terminal(job->state)) {
      // The outcome's problem is the edited one the grid answers to — for a
      // clean completion finalize_locked commits exactly this pair into the
      // session; for anything else the session keeps its old state.
      job->request.problem = std::move(edited);
      job->result = std::move(result);
      job->delta = std::move(outcome);
      if (was_cancelled) {
        done = finalize_locked(job, JobState::kCancelled,
                               Status::cancelled("job cancelled while running; "
                                                 "partial result attached"));
      } else {
        done = finalize_locked(job, JobState::kCompleted, Status());
      }
    }
  }
  if (done.has_value()) emit(*done);
}

std::optional<obs::TraceEvent> RoutingService::finalize_locked(
    const std::shared_ptr<Job>& job, JobState state, Status status) {
  // Idempotent: the watchdog, a dying worker, and an abandoned worker that
  // finally returns can all reach here for one job — the first settles it.
  if (terminal(job->state)) return std::nullopt;

  // Session settlement: every terminal path (worker, cache hit, queued
  // cancel, watchdog, quarantine, shutdown) funnels through here under
  // mutex_, so the claim is released exactly once — and the committed
  // state advances only on a clean completion. A cancelled, failed,
  // pre-screened or invalid job leaves the session's base layout intact.
  bool delta_committed = false;
  if (job->session != 0) {
    const auto it = sessions_.find(job->session);
    if (it != sessions_.end() && it->second->active_job == job->id) {
      Session& session = *it->second;
      session.active_job = 0;
      if (state == JobState::kCompleted && job->result != nullptr &&
          job->result->status.ok()) {
        if (options_.faults != nullptr &&
            options_.faults->fire(fault::Site::kSessionCommit)) {
          // Commit failed: the session keeps its previous committed state
          // and the waiter gets a typed failure instead of a silently
          // half-applied session. fire() (not maybe_throw) — an exception
          // must not unwind from under mutex_.
          job->fault_history.push_back(
              "injected fault at session_commit (arrival " +
              std::to_string(
                  options_.faults->hits(fault::Site::kSessionCommit)) +
              ")");
          state = JobState::kFailed;
          status = Status::internal_error(
              "session commit failed; the session keeps its previous "
              "committed layout");
        } else {
          session.problem = job->request.problem;
          session.layout = job->result;
          if (job->edit.has_value()) {
            ++session.committed_deltas;
            delta_committed = true;
          }
        }
      }
    }
  }

  job->state = state;
  job->status = std::move(status);

  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    const char* counter = "jobs_completed";
    if (state == JobState::kCancelled) counter = "jobs_cancelled";
    if (state == JobState::kFailed) counter = "jobs_failed";
    metrics_.counter(counter).add();
    if (delta_committed) metrics_.counter("deltas_committed").add();
  }
  if (state == JobState::kCancelled)
    return obs::TraceEvent::job(obs::EventKind::kJobCancelled,
                                static_cast<std::int64_t>(job->id),
                                /*extra=*/0,
                                /*ok=*/job->result != nullptr);
  if (state == JobState::kFailed)
    return obs::TraceEvent::job(obs::EventKind::kJobQuarantined,
                                static_cast<std::int64_t>(job->id),
                                static_cast<std::int64_t>(job->retries));
  const bool clean = job->result != nullptr && job->result->complete() &&
                     job->result->degradation.empty();
  return obs::TraceEvent::job(obs::EventKind::kJobCompleted,
                              static_cast<std::int64_t>(job->id),
                              /*extra=*/0, clean);
}

StatusOr<JobOutcome> RoutingService::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end())
    return Status::validation_error("unknown job id " + std::to_string(id));
  const std::shared_ptr<Job> job = it->second;
  done_cv_.wait(lock, [&] { return terminal(job->state); });
  JobOutcome outcome;
  outcome.id = job->id;
  outcome.state = job->state;
  outcome.status = job->status;
  outcome.result = job->result;
  outcome.problem = job->request.problem;
  outcome.from_cache = job->from_cache;
  outcome.queue_wait_ms = job->queue_wait_ms;
  outcome.delta = job->delta;
  outcome.retries = job->retries;
  outcome.fault_history = job->fault_history;
  jobs_.erase(id);  // wait() consumes the record
  return outcome;
}

std::optional<JobOutcome> RoutingService::try_outcome(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const Job& job = *it->second;
  if (!terminal(job.state)) return std::nullopt;
  JobOutcome outcome;
  outcome.id = job.id;
  outcome.state = job.state;
  outcome.status = job.status;
  outcome.result = job.result;
  outcome.problem = job.request.problem;
  outcome.from_cache = job.from_cache;
  outcome.queue_wait_ms = job.queue_wait_ms;
  outcome.delta = job.delta;
  outcome.retries = job.retries;
  outcome.fault_history = job.fault_history;
  return outcome;
}

bool RoutingService::cancel(std::uint64_t id) {
  std::optional<obs::TraceEvent> event;
  bool cancelled = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    const std::shared_ptr<Job>& job = it->second;
    if (job->state == JobState::kQueued) {
      auto qit = std::find(queue_.begin(), queue_.end(), job);
      if (qit != queue_.end()) queue_.erase(qit);
      event = finalize_locked(job, JobState::kCancelled,
                              Status::cancelled("job cancelled while queued"));
      cancelled = true;
    } else if (job->state == JobState::kRunning && !job->cancel_requested) {
      // The worker observes the token at the next budget checkpoint and
      // finalizes the job (kJobCancelled, partial result) itself.
      job->cancel_requested = true;
      job->cancel_token.store(true, std::memory_order_relaxed);
      cancelled = true;
    }
  }
  if (event.has_value()) {
    emit(*event);
    done_cv_.notify_all();
  }
  return cancelled;
}

void RoutingService::pause() {
  const std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void RoutingService::resume() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void RoutingService::shutdown() {
  std::vector<obs::TraceEvent> events;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) {
      // Idempotent second call: workers are already gone or going.
      lock.unlock();
    } else {
      stopping_ = true;
      while (!queue_.empty()) {
        const std::shared_ptr<Job> job = queue_.front();
        queue_.pop_front();
        if (auto e = finalize_locked(
                job, JobState::kCancelled,
                Status::cancelled("service shut down before the job ran")))
          events.push_back(*e);
      }
      lock.unlock();
    }
  }
  for (const obs::TraceEvent& e : events) emit(e);
  if (!events.empty()) done_cv_.notify_all();
  work_cv_.notify_all();
  supervisor_cv_.notify_all();
  if (supervisor_.joinable()) supervisor_.join();
  for (WorkerSlot& seat : worker_slots_)
    if (seat.thread.joinable()) seat.thread.join();
  // Abandoned/dead threads parked by the supervisor. The supervisor is
  // joined, workers are joined — nobody mutates zombies_ anymore. A thread
  // stuck past watchdog replacement must unblock for this join to return;
  // that is the documented contract (shutdown waits for running work).
  // worker_slots_ stays populated until the zombies are gone: a stale
  // thread's last act is a generation check against its seat.
  for (std::thread& zombie : zombies_)
    if (zombie.joinable()) zombie.join();
  zombies_.clear();
  worker_slots_.clear();
}

ServiceStats RoutingService::stats() const {
  ServiceStats out;
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    const obs::MetricsSnapshot snap = metrics_.snapshot();
    out.submitted = snap.counter("jobs_submitted");
    out.admitted = snap.counter("jobs_admitted");
    out.rejected_queue_full = snap.counter("jobs_rejected_queue_full");
    out.rejected_prescreen = snap.counter("jobs_rejected_prescreen");
    out.started = snap.counter("jobs_started");
    out.cache_hits = snap.counter("cache_hits");
    out.completed = snap.counter("jobs_completed");
    out.cancelled = snap.counter("jobs_cancelled");
    out.peak_queue_depth = snap.counter("peak_queue_depth");
    out.sessions_opened = snap.counter("sessions_opened");
    out.deltas_submitted = snap.counter("deltas_submitted");
    out.deltas_committed = snap.counter("deltas_committed");
    out.failed = snap.counter("jobs_failed");
    out.retried = snap.counter("jobs_retried");
    out.quarantined = snap.counter("jobs_quarantined");
    out.browned_out = snap.counter("jobs_browned_out");
    out.workers_respawned = snap.counter("workers_respawned");
    for (const auto& timer : snap.timers)
      if (timer.name == "queue_wait_ms") out.total_queue_wait_ms = timer.total_ms;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.queue_depth = static_cast<long long>(queue_.size());
  }
  return out;
}

ServiceHealth RoutingService::health() const {
  ServiceHealth out;
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    const obs::MetricsSnapshot snap = metrics_.snapshot();
    out.workers_respawned = snap.counter("workers_respawned");
    out.workers_abandoned = snap.counter("workers_abandoned");
    out.jobs_retried = snap.counter("jobs_retried");
    out.jobs_quarantined = snap.counter("jobs_quarantined");
    out.brownouts_entered = snap.counter("brownouts_entered");
    out.watchdog_cancels = snap.counter("watchdog_cancels");
    out.cache_insert_failures = snap.counter("cache_insert_failed");
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.workers_alive = workers_alive_;
    out.queue_depth = static_cast<long long>(queue_.size());
    out.running_jobs = running_jobs_;
    out.brownout_active = brownout_;
  }
  return out;
}

obs::MetricsSnapshot RoutingService::metrics() const {
  const std::lock_guard<std::mutex> lock(metrics_mutex_);
  return metrics_.snapshot();
}

}  // namespace gridroute::service
