#include "service/routing_service.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "io/text_format.hpp"

namespace gridroute::service {

using Clock = std::chrono::steady_clock;

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kPrescreen: return "prescreen";
    case RejectReason::kShutdown: return "shutdown";
  }
  return "unknown";
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kRejected: return "rejected";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

double estimated_utilization(const Problem& problem) {
  // The estimate lives in the core now (it doubles as the delta
  // pre-screen's utilization bound); this name stays as the serving-layer
  // alias the ABI and docs reference.
  return hpwl_utilization(problem);
}

/// One job's service-side record. The atomic cancel token is what the
/// job's BudgetGauge polls (RunBudget::cancel); everything else is guarded
/// by RoutingService::mutex_.
struct RoutingService::Job {
  std::uint64_t id = 0;
  JobRequest request;
  JobState state = JobState::kQueued;
  std::atomic<bool> cancel_token{false};
  bool cancel_requested = false;  ///< cancel() reached a running job
  Status status;
  std::shared_ptr<const RouteResult> result;
  bool from_cache = false;
  Clock::time_point admitted_at;
  double queue_wait_ms = 0;

  // ECO session binding. session != 0 ties the job's terminal state to the
  // session (finalize_locked settles it); a delta job additionally carries
  // the edit and the base-layout snapshot taken at admission.
  std::uint64_t session = 0;
  std::optional<ProblemEdit> edit;
  std::shared_ptr<const RouteResult> base_layout;
  bool delta_prescreen = true;
  std::shared_ptr<const DeltaOutcome> delta;
};

/// One ECO session: the committed (problem, layout) pair deltas iterate
/// on. Guarded by RoutingService::mutex_; the shared_ptrs are immutable
/// snapshots, so a worker that copied them at admission reads lock-free.
struct RoutingService::Session {
  std::uint64_t id = 0;
  std::shared_ptr<const Problem> problem;
  std::shared_ptr<const RouteResult> layout;  ///< null until the base lands
  std::uint64_t active_job = 0;               ///< 0 = idle
  int committed_deltas = 0;
};

struct RoutingService::CacheSlot {
  std::uint64_t hash = 0;
  std::string identity;
  std::shared_ptr<const RouteResult> result;
};

RoutingService::RoutingService(ServiceOptions options)
    : options_(std::move(options)) {
  paused_ = options_.start_paused;
  int workers = options_.workers;
  if (workers <= 0)
    workers =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] {
      // One persistent arena per worker, lent to every plain-run job this
      // worker executes; epoch stamping keeps the reuse bit-identical.
      SearchArena arena;
      worker_loop(&arena);
    });
}

RoutingService::~RoutingService() { shutdown(); }

void RoutingService::emit(const obs::TraceEvent& event) {
  if (options_.trace != nullptr) options_.trace->on_event(event);
}

StatusOr<std::uint64_t> RoutingService::submit(JobRequest request) {
  return submit_impl(std::move(request), /*open_session=*/false, nullptr);
}

StatusOr<SessionTicket> RoutingService::open_session(JobRequest base) {
  SessionTicket ticket;
  StatusOr<std::uint64_t> id =
      submit_impl(std::move(base), /*open_session=*/true, &ticket.session);
  if (!id.ok()) return id.status();
  ticket.base_job = *id;
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter("sessions_opened").add();
  }
  return ticket;
}

StatusOr<std::uint64_t> RoutingService::submit_impl(
    JobRequest request, bool open_session, std::uint64_t* session_out) {
  if (request.problem == nullptr)
    return Status::validation_error("JobRequest::problem must be set");

  auto job = std::make_shared<Job>();
  job->request = std::move(request);

  std::uint64_t id = 0;
  std::optional<RejectReason> reject;
  std::size_t depth_after = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    job->id = id;
    if (stopping_)
      reject = RejectReason::kShutdown;
    else if (static_cast<int>(queue_.size()) >= options_.max_queue_depth)
      reject = RejectReason::kQueueFull;
  }
  emit(obs::TraceEvent::job(obs::EventKind::kJobSubmitted,
                            static_cast<std::int64_t>(id)));
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter("jobs_submitted").add();
  }

  // The pre-screen runs outside the queue lock — it reads only the
  // (immutable) problem, and an O(cells) capacity scan must not serialize
  // admissions behind it.
  if (!reject && options_.prescreen &&
      estimated_utilization(*job->request.problem) >
          options_.prescreen_max_utilization)
    reject = RejectReason::kPrescreen;

  if (!reject) {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Re-check under the lock: admissions race, and the bound is hard.
    if (stopping_)
      reject = RejectReason::kShutdown;
    else if (static_cast<int>(queue_.size()) >= options_.max_queue_depth)
      reject = RejectReason::kQueueFull;
    else {
      if (open_session) {
        // Create the session atomically with the enqueue: the base job is
        // its first in-flight job, so finalize always finds the session.
        auto session = std::make_shared<Session>();
        session->id = next_session_++;
        session->problem = job->request.problem;
        session->active_job = id;
        job->session = session->id;
        sessions_.emplace(session->id, session);
        *session_out = session->id;
      }
      job->admitted_at = Clock::now();
      queue_.push_back(job);
      jobs_.emplace(id, job);
      depth_after = queue_.size();
    }
  }

  if (reject) {
    emit(obs::TraceEvent::job(obs::EventKind::kJobRejected,
                              static_cast<std::int64_t>(id),
                              static_cast<std::int64_t>(*reject)));
    const char* name = reject_reason_name(*reject);
    {
      const std::lock_guard<std::mutex> lock(metrics_mutex_);
      metrics_.counter(std::string("jobs_rejected_") + name).add();
    }
    const std::string message =
        "job rejected at admission: " + std::string(name);
    if (*reject == RejectReason::kShutdown)
      return Status::cancelled(message);
    return Status::resource_error(message);
  }

  emit(obs::TraceEvent::job(obs::EventKind::kJobAdmitted,
                            static_cast<std::int64_t>(id),
                            static_cast<std::int64_t>(depth_after)));
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter("jobs_admitted").add();
    auto& peak = metrics_.counter("peak_queue_depth");
    if (static_cast<long long>(depth_after) > peak.value())
      peak.add(static_cast<long long>(depth_after) - peak.value());
  }
  work_cv_.notify_one();
  return id;
}

StatusOr<std::uint64_t> RoutingService::submit_delta(std::uint64_t session,
                                                     DeltaJobRequest request) {
  auto job = std::make_shared<Job>();
  job->request.options = request.options;
  job->request.budget = request.budget;
  job->request.extra_attempts = request.extra_attempts;
  job->request.improve_passes = request.improve_passes;
  job->request.use_cache = false;  // delta results are layout-dependent
  job->request.trace = request.trace;
  job->edit = std::move(request.edit);
  job->delta_prescreen = request.prescreen;

  std::uint64_t id = 0;
  std::optional<RejectReason> reject;
  Status session_error;
  std::size_t depth_after = 0;
  {
    // One critical section validates the session, claims it, and enqueues:
    // a claim that could not be enqueued must never leak, and two clients
    // racing deltas onto one session must serialize here.
    const std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    job->id = id;
    if (stopping_) {
      reject = RejectReason::kShutdown;
    } else {
      const auto it = sessions_.find(session);
      if (it == sessions_.end()) {
        session_error = Status::validation_error("unknown session id " +
                                                 std::to_string(session));
      } else if (it->second->active_job != 0) {
        session_error = Status::resource_error(
            "session " + std::to_string(session) + " is busy: job " +
            std::to_string(it->second->active_job) + " is in flight");
      } else if (it->second->layout == nullptr) {
        session_error = Status::validation_error(
            "session " + std::to_string(session) +
            " has no committed base layout (base job failed or cancelled?)");
      } else if (static_cast<int>(queue_.size()) >= options_.max_queue_depth) {
        reject = RejectReason::kQueueFull;
      } else {
        Session& s = *it->second;
        job->session = session;
        job->request.problem = s.problem;
        job->base_layout = s.layout;
        s.active_job = id;
        job->admitted_at = Clock::now();
        queue_.push_back(job);
        jobs_.emplace(id, job);
        depth_after = queue_.size();
      }
    }
  }
  // A session-state failure is a request-shape error, like submit()'s null
  // problem: reported before the job lifecycle begins.
  if (!session_error.ok()) return session_error;

  emit(obs::TraceEvent::job(obs::EventKind::kJobSubmitted,
                            static_cast<std::int64_t>(id)));
  // Serving-layer delta marker (job-style payload: job id, session id);
  // route_delta emits the core triple once the job runs.
  emit(obs::TraceEvent::job(obs::EventKind::kDeltaSubmitted,
                            static_cast<std::int64_t>(id),
                            static_cast<std::int64_t>(session)));
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter("jobs_submitted").add();
    metrics_.counter("deltas_submitted").add();
  }

  if (reject) {
    emit(obs::TraceEvent::job(obs::EventKind::kJobRejected,
                              static_cast<std::int64_t>(id),
                              static_cast<std::int64_t>(*reject)));
    const char* name = reject_reason_name(*reject);
    {
      const std::lock_guard<std::mutex> lock(metrics_mutex_);
      metrics_.counter(std::string("jobs_rejected_") + name).add();
    }
    const std::string message =
        "delta rejected at admission: " + std::string(name);
    if (*reject == RejectReason::kShutdown) return Status::cancelled(message);
    return Status::resource_error(message);
  }

  emit(obs::TraceEvent::job(obs::EventKind::kJobAdmitted,
                            static_cast<std::int64_t>(id),
                            static_cast<std::int64_t>(depth_after)));
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter("jobs_admitted").add();
    auto& peak = metrics_.counter("peak_queue_depth");
    if (static_cast<long long>(depth_after) > peak.value())
      peak.add(static_cast<long long>(depth_after) - peak.value());
  }
  work_cv_.notify_one();
  return id;
}

bool RoutingService::close_session(std::uint64_t session) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end() || it->second->active_job != 0) return false;
  sessions_.erase(it);
  return true;
}

std::optional<SessionInfo> RoutingService::session_info(
    std::uint64_t session) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return std::nullopt;
  const Session& s = *it->second;
  SessionInfo info;
  info.id = s.id;
  info.busy = s.active_job != 0;
  info.committed_deltas = s.committed_deltas;
  info.problem = s.problem;
  info.layout = s.layout;
  return info;
}

void RoutingService::worker_loop(SearchArena* arena) {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (stopping_) return;  // shutdown() finalizes what is still queued
      job = queue_.front();
      queue_.pop_front();
      job->state = JobState::kRunning;
      job->queue_wait_ms = std::chrono::duration<double, std::milli>(
                               Clock::now() - job->admitted_at)
                               .count();
      ++running_jobs_;
    }
    execute(job, arena);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --running_jobs_;
    }
    done_cv_.notify_all();
  }
}

bool RoutingService::cacheable(const JobRequest& request) {
  // Only runs whose result is a pure function of (problem, options) may be
  // served from or inserted into the cache: a wall deadline or an external
  // cancel token makes the outcome timing-dependent, and an expansion
  // ceiling is deterministic but is part of neither the problem nor the
  // rendered options — simplest to keep budgeted runs out entirely.
  return request.use_cache && request.budget.unlimited();
}

std::string RoutingService::cache_identity(const JobRequest& request) {
  const RouterOptions& o = request.options;
  std::ostringstream key;
  // Every decision-relevant knob, rendered; threads/net_threads/log are
  // deliberately absent (results are proven identical across them).
  key << "v1 step=" << o.costs.step << " via=" << o.costs.via
      << " bend=" << o.costs.bend << " wrong_way=" << o.costs.wrong_way
      << " push=" << o.costs.push << " push_via=" << o.costs.push_via_extra
      << " future=" << static_cast<int>(o.future_cost)
      << " weak=" << o.enable_weak << " strong=" << o.enable_strong
      << " ripups=" << o.max_ripups_per_net
      << " repair=" << o.max_repair_steps
      << " probes=" << o.weak_probe_retries << " retries=" << o.retry_passes
      << " order=" << static_cast<int>(o.ordering)
      << " seed=" << o.shuffle_seed
      << " extra=" << request.extra_attempts
      << " improve=" << request.improve_passes << '\n';
  write_problem(key, *request.problem);
  return std::move(key).str();
}

std::shared_ptr<const RouteResult> RoutingService::cache_lookup(
    std::uint64_t hash, const std::string& identity) {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  auto bucket = cache_index_.find(hash);
  if (bucket == cache_index_.end()) return nullptr;
  for (auto it : bucket->second) {
    if (it->identity != identity) continue;  // net-order twin or collision
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it);
    return it->result;
  }
  return nullptr;
}

void RoutingService::cache_insert(std::uint64_t hash, std::string identity,
                                  std::shared_ptr<const RouteResult> result) {
  if (options_.cache_capacity <= 0) return;
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  auto& slots = cache_index_[hash];
  for (auto it : slots)
    if (it->identity == identity) {  // racing duplicate insert: refresh LRU
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it);
      return;
    }
  cache_lru_.push_front({hash, std::move(identity), std::move(result)});
  slots.push_back(cache_lru_.begin());
  while (static_cast<int>(cache_lru_.size()) > options_.cache_capacity) {
    auto victim = std::prev(cache_lru_.end());
    auto& vslots = cache_index_[victim->hash];
    vslots.erase(std::find(vslots.begin(), vslots.end(), victim));
    if (vslots.empty()) cache_index_.erase(victim->hash);
    cache_lru_.pop_back();
  }
}

void RoutingService::execute(const std::shared_ptr<Job>& job,
                             SearchArena* arena) {
  emit(obs::TraceEvent::job(
      obs::EventKind::kJobStarted, static_cast<std::int64_t>(job->id),
      static_cast<std::int64_t>(job->queue_wait_ms)));
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.counter("jobs_started").add();
    metrics_.timer("queue_wait_ms").record_ms(job->queue_wait_ms);
  }

  if (job->edit.has_value()) {
    execute_delta(job, arena);
    return;
  }

  const JobRequest& request = job->request;
  const bool use_cache = options_.cache_capacity > 0 && cacheable(request);
  std::uint64_t hash = 0;
  std::string identity;
  if (use_cache) {
    hash = request.problem->canonical_hash();
    identity = cache_identity(request);
    if (std::shared_ptr<const RouteResult> hit = cache_lookup(hash, identity)) {
      emit(obs::TraceEvent::job(obs::EventKind::kJobCachedHit,
                                static_cast<std::int64_t>(job->id),
                                static_cast<std::int64_t>(hash)));
      obs::TraceEvent done;
      {
        const std::lock_guard<std::mutex> lock(metrics_mutex_);
        metrics_.counter("cache_hits").add();
      }
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        job->result = hit;
        job->from_cache = true;
        done = finalize_locked(job, JobState::kCompleted, Status());
      }
      emit(done);
      return;
    }
  }

  RouteRequest route_request;
  route_request.problem = request.problem.get();
  route_request.options = request.options;
  route_request.budget = request.budget;
  route_request.budget.cancel = &job->cancel_token;  // service cancellation
  route_request.trace = request.trace;
  route_request.extra_attempts = request.extra_attempts;
  route_request.improve_passes = request.improve_passes;
  if (request.extra_attempts <= 0) route_request.arena = arena;

  auto result = std::make_shared<RouteResult>(route(route_request));

  const bool was_cancelled =
      job->cancel_token.load(std::memory_order_relaxed);
  if (use_cache && !was_cancelled && !result->budget_exhausted) {
    bool sink_tripped = false;
    for (const Degradation& d : result->degradation)
      sink_tripped |= d.kind == Degradation::Kind::kSinkDisabled;
    if (!sink_tripped) cache_insert(hash, std::move(identity), result);
  }

  obs::TraceEvent done;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job->result = std::move(result);
    if (was_cancelled) {
      done = finalize_locked(job, JobState::kCancelled,
                             Status::cancelled("job cancelled while running; "
                                               "partial result attached"));
    } else {
      done = finalize_locked(job, JobState::kCompleted, Status());
    }
  }
  emit(done);
}

void RoutingService::execute_delta(const std::shared_ptr<Job>& job,
                                   SearchArena* arena) {
  // The base (problem, layout) snapshot was pinned at admission; the
  // session claim (active_job) guarantees it cannot advance underneath us.
  DeltaRequest delta_request;
  delta_request.base_problem = job->request.problem.get();
  delta_request.base_layout = &job->base_layout->grid;
  delta_request.edit = *job->edit;
  delta_request.options = job->request.options;
  delta_request.budget = job->request.budget;
  delta_request.budget.cancel = &job->cancel_token;
  delta_request.trace = job->request.trace;
  delta_request.extra_attempts = job->request.extra_attempts;
  delta_request.improve_passes = job->request.improve_passes;
  delta_request.prescreen = job->delta_prescreen;
  if (job->request.extra_attempts <= 0) delta_request.arena = arena;

  DeltaResult delta = route_delta(delta_request);

  auto outcome = std::make_shared<DeltaOutcome>();
  outcome->dirty_box = delta.dirty_box;
  outcome->preserved = std::move(delta.preserved);
  outcome->rerouted = std::move(delta.rerouted);
  outcome->prescreen_rejected = delta.prescreen_rejected;
  auto result = std::make_shared<RouteResult>(std::move(delta.result));
  auto edited = std::make_shared<const Problem>(std::move(delta.edited));

  const bool was_cancelled = job->cancel_token.load(std::memory_order_relaxed);
  obs::TraceEvent done;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // The outcome's problem is the edited one the grid answers to — for a
    // clean completion finalize_locked commits exactly this pair into the
    // session; for anything else the session keeps its old state.
    job->request.problem = std::move(edited);
    job->result = std::move(result);
    job->delta = std::move(outcome);
    if (was_cancelled) {
      done = finalize_locked(job, JobState::kCancelled,
                             Status::cancelled("job cancelled while running; "
                                               "partial result attached"));
    } else {
      done = finalize_locked(job, JobState::kCompleted, Status());
    }
  }
  emit(done);
}

obs::TraceEvent RoutingService::finalize_locked(
    const std::shared_ptr<Job>& job, JobState state, Status status) {
  job->state = state;
  job->status = std::move(status);

  // Session settlement: every terminal path (worker, cache hit, queued
  // cancel, shutdown) funnels through here under mutex_, so the claim is
  // released exactly once — and the committed state advances only on a
  // clean completion. A cancelled, failed, pre-screened or invalid job
  // leaves the session's base layout intact.
  bool delta_committed = false;
  if (job->session != 0) {
    const auto it = sessions_.find(job->session);
    if (it != sessions_.end() && it->second->active_job == job->id) {
      Session& session = *it->second;
      session.active_job = 0;
      if (state == JobState::kCompleted && job->result != nullptr &&
          job->result->status.ok()) {
        session.problem = job->request.problem;
        session.layout = job->result;
        if (job->edit.has_value()) {
          ++session.committed_deltas;
          delta_committed = true;
        }
      }
    }
  }

  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_
        .counter(state == JobState::kCancelled ? "jobs_cancelled"
                                               : "jobs_completed")
        .add();
    if (delta_committed) metrics_.counter("deltas_committed").add();
  }
  if (state == JobState::kCancelled)
    return obs::TraceEvent::job(obs::EventKind::kJobCancelled,
                                static_cast<std::int64_t>(job->id),
                                /*extra=*/0,
                                /*ok=*/job->result != nullptr);
  const bool clean = job->result != nullptr && job->result->complete() &&
                     job->result->degradation.empty();
  return obs::TraceEvent::job(obs::EventKind::kJobCompleted,
                              static_cast<std::int64_t>(job->id),
                              /*extra=*/0, clean);
}

StatusOr<JobOutcome> RoutingService::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end())
    return Status::validation_error("unknown job id " + std::to_string(id));
  const std::shared_ptr<Job> job = it->second;
  done_cv_.wait(lock, [&] {
    return job->state == JobState::kCompleted ||
           job->state == JobState::kCancelled;
  });
  JobOutcome outcome;
  outcome.id = job->id;
  outcome.state = job->state;
  outcome.status = job->status;
  outcome.result = job->result;
  outcome.problem = job->request.problem;
  outcome.from_cache = job->from_cache;
  outcome.queue_wait_ms = job->queue_wait_ms;
  outcome.delta = job->delta;
  jobs_.erase(id);  // wait() consumes the record
  return outcome;
}

std::optional<JobOutcome> RoutingService::try_outcome(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const Job& job = *it->second;
  if (job.state != JobState::kCompleted && job.state != JobState::kCancelled)
    return std::nullopt;
  JobOutcome outcome;
  outcome.id = job.id;
  outcome.state = job.state;
  outcome.status = job.status;
  outcome.result = job.result;
  outcome.problem = job.request.problem;
  outcome.from_cache = job.from_cache;
  outcome.queue_wait_ms = job.queue_wait_ms;
  outcome.delta = job.delta;
  return outcome;
}

bool RoutingService::cancel(std::uint64_t id) {
  obs::TraceEvent event;
  bool emit_event = false;
  bool cancelled = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    const std::shared_ptr<Job>& job = it->second;
    if (job->state == JobState::kQueued) {
      auto qit = std::find(queue_.begin(), queue_.end(), job);
      if (qit != queue_.end()) queue_.erase(qit);
      event = finalize_locked(job, JobState::kCancelled,
                              Status::cancelled("job cancelled while queued"));
      emit_event = true;
      cancelled = true;
    } else if (job->state == JobState::kRunning && !job->cancel_requested) {
      // The worker observes the token at the next budget checkpoint and
      // finalizes the job (kJobCancelled, partial result) itself.
      job->cancel_requested = true;
      job->cancel_token.store(true, std::memory_order_relaxed);
      cancelled = true;
    }
  }
  if (emit_event) {
    emit(event);
    done_cv_.notify_all();
  }
  return cancelled;
}

void RoutingService::pause() {
  const std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void RoutingService::resume() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void RoutingService::shutdown() {
  std::vector<obs::TraceEvent> events;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) {
      // Idempotent second call: workers are already gone or going.
      lock.unlock();
    } else {
      stopping_ = true;
      while (!queue_.empty()) {
        const std::shared_ptr<Job> job = queue_.front();
        queue_.pop_front();
        events.push_back(
            finalize_locked(job, JobState::kCancelled,
                            Status::cancelled("service shut down before the "
                                              "job ran")));
      }
      lock.unlock();
    }
  }
  for (const obs::TraceEvent& e : events) emit(e);
  if (!events.empty()) done_cv_.notify_all();
  work_cv_.notify_all();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
}

ServiceStats RoutingService::stats() const {
  ServiceStats out;
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    const obs::MetricsSnapshot snap = metrics_.snapshot();
    out.submitted = snap.counter("jobs_submitted");
    out.admitted = snap.counter("jobs_admitted");
    out.rejected_queue_full = snap.counter("jobs_rejected_queue_full");
    out.rejected_prescreen = snap.counter("jobs_rejected_prescreen");
    out.started = snap.counter("jobs_started");
    out.cache_hits = snap.counter("cache_hits");
    out.completed = snap.counter("jobs_completed");
    out.cancelled = snap.counter("jobs_cancelled");
    out.peak_queue_depth = snap.counter("peak_queue_depth");
    out.sessions_opened = snap.counter("sessions_opened");
    out.deltas_submitted = snap.counter("deltas_submitted");
    out.deltas_committed = snap.counter("deltas_committed");
    for (const auto& timer : snap.timers)
      if (timer.name == "queue_wait_ms") out.total_queue_wait_ms = timer.total_ms;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.queue_depth = static_cast<long long>(queue_.size());
  }
  return out;
}

obs::MetricsSnapshot RoutingService::metrics() const {
  const std::lock_guard<std::mutex> lock(metrics_mutex_);
  return metrics_.snapshot();
}

}  // namespace gridroute::service
