#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/api.hpp"
#include "core/delta.hpp"
#include "fault/fault.hpp"
#include "obs/budget.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "search/search_arena.hpp"
#include "util/status.hpp"

namespace gridroute::service {

/// Why admission declined a job (kJobRejected's `extra` payload, and the
/// reason named in the rejection Status).
enum class RejectReason : std::uint8_t {
  kQueueFull,    ///< the bounded queue was at max_queue_depth
  kPrescreen,    ///< the routability estimate called the job hopeless
  kShutdown,     ///< the service is shutting down
};

const char* reject_reason_name(RejectReason reason);

/// Configuration of a RoutingService. The defaults are a small
/// single-worker service with caching on and the pre-screen off — the
/// shape the examples and the C ABI default options mirror.
struct ServiceOptions {
  /// Worker threads executing jobs. 0 = one per hardware thread (at least
  /// 1). Each worker owns one SearchArena reused across every job it runs
  /// (epoch stamping makes the reuse bit-identical to fresh scratch).
  int workers = 1;
  /// Admission control: a submit that would push the queue past this depth
  /// is rejected (RejectReason::kQueueFull) instead of queued — bounded
  /// latency beats unbounded backlog. Running jobs do not count.
  int max_queue_depth = 64;
  /// Result-cache entries (LRU). 0 disables caching.
  int cache_capacity = 128;
  /// Admission pre-screen in the spirit of predict-before-route: estimate
  /// each job's demand/capacity utilization (estimated_utilization) and
  /// reject jobs above prescreen_max_utilization without burning a routing
  /// attempt. Off by default — an estimate this cheap has false alarms.
  bool prescreen = false;
  /// Utilization ceiling for the pre-screen. At the default 1.0 only
  /// provably infeasible jobs (wirelength lower bound exceeding routable
  /// capacity) are declined; production deployments tune it lower.
  double prescreen_max_utilization = 1.0;
  /// Construct the service paused: jobs queue (and are admission-checked)
  /// but no worker pops until resume(). Deterministic queue-state control
  /// for tests and drain-style operations.
  bool start_paused = false;
  /// Job lifecycle event sink (kJobSubmitted .. kBrownOutExited; null =
  /// off). Must be thread-safe — every worker and every submitting client
  /// emits into it (all of obs/sinks.hpp qualifies). The service wraps it
  /// in a fault::FailsafeSink: a throwing lifecycle sink degrades tracing,
  /// never the service.
  obs::TraceSink* trace = nullptr;

  // -- Resilience (DESIGN.md §2.5) -----------------------------------------

  /// Retries granted to a job whose worker body escapes (injected fault,
  /// bad_alloc, broken invariant above route()'s own salvage). The job is
  /// re-enqueued with a deterministic virtual-time backoff; a job that
  /// fails max_retries + 1 times is quarantined (JobState::kFailed with
  /// its fault history on the outcome). 0 = quarantine on first failure.
  int max_retries = 2;
  /// Virtual-time backoff base: retry n waits retry_backoff_base << (n-1)
  /// dequeue ticks before becoming eligible again. Virtual time advances
  /// one tick per dequeue — the schedule is seed-deterministic and never
  /// consults the wall clock.
  std::uint64_t retry_backoff_base = 1;
  /// Service-imposed wall deadline (ms) for jobs whose own budget sets
  /// none; rides the job's RunBudget exactly like a client deadline. The
  /// watchdog escalates on top of it (see watchdog_* below). 0 = off.
  double default_max_wall_ms = 0;
  /// Watchdog escalation step 1: a running job this many ms past its wall
  /// deadline gets its cancel token raised (salvage-partial at the next
  /// budget checkpoint), in case the budget itself is being ignored.
  double watchdog_cancel_grace_ms = 100;
  /// Watchdog escalation step 2: a job still running this many ms past its
  /// deadline is finalized kFailed for its waiter, and its worker —
  /// provably ignoring the cancel token — is abandoned and replaced with a
  /// fresh one. The abandoned thread is joined at shutdown. 0 = never
  /// replace (cancel-only watchdog). Must exceed watchdog_cancel_grace_ms
  /// to leave the cooperative path a window.
  double watchdog_replace_grace_ms = 0;
  /// Supervisor poll period (ms) for the watchdog scan.
  double watchdog_poll_ms = 10;
  /// Brown-out load shedding: when an admission would leave the queue at
  /// or above this depth, the service enters brown-out — jobs are still
  /// admitted (no kResource reject) but with tightened budgets
  /// (brownout_wall_ms / brownout_max_expansions) and a structured
  /// Degradation::kBrownOut on their results. 0 = off.
  int brownout_queue_threshold = 0;
  /// Queue depth at which brown-out ends (checked at dequeue). -1 = half
  /// of brownout_queue_threshold. Hysteresis keeps the mode from flapping.
  int brownout_exit_threshold = -1;
  /// Budget ceilings imposed on brown-out admissions (each 0 = leave that
  /// axis alone; a tighter client budget is kept).
  double brownout_wall_ms = 0;
  long long brownout_max_expansions = 0;
  /// Optional deterministic fault injector shared by every job the service
  /// runs (forwarded into route()/route_delta()) *and* probed at the
  /// service-scoped sites (kJobDequeue, kWorkerBody, kCacheInsert,
  /// kSessionCommit). Null = off. Not owned; must outlive the service.
  fault::Injector* faults = nullptr;
};

/// One job: everything route(RouteRequest) needs, with the problem owned
/// (shared) so the client may release its copy immediately after submit —
/// the lifetime discipline a long-lived service needs, in contrast to the
/// borrowed `const Problem*` of the library-level RouteRequest.
struct JobRequest {
  std::shared_ptr<const Problem> problem;  ///< required
  RouterOptions options;
  /// Per-job deadline/ceiling. The service adds its own cancellation token
  /// on top (RunBudget::cancel), so cancel() stops a running job at the
  /// next budget checkpoint with a verifiable partial result.
  obs::RunBudget budget;
  int extra_attempts = 0;   ///< multi-start restarts (see RouteRequest)
  int improve_passes = 0;   ///< clean-up passes (see RouteRequest)
  /// Opt out of the result cache for this job (both lookup and insert).
  bool use_cache = true;
  /// Optional per-job routing-event sink (the library's net/search/etc.
  /// events, not the service lifecycle stream). Must be thread-safe.
  obs::TraceSink* trace = nullptr;
};

/// Lifecycle of a job. kRejected never enters the queue; kCancelled covers
/// both a queued job that never ran and a running job stopped mid-flight
/// (the latter carries a verifiable partial result). kFailed is the
/// supervision layer's typed terminal state: the worker body escaped and
/// retries were exhausted (quarantine), or the watchdog replaced a worker
/// that ignored its deadline — the outcome's status is ErrorCode::kInternal
/// (kResource for bad_alloc) and fault_history names every failure.
enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kCompleted,
  kRejected,
  kCancelled,
  kFailed,
};

const char* job_state_name(JobState state);

/// What an ECO delta job decided, alongside its RouteResult: the
/// invalidation partition route_delta committed to (see core/delta.hpp).
struct DeltaOutcome {
  Rect dirty_box{{0, 0}, {-1, -1}};
  std::vector<NetId> preserved;  ///< replayed byte-identical from the base
  std::vector<NetId> rerouted;   ///< ripped and re-routed
  bool prescreen_rejected = false;
};

/// Terminal report for one job, returned by wait() (which consumes the
/// job's service-side record) or peeked by try_outcome().
struct JobOutcome {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  /// Ok for completed jobs (including degraded-but-served results — those
  /// carry their own RouteResult::status); kCancelled for cancellations.
  Status status;
  /// The routing result. Null when the job never ran (cancelled while
  /// queued). Shared: a cache-served outcome aliases the cached entry.
  std::shared_ptr<const RouteResult> result;
  /// The problem the job routed — returned so consumers that released their
  /// own copy after submit (the intended lifetime pattern, and what the C
  /// ABI does) can still serialize/verify the solution against it.
  std::shared_ptr<const Problem> problem;
  bool from_cache = false;
  double queue_wait_ms = 0;  ///< admission -> start (0 when never started)
  /// Delta jobs only: the invalidation partition (null on whole-problem
  /// jobs). `problem` is then the *edited* problem the result answers to.
  std::shared_ptr<const DeltaOutcome> delta;
  /// Times the supervision layer re-enqueued this job after a worker-body
  /// escape (0 on the nominal path).
  int retries = 0;
  /// One entry per absorbed worker-body failure, oldest first ("injected
  /// fault at worker_body (arrival 3)", "std::bad_alloc", ...). Non-empty
  /// on every kFailed outcome and on retried-then-completed jobs.
  std::vector<std::string> fault_history;
};

/// Handle returned by open_session(): the session id plus the id of the
/// base routing job admitted with it. The session holds no layout until
/// that job completes cleanly.
struct SessionTicket {
  std::uint64_t session = 0;
  std::uint64_t base_job = 0;
};

/// One ECO delta against a session's committed layout. No use_cache knob:
/// delta jobs never touch the whole-problem result cache — their identity
/// depends on the session's committed layout, which the cache key does not
/// (and must not) capture.
struct DeltaJobRequest {
  ProblemEdit edit;
  RouterOptions options;
  obs::RunBudget budget;  ///< service adds its cancel token, as for submit()
  int extra_attempts = 0;
  int improve_passes = 0;
  /// Run the routability pre-screen on the edited problem and reject
  /// provably-infeasible edits without a routing attempt (route_delta's
  /// kPrescreen degradation; the session layout is left untouched).
  bool prescreen = true;
  obs::TraceSink* trace = nullptr;  ///< per-job routing-event sink
};

/// Snapshot of one session's committed state (session_info()).
struct SessionInfo {
  std::uint64_t id = 0;
  bool busy = false;           ///< a base or delta job is in flight
  int committed_deltas = 0;    ///< deltas whose result replaced the layout
  std::shared_ptr<const Problem> problem;      ///< current committed problem
  std::shared_ptr<const RouteResult> layout;   ///< null until the base lands
};

/// Counter snapshot of a service's lifetime (see RoutingService::stats;
/// assembled from the service's obs::MetricsRegistry).
struct ServiceStats {
  long long submitted = 0;
  long long admitted = 0;
  long long rejected_queue_full = 0;
  long long rejected_prescreen = 0;
  long long started = 0;
  long long cache_hits = 0;
  long long completed = 0;
  long long cancelled = 0;
  long long queue_depth = 0;       ///< current
  long long peak_queue_depth = 0;
  double total_queue_wait_ms = 0;  ///< summed over started jobs
  // Incremental/ECO sessions.
  long long sessions_opened = 0;
  long long deltas_submitted = 0;
  long long deltas_committed = 0;  ///< deltas that advanced a session layout
  // Resilience (DESIGN.md §2.5).
  long long failed = 0;             ///< jobs finalized kFailed (all causes)
  long long retried = 0;            ///< retry re-enqueues performed
  long long quarantined = 0;        ///< kFailed after exhausting retries
  long long browned_out = 0;        ///< jobs admitted under brown-out
  long long workers_respawned = 0;  ///< supervisor worker replacements
};

/// Point-in-time health snapshot of the service (RoutingService::health),
/// the aggregate an operator dashboards: is the pool intact, is the queue
/// draining, is supervision absorbing failures, are we shedding load. Also
/// exposed verbatim through the C ABI as gr_health.
struct ServiceHealth {
  int workers_alive = 0;           ///< threads currently serving the queue
  long long workers_respawned = 0; ///< replacements after worker deaths
  long long workers_abandoned = 0; ///< watchdog replacements (zombie threads)
  long long queue_depth = 0;
  long long running_jobs = 0;      ///< includes work on abandoned threads
  long long jobs_retried = 0;
  long long jobs_quarantined = 0;
  bool brownout_active = false;
  long long brownouts_entered = 0; ///< lifetime brown-out episodes
  long long watchdog_cancels = 0;  ///< escalation step 1 firings
  long long cache_insert_failures = 0;  ///< kCacheInsert faults absorbed
};

/// Cheap routability estimate used by the admission pre-screen: the sum of
/// every net's half-perimeter wirelength lower bound (pins + pre-wire
/// bounding box) divided by the region's routable node count. A value
/// above 1.0 proves the job infeasible — the wire demanded cannot fit —
/// and values approaching 1.0 predict heavy modification effort. O(pins)
/// after one O(cells) capacity scan; never routes anything.
double estimated_utilization(const Problem& problem);

/// A long-lived serving front-end over route(RouteRequest): the library
/// becomes a system — a bounded job queue with admission control, a
/// persistent worker pool reusing per-worker search arenas, an LRU result
/// cache keyed by Problem::canonical_hash(), per-job deadlines and
/// cancellation riding obs::RunBudget, and a job lifecycle event/metrics
/// stream through src/obs (DESIGN.md §2.2).
///
/// Determinism contract: for any admitted job, the RouteResult delivered —
/// fresh, or served from the cache — is bit-identical (layout, failed,
/// decision stats, degradation) to a direct route(RouteRequest) call with
/// the same problem and options. The cache guarantees this by confirming
/// exact problem/options identity on every hash hit; wall-clock fields are
/// the only exception (a cached result reports the original run's times).
///
/// Thread-safe throughout: any number of client threads may submit, wait,
/// and cancel concurrently with the workers.
class RoutingService {
 public:
  explicit RoutingService(ServiceOptions options = {});
  /// Shuts down: stops admissions, cancels queued jobs, lets running jobs
  /// finish, joins the workers.
  ~RoutingService();

  RoutingService(const RoutingService&) = delete;
  RoutingService& operator=(const RoutingService&) = delete;

  /// Admission: validates the request shape, applies the queue-depth bound
  /// and (when enabled) the routability pre-screen, and either enqueues the
  /// job — returning its id — or rejects it with a Status naming the
  /// RejectReason (ErrorCode::kResource; kCancelled when shutting down).
  /// A null problem is ErrorCode::kValidation.
  StatusOr<std::uint64_t> submit(JobRequest request);

  // -- Incremental/ECO sessions (DESIGN.md §2.4) ---------------------------

  /// Opens a session and admits its base routing job in one step (same
  /// admission rules as submit(); on rejection no session is created).
  /// When the base job completes cleanly its result becomes the session's
  /// committed layout; until then — and after a failed or cancelled base —
  /// submit_delta() reports the session as having no base.
  StatusOr<SessionTicket> open_session(JobRequest base);

  /// Admits one delta against the session's committed layout. At most one
  /// job per session may be in flight (ErrorCode::kResource "busy"
  /// otherwise); an unknown session or one without a committed base is
  /// ErrorCode::kValidation. The job routes base-problem + edit with the
  /// committed layout as warm start; if it completes cleanly, the edited
  /// problem and new layout atomically replace the session's committed
  /// state — a cancelled, rejected, pre-screened or invalid delta leaves
  /// the session exactly as it was. Results are never served from (or
  /// inserted into) the whole-problem cache.
  StatusOr<std::uint64_t> submit_delta(std::uint64_t session,
                                       DeltaJobRequest request);

  /// Closes a session, dropping its committed state. False when the
  /// session is unknown or still has a job in flight (wait for it first).
  bool close_session(std::uint64_t session);

  /// Snapshot of a session's committed state; nullopt for unknown ids.
  std::optional<SessionInfo> session_info(std::uint64_t session) const;

  /// Blocks until the job reaches a terminal state and returns its outcome,
  /// consuming the service-side record (a second wait on the same id is
  /// ErrorCode::kValidation "unknown job").
  StatusOr<JobOutcome> wait(std::uint64_t id);

  /// Non-blocking peek: the outcome if the job is terminal, std::nullopt if
  /// still queued/running or unknown. Never consumes the record.
  std::optional<JobOutcome> try_outcome(std::uint64_t id) const;

  /// Cancels a job. Queued: it is finalized as kCancelled without running.
  /// Running: the job's budget-riding cancel token is raised and the worker
  /// finalizes it as kCancelled with the partial result at the next budget
  /// checkpoint. Terminal/unknown: returns false.
  bool cancel(std::uint64_t id);

  /// Pauses/resumes the workers (queued jobs hold; admission continues).
  void pause();
  void resume();

  /// Stops admissions, cancels every queued job, waits for running jobs,
  /// joins the workers. Idempotent; the destructor calls it.
  void shutdown();

  ServiceStats stats() const;
  /// Resilience snapshot (workers, retries, quarantine, brown-out state).
  ServiceHealth health() const;
  /// Full registry export (counters + queue-wait/run-time histograms).
  obs::MetricsSnapshot metrics() const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct Job;
  struct CacheSlot;
  struct Session;

  /// One worker seat in the pool. The generation stamps which incarnation
  /// of the seat a thread belongs to: the watchdog abandons a stuck worker
  /// by bumping the generation (the stale thread notices and exits when it
  /// eventually returns), and the supervisor respawns into the same seat.
  struct WorkerSlot {
    std::thread thread;
    std::uint64_t generation = 0;
  };

  void worker_loop(int slot, std::uint64_t generation);
  /// Supervision thread: respawns dead workers and runs the watchdog scan
  /// (deadline escalation cancel -> replace) every watchdog_poll_ms.
  void supervisor_loop();
  /// Worker-body escape handler: records the failure, then re-enqueues the
  /// job with backoff (retries left) or finalizes it kFailed (quarantine).
  /// Caller (the dying worker) must NOT hold mutex_.
  void absorb_worker_failure(const std::shared_ptr<Job>& job, int slot,
                             const std::string& what, bool resource);
  /// Executes one job on a worker: cache lookup, route(), cache insert,
  /// finalization. `arena` is the worker's persistent search scratch.
  void execute(const std::shared_ptr<Job>& job, SearchArena* arena);
  /// Pops the next eligible job (virtual-time backoff aware) — caller holds
  /// mutex_ and has checked the queue is non-empty. Warps vnow_ forward
  /// when every queued job is still backing off.
  std::shared_ptr<Job> dequeue_locked();
  /// Delta-job arm of execute(): route_delta against the session snapshot
  /// taken at admission; no cache on either side.
  void execute_delta(const std::shared_ptr<Job>& job, SearchArena* arena);
  /// Shared admission path of submit()/open_session(): when `open_session`
  /// is set, the session is created atomically with the enqueue (so the
  /// base job can never finalize against a missing session) and its id is
  /// stored through `session_out`.
  StatusOr<std::uint64_t> submit_impl(JobRequest request, bool open_session,
                                      std::uint64_t* session_out);
  /// Admission-side resilience policy (caller holds mutex_; the job is not
  /// yet visible to workers): pins cache eligibility against the client's
  /// own budget, imposes default_max_wall_ms, applies brown-out
  /// marking/tightening. Returns true when this admission tripped brown-out
  /// entry (caller emits the event after dropping the lock).
  bool admit_policies_locked(const std::shared_ptr<Job>& job,
                             std::size_t depth_after);
  /// Marks the job terminal, bumps the terminal counter, wakes waiters
  /// (caller must hold mutex_). Returns the lifecycle event to emit after
  /// the lock is released — or nullopt when the job was already terminal:
  /// finalize is idempotent, because the watchdog and an abandoned worker
  /// can both reach it for the same job.
  std::optional<obs::TraceEvent> finalize_locked(
      const std::shared_ptr<Job>& job, JobState state, Status status);
  void emit(const obs::TraceEvent& event);

  /// Exact cache identity: decision-relevant options rendered to text plus
  /// the canonical problem serialization. Hash buckets may collide (and
  /// net-order twins collide by design) — equality of this string is what
  /// certifies a hit bit-identical.
  static std::string cache_identity(const JobRequest& request);
  static bool cacheable(const JobRequest& request);

  std::shared_ptr<const RouteResult> cache_lookup(std::uint64_t hash,
                                                  const std::string& identity);
  void cache_insert(std::uint64_t hash, std::string identity,
                    std::shared_ptr<const RouteResult> result);

  ServiceOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers: queue/pause/stop changes
  std::condition_variable done_cv_;   ///< clients: job reached terminal state
  std::deque<std::shared_ptr<Job>> queue_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::uint64_t next_id_ = 1;
  bool paused_ = false;
  bool stopping_ = false;
  int running_jobs_ = 0;

  // Resilience state (guarded by mutex_ unless noted).
  std::uint64_t vnow_ = 0;          ///< virtual dequeue clock (backoff)
  bool brownout_ = false;           ///< currently shedding load
  int workers_alive_ = 0;
  std::vector<int> dead_worker_slots_;  ///< seats awaiting respawn
  std::vector<std::thread> zombies_;    ///< dead/abandoned threads; joined
                                        ///< at shutdown
  std::condition_variable supervisor_cv_;

  // ECO sessions (guarded by mutex_; layouts/problems are immutable shared
  // snapshots, so workers read them without the lock after admission).
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_session_ = 1;

  // Result cache: LRU list of slots, index from canonical hash to the slots
  // carrying it (several when identities collide under one hash).
  mutable std::mutex cache_mutex_;
  std::list<CacheSlot> cache_lru_;  ///< most recently used at front
  std::unordered_map<std::uint64_t, std::vector<std::list<CacheSlot>::iterator>>
      cache_index_;

  // Metrics (registry shared by workers and clients, guarded by its own
  // mutex — obs::MetricsRegistry itself is single-thread by contract).
  mutable std::mutex metrics_mutex_;
  obs::MetricsRegistry metrics_;

  std::vector<WorkerSlot> worker_slots_;  ///< sized once; seats never move
  std::thread supervisor_;
  /// Lifecycle-sink failsafe (absorbs a throwing ServiceOptions::trace).
  std::optional<fault::FailsafeSink> safe_trace_;
};

}  // namespace gridroute::service
