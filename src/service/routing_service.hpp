#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/api.hpp"
#include "core/delta.hpp"
#include "obs/budget.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "search/search_arena.hpp"
#include "util/status.hpp"

namespace gridroute::service {

/// Why admission declined a job (kJobRejected's `extra` payload, and the
/// reason named in the rejection Status).
enum class RejectReason : std::uint8_t {
  kQueueFull,    ///< the bounded queue was at max_queue_depth
  kPrescreen,    ///< the routability estimate called the job hopeless
  kShutdown,     ///< the service is shutting down
};

const char* reject_reason_name(RejectReason reason);

/// Configuration of a RoutingService. The defaults are a small
/// single-worker service with caching on and the pre-screen off — the
/// shape the examples and the C ABI default options mirror.
struct ServiceOptions {
  /// Worker threads executing jobs. 0 = one per hardware thread (at least
  /// 1). Each worker owns one SearchArena reused across every job it runs
  /// (epoch stamping makes the reuse bit-identical to fresh scratch).
  int workers = 1;
  /// Admission control: a submit that would push the queue past this depth
  /// is rejected (RejectReason::kQueueFull) instead of queued — bounded
  /// latency beats unbounded backlog. Running jobs do not count.
  int max_queue_depth = 64;
  /// Result-cache entries (LRU). 0 disables caching.
  int cache_capacity = 128;
  /// Admission pre-screen in the spirit of predict-before-route: estimate
  /// each job's demand/capacity utilization (estimated_utilization) and
  /// reject jobs above prescreen_max_utilization without burning a routing
  /// attempt. Off by default — an estimate this cheap has false alarms.
  bool prescreen = false;
  /// Utilization ceiling for the pre-screen. At the default 1.0 only
  /// provably infeasible jobs (wirelength lower bound exceeding routable
  /// capacity) are declined; production deployments tune it lower.
  double prescreen_max_utilization = 1.0;
  /// Construct the service paused: jobs queue (and are admission-checked)
  /// but no worker pops until resume(). Deterministic queue-state control
  /// for tests and drain-style operations.
  bool start_paused = false;
  /// Job lifecycle event sink (kJobSubmitted .. kJobCancelled; null = off).
  /// Must be thread-safe — every worker and every submitting client emits
  /// into it (all of obs/sinks.hpp qualifies).
  obs::TraceSink* trace = nullptr;
};

/// One job: everything route(RouteRequest) needs, with the problem owned
/// (shared) so the client may release its copy immediately after submit —
/// the lifetime discipline a long-lived service needs, in contrast to the
/// borrowed `const Problem*` of the library-level RouteRequest.
struct JobRequest {
  std::shared_ptr<const Problem> problem;  ///< required
  RouterOptions options;
  /// Per-job deadline/ceiling. The service adds its own cancellation token
  /// on top (RunBudget::cancel), so cancel() stops a running job at the
  /// next budget checkpoint with a verifiable partial result.
  obs::RunBudget budget;
  int extra_attempts = 0;   ///< multi-start restarts (see RouteRequest)
  int improve_passes = 0;   ///< clean-up passes (see RouteRequest)
  /// Opt out of the result cache for this job (both lookup and insert).
  bool use_cache = true;
  /// Optional per-job routing-event sink (the library's net/search/etc.
  /// events, not the service lifecycle stream). Must be thread-safe.
  obs::TraceSink* trace = nullptr;
};

/// Lifecycle of a job. kRejected never enters the queue; kCancelled covers
/// both a queued job that never ran and a running job stopped mid-flight
/// (the latter carries a verifiable partial result).
enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kCompleted,
  kRejected,
  kCancelled,
};

const char* job_state_name(JobState state);

/// What an ECO delta job decided, alongside its RouteResult: the
/// invalidation partition route_delta committed to (see core/delta.hpp).
struct DeltaOutcome {
  Rect dirty_box{{0, 0}, {-1, -1}};
  std::vector<NetId> preserved;  ///< replayed byte-identical from the base
  std::vector<NetId> rerouted;   ///< ripped and re-routed
  bool prescreen_rejected = false;
};

/// Terminal report for one job, returned by wait() (which consumes the
/// job's service-side record) or peeked by try_outcome().
struct JobOutcome {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  /// Ok for completed jobs (including degraded-but-served results — those
  /// carry their own RouteResult::status); kCancelled for cancellations.
  Status status;
  /// The routing result. Null when the job never ran (cancelled while
  /// queued). Shared: a cache-served outcome aliases the cached entry.
  std::shared_ptr<const RouteResult> result;
  /// The problem the job routed — returned so consumers that released their
  /// own copy after submit (the intended lifetime pattern, and what the C
  /// ABI does) can still serialize/verify the solution against it.
  std::shared_ptr<const Problem> problem;
  bool from_cache = false;
  double queue_wait_ms = 0;  ///< admission -> start (0 when never started)
  /// Delta jobs only: the invalidation partition (null on whole-problem
  /// jobs). `problem` is then the *edited* problem the result answers to.
  std::shared_ptr<const DeltaOutcome> delta;
};

/// Handle returned by open_session(): the session id plus the id of the
/// base routing job admitted with it. The session holds no layout until
/// that job completes cleanly.
struct SessionTicket {
  std::uint64_t session = 0;
  std::uint64_t base_job = 0;
};

/// One ECO delta against a session's committed layout. No use_cache knob:
/// delta jobs never touch the whole-problem result cache — their identity
/// depends on the session's committed layout, which the cache key does not
/// (and must not) capture.
struct DeltaJobRequest {
  ProblemEdit edit;
  RouterOptions options;
  obs::RunBudget budget;  ///< service adds its cancel token, as for submit()
  int extra_attempts = 0;
  int improve_passes = 0;
  /// Run the routability pre-screen on the edited problem and reject
  /// provably-infeasible edits without a routing attempt (route_delta's
  /// kPrescreen degradation; the session layout is left untouched).
  bool prescreen = true;
  obs::TraceSink* trace = nullptr;  ///< per-job routing-event sink
};

/// Snapshot of one session's committed state (session_info()).
struct SessionInfo {
  std::uint64_t id = 0;
  bool busy = false;           ///< a base or delta job is in flight
  int committed_deltas = 0;    ///< deltas whose result replaced the layout
  std::shared_ptr<const Problem> problem;      ///< current committed problem
  std::shared_ptr<const RouteResult> layout;   ///< null until the base lands
};

/// Counter snapshot of a service's lifetime (see RoutingService::stats;
/// assembled from the service's obs::MetricsRegistry).
struct ServiceStats {
  long long submitted = 0;
  long long admitted = 0;
  long long rejected_queue_full = 0;
  long long rejected_prescreen = 0;
  long long started = 0;
  long long cache_hits = 0;
  long long completed = 0;
  long long cancelled = 0;
  long long queue_depth = 0;       ///< current
  long long peak_queue_depth = 0;
  double total_queue_wait_ms = 0;  ///< summed over started jobs
  // Incremental/ECO sessions.
  long long sessions_opened = 0;
  long long deltas_submitted = 0;
  long long deltas_committed = 0;  ///< deltas that advanced a session layout
};

/// Cheap routability estimate used by the admission pre-screen: the sum of
/// every net's half-perimeter wirelength lower bound (pins + pre-wire
/// bounding box) divided by the region's routable node count. A value
/// above 1.0 proves the job infeasible — the wire demanded cannot fit —
/// and values approaching 1.0 predict heavy modification effort. O(pins)
/// after one O(cells) capacity scan; never routes anything.
double estimated_utilization(const Problem& problem);

/// A long-lived serving front-end over route(RouteRequest): the library
/// becomes a system — a bounded job queue with admission control, a
/// persistent worker pool reusing per-worker search arenas, an LRU result
/// cache keyed by Problem::canonical_hash(), per-job deadlines and
/// cancellation riding obs::RunBudget, and a job lifecycle event/metrics
/// stream through src/obs (DESIGN.md §2.2).
///
/// Determinism contract: for any admitted job, the RouteResult delivered —
/// fresh, or served from the cache — is bit-identical (layout, failed,
/// decision stats, degradation) to a direct route(RouteRequest) call with
/// the same problem and options. The cache guarantees this by confirming
/// exact problem/options identity on every hash hit; wall-clock fields are
/// the only exception (a cached result reports the original run's times).
///
/// Thread-safe throughout: any number of client threads may submit, wait,
/// and cancel concurrently with the workers.
class RoutingService {
 public:
  explicit RoutingService(ServiceOptions options = {});
  /// Shuts down: stops admissions, cancels queued jobs, lets running jobs
  /// finish, joins the workers.
  ~RoutingService();

  RoutingService(const RoutingService&) = delete;
  RoutingService& operator=(const RoutingService&) = delete;

  /// Admission: validates the request shape, applies the queue-depth bound
  /// and (when enabled) the routability pre-screen, and either enqueues the
  /// job — returning its id — or rejects it with a Status naming the
  /// RejectReason (ErrorCode::kResource; kCancelled when shutting down).
  /// A null problem is ErrorCode::kValidation.
  StatusOr<std::uint64_t> submit(JobRequest request);

  // -- Incremental/ECO sessions (DESIGN.md §2.4) ---------------------------

  /// Opens a session and admits its base routing job in one step (same
  /// admission rules as submit(); on rejection no session is created).
  /// When the base job completes cleanly its result becomes the session's
  /// committed layout; until then — and after a failed or cancelled base —
  /// submit_delta() reports the session as having no base.
  StatusOr<SessionTicket> open_session(JobRequest base);

  /// Admits one delta against the session's committed layout. At most one
  /// job per session may be in flight (ErrorCode::kResource "busy"
  /// otherwise); an unknown session or one without a committed base is
  /// ErrorCode::kValidation. The job routes base-problem + edit with the
  /// committed layout as warm start; if it completes cleanly, the edited
  /// problem and new layout atomically replace the session's committed
  /// state — a cancelled, rejected, pre-screened or invalid delta leaves
  /// the session exactly as it was. Results are never served from (or
  /// inserted into) the whole-problem cache.
  StatusOr<std::uint64_t> submit_delta(std::uint64_t session,
                                       DeltaJobRequest request);

  /// Closes a session, dropping its committed state. False when the
  /// session is unknown or still has a job in flight (wait for it first).
  bool close_session(std::uint64_t session);

  /// Snapshot of a session's committed state; nullopt for unknown ids.
  std::optional<SessionInfo> session_info(std::uint64_t session) const;

  /// Blocks until the job reaches a terminal state and returns its outcome,
  /// consuming the service-side record (a second wait on the same id is
  /// ErrorCode::kValidation "unknown job").
  StatusOr<JobOutcome> wait(std::uint64_t id);

  /// Non-blocking peek: the outcome if the job is terminal, std::nullopt if
  /// still queued/running or unknown. Never consumes the record.
  std::optional<JobOutcome> try_outcome(std::uint64_t id) const;

  /// Cancels a job. Queued: it is finalized as kCancelled without running.
  /// Running: the job's budget-riding cancel token is raised and the worker
  /// finalizes it as kCancelled with the partial result at the next budget
  /// checkpoint. Terminal/unknown: returns false.
  bool cancel(std::uint64_t id);

  /// Pauses/resumes the workers (queued jobs hold; admission continues).
  void pause();
  void resume();

  /// Stops admissions, cancels every queued job, waits for running jobs,
  /// joins the workers. Idempotent; the destructor calls it.
  void shutdown();

  ServiceStats stats() const;
  /// Full registry export (counters + queue-wait/run-time histograms).
  obs::MetricsSnapshot metrics() const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct Job;
  struct CacheSlot;
  struct Session;

  void worker_loop(SearchArena* arena);
  /// Executes one job on a worker: cache lookup, route(), cache insert,
  /// finalization. `arena` is the worker's persistent search scratch.
  void execute(const std::shared_ptr<Job>& job, SearchArena* arena);
  /// Delta-job arm of execute(): route_delta against the session snapshot
  /// taken at admission; no cache on either side.
  void execute_delta(const std::shared_ptr<Job>& job, SearchArena* arena);
  /// Shared admission path of submit()/open_session(): when `open_session`
  /// is set, the session is created atomically with the enqueue (so the
  /// base job can never finalize against a missing session) and its id is
  /// stored through `session_out`.
  StatusOr<std::uint64_t> submit_impl(JobRequest request, bool open_session,
                                      std::uint64_t* session_out);
  /// Marks the job terminal, bumps the terminal counter, wakes waiters
  /// (caller must hold mutex_). Returns the lifecycle event to emit after
  /// the lock is released.
  obs::TraceEvent finalize_locked(const std::shared_ptr<Job>& job,
                                  JobState state, Status status);
  void emit(const obs::TraceEvent& event);

  /// Exact cache identity: decision-relevant options rendered to text plus
  /// the canonical problem serialization. Hash buckets may collide (and
  /// net-order twins collide by design) — equality of this string is what
  /// certifies a hit bit-identical.
  static std::string cache_identity(const JobRequest& request);
  static bool cacheable(const JobRequest& request);

  std::shared_ptr<const RouteResult> cache_lookup(std::uint64_t hash,
                                                  const std::string& identity);
  void cache_insert(std::uint64_t hash, std::string identity,
                    std::shared_ptr<const RouteResult> result);

  ServiceOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers: queue/pause/stop changes
  std::condition_variable done_cv_;   ///< clients: job reached terminal state
  std::deque<std::shared_ptr<Job>> queue_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::uint64_t next_id_ = 1;
  bool paused_ = false;
  bool stopping_ = false;
  int running_jobs_ = 0;

  // ECO sessions (guarded by mutex_; layouts/problems are immutable shared
  // snapshots, so workers read them without the lock after admission).
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_session_ = 1;

  // Result cache: LRU list of slots, index from canonical hash to the slots
  // carrying it (several when identities collide under one hash).
  mutable std::mutex cache_mutex_;
  std::list<CacheSlot> cache_lru_;  ///< most recently used at front
  std::unordered_map<std::uint64_t, std::vector<std::list<CacheSlot>::iterator>>
      cache_index_;

  // Metrics (registry shared by workers and clients, guarded by its own
  // mutex — obs::MetricsRegistry itself is single-thread by contract).
  mutable std::mutex metrics_mutex_;
  obs::MetricsRegistry metrics_;

  std::vector<std::thread> workers_;
};

}  // namespace gridroute::service
