/* gridroute_c.h — stable C ABI over the gridroute serving layer.
 *
 * This header is plain C (C89 declarations, C99 fixed-width ints): no C++
 * type crosses the boundary. Clients parse problems, stand up a
 * RoutingService, submit jobs, wait for results, and read results back
 * through opaque handles and the accessor functions below.
 *
 * Contract (DESIGN.md §2.2):
 *   - Every handle returned by a gr_*_create / gr_*_parse / gr_*_wait call
 *     is owned by the caller and released with the matching gr_*_free.
 *     Handles are not thread-safe individually, but a gr_service handle may
 *     be shared across client threads (submit/wait/cancel are internally
 *     synchronized).
 *   - Functions returning gr_status never throw across the boundary; any
 *     internal C++ exception is caught and mapped to GR_STATUS_INTERNAL.
 *   - gr_last_error() returns the calling thread's last failure message
 *     (empty string when the last call on this thread succeeded). The
 *     pointer is valid until the thread's next gridroute call.
 *   - Status codes mirror the C++ ErrorCode taxonomy one-to-one and are
 *     append-only, as are these structs and prototypes.
 *   - Misuse hardening: every handle-taking function validates the handle
 *     against a registry of live handles first. A NULL, never-created, or
 *     already-freed handle returns GR_STATUS_VALIDATION (or a safe default
 *     for accessors) with gr_last_error() naming the misuse, instead of
 *     crashing; a double free is a detected no-op. The registry detects
 *     sequential misuse — it does not make racing a free against a use on
 *     another thread safe.
 */
#ifndef GRIDROUTE_SERVICE_GRIDROUTE_C_H_
#define GRIDROUTE_SERVICE_GRIDROUTE_C_H_

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* ErrorCode (src/util/status.hpp), value for value. */
typedef enum gr_status {
  GR_STATUS_OK = 0,
  GR_STATUS_PARSE = 1,
  GR_STATUS_VALIDATION = 2,
  GR_STATUS_RESOURCE = 3,
  GR_STATUS_CANCELLED = 4,
  GR_STATUS_INTERNAL = 5
} gr_status;

/* service::JobState, value for value. GR_JOB_FAILED is the supervision
 * layer's typed terminal state: the job was quarantined after exhausting
 * retries, or the watchdog replaced a worker that ignored its deadline. */
typedef enum gr_job_state {
  GR_JOB_QUEUED = 0,
  GR_JOB_RUNNING = 1,
  GR_JOB_COMPLETED = 2,
  GR_JOB_REJECTED = 3,
  GR_JOB_CANCELLED = 4,
  GR_JOB_FAILED = 5
} gr_job_state;

typedef struct gr_problem gr_problem;  /* a parsed routing problem */
typedef struct gr_service gr_service;  /* a running RoutingService */
typedef struct gr_result gr_result;    /* one job's terminal outcome */

/* Stable short name ("ok", "parse", ...) for a status code. */
const char* gr_status_name(gr_status status);

/* Calling thread's last failure message; "" when the last call succeeded.
 * Valid until this thread's next gridroute call. */
const char* gr_last_error(void);

/* ---- Problems ----------------------------------------------------------- */

/* Parses the text problem format (io/text_format). On success stores a new
 * handle in *out. On failure *out is NULL and the return names the error
 * (GR_STATUS_PARSE for malformed text). */
gr_status gr_problem_parse(const char* text, gr_problem** out);
void gr_problem_free(gr_problem* problem);

int gr_problem_net_count(const gr_problem* problem);
/* Problem::canonical_hash(): net-declaration-order invariant, round-trip
 * stable, sensitive to any geometric change. */
uint64_t gr_problem_canonical_hash(const gr_problem* problem);

/* ---- Service ------------------------------------------------------------ */

/* service::ServiceOptions, flattened. Always initialize with
 * gr_service_options_init before overriding fields — new fields keep their
 * defaults in old client code that way. */
typedef struct gr_service_options {
  int workers;                       /* 0 = one per hardware thread */
  int max_queue_depth;               /* admission bound */
  int cache_capacity;                /* LRU entries; 0 disables caching */
  int prescreen;                     /* nonzero enables the routability gate */
  double prescreen_max_utilization;  /* admission ceiling when enabled */
} gr_service_options;

void gr_service_options_init(gr_service_options* options);

/* Per-job knobs (JobRequest minus the problem). Initialize with
 * gr_job_options_init. Router options ride the library defaults; the
 * C surface deliberately exposes only the serving-level knobs. */
typedef struct gr_job_options {
  double wall_ms;            /* wall-clock budget; <= 0 = unlimited */
  int64_t max_expansions;    /* search-pop budget; <= 0 = unlimited */
  int extra_attempts;        /* multi-start restarts beyond the base run */
  int improve_passes;        /* clean-up passes after each attempt */
  int use_cache;             /* nonzero = result cache eligible */
} gr_job_options;

void gr_job_options_init(gr_job_options* options);

gr_status gr_service_create(const gr_service_options* options,
                            gr_service** out);
/* Shuts the service down (cancelling queued jobs, finishing running ones)
 * and releases it. */
void gr_service_free(gr_service* service);

/* Submits a copy of the problem; the caller may free it immediately after.
 * On success stores the job id in *out_job_id. Admission rejections return
 * GR_STATUS_RESOURCE (queue full / pre-screen) with gr_last_error() naming
 * the reason. */
gr_status gr_service_submit(gr_service* service, const gr_problem* problem,
                            const gr_job_options* options,
                            uint64_t* out_job_id);

/* Blocks until the job is terminal; stores its outcome in *out. Consumes
 * the service-side record: a second wait on the same id fails with
 * GR_STATUS_VALIDATION. A cancelled job still returns GR_STATUS_OK here —
 * the cancellation lives in the result's state. */
gr_status gr_service_wait(gr_service* service, uint64_t job_id,
                          gr_result** out);

/* Nonzero when the cancel took effect (queued job dequeued, or running
 * job's token raised); 0 for unknown/terminal jobs. */
int gr_service_cancel(gr_service* service, uint64_t job_id);

/* service::ServiceHealth, flattened (append-only like every struct here):
 * the resilience snapshot an operator polls — pool integrity, queue
 * pressure, supervision activity, brown-out state. */
typedef struct gr_health {
  int32_t workers_alive;          /* threads currently serving the queue */
  int32_t brownout_active;        /* nonzero while shedding load */
  int64_t workers_respawned;      /* supervisor replacements after deaths */
  int64_t workers_abandoned;      /* watchdog replacements (stuck workers) */
  int64_t queue_depth;
  int64_t running_jobs;
  int64_t jobs_retried;
  int64_t jobs_quarantined;
  int64_t brownouts_entered;      /* lifetime brown-out episodes */
  int64_t watchdog_cancels;
  int64_t cache_insert_failures;
} gr_health;

/* Snapshot of the service's health into *out. */
gr_status gr_service_health(const gr_service* service, gr_health* out);

/* ---- Results ------------------------------------------------------------ */

gr_job_state gr_result_state(const gr_result* result);
int gr_result_from_cache(const gr_result* result);
double gr_result_queue_wait_ms(const gr_result* result);
/* Nonzero when the job carries a routed grid (completed, or cancelled
 * mid-run with a partial result). */
int gr_result_has_solution(const gr_result* result);
/* Multi-pin nets left unrouted; -1 when there is no solution at all. */
int gr_result_failed_net_count(const gr_result* result);
/* The solution in the text solution format (io/solution_format), as a
 * NUL-terminated string owned by the caller (release with gr_string_free).
 * NULL when the job has no solution. */
char* gr_result_solution_string(const gr_result* result);
void gr_result_free(gr_result* result);

void gr_string_free(char* text);

#ifdef __cplusplus
}  /* extern "C" */
#endif

#endif  /* GRIDROUTE_SERVICE_GRIDROUTE_C_H_ */
