#pragma once

#include <cstdint>

namespace gridroute {

/// Deterministic, seedable pseudo-random generator (xoshiro256** with a
/// SplitMix64 seeding stage). Every stochastic component of the library
/// (benchmark generators, property tests) draws from this type so results
/// are reproducible across platforms; std::mt19937 distributions are not
/// portable across standard-library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the four state words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Full-width uniform draw.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int next_int(int lo, int hi) {
    return lo + static_cast<int>(next_below(
                    static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p of returning true.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Mixes two seeds into one well-distributed value (SplitMix64 finalizer).
/// Used to derive per-attempt seeds in multi-start routing: mixing instead
/// of adding keeps restart seeds distinct from each other *and* from any
/// caller-chosen base seed (seed+index schemes collide whenever the caller
/// picks a small seed).
inline std::uint64_t mix_seeds(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace gridroute
