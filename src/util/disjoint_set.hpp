#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace gridroute {

/// Union-find with path halving and union by size. Used by the verifier to
/// prove net connectivity and by the maze substrate to build net spanning
/// trees.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n = 0) { reset(n); }

  void reset(std::size_t n) {
    parent_.resize(n);
    std::iota(parent_.begin(), parent_.end(), 0);
    size_.assign(n, 1);
    component_count_ = n;
  }

  std::size_t size() const { return parent_.size(); }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets containing a and b; returns true if they were distinct.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --component_count_;
    return true;
  }

  bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }

  /// Number of elements in the set containing x.
  std::size_t component_size(std::size_t x) { return size_[find(x)]; }

  /// Total number of disjoint components.
  std::size_t component_count() const { return component_count_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t component_count_ = 0;
};

}  // namespace gridroute
