#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace gridroute {

/// The library's error taxonomy. Every failure a caller can meaningfully
/// react to maps onto one of these stable codes; the code is the contract,
/// the message is for humans. DESIGN.md §2.1f documents which layers throw
/// (StatusError) and which return (Status / StatusOr).
///
///   kParse       malformed input text (problem / channel / solution files)
///   kValidation  structurally broken problem (pins off-region, colliding
///                pins, conflicting pre-wire, duplicate net names)
///   kResource    a resource limit refused the work (absurd region dims,
///                simulated or real allocation failure)
///   kCancelled   the run was stopped before finishing (budget exhaustion
///                surfaces through RouteResult, not through this code;
///                kCancelled is for externally aborted work)
///   kInternal    an invariant the library promised was broken — a bug
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kParse,
  kValidation,
  kResource,
  kCancelled,
  kInternal,
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kValidation: return "validation";
    case ErrorCode::kResource: return "resource";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// Where in an input an error was found. `source` is the stream's name
/// (file path, or a synthetic name like "<string>"); line and column are
/// 1-based, 0 meaning unknown. Parsers always supply line; column is given
/// when the offending token's position is unambiguous.
struct SourceContext {
  std::string source;
  int line = 0;
  int column = 0;

  bool known() const { return !source.empty() || line > 0; }

  /// "name: line 3, column 7" with unknown parts omitted; empty when
  /// nothing is known.
  std::string to_string() const {
    std::string out;
    if (!source.empty()) out += source;
    if (line > 0) {
      if (!out.empty()) out += ": ";
      out += "line " + std::to_string(line);
      if (column > 0) out += ", column " + std::to_string(column);
    }
    return out;
  }

  friend bool operator==(const SourceContext&, const SourceContext&) = default;
};

/// One typed outcome: ok, or an ErrorCode with a message and (optionally)
/// the source location it was found at. Default-constructed Status is ok.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message, SourceContext where = {})
      : code_(code), message_(std::move(message)), where_(std::move(where)) {}

  static Status parse_error(std::string message, SourceContext where = {}) {
    return {ErrorCode::kParse, std::move(message), std::move(where)};
  }
  static Status validation_error(std::string message,
                                 SourceContext where = {}) {
    return {ErrorCode::kValidation, std::move(message), std::move(where)};
  }
  static Status resource_error(std::string message, SourceContext where = {}) {
    return {ErrorCode::kResource, std::move(message), std::move(where)};
  }
  static Status cancelled(std::string message) {
    return {ErrorCode::kCancelled, std::move(message)};
  }
  static Status internal_error(std::string message) {
    return {ErrorCode::kInternal, std::move(message)};
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }
  const SourceContext& where() const { return where_; }

  /// "src.grid: line 3, column 7: bad integer 'x'" — the location prefix is
  /// omitted when unknown, so a bare Status prints just its message.
  std::string to_string() const {
    if (ok()) return "ok";
    const std::string at = where_.to_string();
    return at.empty() ? message_ : at + ": " + message_;
  }

  friend bool operator==(const Status&, const Status&) = default;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
  SourceContext where_;
};

/// Exception carrier for a Status — thrown by the throwing entry points
/// (the parsers), caught and unwrapped by the try_* / StatusOr ones.
/// Derives from std::runtime_error so call sites written against the
/// historical bare-runtime_error contract keep working; what() is
/// Status::to_string() (and therefore still contains "line N").
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  const Status& status() const { return status_; }
  ErrorCode code() const { return status_.code(); }

 private:
  Status status_;
};

/// A value or the Status explaining why there is none.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok())
      status_ = Status::internal_error(
          "StatusOr constructed from an ok Status without a value");
  }

  bool ok() const { return value_.has_value(); }
  /// Ok when a value is present; the carried error otherwise.
  const Status& status() const { return status_; }

  /// The value; throws StatusError when there is none.
  const T& value() const& {
    if (!ok()) throw StatusError(status_);
    return *value_;
  }
  T& value() & {
    if (!ok()) throw StatusError(status_);
    return *value_;
  }
  T&& value() && {
    if (!ok()) throw StatusError(status_);
    return *std::move(value_);
  }

  /// Unchecked access (call only after ok()).
  const T& operator*() const { return *value_; }
  T& operator*() { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;  // ok iff value_ present
  std::optional<T> value_;
};

}  // namespace gridroute
