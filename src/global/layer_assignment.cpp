#include "global/layer_assignment.hpp"

#include <algorithm>
#include <climits>
#include <map>
#include <sstream>

namespace gridroute {

namespace {

/// True when the (normalized, a < b) edge runs horizontally.
bool edge_horizontal(const GlobalEdge& e) { return e.b.x == e.a.x + 1; }

/// One maximal collinear run: indices into the route's edge list, all on
/// the same row (horizontal) or column (vertical) and contiguous.
struct Run {
  std::vector<std::size_t> edges;
  bool horizontal = false;
};

/// Splits the route into maximal collinear runs. Edges are grouped by
/// their row/column and sorted along it; a gap (or a different row/column)
/// starts a new run. Deterministic for any edge order in the input.
std::vector<Run> collinear_runs(const GlobalRoute& route) {
  // Key: (horizontal, row-or-column); value: (position along the run,
  // edge index), where position is the lower endpoint's coordinate.
  std::map<std::pair<bool, int>, std::vector<std::pair<int, std::size_t>>>
      lanes;
  for (std::size_t i = 0; i < route.edges.size(); ++i) {
    const GlobalEdge& e = route.edges[i];
    const bool h = edge_horizontal(e);
    lanes[{h, h ? e.a.y : e.a.x}].push_back({h ? e.a.x : e.a.y, i});
  }
  std::vector<Run> runs;
  for (auto& [key, lane] : lanes) {
    std::sort(lane.begin(), lane.end());
    Run run;
    run.horizontal = key.first;
    int prev = INT_MIN;
    for (const auto& [pos, idx] : lane) {
      if (prev != INT_MIN && pos != prev + 1) {
        runs.push_back(std::move(run));
        run = Run{{}, key.first};
      }
      run.edges.push_back(idx);
      prev = pos;
    }
    if (!run.edges.empty()) runs.push_back(std::move(run));
  }
  return runs;
}

/// Least-used layer among the candidates (ties toward the lowest index);
/// kMaxLayers-sized sentinel when `candidates` is empty.
int pick_least_used(const std::vector<int>& candidates,
                    const LayerUsage& usage) {
  int best = -1;
  for (const int k : candidates)
    if (best < 0 || usage[static_cast<std::size_t>(k)] <
                        usage[static_cast<std::size_t>(best)])
      best = k;
  return best;
}

}  // namespace

LayerAssignment assign_layers(const GlobalRoute& route,
                              const LayerStack& stack, LayerUsage* usage) {
  LayerUsage local(static_cast<std::size_t>(stack.count()), 0);
  LayerUsage& load = usage != nullptr ? *usage : local;

  LayerAssignment out;
  out.edge_layers.assign(route.edges.size(), layer_at(0));

  // Candidate sets are fixed per axis: direction-compatible layers first,
  // else any non-directed layer (wrong-way wire is legal there, merely
  // expensive), else the whole stack as a last resort.
  auto candidates_for = [&](bool horizontal) {
    std::vector<int> compatible, undirected, all;
    for (int k = 0; k < stack.count(); ++k) {
      all.push_back(k);
      if (stack.horizontal(layer_at(k)) == horizontal) compatible.push_back(k);
      if (!stack.directed(layer_at(k))) undirected.push_back(k);
    }
    if (!compatible.empty()) return compatible;
    if (!undirected.empty()) return undirected;
    return all;
  };
  const std::vector<int> h_candidates = candidates_for(true);
  const std::vector<int> v_candidates = candidates_for(false);

  for (const Run& run : collinear_runs(route)) {
    const int k = pick_least_used(run.horizontal ? h_candidates : v_candidates,
                                  load);
    for (const std::size_t idx : run.edges)
      out.edge_layers[idx] = layer_at(k);
    load[static_cast<std::size_t>(k)] +=
        static_cast<long long>(run.edges.size());
  }

  // Via demand: at every gcell the route touches, the incident edges'
  // layers must be joined by a via stack spanning their range.
  std::map<Point, std::pair<int, int>> span;  // node -> (min, max layer)
  for (std::size_t i = 0; i < route.edges.size(); ++i) {
    const int k = layer_index(out.edge_layers[i]);
    for (const Point p : {route.edges[i].a, route.edges[i].b}) {
      auto [it, inserted] = span.emplace(p, std::pair{k, k});
      if (!inserted) {
        it->second.first = std::min(it->second.first, k);
        it->second.second = std::max(it->second.second, k);
      }
    }
  }
  for (const auto& [p, mm] : span) out.via_count += mm.second - mm.first;
  return out;
}

std::vector<LayerAssignment> assign_layers(
    const std::vector<GlobalRoute>& routes, const LayerStack& stack) {
  LayerUsage usage(static_cast<std::size_t>(stack.count()), 0);
  std::vector<LayerAssignment> out;
  out.reserve(routes.size());
  for (const GlobalRoute& route : routes)
    out.push_back(assign_layers(route, stack, &usage));
  return out;
}

std::vector<std::string> verify_layer_assignment(
    const GlobalRoute& route, const LayerStack& stack,
    const LayerAssignment& assignment) {
  std::vector<std::string> violations;
  std::ostringstream msg;
  auto flag = [&]() {
    violations.push_back(msg.str());
    msg.str({});
  };

  if (assignment.edge_layers.size() != route.edges.size()) {
    msg << "assignment covers " << assignment.edge_layers.size()
        << " edges, route has " << route.edges.size();
    flag();
    return violations;
  }
  for (std::size_t i = 0; i < route.edges.size(); ++i) {
    const Layer l = assignment.edge_layers[i];
    if (!stack.valid_layer(l)) {
      msg << "edge " << i << " assigned to layer index "
          << static_cast<int>(layer_index(l)) << " outside the stack";
      flag();
      continue;
    }
    const bool h = edge_horizontal(route.edges[i]);
    if (stack.directed(l) && stack.horizontal(l) != h) {
      msg << "edge " << route.edges[i].a << "-" << route.edges[i].b
          << " runs " << (h ? "horizontally" : "vertically")
          << " on directed layer " << l;
      flag();
    }
  }

  std::map<Point, std::pair<int, int>> span;
  for (std::size_t i = 0; i < route.edges.size(); ++i) {
    const int k = layer_index(assignment.edge_layers[i]);
    for (const Point p : {route.edges[i].a, route.edges[i].b}) {
      auto [it, inserted] = span.emplace(p, std::pair{k, k});
      if (!inserted) {
        it->second.first = std::min(it->second.first, k);
        it->second.second = std::max(it->second.second, k);
      }
    }
  }
  int vias = 0;
  for (const auto& [p, mm] : span) vias += mm.second - mm.first;
  if (vias != assignment.via_count) {
    msg << "via_count " << assignment.via_count
        << " does not match the per-node layer span (" << vias << ")";
    flag();
  }
  return violations;
}

}  // namespace gridroute
