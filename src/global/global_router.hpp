#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "global/global_grid.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "search/bucket_queue.hpp"
#include "search/future_cost.hpp"
#include "search/search_arena.hpp"

namespace gridroute {

/// Gcell-to-gcell edge of a routed global tree, endpoints normalized so
/// a < b in scan order.
struct GlobalEdge {
  Point a;
  Point b;

  friend auto operator<=>(const GlobalEdge&, const GlobalEdge&) = default;
};

/// One net's global route: a set of gcell edges forming a tree (or forest
/// fragment when routing failed) over the net's terminals.
struct GlobalRoute {
  std::vector<GlobalEdge> edges;
  bool routed = false;

  int wirelength() const { return static_cast<int>(edges.size()); }
};

struct GlobalRouterOptions {
  /// Negotiation iterations: after the first pass, nets through overflowed
  /// edges are ripped and re-routed with those edges' history charged.
  int max_iterations = 12;
  /// Cost of entering an edge already at or over capacity, per unit of
  /// overflow it would cause.
  int overflow_penalty = 16;
  /// History increment per overflowed edge per iteration (PathFinder-style
  /// pressure that accumulates until someone moves).
  int history_increment = 4;
  /// Structured event sink (see obs/trace.hpp): net lifecycle plus the
  /// kernel's per-query kSearchQuery / kEpochWrap events, the same taxonomy
  /// the detailed router emits. Null = tracing off (inlined null check).
  obs::TraceSink* trace = nullptr;
};

struct GlobalStats {
  int iterations = 0;
  int overflow = 0;        ///< final total overflow (0 = legal routing)
  int wirelength = 0;      ///< total gcell edges used
  int nets_routed = 0;
  int nets_failed = 0;     ///< terminals unreachable (blocked pockets)
  int reroutes = 0;        ///< nets ripped during negotiation
  /// Search-kernel expansions (gcell pops) across all terminal connections —
  /// the same work measure RouteStats::expansions reports for the detailed
  /// router.
  long long expansions = 0;
};

struct GlobalResult {
  std::vector<GlobalRoute> routes;  ///< parallel to the input net list
  GlobalStats stats;

  bool legal() const { return stats.overflow == 0 && stats.nets_failed == 0; }
};

/// Congestion-negotiating global router over a GlobalGrid: the coarse-level
/// mirror of the detailed router's rip-up strategy. Each net is routed as a
/// Steiner tree by repeated terminal-to-tree Dijkstra over the gcell graph;
/// edge costs combine base length, an overflow penalty, and accumulated
/// history, so iterating rip-up-and-reroute drains congestion hotspots.
class GlobalRouter {
 public:
  GlobalRouter(GlobalGrid grid, std::vector<GlobalNet> nets,
               GlobalRouterOptions options = {});

  GlobalResult run();

  const GlobalGrid& grid() const { return grid_; }
  /// The underlying metrics registry (GlobalStats::expansions is a snapshot
  /// of its "expansions" counter), exportable via obs::write_text/json.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Cost of pushing one more wire over the edge (a, b) under the current
  /// usage and negotiation history; -1 = hard blockage. Public because it
  /// is a pure query (the search kernel's cost provider reads it) and a
  /// useful diagnostic.
  int edge_cost(Point a, Point b) const;

  /// The congestion map exported as a lower-bound grid (DESIGN.md §2.1g):
  /// per grid cut, the minimum edge_cost over the cut under the *current*
  /// usage and history. Prefix-summed, so bound(point, box) is an O(1)
  /// admissible + consistent future cost for the gcell search — every path
  /// to the box crosses each intervening cut at least once, at no less
  /// than that cut's cheapest edge. Rebuilt before each terminal-to-tree
  /// search (usage moves between them); also a useful congestion
  /// diagnostic in its own right.
  search::CutLowerBounds congestion_lower_bounds() const;

 private:
  /// Routes one net as a tree, updating usage. Returns false when some
  /// terminal is unreachable.
  bool route_net(std::size_t index);
  void rip_net(std::size_t index);

  GlobalGrid grid_;
  std::vector<GlobalNet> nets_;
  GlobalRouterOptions options_;
  std::vector<GlobalRoute> routes_;
  std::map<GlobalEdge, int> edge_history_;  ///< negotiation pressure
  GlobalStats stats_;
  // Search scratch reused across every terminal connection of every net —
  // the epoch-stamped arena replaces the per-search O(gcells) dist refill
  // the router used before it sat on the shared kernel.
  SearchArena arena_;
  BucketQueue<TieOrder::kByValue> queue_;
  obs::MetricsRegistry metrics_;
  obs::Counter& c_expansions_ = metrics_.counter("expansions");
  obs::Trace trace_;
};

/// Independent audit of a global routing: per-net tree connectivity over
/// terminals, usage consistency, and overflow recomputation. Returns
/// human-readable violations (empty = consistent).
std::vector<std::string> verify_global(const GlobalGrid& grid,
                                       const std::vector<GlobalNet>& nets,
                                       const std::vector<GlobalRoute>& routes);

}  // namespace gridroute
