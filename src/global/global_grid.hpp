#pragma once

#include <string>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace gridroute {

/// Coarse routing fabric for macro-cell designs: the chip is tiled into
/// gcells; wires cross between adjacent gcells over boundary *edges* with
/// finite capacity (the number of routing tracks the boundary offers).
/// Macro blocks consume gcells outright. This is the substrate a
/// macro-cell flow routes over before any detailed router sees a channel.
class GlobalGrid {
 public:
  /// cols x rows gcells; every horizontal boundary starts with capacity
  /// h_capacity, every vertical boundary with v_capacity.
  GlobalGrid(int cols, int rows, int h_capacity, int v_capacity);

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  bool in_bounds(Point g) const {
    return g.x >= 0 && g.x < cols_ && g.y >= 0 && g.y < rows_;
  }

  /// Marks every gcell in the rectangle as a macro block: all its boundary
  /// edges drop to capacity zero.
  void block(const Rect& gcells);
  bool blocked(Point g) const;

  /// Capacity / current usage of the edge between two *adjacent* gcells.
  /// Queries for non-adjacent or out-of-bounds pairs return 0 capacity.
  int capacity(Point a, Point b) const;
  int usage(Point a, Point b) const;
  void set_capacity(Point a, Point b, int capacity);

  /// Adds (or removes, delta = -1) one wire crossing the edge.
  void add_usage(Point a, Point b, int delta);

  /// usage - capacity, clamped at 0: the congestion overflow of one edge.
  int overflow(Point a, Point b) const;
  /// Sum of overflow over all edges — the global-routing quality metric.
  int total_overflow() const;
  /// Sum of usage over all edges (total routed wirelength in gcell steps).
  int total_usage() const;

  /// All (a, b) gcell pairs with a positive-capacity edge, in scan order.
  std::vector<std::pair<Point, Point>> edges() const;

 private:
  // Horizontal edges: (x,y)-(x+1,y), indexed x + y*(cols-1), x < cols-1.
  // Vertical edges:   (x,y)-(x,y+1), indexed x + y*cols, y < rows-1.
  int h_index(Point left) const { return left.x + left.y * (cols_ - 1); }
  int v_index(Point below) const { return below.x + below.y * cols_; }
  /// Classifies (a, b): returns pointer to cap/use slot or nullptr.
  int edge_slot(Point a, Point b) const;  // -1 if not adjacent/in bounds

  int cols_;
  int rows_;
  std::vector<int> cap_;   // horizontal edges then vertical edges
  std::vector<int> use_;
  std::vector<char> blocked_;
  int h_count_;
};

/// A net at the global level: terminals are gcell coordinates (where the
/// net's pins fall after floorplanning).
struct GlobalNet {
  std::string name;
  std::vector<Point> terminals;
};

}  // namespace gridroute
