#include "global/global_router.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

#include "search/goal_search.hpp"
#include "util/disjoint_set.hpp"

namespace gridroute {

namespace {

GlobalEdge normalized(Point a, Point b) {
  if (std::pair{a.y, a.x} > std::pair{b.y, b.x}) std::swap(a, b);
  return {a, b};
}

constexpr Point kSteps[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};

/// Cost provider for terminal-to-tree searches over the gcell graph: one
/// state per gcell, edge costs from GlobalRouter::edge_cost. The future
/// cost is the congestion map exported as a cut-minimum lower-bound grid
/// (rebuilt per search — usage moves between searches), aimed at the
/// bounding box of the still-pending terminals: admissible toward the
/// *nearest* of them, which is exactly what the tree-growth search pops
/// first (DESIGN.md §2.1g).
struct GcellProvider {
  const GlobalRouter& router;
  int cols;
  const search::CutLowerBounds* lower_bounds = nullptr;
  /// Bounding box of the pending terminals; invalid = plain Dijkstra.
  Rect target_box{{0, 0}, {-1, -1}};

  std::uint32_t node_of(std::uint32_t state) const { return state; }
  std::int64_t heuristic(std::uint32_t node) const {
    if (lower_bounds == nullptr) return 0;
    const Point g{static_cast<int>(node) % cols,
                  static_cast<int>(node) / cols};
    return lower_bounds->bound(g, target_box);
  }

  template <typename Emit>
  void expand(std::uint32_t state, std::int64_t g, Emit&& emit) const {
    const Point gu{static_cast<int>(state) % cols,
                   static_cast<int>(state) / cols};
    for (const Point step : kSteps) {
      const Point gv = gu + step;
      const int c = router.edge_cost(gu, gv);
      if (c < 0) continue;
      emit(static_cast<std::uint32_t>(gv.x + gv.y * cols), g + c);
    }
  }
};

/// Bucket window for the gcell search: covers the base edge cost plus the
/// typical congestion surcharges, doubled because with the congestion
/// future cost an edge away from the target box moves f by up to twice its
/// own cost; deeply history-inflated edges overflow into the queue's heap
/// (correctness never depends on the span).
std::int64_t gcell_span(const GlobalRouterOptions& o) {
  const std::int64_t span =
      2 * (1 + 4 * static_cast<std::int64_t>(o.overflow_penalty) +
           static_cast<std::int64_t>(o.history_increment) *
               std::max(o.max_iterations, 1));
  return std::clamp<std::int64_t>(span, 2, 4096);
}

}  // namespace

GlobalRouter::GlobalRouter(GlobalGrid grid, std::vector<GlobalNet> nets,
                           GlobalRouterOptions options)
    : grid_(std::move(grid)),
      nets_(std::move(nets)),
      options_(options),
      routes_(nets_.size()),
      trace_(options.trace, /*attempt=*/0) {}

int GlobalRouter::edge_cost(Point a, Point b) const {
  const int cap = grid_.capacity(a, b);
  if (cap <= 0) return -1;  // hard blockage (macro boundary)
  int cost = 1;
  const int would_overflow = grid_.usage(a, b) + 1 - cap;
  if (would_overflow > 0) cost += options_.overflow_penalty * would_overflow;
  if (auto it = edge_history_.find(normalized(a, b));
      it != edge_history_.end())
    cost += it->second;
  return cost;
}

search::CutLowerBounds GlobalRouter::congestion_lower_bounds() const {
  const int cols = grid_.cols();
  const int rows = grid_.rows();
  std::vector<std::int64_t> x_min(
      static_cast<std::size_t>(std::max(cols - 1, 0)),
      search::CutLowerBounds::kUncrossable);
  std::vector<std::int64_t> y_min(
      static_cast<std::size_t>(std::max(rows - 1, 0)),
      search::CutLowerBounds::kUncrossable);
  for (int y = 0; y < rows; ++y)
    for (int x = 0; x + 1 < cols; ++x)
      if (const int c = edge_cost({x, y}, {x + 1, y}); c >= 0)
        x_min[static_cast<std::size_t>(x)] =
            std::min<std::int64_t>(x_min[static_cast<std::size_t>(x)], c);
  for (int y = 0; y + 1 < rows; ++y)
    for (int x = 0; x < cols; ++x)
      if (const int c = edge_cost({x, y}, {x, y + 1}); c >= 0)
        y_min[static_cast<std::size_t>(y)] =
            std::min<std::int64_t>(y_min[static_cast<std::size_t>(y)], c);
  return {{0, 0}, std::move(x_min), std::move(y_min)};
}

bool GlobalRouter::route_net(std::size_t index) {
  const GlobalNet& net = nets_[index];
  GlobalRoute& route = routes_[index];
  route.edges.clear();
  route.routed = false;
  trace_.emit(obs::TraceEvent::net_start(static_cast<int>(index)));
  if (net.terminals.empty()) {
    route.routed = true;
    trace_.emit(obs::TraceEvent::net_done(true, static_cast<int>(index), 0));
    return true;
  }

  // Grow a tree over the terminals, nearest-first like the detailed router.
  std::set<Point> tree{net.terminals.front()};
  std::vector<Point> todo(net.terminals.begin() + 1, net.terminals.end());

  const int n = grid_.cols() * grid_.rows();
  arena_.resize(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  auto id = [&](Point g) {
    return static_cast<std::uint32_t>(g.x + g.y * grid_.cols());
  };
  auto pt = [&](std::uint32_t i) {
    return Point{static_cast<int>(i) % grid_.cols(),
                 static_cast<int>(i) / grid_.cols()};
  };
  int connected = 0;
  while (!todo.empty()) {
    // Goal-oriented search from the whole current tree to the nearest
    // pending terminal, steered by the congestion lower-bound grid
    // (rebuilt here: the previous connection's commit moved usage).
    const search::CutLowerBounds lower_bounds = congestion_lower_bounds();
    Rect todo_box{todo.front(), todo.front()};
    for (const Point t : todo) todo_box = todo_box.bounding_union({t, t});
    const GcellProvider provider{*this, grid_.cols(), &lower_bounds,
                                 todo_box};
    if (arena_.begin_search())
      trace_.emit(obs::TraceEvent::epoch_wrap(
          static_cast<std::int64_t>(arena_.state_count())));
    queue_.reset(gcell_span(options_));
    for (const Point g : tree) search::seed(arena_, queue_, provider, id(g));
    for (const Point t : todo) arena_.mark_target(id(t));
    long long expansions = 0;
    const std::uint32_t goal =
        search::run(arena_, queue_, provider, &expansions);
    c_expansions_.add(expansions);
    trace_.emit(obs::TraceEvent::search_query(static_cast<int>(index),
                                              expansions,
                                              queue_.overflow_hits(),
                                              goal != search::kNoState));
    if (goal == search::kNoState) {  // terminal in a sealed pocket
      trace_.emit(obs::TraceEvent::net_done(false, static_cast<int>(index),
                                            connected));
      return false;
    }

    // Commit the path into the tree.
    for (std::uint32_t u = goal; arena_.parent(u) >= 0;
         u = static_cast<std::uint32_t>(arena_.parent(u))) {
      const Point a = pt(u);
      const Point b = pt(static_cast<std::uint32_t>(arena_.parent(u)));
      grid_.add_usage(a, b, +1);
      route.edges.push_back(normalized(a, b));
      tree.insert(a);
      tree.insert(b);
    }
    tree.insert(pt(goal));
    todo.erase(std::remove(todo.begin(), todo.end(), pt(goal)), todo.end());
    ++connected;
  }
  std::sort(route.edges.begin(), route.edges.end());
  route.routed = true;
  trace_.emit(
      obs::TraceEvent::net_done(true, static_cast<int>(index), connected));
  return true;
}

void GlobalRouter::rip_net(std::size_t index) {
  for (const GlobalEdge& e : routes_[index].edges)
    grid_.add_usage(e.a, e.b, -1);
  routes_[index].edges.clear();
  routes_[index].routed = false;
}

GlobalResult GlobalRouter::run() {
  // First pass: nets by ascending terminal-bounding-box size, the same
  // most-constrained-first instinct as the detailed router.
  std::vector<std::size_t> order(nets_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto span = [&](std::size_t i) {
    const auto& ts = nets_[i].terminals;
    if (ts.empty()) return 0;
    Rect box{ts.front(), ts.front()};
    for (const Point t : ts) box = box.bounding_union({t, t});
    return box.width() + box.height();
  };
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::pair{span(a), a} < std::pair{span(b), b};
  });

  for (const std::size_t i : order)
    if (!route_net(i)) ++stats_.nets_failed;

  // Track the best state seen: negotiation is a heuristic and may wander
  // through worse configurations; like the detailed router, it must never
  // *end* in one.
  std::vector<GlobalRoute> best_routes = routes_;
  int best_overflow = grid_.total_overflow();
  int best_failed = stats_.nets_failed;

  // Negotiation: charge overflowed edges, rip every net crossing one, and
  // try again with the higher prices in place.
  for (stats_.iterations = 1; stats_.iterations < options_.max_iterations &&
                              grid_.total_overflow() > 0;
       ++stats_.iterations) {
    std::set<GlobalEdge> hot;
    for (const auto& [a, b] : grid_.edges())
      if (grid_.overflow(a, b) > 0) hot.insert(normalized(a, b));
    for (const GlobalEdge& e : hot)
      edge_history_[e] += options_.history_increment;

    std::vector<std::size_t> victims;
    for (std::size_t i = 0; i < nets_.size(); ++i) {
      if (!routes_[i].routed) continue;
      for (const GlobalEdge& e : routes_[i].edges)
        if (hot.contains(e)) {
          victims.push_back(i);
          break;
        }
    }
    for (const std::size_t i : victims) rip_net(i);
    for (const std::size_t i : victims) {
      ++stats_.reroutes;
      if (!route_net(i)) ++stats_.nets_failed;
    }
    if (grid_.total_overflow() < best_overflow) {
      best_overflow = grid_.total_overflow();
      best_routes = routes_;
      best_failed = stats_.nets_failed;
    }
  }

  // Land on the best state: rebuild usage from the winning snapshot.
  if (grid_.total_overflow() > best_overflow) {
    for (std::size_t i = 0; i < nets_.size(); ++i)
      if (routes_[i].routed) rip_net(i);
    routes_ = std::move(best_routes);
    for (const GlobalRoute& r : routes_)
      for (const GlobalEdge& e : r.edges) grid_.add_usage(e.a, e.b, +1);
    stats_.nets_failed = best_failed;
  }

  stats_.overflow = grid_.total_overflow();
  stats_.wirelength = grid_.total_usage();
  stats_.expansions = c_expansions_.value();  // snapshot of the registry
  stats_.nets_routed = 0;
  for (const GlobalRoute& r : routes_)
    if (r.routed) ++stats_.nets_routed;

  GlobalResult result;
  result.routes = routes_;
  result.stats = stats_;
  return result;
}

std::vector<std::string> verify_global(const GlobalGrid& grid,
                                       const std::vector<GlobalNet>& nets,
                                       const std::vector<GlobalRoute>& routes) {
  std::vector<std::string> issues;
  std::ostringstream msg;
  auto flag = [&]() {
    issues.push_back(msg.str());
    msg.str({});
  };

  // Usage accounting: the grid's counters must equal the routes' edges.
  std::map<GlobalEdge, int> counted;
  for (const GlobalRoute& r : routes)
    for (const GlobalEdge& e : r.edges) ++counted[e];
  for (const auto& [a, b] : grid.edges()) {
    const GlobalEdge e = normalized(a, b);
    const int expected = counted.contains(e) ? counted.at(e) : 0;
    if (grid.usage(a, b) != expected) {
      msg << "edge " << a << '-' << b << ": grid says usage "
          << grid.usage(a, b) << ", routes say " << expected;
      flag();
    }
  }

  // Per net: routed trees must connect all terminals through real edges.
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const GlobalNet& net = nets[i];
    const GlobalRoute& route = routes[i];
    if (!route.routed) continue;
    std::map<Point, std::size_t> node_id;
    auto node = [&](Point p) {
      auto [it, inserted] = node_id.emplace(p, node_id.size());
      return it->second;
    };
    for (const GlobalEdge& e : route.edges) {
      if (manhattan(e.a, e.b) != 1) {
        msg << "net '" << net.name << "': edge " << e.a << '-' << e.b
            << " is not between adjacent gcells";
        flag();
      }
      if (grid.capacity(e.a, e.b) <= 0) {
        msg << "net '" << net.name << "': edge " << e.a << '-' << e.b
            << " crosses a zero-capacity boundary";
        flag();
      }
      node(e.a);
      node(e.b);
    }
    for (const Point t : net.terminals) node(t);
    DisjointSet ds(node_id.size());
    for (const GlobalEdge& e : route.edges)
      ds.unite(node_id.at(e.a), node_id.at(e.b));
    for (const Point t : net.terminals)
      if (!net.terminals.empty() &&
          !ds.connected(node_id.at(net.terminals.front()), node_id.at(t))) {
        msg << "net '" << net.name << "': terminal " << t
            << " is not connected to the tree";
        flag();
      }
  }
  return issues;
}

}  // namespace gridroute
