#include "global/global_grid.hpp"

#include <algorithm>
#include <cassert>

namespace gridroute {

GlobalGrid::GlobalGrid(int cols, int rows, int h_capacity, int v_capacity)
    : cols_(cols),
      rows_(rows),
      blocked_(static_cast<size_t>(cols) * static_cast<size_t>(rows), 0),
      h_count_((cols - 1) * rows) {
  assert(cols >= 1 && rows >= 1);
  const int v_count = cols * (rows - 1);
  cap_.assign(static_cast<size_t>(h_count_ + v_count), 0);
  use_.assign(cap_.size(), 0);
  for (int i = 0; i < h_count_; ++i) cap_[static_cast<size_t>(i)] = h_capacity;
  for (int i = 0; i < v_count; ++i)
    cap_[static_cast<size_t>(h_count_ + i)] = v_capacity;
}

int GlobalGrid::edge_slot(Point a, Point b) const {
  if (!in_bounds(a) || !in_bounds(b)) return -1;
  if (a.y == b.y && std::abs(a.x - b.x) == 1)
    return h_index({std::min(a.x, b.x), a.y});
  if (a.x == b.x && std::abs(a.y - b.y) == 1)
    return h_count_ + v_index({a.x, std::min(a.y, b.y)});
  return -1;
}

void GlobalGrid::block(const Rect& gcells) {
  for (int y = std::max(gcells.lo.y, 0); y <= std::min(gcells.hi.y, rows_ - 1);
       ++y)
    for (int x = std::max(gcells.lo.x, 0);
         x <= std::min(gcells.hi.x, cols_ - 1); ++x) {
      blocked_[static_cast<size_t>(x + y * cols_)] = 1;
      const Point g{x, y};
      for (const Point d : {Point{1, 0}, Point{-1, 0}, Point{0, 1},
                            Point{0, -1}}) {
        const int slot = edge_slot(g, g + d);
        if (slot >= 0) cap_[static_cast<size_t>(slot)] = 0;
      }
    }
}

bool GlobalGrid::blocked(Point g) const {
  return in_bounds(g) && blocked_[static_cast<size_t>(g.x + g.y * cols_)];
}

int GlobalGrid::capacity(Point a, Point b) const {
  const int slot = edge_slot(a, b);
  return slot < 0 ? 0 : cap_[static_cast<size_t>(slot)];
}

int GlobalGrid::usage(Point a, Point b) const {
  const int slot = edge_slot(a, b);
  return slot < 0 ? 0 : use_[static_cast<size_t>(slot)];
}

void GlobalGrid::set_capacity(Point a, Point b, int capacity) {
  const int slot = edge_slot(a, b);
  assert(slot >= 0);
  cap_[static_cast<size_t>(slot)] = capacity;
}

void GlobalGrid::add_usage(Point a, Point b, int delta) {
  const int slot = edge_slot(a, b);
  assert(slot >= 0);
  use_[static_cast<size_t>(slot)] += delta;
  assert(use_[static_cast<size_t>(slot)] >= 0);
}

int GlobalGrid::overflow(Point a, Point b) const {
  return std::max(usage(a, b) - capacity(a, b), 0);
}

int GlobalGrid::total_overflow() const {
  int total = 0;
  for (std::size_t i = 0; i < cap_.size(); ++i)
    total += std::max(use_[i] - cap_[i], 0);
  return total;
}

int GlobalGrid::total_usage() const {
  int total = 0;
  for (const int u : use_) total += u;
  return total;
}

std::vector<std::pair<Point, Point>> GlobalGrid::edges() const {
  std::vector<std::pair<Point, Point>> result;
  for (int y = 0; y < rows_; ++y)
    for (int x = 0; x + 1 < cols_; ++x)
      if (cap_[static_cast<size_t>(h_index({x, y}))] > 0)
        result.push_back({{x, y}, {x + 1, y}});
  for (int y = 0; y + 1 < rows_; ++y)
    for (int x = 0; x < cols_; ++x)
      if (cap_[static_cast<size_t>(h_count_ + v_index({x, y}))] > 0)
        result.push_back({{x, y}, {x, y + 1}});
  return result;
}

}  // namespace gridroute
