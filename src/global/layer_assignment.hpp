#pragma once

#include <vector>

#include "geom/layer.hpp"
#include "global/global_router.hpp"

namespace gridroute {

/// Layer assignment for one global route: the stack layer carrying each
/// gcell edge (parallel to GlobalRoute::edges) plus the stacked-via demand
/// the assignment implies.
struct LayerAssignment {
  std::vector<Layer> edge_layers;
  /// Sum over the route's gcells of the layer span of the runs meeting
  /// there (a node whose incident edges sit on layers 0 and 2 needs a
  /// 2-cut via stack).
  int via_count = 0;
};

/// Per-stack usage accumulator threaded through a whole assignment pass so
/// later nets see the load earlier nets placed (units: gcell edges).
using LayerUsage = std::vector<long long>;

/// Greedy layer assignment (DESIGN.md §2.1h): the route's edges are split
/// into maximal collinear runs; each run goes, whole, onto the
/// direction-compatible layer with the least accumulated usage (ties break
/// toward the lowest layer, so the result is deterministic). Runs on an
/// axis no layer prefers fall back to the least-used non-directed layer —
/// directed layers never accept wrong-way wire. Via demand is then the
/// per-node layer span.
///
/// `usage` may be null (the route is assigned against an empty stack);
/// when provided it must have stack.count() entries and is updated with
/// this route's load.
LayerAssignment assign_layers(const GlobalRoute& route,
                              const LayerStack& stack,
                              LayerUsage* usage = nullptr);

/// Whole-netlist pass in net order, threading one usage accumulator so the
/// stack load balances across nets.
std::vector<LayerAssignment> assign_layers(
    const std::vector<GlobalRoute>& routes, const LayerStack& stack);

/// Independent audit of an assignment: every edge carries a valid layer,
/// directed layers carry no wrong-way run, and via_count matches the
/// per-node layer span. Returns human-readable violations (empty = ok).
std::vector<std::string> verify_layer_assignment(
    const GlobalRoute& route, const LayerStack& stack,
    const LayerAssignment& assignment);

}  // namespace gridroute
