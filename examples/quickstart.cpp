// Quickstart: define a switchbox, route it, inspect the result.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/api.hpp"
#include "io/ascii_art.hpp"
#include "problem/problem.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

int main() {
  // A 10x7 switchbox. Side vectors list the net number at each boundary
  // position (0 = no pin): top/bottom indexed left-to-right, left/right
  // bottom-to-top.
  SwitchboxSpec spec;
  spec.top = {0, 1, 0, 2, 0, 3, 0, 2, 0, 0};
  spec.bottom = {0, 3, 0, 1, 0, 2, 0, 0, 1, 0};
  spec.left = {0, 4, 0, 0, 4, 0, 0};
  spec.right = {0, 0, 4, 0, 0, 4, 0};

  // Materialize a grid problem and sanity-check it.
  const Problem problem = spec.to_problem();
  for (const std::string& issue : problem.validate())
    std::cerr << "problem issue: " << issue << '\n';

  // Route through the library's one entry point. The request carries the
  // problem plus anything optional — options, a budget, a trace sink,
  // multi-start attempts; the defaults mean "one plain attempt".
  RouteRequest request;
  request.problem = &problem;
  const RouteResult result = route(request);

  // Always audit the result with the independent verifier.
  const VerifyReport report = verify(problem, result.grid);

  std::cout << "routed " << report.completed_net_count << "/"
            << report.routable_net_count << " nets, "
            << report.total_wire_nodes << " wire cells, "
            << report.total_vias << " vias\n"
            << "weak modifications: " << result.stats.weak_modifications
            << ", strong rip-ups: " << result.stats.strong_ripups << "\n\n"
            << render(problem, result.grid);

  return report.all_ok() ? 0 : 1;
}
