// Quickstart: define a switchbox, route it, inspect the result.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/incremental_router.hpp"
#include "io/ascii_art.hpp"
#include "problem/problem.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

int main() {
  // A 10x7 switchbox. Side vectors list the net number at each boundary
  // position (0 = no pin): top/bottom indexed left-to-right, left/right
  // bottom-to-top.
  SwitchboxSpec spec;
  spec.top = {0, 1, 0, 2, 0, 3, 0, 2, 0, 0};
  spec.bottom = {0, 3, 0, 1, 0, 2, 0, 0, 1, 0};
  spec.left = {0, 4, 0, 0, 4, 0, 0};
  spec.right = {0, 0, 4, 0, 0, 4, 0};

  // Materialize a grid problem and sanity-check it.
  const Problem problem = spec.to_problem();
  for (const std::string& issue : problem.validate())
    std::cerr << "problem issue: " << issue << '\n';

  // Route with the incremental rip-up router (default configuration).
  IncrementalRouter router(problem);
  const RouteOutcome outcome = router.run();

  // Always audit the result with the independent verifier.
  const VerifyReport report = verify(problem, router.grid());

  std::cout << "routed " << report.completed_net_count << "/"
            << report.routable_net_count << " nets, "
            << report.total_wire_nodes << " wire cells, "
            << report.total_vias << " vias\n"
            << "weak modifications: " << outcome.stats.weak_modifications
            << ", strong rip-ups: " << outcome.stats.strong_ripups << "\n\n"
            << render(problem, router.grid());

  return report.all_ok() ? 0 : 1;
}
