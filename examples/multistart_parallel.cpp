// Parallel multi-start: route a saturated switchbox best-of-8 on a worker
// pool and inspect the per-attempt report.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/multistart_parallel
//
// Net order is the one input the incremental router is genuinely sensitive
// to on near-saturated instances; route_best_of explores shuffled orders in
// parallel and keeps the best result. The reduction is deterministic: any
// thread count returns the bit-identical winner, so threads only change
// wall-clock time. Exits nonzero if routing, verification, or the
// serial/parallel determinism cross-check fails.

#include <iostream>

#include "bench_suite/suite.hpp"
#include "core/incremental_router.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

int main() {
  const Problem problem = suite::overfilled_switchbox().to_problem();

  RouterOptions options;
  options.threads = 0;  // 0 = one worker per hardware thread
  const RoutedDesign design = route_best_of(problem, 7, options);

  std::cout << "best-of-" << design.attempts.size() << ": routed "
            << design.outcome.stats.nets_routed << " nets, winner attempt "
            << design.winning_attempt << " (seed " << design.winning_seed
            << "), " << design.total_expansions
            << " maze expansions total\n\n";
  std::cout << "attempt  seed                  ran  complete  nets  "
               "expansions  ms\n";
  for (const AttemptReport& a : design.attempts) {
    std::cout << a.index << "        " << a.seed
              << (a.seed < 10 ? "                    " : "  ")
              << (a.ran ? "yes" : "no ") << "  "
              << (a.complete ? "yes     " : "no      ") << "  "
              << a.nets_routed << "    " << a.expansions << "       "
              << a.wall_ms << '\n';
  }

  // The determinism guarantee, demonstrated: a fully serial run picks the
  // same winner as the pool above.
  RouterOptions serial = options;
  serial.threads = 1;
  const RoutedDesign reference = route_best_of(problem, 7, serial);
  const bool identical =
      reference.winning_attempt == design.winning_attempt &&
      reference.winning_seed == design.winning_seed &&
      reference.outcome.failed == design.outcome.failed &&
      reference.grid.total_nodes() == design.grid.total_nodes();
  std::cout << "\nserial reference picked attempt "
            << reference.winning_attempt << ": "
            << (identical ? "bit-identical" : "MISMATCH") << '\n';

  const VerifyReport report = verify(problem, design.grid);
  return identical && report.drc_clean() ? 0 : 1;
}
