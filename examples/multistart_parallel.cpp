// Parallel multi-start: route a saturated switchbox best-of-8 on a worker
// pool and inspect the per-attempt report.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/multistart_parallel
//
// Net order is the one input the incremental router is genuinely sensitive
// to on near-saturated instances; a RouteRequest with extra_attempts set
// explores shuffled orders in parallel and keeps the best result. The
// reduction is deterministic: any thread count returns the bit-identical
// winner, so threads only change wall-clock time. Exits nonzero if routing,
// verification, or the serial/parallel determinism cross-check fails.

#include <iostream>

#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

int main() {
  const Problem problem = suite::overfilled_switchbox().to_problem();

  RouteRequest request;
  request.problem = &problem;
  request.options.threads = 0;  // 0 = one worker per hardware thread
  request.extra_attempts = 7;
  const RouteResult result = route(request);

  std::cout << "best-of-" << result.attempts.size() << ": routed "
            << result.stats.nets_routed << " nets, winner attempt "
            << result.winning_attempt << " (seed " << result.winning_seed
            << "), " << result.total_expansions
            << " maze expansions total\n\n";
  std::cout << "attempt  seed                  ran  complete  nets  "
               "expansions  ms\n";
  for (const AttemptReport& a : result.attempts) {
    std::cout << a.index << "        " << a.seed
              << (a.seed < 10 ? "                    " : "  ")
              << (a.ran ? "yes" : "no ") << "  "
              << (a.complete ? "yes     " : "no      ") << "  "
              << a.nets_routed << "    " << a.expansions << "       "
              << a.wall_ms << '\n';
  }

  // The determinism guarantee, demonstrated: a fully serial run picks the
  // same winner as the pool above.
  RouteRequest serial = request;
  serial.options.threads = 1;
  const RouteResult reference = route(serial);
  const bool identical =
      reference.winning_attempt == result.winning_attempt &&
      reference.winning_seed == result.winning_seed &&
      reference.failed == result.failed &&
      reference.grid.total_nodes() == result.grid.total_nodes();
  std::cout << "\nserial reference picked attempt "
            << reference.winning_attempt << ": "
            << (identical ? "bit-identical" : "MISMATCH") << '\n';

  const VerifyReport report = verify(problem, result.grid);
  return identical && report.drc_clean() ? 0 : 1;
}
