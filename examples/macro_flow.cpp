// The full macro-cell design flow, end to end:
//
//   1. PLACE   — simulated-annealing macro placement (src/place)
//   2. GLOBAL  — congestion-negotiated global routing over gcells
//                (src/global)
//   3. DETAIL  — extract the busiest channel between the macro rows and
//                route it with the incremental rip-up router (src/core)
//
// This is the design style the reproduced router family was built for:
// macros leave channels between them, the coarse router assigns nets to
// channels, the detailed router finishes each channel.
//
//   ./build/examples/macro_flow

#include <iostream>

#include "channel/channel_analysis.hpp"
#include "channel/channel_incremental.hpp"
#include "core/incremental_router.hpp"
#include "global/global_router.hpp"
#include "io/ascii_art.hpp"
#include "place/placer.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

namespace {

constexpr int kCols = 14;
constexpr int kRows = 10;

/// ASCII congestion map: digit = usage of the cell's most-used boundary,
/// '#' = macro, '.' = untouched.
void print_congestion(const GlobalGrid& grid) {
  for (int y = grid.rows() - 1; y >= 0; --y) {
    for (int x = 0; x < grid.cols(); ++x) {
      const Point g{x, y};
      if (grid.blocked(g)) {
        std::cout << '#';
        continue;
      }
      int peak = 0;
      for (const Point d :
           {Point{1, 0}, Point{-1, 0}, Point{0, 1}, Point{0, -1}})
        peak = std::max(peak, grid.usage(g, g + d));
      std::cout << (peak == 0 ? '.'
                              : static_cast<char>('0' + std::min(peak, 9)));
    }
    std::cout << '\n';
  }
}

/// Nearest unblocked gcell to `want` (spiral search) — where a block pin
/// lands on the routing fabric.
Point nearest_free(const GlobalGrid& grid, Point want) {
  for (int radius = 0; radius < kCols + kRows; ++radius)
    for (int dy = -radius; dy <= radius; ++dy)
      for (int dx = -radius; dx <= radius; ++dx) {
        const Point p = want + Point{dx, dy};
        if (grid.in_bounds(p) && !grid.blocked(p)) return p;
      }
  return want;
}

}  // namespace

int main() {
  // ---- 1. Placement --------------------------------------------------------
  std::vector<Block> blocks = {
      {"ram", 5, 3, {1, 1}, false},
      {"rom", 5, 3, {8, 0}, false},
      {"alu", 8, 3, {3, 7}, false},
      {"pad_sw", 1, 1, {0, 0}, true},  // fixed pads pin the corners
      {"pad_ne", 1, 1, {13, 9}, true},
  };
  std::vector<BlockNet> connectivity = {
      {"ram-alu", {0, 2}},  {"rom-alu", {1, 2}}, {"ram-rom", {0, 1}},
      {"sw-ram", {3, 0}},   {"ne-rom", {4, 1}},  {"sw-alu", {3, 2}},
  };

  Placer placer(kCols, kRows, blocks, connectivity);
  const PlacementResult placement = placer.run();
  const auto place_issues =
      verify_placement(kCols, kRows, blocks, placement.blocks);
  for (const auto& i : place_issues) std::cerr << "place: " << i << '\n';
  std::cout << "== placement ==\n"
            << "HPWL " << placement.initial_hpwl << " -> "
            << placement.final_hpwl << " (" << placement.moves_accepted
            << "/" << placement.moves_tried << " moves accepted)\n";
  for (const Block& b : placement.blocks)
    std::cout << "  " << b.name << " at (" << b.position.x << ','
              << b.position.y << ") " << b.width << 'x' << b.height
              << (b.fixed ? " [fixed]" : "") << '\n';

  // ---- 2. Global routing ---------------------------------------------------
  // Start with a tight fabric (dense channels are what make the detailed
  // stage interesting) and widen it until the global routing is legal —
  // the classic placement/routing feedback loop, in miniature.
  auto build_fabric = [&](int h_cap, int v_cap) {
    GlobalGrid g(kCols, kRows, h_cap, v_cap);
    for (const Block& b : placement.blocks)
      if (b.width * b.height > 1) g.block(b.footprint());
    return g;
  };

  std::vector<GlobalNet> nets;
  {
    const GlobalGrid probe = build_fabric(3, 2);
    auto pin_of = [&](int block) {
      return nearest_free(
          probe, placement.blocks[static_cast<size_t>(block)].center());
    };
    for (const BlockNet& bn : connectivity) {
      GlobalNet net{bn.name, {}};
      for (const int b : bn.blocks) net.terminals.push_back(pin_of(b));
      nets.push_back(std::move(net));
    }
    // A 4-bit bus between the two largest macros stresses the channel.
    for (int bit = 0; bit < 4; ++bit)
      nets.push_back({"bus" + std::to_string(bit), {pin_of(0), pin_of(2)}});
  }

  GlobalResult gres;
  for (int v_cap = 2; v_cap <= 5; ++v_cap) {
    GlobalRouter grouter(build_fabric(v_cap + 1, v_cap), nets);
    gres = grouter.run();
    for (const auto& i : verify_global(grouter.grid(), nets, gres.routes))
      std::cerr << "global: " << i << '\n';
    std::cout << "\n== global routing (boundary capacity " << v_cap + 1
              << "h/" << v_cap << "v) ==\n"
              << "nets routed: " << gres.stats.nets_routed << "/"
              << nets.size() << ", overflow: " << gres.stats.overflow
              << ", wirelength: " << gres.stats.wirelength
              << " gcell edges, reroutes: " << gres.stats.reroutes
              << "\n\n";
    print_congestion(grouter.grid());
    if (gres.legal()) break;
    std::cout << "fabric oversubscribed; widening the routing alleys\n";
  }

  // ---- 3. Channel extraction + detailed routing ----------------------------
  // Pick the horizontal cut with the most crossings.
  int cut_row = 0, best_crossings = -1;
  for (int r = 0; r + 1 < kRows; ++r) {
    int crossings = 0;
    for (const GlobalRoute& route : gres.routes)
      for (const GlobalEdge& e : route.edges)
        if (e.a.y == r && e.b.y == r + 1) ++crossings;
    if (crossings > best_crossings) {
      best_crossings = crossings;
      cut_row = r;
    }
  }

  const int scale = 3;  // detailed columns per gcell
  ChannelSpec channel;
  channel.top.assign(static_cast<size_t>(kCols * scale), 0);
  channel.bottom.assign(static_cast<size_t>(kCols * scale), 0);
  int channel_nets = 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    int cross_col = -1;
    for (const GlobalEdge& e : gres.routes[i].edges)
      if (e.a.y == cut_row && e.b.y == cut_row + 1) cross_col = e.a.x;
    if (cross_col < 0) continue;
    int top_col = cross_col;
    for (const Point t : nets[i].terminals)
      if (t.y > cut_row) top_col = t.x;
    const int number = ++channel_nets;
    // Slot pins within the gcell's 3 columns to dodge collisions.
    auto place_pin = [&](std::vector<int>& side, int gcell) {
      for (int k = 0; k < scale; ++k) {
        auto& slot = side[static_cast<size_t>(gcell * scale + k)];
        if (slot == 0) {
          slot = number;
          return;
        }
      }
    };
    place_pin(channel.bottom, cross_col);
    place_pin(channel.top, top_col);
  }

  const ChannelAnalysis analysis(channel);
  std::cout << "\n== extracted channel (cut between gcell rows " << cut_row
            << " and " << cut_row + 1 << ") ==\n"
            << channel_nets << " crossing nets, density "
            << analysis.density() << '\n';
  if (channel_nets == 0) {
    std::cout << "nothing crosses this cut; flow complete\n";
    return gres.stats.overflow == 0 ? 0 : 1;
  }

  const ChannelRouteResult det = route_channel(channel);
  if (!det.success) {
    std::cerr << "channel did not route\n";
    return 1;
  }
  std::cout << "detailed-routed in " << det.tracks << " tracks ("
            << det.result->stats.weak_modifications << " weak, "
            << det.result->stats.strong_ripups
            << " strong modifications)\n\n";

  const Problem problem = channel.to_problem(det.tracks);
  IncrementalRouter drouter(problem, channel_router_options());
  drouter.run();
  drouter.improve(2);
  const VerifyReport report = verify(problem, drouter.grid());
  std::cout << render(problem, drouter.grid());
  return report.all_ok() && gres.stats.overflow == 0 && place_issues.empty()
             ? 0
             : 1;
}
