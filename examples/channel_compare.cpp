// Channel-router shoot-out: run the four routers on the classic channel
// suite and print the tracks-vs-density comparison — the table every
// channel-routing paper opens with.
//
//   ./build/examples/channel_compare

#include <iostream>

#include "bench_suite/suite.hpp"
#include "channel/channel_analysis.hpp"
#include "channel/channel_incremental.hpp"
#include "channel/channel_routers.hpp"
#include "io/table.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

namespace {

/// Routes and verifies; returns the track count as a string, or the reason
/// abbreviation on failure. A solution that fails verification is a bug —
/// flagged loudly rather than silently reported as a win.
std::string tracks_or_failure(const ChannelSpec& spec,
                              const ChannelResult& res) {
  if (!res.success) return "-";
  const RealizedChannel real = realize(spec, res.solution);
  if (!verify(real.problem, real.grid).all_ok()) return "BROKEN";
  return std::to_string(res.tracks());
}

}  // namespace

int main() {
  Table table({"channel", "cols", "nets", "density", "left-edge", "yoshimura-kuh",
               "dogleg", "greedy", "incremental"});

  for (const auto& [name, spec] : suite::channel_suite()) {
    const ChannelAnalysis analysis(spec);
    const ChannelRouteResult inc = route_channel(spec);
    table.add_row({
        name,
        std::to_string(spec.columns()),
        std::to_string(analysis.intervals().size()),
        std::to_string(analysis.density()),
        tracks_or_failure(spec, route_left_edge(spec)),
        tracks_or_failure(spec, route_yoshimura_kuh(spec)),
        tracks_or_failure(spec, route_dogleg(spec)),
        tracks_or_failure(spec, route_greedy(spec)),
        inc.success ? std::to_string(inc.tracks) : "-",
    });
  }

  std::cout << "Tracks used per router ('-' = cannot route: left-edge and\n"
               "dogleg fail on vertical-constraint cycles by design).\n\n";
  table.print(std::cout);
  return 0;
}
