// Serving-layer quickstart: stand up a RoutingService, stream jobs through
// it, and watch the cache and the lifecycle metrics work. The C-embeddable
// twin of this flow (opaque handles, status codes) lives behind
// src/service/gridroute_c.h, exercised by tests/c_abi_smoke.c.

#include <iostream>
#include <memory>

#include "bench_suite/suite.hpp"
#include "io/ascii_art.hpp"
#include "service/routing_service.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

int main() {
  // One worker, a short queue, and the provable-infeasibility pre-screen.
  service::ServiceOptions options;
  options.workers = 1;
  options.max_queue_depth = 8;
  options.prescreen = true;
  service::RoutingService service(options);

  const auto problem = std::make_shared<const Problem>(
      suite::dense_switchbox().to_problem());

  // Submit the same problem twice: the second job is a cache hit and its
  // result is (by construction) the same immutable RouteResult object.
  service::JobRequest request;
  request.problem = problem;
  const auto first_id = service.submit(request);
  const auto second_id = service.submit(request);
  if (!first_id.ok() || !second_id.ok()) {
    std::cerr << "submit failed\n";
    return 1;
  }

  const auto first = service.wait(*first_id);
  const auto second = service.wait(*second_id);
  if (!first.ok() || !second.ok() ||
      first->state != service::JobState::kCompleted ||
      second->state != service::JobState::kCompleted) {
    std::cerr << "jobs did not complete\n";
    return 1;
  }

  std::cout << "job " << first->id << ": fresh route, queue wait "
            << first->queue_wait_ms << " ms\n";
  std::cout << "job " << second->id << ": from_cache="
            << (second->from_cache ? "yes" : "no") << ", same result object="
            << (second->result == first->result ? "yes" : "no") << "\n\n";

  const VerifyReport report = verify(*problem, first->result->grid);
  if (!report.all_ok()) {
    std::cerr << "verification failed\n";
    return 1;
  }
  std::cout << render(*problem, first->result->grid) << "\n";

  // A provably hopeless job (HPWL demand beyond the region's node supply)
  // is declined at submit() — no routing attempt is burned on it.
  auto hopeless = std::make_shared<Problem>(Region(3, 3));
  for (int i = 0; i < 10; ++i) {
    const NetId id = hopeless->add_net("n" + std::to_string(i));
    hopeless->net(id).pins = {{{0, 0}, Layer::kMetal1, false},
                              {{2, 2}, Layer::kMetal1, false}};
  }
  service::JobRequest doomed;
  doomed.problem = hopeless;
  const auto rejected = service.submit(std::move(doomed));
  std::cout << "hopeless job: "
            << (rejected.ok() ? "admitted (?!)"
                              : rejected.status().to_string())
            << "\n\n";
  if (rejected.ok()) return 1;

  const service::ServiceStats stats = service.stats();
  std::cout << "service ledger: " << stats.submitted << " submitted, "
            << stats.admitted << " admitted, " << stats.rejected_prescreen
            << " pre-screened out, " << stats.cache_hits << " cache hit(s), "
            << stats.completed << " completed\n";

  return stats.completed == 2 && stats.cache_hits == 1 ? 0 : 1;
}
