// Incremental/ECO session quickstart (DESIGN.md §2.4): open a routing
// session, commit a base layout, then push two engineering-change-order
// edits through submit_delta(). Each delta re-routes only the nets its
// dirty box invalidates; everything else is replayed byte-identically from
// the committed layout — which the differential verifier checks here.

#include <iostream>
#include <memory>

#include "bench_suite/suite.hpp"
#include "service/routing_service.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

int main() {
  service::ServiceOptions options;
  options.workers = 1;
  service::RoutingService service(options);

  // A macro-cell region: mostly-local nets, so a local edit has a small
  // dirty box and most of the layout survives each delta.
  const auto problem = std::make_shared<const Problem>(
      suite::macrocell_region(42, 24, 16, 12));

  // open_session() admits the base routing job atomically with the session.
  const auto ticket = service.open_session({.problem = problem});
  if (!ticket.ok()) {
    std::cerr << "open_session failed: " << ticket.status().to_string()
              << "\n";
    return 1;
  }
  const auto base = service.wait(ticket->base_job);
  if (!base.ok() || base->state != service::JobState::kCompleted) {
    std::cerr << "base job did not complete\n";
    return 1;
  }
  std::cout << "session " << ticket->session << ": base layout committed ("
            << base->result->failed.size() << " failed nets)\n";

  // ECO 1: a blockage appears — one cell of the region becomes an obstacle.
  service::DeltaJobRequest blockage;
  blockage.edit.add_obstacles.push_back(
      {.rect = {{7, 5}, {7, 5}}, .all_layers = true});
  // ECO 2: a netlist change — the geometrically smallest net is deleted
  // (its id stays as an empty tombstone, so every other net keeps its id).
  // The dirty box is just the freed wire, so the rest of the layout holds.
  NetId smallest = 0;
  long long smallest_span = -1;
  for (NetId id = 0; id < problem->net_count(); ++id) {
    const Net& net = problem->net(id);
    if (net.pins.size() < 2) continue;
    Rect box{net.pins[0].pos, net.pins[0].pos};
    for (const Pin& pin : net.pins) box = box.bounding_union({pin.pos, pin.pos});
    const long long span = box.width() + box.height();
    if (smallest_span < 0 || span < smallest_span) {
      smallest_span = span;
      smallest = id;
    }
  }
  service::DeltaJobRequest drop_net;
  drop_net.edit.remove_nets.push_back(smallest);

  auto layout = base->result;
  for (const auto* delta : {&drop_net, &blockage}) {
    const auto id = service.submit_delta(ticket->session, *delta);
    if (!id.ok()) {
      std::cerr << "submit_delta failed: " << id.status().to_string() << "\n";
      return 1;
    }
    const auto outcome = service.wait(*id);
    if (!outcome.ok() || outcome->state != service::JobState::kCompleted ||
        outcome->delta == nullptr) {
      std::cerr << "delta job did not complete\n";
      return 1;
    }

    // The delta contract, independently audited: verifier-clean against
    // the edited problem, preserved nets byte-identical to the layout the
    // session held before this edit.
    const auto eq = verify_delta_equivalence(
        *outcome->problem, outcome->result->grid, layout->grid,
        outcome->delta->preserved);
    if (!eq.equivalent()) {
      std::cerr << "delta broke the equivalence contract\n";
      return 1;
    }
    std::cout << "delta job " << outcome->id << ": preserved "
              << outcome->delta->preserved.size() << " nets, re-routed "
              << outcome->delta->rerouted.size() << ", failed "
              << outcome->result->failed.size() << ", dirty box "
              << outcome->delta->dirty_box << "\n";
    layout = outcome->result;  // the session's new committed layout
  }

  const auto info = service.session_info(ticket->session);
  if (!info.has_value() || info->committed_deltas != 2) {
    std::cerr << "session did not commit both deltas\n";
    return 1;
  }
  std::cout << "session " << ticket->session << ": " << info->committed_deltas
            << " deltas committed, layout advanced twice\n";
  service.close_session(ticket->session);
  return 0;
}
