// Macro-cell routing pocket: an irregular rectilinear region with a notch,
// full-stack obstacles, a single-layer power strap, and pins both on the
// boundary and inside — the "very general region" this router family was
// built for.
//
//   ./build/examples/macrocell_region

#include <iostream>

#include "core/incremental_router.hpp"
#include "core/stub_pruner.hpp"
#include "io/ascii_art.hpp"
#include "problem/problem.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

int main() {
  // Hand-built region: 26 x 14 with the top-left corner notched away, a
  // macro blocking both layers mid-region, and an M1 power strap row.
  Region region(26, 14);
  region.subtract({{0, 10}, {5, 13}});             // corner notch
  region.add_obstacle({{8, 4}, {12, 8}});          // macro cell (both layers)
  region.add_obstacle({{18, 9}, {20, 13}});        // second macro
  region.add_obstacle({{0, 2}, {25, 2}}, Layer::kMetal1);  // power strap

  Problem problem{std::move(region)};
  auto add_net = [&](std::string name, std::initializer_list<Point> pins) {
    Net net;
    net.name = std::move(name);
    for (const Point p : pins)
      net.pins.push_back({p, Layer::kMetal1, /*any_layer=*/true});
    problem.add_net(std::move(net));
  };

  // Nets that must round the macros and duck under/over the strap.
  add_net("clk", {{0, 0}, {25, 13}, {13, 7}});
  add_net("d0", {{6, 12}, {16, 1}});
  add_net("d1", {{0, 5}, {25, 5}});     // crosses the macro row
  add_net("d2", {{7, 0}, {7, 13}});
  add_net("en", {{14, 0}, {14, 13}, {25, 9}});
  add_net("q", {{0, 8}, {22, 0}});

  for (const std::string& issue : problem.validate())
    std::cerr << "problem issue: " << issue << '\n';

  IncrementalRouter router(problem);
  const RouteOutcome outcome = router.run();
  const int pruned = prune_all_stubs(problem, router.grid());
  const VerifyReport report = verify(problem, router.grid());

  std::cout << "completed " << report.completed_net_count << "/"
            << report.routable_net_count << " nets ("
            << outcome.stats.weak_modifications << " weak, "
            << outcome.stats.strong_ripups << " strong modifications, "
            << pruned << " stub cells pruned)\n\n"
            << render(problem, router.grid());

  if (!report.drc_clean()) {
    for (const std::string& v : report.violations)
      std::cerr << "DRC: " << v << '\n';
    return 1;
  }
  return report.all_ok() ? 0 : 1;
}
