// Weak vs strong modification, narrated. Routes a trunk net straight
// through the only corridor, then routes a crossing net three ways:
//
//   1. no modification     -> the crossing net fails;
//   2. weak modification   -> the trunk is severed locally and repaired
//                             around the new wire (segment pushing);
//   3. strong modification -> the trunk is ripped up wholesale, re-queued
//                             and re-routed.
//
//   ./build/examples/ripup_demo

#include <iostream>

#include "core/incremental_router.hpp"
#include "io/ascii_art.hpp"
#include "problem/problem.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

namespace {

Problem make_scenario() {
  // 9x5 with the M2 middle row obstructed: the only way across row 2 is on
  // M1, and net "trunk" owns all of it after its route.
  Problem problem{Region(9, 5)};
  problem.region().add_obstacle({{0, 2}, {8, 2}}, Layer::kMetal2);
  Net trunk;
  trunk.name = "trunk";
  trunk.pins = {{{0, 2}, Layer::kMetal1, false},
                {{8, 2}, Layer::kMetal1, false}};
  problem.add_net(std::move(trunk));
  Net cross;
  cross.name = "cross";
  cross.pins = {{{2, 1}, Layer::kMetal1, false},
                {{2, 3}, Layer::kMetal1, false}};
  problem.add_net(std::move(cross));
  return problem;
}

void run_variant(const std::string& title, RouterOptions options) {
  const Problem problem = make_scenario();
  options.log = &std::cout;
  IncrementalRouter router(problem, options);

  std::cout << "=== " << title << " ===\n";
  router.route_net(0);  // trunk claims the corridor
  const bool ok = router.route_net(1);
  const VerifyReport report = verify(problem, router.grid());
  std::cout << "cross net " << (ok ? "routed" : "FAILED") << "; "
            << router.stats().weak_modifications << " weak, "
            << router.stats().strong_ripups << " strong; verified="
            << (report.drc_clean() ? "clean" : "VIOLATIONS") << "\n"
            << render(problem, router.grid()) << '\n';
}

}  // namespace

int main() {
  RouterOptions none;
  none.enable_weak = false;
  none.enable_strong = false;
  run_variant("no modification", none);

  RouterOptions weak_only;
  weak_only.enable_strong = false;
  run_variant("weak modification (segment pushing)", weak_only);

  RouterOptions strong_only;
  strong_only.enable_weak = false;
  run_variant("strong modification (rip-up and re-route)", strong_only);
  return 0;
}
