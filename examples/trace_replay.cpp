// Trace replay: route with a ReplaySink attached, then reconstruct what the
// router did from the retained event ring — no debugger, no printf in the
// router, just the structured trace.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/trace_replay
//
// Also shows the JSONL shape of the same stream: every event is one JSON
// object per line, ready for jq or a metrics pipeline.

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "io/table.hpp"
#include "obs/sinks.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

namespace {

/// One human-readable line per event — the "ASCII frame" of the replay.
std::string describe(const obs::TraceEvent& e) {
  std::ostringstream line;
  line << obs::event_name(e.kind);
  if (e.net >= 0) line << " net=" << e.net;
  switch (e.kind) {
    case obs::EventKind::kNetSuccess:
    case obs::EventKind::kNetFail:
      line << " connections=" << e.value;
      break;
    case obs::EventKind::kWeakProbe:
      line << " probe=" << e.value << " crossed=" << e.extra
           << (e.ok ? " found" : " blocked");
      break;
    case obs::EventKind::kWeakOutcome:
      line << " probe=" << e.value << " victims=" << e.extra
           << (e.ok ? " pushed" : " rolled-back");
      break;
    case obs::EventKind::kStrongRipup: {
      line << " ripped={";
      for (std::size_t i = 0; i < e.nets.size(); ++i)
        line << (i > 0 ? "," : "") << e.nets[i];
      line << "} remaining-budget=" << e.value;
      break;
    }
    case obs::EventKind::kSearchQuery:
      line << " expansions=" << e.value << " overflow-hits=" << e.extra
           << (e.ok ? " found" : " no-path");
      break;
    case obs::EventKind::kImproveAccept:
      line << " cost " << e.value << " -> " << e.extra;
      break;
    case obs::EventKind::kImproveReject:
      line << " cost " << e.value << " kept";
      break;
    default:
      break;
  }
  return line.str();
}

}  // namespace

int main() {
  const Problem problem = suite::dense_switchbox().to_problem();

  // Ring of the most recent events: big enough here to keep the whole run,
  // small enough to show dropped() doing its accounting elsewhere.
  obs::ReplaySink replay(4096);
  RouteRequest request;
  request.problem = &problem;
  request.trace = &replay;
  request.improve_passes = 1;
  const RouteResult result = route(request);

  const std::vector<obs::TraceEvent> events = replay.events();
  std::cout << "captured " << events.size() << " events ("
            << replay.dropped() << " dropped by the ring)\n\n";

  // Taxonomy summary: how the routing effort distributed over event kinds.
  Table table({"event", "count"});
  for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
    const auto kind = static_cast<obs::EventKind>(k);
    const long long n = std::count_if(
        events.begin(), events.end(),
        [kind](const obs::TraceEvent& e) { return e.kind == kind; });
    if (n > 0) table.add_row({obs::event_name(kind), std::to_string(n)});
  }
  table.print(std::cout);

  // The last moments of the run, replayed as readable frames.
  constexpr std::size_t kTail = 12;
  std::cout << "\nlast " << std::min(kTail, events.size()) << " events:\n";
  for (std::size_t i = events.size() - std::min(kTail, events.size());
       i < events.size(); ++i)
    std::cout << "  " << describe(events[i]) << '\n';

  // The same stream in interchange shape: one JSON object per line.
  std::cout << "\nas JSONL (first 4 lines):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(4, events.size()); ++i)
    std::cout << "  " << obs::JsonlSink::format(events[i]) << '\n';

  const VerifyReport report = verify(problem, result.grid);
  return result.complete() && report.all_ok() ? 0 : 1;
}
