// File-driven routing front end: reads a problem, channel, or switchbox
// description (format auto-detected from the header keyword), routes it,
// and prints the layout, statistics and — optionally — the solution in the
// round-trippable text format.
//
//   ./build/examples/route_file examples/data/switchbox.txt
//   ./build/examples/route_file examples/data/channel.txt
//   ./build/examples/route_file examples/data/macrocell.txt --solution
//   ./build/examples/route_file                 # runs a built-in demo
//
// Flags: --improve N (clean-up passes, default 2), --solution (dump the
// solution text), --quiet (suppress the ASCII layout).

#include <fstream>
#include <iostream>
#include <sstream>

#include "channel/channel_analysis.hpp"
#include "channel/channel_incremental.hpp"
#include "core/incremental_router.hpp"
#include "io/ascii_art.hpp"
#include "io/solution_format.hpp"
#include "io/text_format.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

namespace {

struct Options {
  std::string path;
  int improve_passes = 2;
  bool dump_solution = false;
  bool quiet = false;
};

constexpr const char* kDemoProblem = R"(# built-in demo: notched region
region 14 9
subtract 0 7 3 8
obstacle 6 3 8 5 both
net a
pin 0 0 any
pin 13 8 any
net b
pin 4 8 any
pin 13 0 any
net c
pin 0 4 any
pin 13 4 any
)";

/// First keyword of the text decides the format.
std::string first_keyword(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line.substr(0, line.find('#')));
    std::string tok;
    if (ls >> tok) return tok;
  }
  return {};
}

int route_and_report(const Problem& problem, const Options& options) {
  const auto issues = problem.validate();
  for (const std::string& issue : issues)
    std::cerr << "invalid problem: " << issue << '\n';
  if (!issues.empty()) return 2;

  IncrementalRouter router(problem);
  const RouteOutcome outcome = router.run();
  if (options.improve_passes > 0) router.improve(options.improve_passes);
  const VerifyReport report = verify(problem, router.grid());

  std::cout << "nets completed: " << report.completed_net_count << "/"
            << report.routable_net_count << "  wire cells: "
            << report.total_wire_nodes << "  vias: " << report.total_vias
            << "\nmodifications: " << outcome.stats.weak_modifications
            << " weak, " << outcome.stats.strong_ripups
            << " strong rip-ups  (search expansions: "
            << outcome.stats.expansions << ")\n";
  for (const NetId id : outcome.failed)
    std::cout << "unrouted: " << problem.net(id).name << '\n';
  for (const std::string& v : report.violations)
    std::cerr << "DRC: " << v << '\n';

  if (!options.quiet) std::cout << '\n' << render(problem, router.grid());
  if (options.dump_solution)
    std::cout << '\n' << solution_to_string(problem, router.grid());
  return report.drc_clean() ? (report.all_ok() ? 0 : 1) : 2;
}

int route_channel_file(const ChannelSpec& spec, const Options& options) {
  const ChannelAnalysis analysis(spec);
  std::cout << "channel: " << spec.columns() << " columns, "
            << analysis.intervals().size() << " nets, density "
            << analysis.density() << '\n';
  const ChannelRouteResult res = route_channel(spec);
  if (!res.success) {
    std::cout << "could not route within the track search window\n";
    return 1;
  }
  std::cout << "routed in " << res.tracks << " tracks ("
            << res.result->stats.weak_modifications << " weak, "
            << res.result->stats.strong_ripups << " strong modifications)\n";
  // Re-route at the found width for the printable layout.
  const Problem problem = spec.to_problem(res.tracks);
  IncrementalRouter router(problem, channel_router_options());
  router.run();
  if (options.improve_passes > 0) router.improve(options.improve_passes);
  if (!options.quiet) std::cout << '\n' << render(problem, router.grid());
  if (options.dump_solution)
    std::cout << '\n' << solution_to_string(problem, router.grid());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--improve" && i + 1 < argc) {
      options.improve_passes = std::atoi(argv[++i]);
    } else if (arg == "--solution") {
      options.dump_solution = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag " << arg << '\n';
      return 2;
    } else {
      options.path = arg;
    }
  }

  std::string text;
  if (options.path.empty()) {
    std::cout << "(no input file: routing the built-in demo problem)\n\n";
    text = kDemoProblem;
  } else {
    std::ifstream file(options.path);
    if (!file) {
      std::cerr << "cannot open " << options.path << '\n';
      return 2;
    }
    std::ostringstream buf;
    buf << file.rdbuf();
    text = buf.str();
  }

  try {
    // The file path becomes the errors' SourceContext, so a parse failure
    // prints "path: line N, column M: what".
    const std::string& src = options.path;
    const std::string kind = first_keyword(text);
    if (kind == "region")
      return route_and_report(parse_problem_string(text, src), options);
    if (kind == "channel")
      return route_channel_file(parse_channel_string(text, src), options);
    if (kind == "switchbox")
      return route_and_report(parse_switchbox_string(text, src).to_problem(),
                              options);
    std::cerr << "unrecognized input (expected region/channel/switchbox)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
