// Net-parallel wave-engine speedup — one routing attempt, serial drain
// cost vs. speculative waves at 1 / 2 / 4 / 8 worker threads.
//
// Unlike multistart_speedup (independent attempts, embarrassingly
// parallel), this measures parallelism *inside* a single attempt: nets
// with disjoint bounding boxes are searched speculatively in parallel and
// committed in serial order (DESIGN.md §2.1e). The result is bit-identical
// at every thread count — the engine replays exactly the serial
// decisions — so the only degrees of freedom are wall-clock and how much
// of the search work was speculated successfully ("spec coverage", the
// Amdahl ceiling for this instance). Saturated switchboxes wave poorly
// (boundary pins make every net's box cross the center); the local-tiles
// family at the bottom is the opposite extreme — per-tile nets with
// pairwise-disjoint boxes, the standard-cell-block shape the wave
// scheduler is built for.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_suite/report.hpp"
#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "io/solution_format.hpp"
#include "io/table.hpp"
#include "obs/trace.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

namespace {

/// Tallies how many searches ran and how many of those were replayed from
/// committed speculations (no sequencing needed, so a bare tally sink).
class CoverageSink : public obs::TraceSink {
 public:
  void on_event(const obs::TraceEvent& event) override {
    if (event.kind == obs::EventKind::kSearchQuery) ++searches_;
    if (event.kind == obs::EventKind::kSpecCommitted)
      replayed_ += event.value;
  }
  double coverage() const {
    return searches_ == 0 ? 0.0
                          : static_cast<double>(replayed_) /
                                static_cast<double>(searches_);
  }

 private:
  std::int64_t searches_ = 0;
  std::int64_t replayed_ = 0;
};

struct Timed {
  std::string layout;
  RouteStats stats;
  double coverage = 0;
  double ms = 0;
};

Timed run(const Problem& problem, int net_threads, int reps) {
  Timed best;
  best.ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    CoverageSink sink;
    RouteRequest request;
    request.problem = &problem;
    request.options.net_threads = net_threads;
    request.improve_passes = 1;
    request.trace = &sink;
    const auto t0 = std::chrono::steady_clock::now();
    RouteResult result = route(request);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ms < best.ms)
      best = {solution_to_string(problem, result.grid), result.stats,
              sink.coverage(), ms};
  }
  return best;
}

/// cols x rows tiles, each tile_w x tile_h cells holding one three-pin
/// net whose pins keep a one-cell margin — every net's inflated wave box
/// stays inside its tile, so boxes are pairwise disjoint by construction
/// and waves reach the scheduler's width cap.
Problem local_tiles(int cols, int rows, int tile_w, int tile_h) {
  Problem problem{Region(cols * tile_w, rows * tile_h)};
  for (int ty = 0; ty < rows; ++ty)
    for (int tx = 0; tx < cols; ++tx) {
      const int x0 = tx * tile_w;
      const int y0 = ty * tile_h;
      const int k = ty * cols + tx;
      Net net;
      net.name = "t" + std::to_string(k);
      // Deterministic per-tile variation, no RNG: three corners of an
      // inner box, rotated by tile index.
      const Point inner[4] = {{x0 + 1, y0 + 1},
                              {x0 + tile_w - 2, y0 + 1},
                              {x0 + tile_w - 2, y0 + tile_h - 2},
                              {x0 + 1, y0 + tile_h - 2}};
      for (int p = 0; p < 3; ++p)
        net.pins.push_back(
            {inner[(k + p) % 4], Layer::kMetal1, /*any_layer=*/true});
      problem.add_net(std::move(net));
    }
  return problem;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json <path>]\n";
      return 2;
    }
  }

  constexpr int kReps = 3;  // report the best of three (cold-cache guard)
  const std::vector<std::pair<std::string, Problem>> instances = {
      {"overfilled-24x20/32",
       suite::overfilled_switchbox(5, 24, 20, 32).to_problem()},
      {"overfilled-36x30/48",
       suite::overfilled_switchbox(5, 36, 30, 48).to_problem()},
      {"overfilled-48x40/64",
       suite::overfilled_switchbox(5, 48, 40, 64).to_problem()},
      {"random-56x44/72", suite::random_switchbox(9, 56, 44, 72).to_problem()},
      {"tiles-8x6/48", local_tiles(8, 6, 10, 8)},
      {"tiles-12x8/96", local_tiles(12, 8, 10, 8)},
  };

  Table table({"instance", "routed", "waves", "spec commit/inval", "coverage",
               "1t ms", "2t ms", "4t ms", "8t ms", "speedup 4t",
               "identical"});
  bench::BenchReport report = bench::make_report("net_parallel_speedup");
  bool all_identical = true;

  for (const auto& [name, problem] : instances) {
    const Timed t1 = run(problem, 1, kReps);
    const Timed t2 = run(problem, 2, kReps);
    const Timed t4 = run(problem, 4, kReps);
    const Timed t8 = run(problem, 8, kReps);

    const bool identical = t2.layout == t1.layout && t4.layout == t1.layout &&
                           t8.layout == t1.layout &&
                           t4.stats.expansions == t1.stats.expansions;
    all_identical = all_identical && identical;

    // Determinism fingerprints gate exactly; wall clocks gate with
    // headroom; the speedup and coverage are host-shaped, info only.
    const std::string prefix = name + "/";
    report.add(prefix + "expansions",
               static_cast<double>(t1.stats.expansions), bench::Gate::kExact);
    report.add(prefix + "waves", t1.stats.waves, bench::Gate::kExact);
    report.add(prefix + "spec_commits", t1.stats.spec_commits,
               bench::Gate::kExact);
    report.add(prefix + "identical", identical ? 1 : 0, bench::Gate::kExact);
    report.add(prefix + "ms_1t", t1.ms, bench::Gate::kLowerBetter, 0.5);
    report.add(prefix + "ms_4t", t4.ms);
    report.add(prefix + "speedup_4t", t1.ms / t4.ms);
    report.add(prefix + "coverage", t1.coverage);

    table.add_row({
        name,
        std::to_string(t1.stats.nets_routed) + "/" +
            std::to_string(t1.stats.nets_attempted),
        std::to_string(t1.stats.waves),
        std::to_string(t1.stats.spec_commits) + "/" +
            std::to_string(t1.stats.spec_invalidations),
        Table::num(100.0 * t1.coverage, 0) + "%",
        Table::num(t1.ms, 1),
        Table::num(t2.ms, 1),
        Table::num(t4.ms, 1),
        Table::num(t8.ms, 1),
        Table::num(t1.ms / t4.ms, 2) + "x",
        identical ? "yes" : "NO",
    });
  }

  std::cout << "Net-parallel wave engine: one attempt, speculative waves "
               "at 1/2/4/8 threads\n(hardware threads available: "
            << std::thread::hardware_concurrency() << ").\n\n";
  table.print(std::cout);
  std::cout << "\nReading: 'identical' must read yes on every row — the "
               "commit protocol replays\nthe serial decisions exactly, so "
               "thread count may only change wall-clock.\n'coverage' is the "
               "share of searches served from committed speculations —\nthe "
               "parallelizable fraction, hence the Amdahl ceiling for the "
               "speedup columns.\nOn single-core hosts every ms column "
               "measures the same work plus engine\noverhead and the "
               "speedup hovers at 1.0x by construction.\n";

  if (!json_path.empty()) {
    if (const Status s = bench::write_report_file(report, json_path);
        !s.ok()) {
      std::cerr << "error: " << s.to_string() << "\n";
      return 2;
    }
    std::cout << "\nWrote " << json_path << "\n";
  }
  return all_identical ? 0 : 1;
}
