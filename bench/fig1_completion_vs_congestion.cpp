// Figure 1 — completion rate vs. congestion.
//
// Random 16x12 switchboxes with the boundary fill fraction swept from
// sparse to saturated, several seeds per point. Two series: the plain maze
// router (no modification) and the full incremental router. Reproduces the
// figure-shaped claim of the rip-up papers: both routers are perfect on
// sparse inputs, the plain router's completion collapses as congestion
// grows, and rip-up holds the curve up much longer — the gap *is* the
// contribution.

#include <iostream>

#include "bench_suite/suite.hpp"
#include "core/incremental_router.hpp"
#include "io/table.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

namespace {

double completion(const Problem& problem, const RouterOptions& options) {
  IncrementalRouter router(problem, options);
  router.run();
  return verify(problem, router.grid()).completion_rate();
}

}  // namespace

int main() {
  constexpr int kSeedsPerPoint = 8;
  constexpr int kWidth = 16;
  constexpr int kHeight = 12;

  Table table({"fill", "avg nets", "plain %", "weak-only %", "full %",
               "gap (pts)"});

  for (const double fill : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    double plain_sum = 0, weak_sum = 0, full_sum = 0;
    int nets_sum = 0;
    for (int seed = 0; seed < kSeedsPerPoint; ++seed) {
      const SwitchboxSpec spec = suite::random_switchbox(
          static_cast<std::uint64_t>(seed) * 1000 +
              static_cast<std::uint64_t>(fill * 100),
          kWidth, kHeight, 24, 4, fill);
      const Problem problem = spec.to_problem();
      nets_sum += problem.net_count();

      RouterOptions plain;
      plain.enable_weak = false;
      plain.enable_strong = false;
      RouterOptions weak_only;
      weak_only.enable_strong = false;

      plain_sum += completion(problem, plain);
      weak_sum += completion(problem, weak_only);
      full_sum += completion(problem, RouterOptions{});
    }
    const double plain = 100 * plain_sum / kSeedsPerPoint;
    const double weak = 100 * weak_sum / kSeedsPerPoint;
    const double full = 100 * full_sum / kSeedsPerPoint;
    table.add_row({
        Table::num(fill, 1),
        Table::num(static_cast<double>(nets_sum) / kSeedsPerPoint, 1),
        Table::num(plain, 1),
        Table::num(weak, 1),
        Table::num(full, 1),
        Table::num(full - plain, 1),
    });
  }

  std::cout << "Figure 1 (as data): completion rate vs. boundary congestion, "
            << kSeedsPerPoint << " seeds per point, " << kWidth << "x"
            << kHeight << " switchboxes.\n\n";
  table.print(std::cout);
  std::cout << "\nReading: all series start at 100%; the plain router decays "
               "first and fastest.\nThe widening then narrowing gap is the "
               "classic rip-up figure — once boxes\nbecome physically "
               "unroutable no router can hold 100%.\n";
  return 0;
}
