// Observability overhead bench — the enforcement half of the
// zero-overhead-when-off contract in src/obs.
//
// The contract says a route() with no sink installed pays at most 1% for
// the instrumentation compiled into it. Wall-clock A/B comparison cannot
// measure that bound: the no-instrumentation binary does not exist, and
// run-to-run machine noise on shared hardware dwarfs 1%. So the gated
// number is built from three noise-proof measurements instead:
//
//   1. per-event off-path cost — construct a TraceEvent and emit() it into
//      a sink-less Trace, timed over millions of iterations (the optimizer
//      is denied the null-ness of the sink via a volatile load);
//   2. events per route — deterministic, counted with a CountingSink;
//   3. route floor time — minimum no-sink wall time over interleaved
//      rounds (minimum of {true cost + non-negative noise} estimates the
//      true cost).
//
// gated overhead = cost_per_event * events_per_route / floor_time <= 1%.
// Exit 1 otherwise, so CI holds the line. The counting and JSONL sink
// columns are informational: sinks are allowed to cost; they show what
// each one buys you into.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_suite/report.hpp"
#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "io/table.hpp"
#include "obs/sinks.hpp"

using namespace gridroute;

namespace {

constexpr int kRepeats = 9;         // interleaved timing rounds
constexpr double kSampleMs = 40.0;  // minimum work per timing sample

/// The optimizer must not learn this is null, or the emit() under test
/// folds to nothing and the microbench reads zero.
obs::TraceSink* volatile g_no_sink = nullptr;

/// Off-path cost of one instrumentation point, in nanoseconds: build the
/// busiest event kind (search_query, emitted once per kernel query) and
/// emit it into a trace whose sink — unknown to the compiler — is null.
double measure_emit_ns() {
  const obs::Trace trace(g_no_sink, /*attempt=*/0);
  constexpr long long kIters = 20'000'000;
  double best_ns = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (long long i = 0; i < kIters; ++i)
      trace.emit(obs::TraceEvent::search_query(static_cast<int>(i & 1023), i,
                                               i >> 4, (i & 1) != 0));
    const double ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count() /
                      kIters;
    if (rep == 0 || ns < best_ns) best_ns = ns;
  }
  return best_ns;
}

/// One timing sample: `iters` back-to-back full routes, per-route mean.
/// Batching keeps every sample above the clock's noise floor even on
/// instances that route in under a millisecond.
double time_route_once(const Problem& problem, obs::TraceSink* sink,
                       int iters, long long* expansions) {
  RouteRequest request;
  request.problem = &problem;
  request.trace = sink;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    const RouteResult result = route(request);
    *expansions = result.stats.expansions;  // identical across reps & sinks
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count() /
         iters;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json <path>]\n";
      return 2;
    }
  }

  const std::vector<std::pair<std::string, Problem>> instances = {
      {"dense-switchbox", suite::dense_switchbox().to_problem()},
      {"burstein-class-23x15",
       suite::burstein_class_switchbox(1983).to_problem()},
      {"deutsch-class-120x14",
       suite::deutsch_class_channel(1976, 120, 14).to_problem(14)},
      {"overfilled-12x12", suite::overfilled_switchbox().to_problem()},
  };

  const double emit_ns = measure_emit_ns();

  Table table({"instance", "expansions", "events", "off ms", "off overhead",
               "counting cost", "jsonl cost"});
  bench::BenchReport report = bench::make_report("obs_overhead");
  // The emit microbench is the noisiest number here (it measures a
  // handful of instructions); gate it with double headroom.
  report.add("emit_ns", emit_ns, bench::Gate::kLowerBetter, 1.0);

  bool within_contract = true;
  for (const auto& [name, problem] : instances) {
    long long expansions = 0;
    // Warm-up run: touch the pages and the allocator before timing, and
    // size the batch so every sample covers enough work to sit well above
    // the clock and scheduler noise floor.
    const double single_ms = time_route_once(problem, nullptr, 1, &expansions);
    const int iters = std::max(1, static_cast<int>(kSampleMs / single_ms) + 1);

    // Events per route: deterministic — the trace is a pure function of the
    // routing decisions, and a sink never changes them.
    obs::CountingSink counting;
    std::ostringstream discard;
    obs::JsonlSink jsonl(discard);

    // Interleave the configurations inside each round so machine drift hits
    // every column alike; keep each column's minimum (floor estimate).
    double off_ms = 0, with_counting = 0, with_jsonl = 0;
    long long events = 0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      auto keep = [first = rep == 0](double& best, double ms) {
        if (first || ms < best) best = ms;
      };
      const long long seen = counting.total();
      keep(off_ms, time_route_once(problem, nullptr, iters, &expansions));
      keep(with_counting,
           time_route_once(problem, &counting, iters, &expansions));
      keep(with_jsonl, time_route_once(problem, &jsonl, iters, &expansions));
      events = (counting.total() - seen) / iters;
    }

    // The gated number: what the sink-less instrumentation points cost one
    // route, against that route's floor time.
    const double off_overhead =
        events * emit_ns / (off_ms * 1'000'000.0);
    within_contract = within_contract && off_overhead <= 0.01;

    const std::string prefix = name + "/";
    report.add(prefix + "expansions", static_cast<double>(expansions),
               bench::Gate::kExact);
    report.add(prefix + "events_per_route", static_cast<double>(events),
               bench::Gate::kExact);
    report.add(prefix + "off_ms", off_ms, bench::Gate::kLowerBetter, 0.5);
    report.add(prefix + "off_overhead", off_overhead);
    report.add(prefix + "within_contract", off_overhead <= 0.01 ? 1 : 0,
               bench::Gate::kExact);

    auto pct = [](double x) { return Table::num(100.0 * x, 2) + "%"; };
    table.add_row({
        name,
        std::to_string(expansions),
        std::to_string(events),
        Table::num(off_ms, 2),
        pct(off_overhead),
        pct(with_counting / off_ms - 1.0),
        pct(with_jsonl / off_ms - 1.0),
    });
  }

  std::cout << "Observability overhead: route(RouteRequest) with no sink, a "
               "counting sink,\nand a JSONL sink (minimum over " << kRepeats
            << " interleaved rounds; identical work\nby construction — "
               "expansions match across all configurations).\n\nOff-path "
               "emit cost: " << Table::num(emit_ns, 2)
            << " ns per instrumentation point (event build +\nnull check, "
               "measured over 20M iterations).\n\n";
  table.print(std::cout);
  std::cout << "\nReading: 'off overhead' = events x emit cost / floor "
               "route time — what the\nsink-less instrumentation costs a "
               "route. It must stay under 1.00% (the\nzero-overhead-when-off "
               "contract; exit 1 otherwise). Sink columns compare\nwall "
               "floors and are informational: sinks are allowed to cost.\n";

  if (!json_path.empty()) {
    if (const Status s = bench::write_report_file(report, json_path);
        !s.ok()) {
      std::cerr << "error: " << s.to_string() << "\n";
      return 2;
    }
    std::cout << "\nWrote " << json_path << "\n";
  }
  return within_contract ? 0 : 1;
}
