// Figure 4 — global routing: overflow vs. fabric capacity, and the value
// of congestion negotiation (the rip-up idea applied one level up).
//
// A fixed 16x16 macro floorplan with 36 crossing nets is routed at boundary
// capacities 1..6, once with the first pass only and once with full
// negotiation. Reproduces the coarse-level claim of the rip-up lineage:
// iterated rip-up-and-reroute drains congestion hotspots that one-shot
// routing leaves oversubscribed, and both converge to legal routings once
// the fabric is wide enough.

#include <iostream>

#include "global/global_router.hpp"
#include "io/table.hpp"

using namespace gridroute;

namespace {

std::pair<GlobalGrid, std::vector<GlobalNet>> instance(int capacity) {
  GlobalGrid grid(16, 16, capacity, capacity);
  grid.block({{3, 3}, {6, 6}});
  grid.block({{9, 9}, {12, 12}});
  grid.block({{9, 3}, {12, 5}});
  std::vector<GlobalNet> nets;
  for (int i = 0; i < 12; ++i)
    nets.push_back({"h" + std::to_string(i), {{0, i}, {15, (i + 9) % 16}}});
  for (int i = 0; i < 12; ++i)
    nets.push_back({"v" + std::to_string(i), {{i, 0}, {(i + 11) % 16, 15}}});
  for (int i = 0; i < 12; ++i)
    nets.push_back({"x" + std::to_string(i),
                    {{1, (i * 5) % 16}, {14, (i * 7) % 16}, {8, 7}}});
  return {std::move(grid), std::move(nets)};
}

GlobalStats run(int capacity, int max_iterations) {
  auto [grid, nets] = instance(capacity);
  GlobalRouterOptions options;
  options.max_iterations = max_iterations;
  GlobalRouter router(std::move(grid), nets, options);
  const GlobalResult res = router.run();
  const auto issues = verify_global(router.grid(), nets, res.routes);
  for (const auto& issue : issues) std::cerr << "audit: " << issue << '\n';
  return res.stats;
}

}  // namespace

int main() {
  Table table({"capacity", "overflow (1 pass)", "overflow (negotiated)",
               "reroutes", "wirelength (negotiated)"});
  for (int capacity = 1; capacity <= 6; ++capacity) {
    const GlobalStats single = run(capacity, 1);
    const GlobalStats nego = run(capacity, 12);
    table.add_row({
        std::to_string(capacity),
        std::to_string(single.overflow),
        std::to_string(nego.overflow),
        std::to_string(nego.reroutes),
        std::to_string(nego.wirelength),
    });
  }

  std::cout << "Figure 4 (as data): global-routing overflow vs. boundary "
               "capacity,\n16x16 gcell floorplan, 36 nets, 3 macros.\n\n";
  table.print(std::cout);
  std::cout << "\nReading: negotiation (iterated rip-up with history costs) "
               "dominates the single\npass at every capacity and reaches "
               "zero overflow with a narrower fabric —\nthe same story the "
               "detailed tables tell, one abstraction level up.\n";
  return 0;
}
