// Table 1 — channel routing: tracks used vs. the density lower bound.
//
// Reproduces the claim family "routed difficult channels such as Deutsch's
// in density; performed better than or as well as [the established channel
// routers] in all channels available". Columns report, per instance, the
// track count each router needs ('-' = cannot route) plus quality metrics
// for the incremental router's solution at its minimum feasible width.

#include <chrono>
#include <iostream>

#include "bench_suite/suite.hpp"
#include "channel/channel_analysis.hpp"
#include "channel/channel_incremental.hpp"
#include "channel/channel_routers.hpp"
#include "io/table.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

namespace {

std::string verified_tracks(const ChannelSpec& spec, const ChannelResult& res) {
  if (!res.success) return "-";
  const RealizedChannel real = realize(spec, res.solution);
  if (!verify(real.problem, real.grid).all_ok()) return "BROKEN";
  return std::to_string(res.tracks());
}

}  // namespace

int main() {
  Table table({"channel", "cols", "nets", "density", "left-edge", "yoshimura-kuh",
               "dogleg", "greedy", "incremental", "inc wire", "inc vias", "inc ms"});

  for (const auto& [name, spec] : suite::channel_suite()) {
    const ChannelAnalysis analysis(spec);

    const auto t0 = std::chrono::steady_clock::now();
    const ChannelRouteResult inc = route_channel(spec);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

    table.add_row({
        name,
        std::to_string(spec.columns()),
        std::to_string(analysis.intervals().size()),
        std::to_string(analysis.density()),
        verified_tracks(spec, route_left_edge(spec)),
        verified_tracks(spec, route_yoshimura_kuh(spec)),
        verified_tracks(spec, route_dogleg(spec)),
        verified_tracks(spec, route_greedy(spec)),
        inc.success ? std::to_string(inc.tracks) : "-",
        std::to_string(inc.wire_nodes),
        std::to_string(inc.vias),
        Table::num(ms, 1),
    });
  }

  std::cout << "Table 1: tracks used per channel router (lower bound = "
               "density).\n\n";
  table.print(std::cout);
  std::cout << "\nReading: the incremental rip-up router routes every "
               "instance at the density lower\nbound, including instances "
               "where the left-edge family fails outright on\nconstraint "
               "cycles — 'routed the difficult channels in density'.\n";
  return 0;
}
