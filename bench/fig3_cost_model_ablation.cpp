// Figure 3 — cost-model sensitivity (design-choice ablation).
//
// Sweeps the via penalty and the bend penalty of the weighted search over
// the switchbox suite and reports via counts and wirelength. Reproduces
// the design-section claim that cost shaping, not hard layer reservation,
// gives the router its layer discipline: raising the via cost trades vias
// for wirelength smoothly, without hurting completion.

#include <iostream>

#include "bench_suite/suite.hpp"
#include "core/incremental_router.hpp"
#include "io/table.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

namespace {

struct SweepPoint {
  int completed = 0;
  int routable = 0;
  int wire = 0;
  int vias = 0;
};

SweepPoint run_suite(const CostModel& costs) {
  SweepPoint pt;
  for (const auto& [name, spec] : suite::switchbox_suite()) {
    const Problem problem = spec.to_problem();
    RouterOptions options;
    options.costs = costs;
    IncrementalRouter router(problem, options);
    router.run();
    const VerifyReport report = verify(problem, router.grid());
    pt.completed += report.completed_net_count;
    pt.routable += report.routable_net_count;
    pt.wire += report.total_wire_nodes;
    pt.vias += report.total_vias;
  }
  return pt;
}

void print_sweep(const std::string& title, Table& table) {
  std::cout << title << "\n\n";
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "Figure 3 (as data): cost-model ablation over the switchbox "
               "suite.\n\n";

  {
    Table table({"via cost", "completion %", "total vias", "total wire"});
    for (const int via : {0, 2, 4, 8, 16, 32, 64}) {
      CostModel costs;
      costs.via = via;
      const SweepPoint pt = run_suite(costs);
      table.add_row({
          std::to_string(via),
          Table::num(100.0 * pt.completed / pt.routable, 1),
          std::to_string(pt.vias),
          std::to_string(pt.wire),
      });
    }
    print_sweep("(a) via-penalty sweep (default 8):", table);
  }

  {
    Table table({"bend cost", "completion %", "total vias", "total wire"});
    for (const int bend : {0, 1, 2, 4, 8, 16}) {
      CostModel costs;
      costs.bend = bend;
      const SweepPoint pt = run_suite(costs);
      table.add_row({
          std::to_string(bend),
          Table::num(100.0 * pt.completed / pt.routable, 1),
          std::to_string(pt.vias),
          std::to_string(pt.wire),
      });
    }
    print_sweep("(b) bend-penalty sweep (default 2):", table);
  }

  {
    Table table(
        {"wrong-way cost", "completion %", "total vias", "total wire"});
    for (const int ww : {0, 1, 2, 4, 8}) {
      CostModel costs;
      costs.wrong_way = ww;
      const SweepPoint pt = run_suite(costs);
      table.add_row({
          std::to_string(ww),
          Table::num(100.0 * pt.completed / pt.routable, 1),
          std::to_string(pt.vias),
          std::to_string(pt.wire),
      });
    }
    print_sweep("(c) wrong-way (layer-preference) sweep (default 1):", table);
  }

  std::cout << "Reading: vias fall monotonically as the via penalty rises, "
               "paid for in\nwirelength; completion is insensitive across "
               "the sweeps — the cost model\nshapes wire quality, the "
               "modification stages own completion.\n";
  return 0;
}
