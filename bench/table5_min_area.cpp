// Table 5 — minimum-area switchbox routing: the "one less column" claim.
//
// The famous result of the original system was routing the difficult
// switchbox *using one less column than the original data*. We reproduce
// the experiment's shape: for switchboxes with spare pin-free columns at
// the right edge, shrink the box column by column and report the smallest
// width at which each router still completes. The rip-up router routes
// boxes the plain maze router needs one or more extra columns for.

#include <iostream>

#include "bench_suite/suite.hpp"
#include "util/rng.hpp"
#include "core/incremental_router.hpp"
#include "io/table.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

namespace {

/// Drops the rightmost column. Only legal when it carries no pins on any
/// side (the right-edge pins shift onto the new rightmost column).
SwitchboxSpec drop_last_column(const SwitchboxSpec& spec) {
  SwitchboxSpec s = spec;
  s.top.pop_back();
  s.bottom.pop_back();
  return s;
}

bool last_column_pin_free(const SwitchboxSpec& spec) {
  if (spec.top.back() != 0 || spec.bottom.back() != 0) return false;
  for (int v : spec.right)
    if (v != 0) return false;  // right-edge pins cannot shift
  return true;
}

bool routes_completely(const SwitchboxSpec& spec,
                       const RouterOptions& options) {
  const Problem p = spec.to_problem();
  IncrementalRouter router(p, options);
  if (!router.run().complete()) return false;
  return verify(p, router.grid()).all_ok();
}

/// Smallest width at which the router still completes, found by shaving
/// pin-free columns off the right edge. Returns the original width when no
/// column can be spared.
int min_width(SwitchboxSpec spec, const RouterOptions& options) {
  int best = spec.width() + 1;  // sentinel: does not route even at full size
  if (routes_completely(spec, options)) best = spec.width();
  while (last_column_pin_free(spec) && spec.width() > 1) {
    spec = drop_last_column(spec);
    if (routes_completely(spec, options))
      best = spec.width();
    else
      break;  // monotone in practice: once it fails, stop shaving
  }
  return best;
}

/// A switchbox family with deliberate slack: pins occupy the top/bottom of
/// the first `width - pad` columns plus the left edge; the right edge and
/// the last `pad` columns are pin-free, so the box can legally shrink.
SwitchboxSpec padded_box(std::uint64_t seed, int width, int height, int pad,
                         double fill) {
  Rng rng(seed);
  SwitchboxSpec spec;
  spec.top.assign(static_cast<size_t>(width), 0);
  spec.bottom.assign(static_cast<size_t>(width), 0);
  spec.left.assign(static_cast<size_t>(height), 0);
  spec.right.assign(static_cast<size_t>(height), 0);

  struct Slot {
    std::vector<int>* side;
    int index;
  };
  std::vector<Slot> slots;
  for (int x = 0; x < width - pad; ++x) {
    slots.push_back({&spec.top, x});
    slots.push_back({&spec.bottom, x});
  }
  for (int y = 1; y < height - 1; ++y) slots.push_back({&spec.left, y});
  for (std::size_t i = slots.size(); i > 1; --i)
    std::swap(slots[i - 1], slots[rng.next_below(i)]);

  const auto budget =
      static_cast<std::size_t>(fill * static_cast<double>(slots.size()));
  std::size_t cursor = 0;
  int net = 1;
  while (cursor < budget) {
    const int pins = rng.next_int(2, 4);
    for (int p = 0; p < pins && cursor < slots.size(); ++p, ++cursor)
      (*slots[cursor].side)[static_cast<size_t>(slots[cursor].index)] = net;
    ++net;
  }
  return spec;
}

}  // namespace

int main() {
  RouterOptions plain;
  plain.enable_weak = false;
  plain.enable_strong = false;
  const RouterOptions full;

  Table table({"switchbox", "columns", "plain min width", "full min width",
               "columns saved"});

  struct Instance {
    std::string name;
    SwitchboxSpec spec;
  };
  std::vector<Instance> instances;
  instances.push_back({"dense-8x8", suite::dense_switchbox()});
  for (std::uint64_t seed : {21u, 22u, 23u, 24u, 25u})
    instances.push_back({"padded-18x10 #" + std::to_string(seed),
                         padded_box(seed, 18, 10, 5, 0.5)});

  for (const auto& [name, spec] : instances) {
    const int w_plain = min_width(spec, plain);
    const int w_full = min_width(spec, full);
    auto show = [&](int w) {
      return w > spec.width() ? std::string("> ") + std::to_string(spec.width())
                              : std::to_string(w);
    };
    table.add_row({
        name,
        std::to_string(spec.width()),
        show(w_plain),
        show(w_full),
        w_plain > w_full ? std::to_string(std::min(w_plain, spec.width() + 1) -
                                          w_full)
                         : "0",
    });
  }

  std::cout << "Table 5: minimum feasible switchbox width (pin-free columns "
               "shaved from the\nright edge until routing fails).\n\n";
  table.print(std::cout);
  std::cout << "\nReading: the incremental router completes in equal or "
               "smaller boxes than the\nplain maze router on every instance "
               "— the modern analogue of 'routed using one\nless column than "
               "the original data'.\n";
  return 0;
}
