// Multi-start speedup — serial vs. parallel best-of-N on the difficult
// (incomplete) switchbox and channel families.
//
// The multi-start engine fans N isolated router attempts across a worker
// pool with a deterministic reduction, so the only observable difference
// between thread counts is wall-clock time. This harness measures exactly
// that: best-of-8 runs at 1 / 2 / 4 threads on instances saturated enough
// that every attempt actually executes, and cross-checks that each thread
// count picked the bit-identical winner.

#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "core/incremental_router.hpp"
#include "io/table.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

namespace {

constexpr int kExtraAttempts = 7;  // best-of-8

struct Timed {
  RouteResult design;
  double ms = 0;
};

Timed run(const Problem& problem, int threads) {
  RouteRequest request;
  request.problem = &problem;
  request.options.threads = threads;
  request.extra_attempts = kExtraAttempts;
  const auto t0 = std::chrono::steady_clock::now();
  RouteResult design = route(request);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  return {std::move(design), ms};
}

bool same_winner(const RouteResult& a, const RouteResult& b) {
  return a.winning_attempt == b.winning_attempt &&
         a.winning_seed == b.winning_seed && a.failed == b.failed &&
         a.grid.total_nodes() == b.grid.total_nodes() &&
         a.grid.total_vias() == b.grid.total_vias();
}

}  // namespace

int main() {
  const std::vector<std::pair<std::string, Problem>> instances = {
      {"overfilled-12x10", suite::overfilled_switchbox().to_problem()},
      {"overfilled-16x12", suite::overfilled_switchbox(9, 16, 12, 20)
                               .to_problem()},
      {"burstein-class-a+", suite::burstein_class_switchbox(1983, 23, 15, 28)
                                .to_problem()},
      {"deutsch-class-tight",
       [] {
         const ChannelSpec spec = suite::deutsch_class_channel(1976, 120, 14);
         return spec.to_problem(spec.density() - 1);  // one track short
       }()},
  };

  Table table({"instance", "routed", "attempts run", "1t ms", "2t ms",
               "4t ms", "speedup 4t", "identical"});

  for (const auto& [name, problem] : instances) {
    const Timed serial = run(problem, 1);
    const Timed two = run(problem, 2);
    const Timed four = run(problem, 4);

    int ran = 0;
    for (const AttemptReport& a : serial.design.attempts) ran += a.ran;
    const bool identical = same_winner(serial.design, two.design) &&
                           same_winner(serial.design, four.design) &&
                           verify(problem, four.design.grid).drc_clean();

    table.add_row({
        name,
        std::to_string(serial.design.stats.nets_routed) + "/" +
            std::to_string(serial.design.stats.nets_routed +
                           static_cast<int>(serial.design.failed.size())),
        std::to_string(ran) + "/" + std::to_string(kExtraAttempts + 1),
        Table::num(serial.ms, 1),
        Table::num(two.ms, 1),
        Table::num(four.ms, 1),
        Table::num(serial.ms / four.ms, 2) + "x",
        identical ? "yes" : "NO",
    });
  }

  std::cout << "Multi-start speedup: best-of-8 multi-start, serial vs. "
               "worker pool\n(hardware threads available: "
            << std::thread::hardware_concurrency() << ").\n\n";
  table.print(std::cout);
  std::cout << "\nReading: the reduction is deterministic, so 'identical' "
               "must read yes on every\nrow; the speedup column approaches "
               "min(threads, attempts, cores) on machines\nwith enough "
               "hardware parallelism and 1.0x on a single-core host.\n";
  return 0;
}
