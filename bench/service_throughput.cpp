// Serving-layer throughput bench — how fast RoutingService turns a mixed
// job stream around, and what the result cache buys.
//
// The stream: every instance of a small suite pool submitted once cold
// (all misses), then kRepeatRounds more times (all hits, by construction:
// one worker drains FIFO, so each problem's first job completes before its
// repeats run). That makes the cache-hit ledger a pure function of the
// stream — gated exactly — while the throughput numbers gate with
// wall-clock headroom.
//
// Gated metrics (scripts/bench.sh --check):
//   cache_hits / cache_misses   exact — deterministic ledger
//   fresh_expansions            exact — summed search work of the misses,
//                               the determinism fingerprint of the stream
//   jobs_per_sec                higher-better — end-to-end service rate
//   cached_jobs_per_sec         higher-better — cache turnaround rate
//   overload_shed / overload_browned / overload_completed
//                               exact — the overload phase's admission
//                               ledger (see below); brown-out policy
//                               changes must show up here, gated
// Informational: per-phase wall times, mean queue wait (a drain benchmark
// queues every job behind the whole stream ahead of it, so the mean says
// how the backlog feels, not how the router performs).
//
// The overload phase bursts kOverloadBurst cache-bypassing jobs into a
// paused one-worker service (queue bound 32, brown-out threshold 16), so
// the admission ledger is a pure function of the burst: depths 1..15
// admit normally, depth 16 trips brown-out and jobs 16..32 are admitted
// browned (tightened budgets instead of rejects), and jobs 33..48 hit the
// hard queue bound and shed. 32 complete, 16 shed, 17 browned — exact.

#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_suite/report.hpp"
#include "bench_suite/suite.hpp"
#include "io/table.hpp"
#include "service/routing_service.hpp"

using namespace gridroute;

namespace {

constexpr int kRepeatRounds = 4;  // cache-hit rounds after the cold one
constexpr int kOverloadBurst = 48;  // jobs thrown at the overload service

struct OverloadResult {
  double wall_ms = 0;
  int shed = 0;       // kResource rejects at the hard queue bound
  int browned = 0;    // completed carrying a kBrownOut degradation
  int completed = 0;  // total jobs that reached kCompleted
};

/// The brown-out phase: burst a paused one-worker service far past its
/// brown-out threshold, resume, and drain — counting what the admission
/// policy did with each job.
OverloadResult run_overload(const std::shared_ptr<const Problem>& p) {
  service::ServiceOptions options;
  options.workers = 1;
  options.start_paused = true;  // the whole burst lands on the queue
  options.max_queue_depth = 32;
  options.brownout_queue_threshold = 16;
  options.brownout_max_expansions = 200000;
  service::RoutingService service(options);

  OverloadResult out;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> ids;
  ids.reserve(kOverloadBurst);
  for (int i = 0; i < kOverloadBurst; ++i) {
    service::JobRequest request;
    request.problem = p;
    request.use_cache = false;  // every admitted job routes for real
    const auto id = service.submit(std::move(request));
    if (id.ok())
      ids.push_back(*id);
    else if (id.status().code() == ErrorCode::kResource)
      ++out.shed;
    else {
      std::cerr << "overload submit failed unexpectedly: "
                << id.status().to_string() << "\n";
      std::exit(2);
    }
  }
  service.resume();
  for (const std::uint64_t id : ids) {
    const auto outcome = service.wait(id);
    if (!outcome.ok() || outcome->state != service::JobState::kCompleted ||
        outcome->result == nullptr) {
      std::cerr << "overload job " << id << " did not complete\n";
      std::exit(2);
    }
    ++out.completed;
    for (const Degradation& d : outcome->result->degradation)
      if (d.kind == Degradation::Kind::kBrownOut) {
        ++out.browned;
        break;
      }
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

struct StreamResult {
  double wall_ms = 0;
  double queue_wait_ms = 0;  // summed over jobs
  long long cache_hits = 0;
  long long fresh_expansions = 0;
  int jobs = 0;
};

/// Submits every problem once and drains the service. Waits in submission
/// order — with one worker the jobs finish in that order anyway.
StreamResult run_round(service::RoutingService& service,
                       const std::vector<std::shared_ptr<const Problem>>&
                           problems) {
  StreamResult out;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> ids;
  ids.reserve(problems.size());
  for (const auto& p : problems) {
    service::JobRequest request;
    request.problem = p;
    const auto id = service.submit(std::move(request));
    if (!id.ok()) {
      std::cerr << "submit failed: " << id.status().to_string() << "\n";
      std::exit(2);
    }
    ids.push_back(*id);
  }
  for (const std::uint64_t id : ids) {
    const auto outcome = service.wait(id);
    if (!outcome.ok() || outcome->state != service::JobState::kCompleted) {
      std::cerr << "job " << id << " did not complete\n";
      std::exit(2);
    }
    out.queue_wait_ms += outcome->queue_wait_ms;
    if (outcome->from_cache)
      ++out.cache_hits;
    else
      out.fresh_expansions += outcome->result->stats.expansions;
  }
  out.jobs = static_cast<int>(problems.size());
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json <path>]\n";
      return 2;
    }
  }

  std::vector<std::shared_ptr<const Problem>> pool;
  pool.push_back(std::make_shared<const Problem>(
      suite::dense_switchbox().to_problem()));
  pool.push_back(std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem()));
  pool.push_back(std::make_shared<const Problem>(
      suite::burstein_class_switchbox(31).to_problem()));
  pool.push_back(std::make_shared<const Problem>(
      suite::burstein_class_switchbox(1983).to_problem()));
  pool.push_back(
      std::make_shared<const Problem>(suite::macrocell_region(7)));
  for (std::uint64_t seed = 11; seed <= 13; ++seed)
    pool.push_back(std::make_shared<const Problem>(
        suite::random_switchbox(seed, 14, 12, 12).to_problem()));

  service::ServiceOptions options;
  options.workers = 1;  // FIFO drain: makes the hit ledger deterministic
  options.max_queue_depth = static_cast<int>(pool.size()) + 1;
  service::RoutingService service(options);

  // Warm-up outside the timed stream: touch the allocator and the arena.
  {
    service::JobRequest request;
    request.problem = pool.front();
    request.use_cache = false;
    (void)service.wait(*service.submit(std::move(request)));
  }

  const StreamResult cold = run_round(service, pool);
  StreamResult warm;
  for (int round = 0; round < kRepeatRounds; ++round) {
    const StreamResult r = run_round(service, pool);
    warm.wall_ms += r.wall_ms;
    warm.queue_wait_ms += r.queue_wait_ms;
    warm.cache_hits += r.cache_hits;
    warm.fresh_expansions += r.fresh_expansions;
    warm.jobs += r.jobs;
  }

  const int total_jobs = cold.jobs + warm.jobs;
  const double total_ms = cold.wall_ms + warm.wall_ms;
  const double jobs_per_sec = 1000.0 * total_jobs / total_ms;
  const double cached_jobs_per_sec = 1000.0 * warm.jobs / warm.wall_ms;
  const double hit_rate =
      static_cast<double>(cold.cache_hits + warm.cache_hits) / total_jobs;
  const double mean_wait_ms =
      (cold.queue_wait_ms + warm.queue_wait_ms) / total_jobs;

  bench::BenchReport report = bench::make_report("service_throughput");
  report.add("jobs", total_jobs, bench::Gate::kExact);
  report.add("cache_hits",
             static_cast<double>(cold.cache_hits + warm.cache_hits),
             bench::Gate::kExact);
  report.add("cache_misses",
             static_cast<double>(total_jobs - cold.cache_hits -
                                 warm.cache_hits),
             bench::Gate::kExact);
  report.add("cache_hit_rate", hit_rate);
  report.add("fresh_expansions",
             static_cast<double>(cold.fresh_expansions +
                                 warm.fresh_expansions),
             bench::Gate::kExact);
  report.add("jobs_per_sec", jobs_per_sec, bench::Gate::kHigherBetter, 0.5);
  // The warm phase is a few ms of wall time — noise swings it several-fold
  // run to run — so its rate gates only against collapse, not drift.
  report.add("cached_jobs_per_sec", cached_jobs_per_sec,
             bench::Gate::kHigherBetter, 0.9);
  report.add("cold_wall_ms", cold.wall_ms, bench::Gate::kLowerBetter, 0.5);
  report.add("warm_wall_ms", warm.wall_ms);
  report.add("mean_queue_wait_ms", mean_wait_ms);

  // Overload mode: the burst ledger is exact by construction (see the
  // header comment), so any change to the admission or brown-out policy
  // moves a gated number here.
  const OverloadResult overload = run_overload(pool[1]);  // cross_switchbox
  report.add("overload_submitted", static_cast<double>(kOverloadBurst),
             bench::Gate::kExact);
  report.add("overload_shed", static_cast<double>(overload.shed),
             bench::Gate::kExact);
  report.add("overload_browned", static_cast<double>(overload.browned),
             bench::Gate::kExact);
  report.add("overload_completed", static_cast<double>(overload.completed),
             bench::Gate::kExact);
  report.add("overload_wall_ms", overload.wall_ms);

  Table table({"phase", "jobs", "hits", "wall ms", "jobs/s",
               "mean wait ms"});
  table.add_row({"cold", std::to_string(cold.jobs),
                 std::to_string(cold.cache_hits), Table::num(cold.wall_ms, 2),
                 Table::num(1000.0 * cold.jobs / cold.wall_ms, 1),
                 Table::num(cold.queue_wait_ms / cold.jobs, 3)});
  table.add_row({"warm x" + std::to_string(kRepeatRounds),
                 std::to_string(warm.jobs), std::to_string(warm.cache_hits),
                 Table::num(warm.wall_ms, 2),
                 Table::num(cached_jobs_per_sec, 1),
                 Table::num(warm.queue_wait_ms / warm.jobs, 3)});
  table.add_row({"overload", std::to_string(kOverloadBurst),
                 "-", Table::num(overload.wall_ms, 2),
                 Table::num(1000.0 * overload.completed / overload.wall_ms,
                            1),
                 "-"});

  std::cout << "RoutingService throughput: " << pool.size()
            << " distinct suite instances, submitted cold then "
            << kRepeatRounds << " cached rounds\n(one worker, FIFO — the "
               "hit ledger is exact by construction).\n\n";
  table.print(std::cout);
  std::cout << "\noverall: " << Table::num(jobs_per_sec, 1)
            << " jobs/s, cache hit rate " << Table::num(100.0 * hit_rate, 1)
            << "%, mean queue wait " << Table::num(mean_wait_ms, 3)
            << " ms\noverload: " << kOverloadBurst << " burst -> "
            << overload.completed << " completed (" << overload.browned
            << " browned out), " << overload.shed << " shed\n";

  // The stream invariant the bench itself enforces: the cold round misses
  // everything, the warm rounds hit everything.
  bool ledger_ok = cold.cache_hits == 0 && warm.cache_hits == warm.jobs;
  if (!ledger_ok)
    std::cerr << "\nerror: cache ledger broke the FIFO invariant (cold hits "
              << cold.cache_hits << ", warm hits " << warm.cache_hits
              << "/" << warm.jobs << ")\n";
  // And the overload ledger (header comment derives these counts).
  if (overload.shed != 16 || overload.browned != 17 ||
      overload.completed != 32) {
    ledger_ok = false;
    std::cerr << "\nerror: overload ledger off (shed " << overload.shed
              << ", browned " << overload.browned << ", completed "
              << overload.completed << "; expected 16/17/32)\n";
  }

  if (!json_path.empty()) {
    if (const Status s = bench::write_report_file(report, json_path);
        !s.ok()) {
      std::cerr << "error: " << s.to_string() << "\n";
      return 2;
    }
    std::cout << "\nWrote " << json_path << "\n";
  }
  return ledger_ok ? 0 : 1;
}
