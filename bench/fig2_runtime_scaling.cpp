// Figure 2 — runtime scaling (google-benchmark).
//
// Reproduces the complexity-analysis section: the weighted maze search is
// near-linear in routed area, and the full incremental router stays
// polynomial with bounded rip-up (the termination guarantee) as instance
// size grows. Absolute times are machine-specific; the claim is the growth
// *shape*, which benchmark's BigO fit reports directly.

#include <benchmark/benchmark.h>

#include "bench_suite/suite.hpp"
#include "channel/channel_incremental.hpp"
#include "channel/channel_routers.hpp"
#include "core/incremental_router.hpp"
#include "maze/maze_router.hpp"

using namespace gridroute;

namespace {

/// One corner-to-corner connection on an empty n x n grid: pure search
/// cost, Theta(nodes) = Theta(n^2) for Dijkstra with bounded degree.
void BM_MazeSearchEmptyGrid(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Problem problem{Region(n, n)};
  problem.add_net("x");
  RoutingGrid grid(problem.region(), 1);
  PinBlocks pins(problem);
  WeightedMazeRouter router(grid, pins);
  SearchRequest req;
  req.net = 0;
  req.sources = {{{0, 0}, Layer::kMetal1}};
  req.targets = {{{n - 1, n - 1}, Layer::kMetal1}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(req));
  }
  state.SetComplexityN(n * n);
}
BENCHMARK(BM_MazeSearchEmptyGrid)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->Complexity(benchmark::oN);

/// Lee BFS on the same query — the 1961 baseline's cost curve.
void BM_LeeSearchEmptyGrid(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Problem problem{Region(n, n)};
  problem.add_net("x");
  RoutingGrid grid(problem.region(), 1);
  PinBlocks pins(problem);
  LeeRouter router(grid, pins);
  SearchRequest req;
  req.net = 0;
  req.sources = {{{0, 0}, Layer::kMetal1}};
  req.targets = {{{n - 1, n - 1}, Layer::kMetal1}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(req));
  }
  state.SetComplexityN(n * n);
}
BENCHMARK(BM_LeeSearchEmptyGrid)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->Complexity(benchmark::oN);

/// Full incremental routing of a random switchbox whose side length and
/// net count grow together (fixed fill fraction): end-to-end scaling.
void BM_IncrementalRouterSwitchbox(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const SwitchboxSpec spec =
      suite::random_switchbox(1234, n, (3 * n) / 4, n, 4, 0.5);
  const Problem problem = spec.to_problem();
  for (auto _ : state) {
    IncrementalRouter router(problem);
    benchmark::DoNotOptimize(router.run());
  }
  state.SetComplexityN(problem.connection_count());
  state.counters["nets"] = static_cast<double>(problem.net_count());
}
BENCHMARK(BM_IncrementalRouterSwitchbox)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity();

/// Channel routing at fixed density with growing length: the per-column
/// cost of the classic one-pass routers vs. the incremental router.
void BM_GreedyChannelScaling(benchmark::State& state) {
  const int cols = static_cast<int>(state.range(0));
  const ChannelSpec spec = suite::deutsch_class_channel(99, cols, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_greedy(spec));
  }
  state.SetComplexityN(cols);
}
BENCHMARK(BM_GreedyChannelScaling)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->Complexity();

void BM_IncrementalChannelScaling(benchmark::State& state) {
  const int cols = static_cast<int>(state.range(0));
  const ChannelSpec spec = suite::deutsch_class_channel(99, cols, 8);
  RouteRequest base;
  base.options = channel_router_options();
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_channel(spec, base, 4));
  }
  state.SetComplexityN(cols);
}
BENCHMARK(BM_IncrementalChannelScaling)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
