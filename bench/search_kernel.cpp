// Search-kernel microbench — Dial bucket queue vs. reference binary heap
// under the Lee and weighted-maze adapters, across suite families.
//
// Both queues pop in the exact same (priority, tie key) order, so every
// query returns identical paths, costs, and expansion counts; the only
// thing allowed to differ is wall-clock time. This harness replays a fixed
// batch of pin-to-pin queries on routed suite instances through both queue
// kinds, cross-checks result identity, and reports the speedup.

#include <chrono>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/incremental_router.hpp"
#include "io/table.hpp"
#include "maze/maze_router.hpp"
#include "util/rng.hpp"

using namespace gridroute;

namespace {

constexpr int kQueriesPerInstance = 300;
constexpr int kRepeats = 5;  // timing repeats over the same batch

struct QueryBatch {
  std::vector<SearchRequest> requests;
};

QueryBatch make_batch(const Problem& problem, std::uint64_t seed) {
  QueryBatch batch;
  Rng rng(seed);
  const Rect b = problem.region().bounds();
  for (int q = 0; q < kQueriesPerInstance; ++q) {
    SearchRequest req;
    req.net = static_cast<NetId>(
        rng.next_below(static_cast<std::uint64_t>(problem.net_count())));
    req.sources.push_back(
        {{rng.next_int(b.lo.x, b.hi.x), rng.next_int(b.lo.y, b.hi.y)},
         rng.next_bool(0.5) ? Layer::kMetal1 : Layer::kMetal2});
    req.targets.push_back(
        {{rng.next_int(b.lo.x, b.hi.x), rng.next_int(b.lo.y, b.hi.y)},
         rng.next_bool(0.5) ? Layer::kMetal1 : Layer::kMetal2});
    req.allow_push = rng.next_bool(0.3);
    batch.requests.push_back(std::move(req));
  }
  return batch;
}

struct Timing {
  double ms = 0;
  long long expansions = 0;
  long long cost_sum = 0;  // identity fingerprint across queue kinds
  int found = 0;
};

template <typename Router>
Timing time_batch(Router& router, const QueryBatch& batch) {
  Timing best;
  for (int rep = 0; rep < kRepeats; ++rep) {
    Timing t;
    const auto t0 = std::chrono::steady_clock::now();
    for (const SearchRequest& req : batch.requests) {
      const SearchResult res = router.route(req);
      t.expansions += router.last_expansions();
      if (res.found) {
        ++t.found;
        t.cost_sum += res.cost;
      }
    }
    t.ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
               .count();
    if (rep == 0 || t.ms < best.ms) {
      const bool same = rep == 0 || (t.expansions == best.expansions &&
                                     t.cost_sum == best.cost_sum);
      t.ms = same ? t.ms : best.ms;  // defensive; repeats cannot differ
      best = t;
    }
  }
  return best;
}

struct Row {
  Timing heap;
  Timing bucket;
  bool identical = false;
};

template <typename Router, typename Configure>
Row run_family(const RoutingGrid& grid, const PinBlocks& pins,
               const QueryBatch& batch, Configure&& configure) {
  Router bucket_router(grid, pins);
  Router heap_router(grid, pins);
  configure(bucket_router);
  configure(heap_router);
  heap_router.set_queue_kind(SearchQueue::kHeap);
  Row row;
  row.heap = time_batch(heap_router, batch);
  row.bucket = time_batch(bucket_router, batch);
  row.identical = row.heap.expansions == row.bucket.expansions &&
                  row.heap.cost_sum == row.bucket.cost_sum &&
                  row.heap.found == row.bucket.found;
  return row;
}

}  // namespace

int main() {
  const std::vector<std::pair<std::string, Problem>> instances = {
      {"open-switchbox-32x32",
       suite::random_switchbox(3, 32, 32, 4, 2, 0.1).to_problem()},
      {"burstein-class-23x15",
       suite::burstein_class_switchbox(1983).to_problem()},
      {"deutsch-class-120x14",
       suite::deutsch_class_channel(1976, 120, 14).to_problem(14)},
      {"macrocell-40x28", suite::macrocell_region(7)},
  };

  Table table({"instance", "router", "queries", "expansions", "heap ms",
               "bucket ms", "speedup", "identical"});

  bool all_identical = true;
  for (const auto& [name, problem] : instances) {
    // Route the instance first so the batch runs against realistic
    // occupancy (owned wire, foreign walls, vias), not an empty board.
    IncrementalRouter router(problem);
    router.run();
    const PinBlocks pins(problem);
    const QueryBatch batch = make_batch(problem, 42);

    const Row lee = run_family<LeeRouter>(router.grid(), pins, batch,
                                          [](LeeRouter&) {});
    const Row weighted = run_family<WeightedMazeRouter>(
        router.grid(), pins, batch, [](WeightedMazeRouter&) {});
    const Row dijkstra = run_family<WeightedMazeRouter>(
        router.grid(), pins, batch,
        [](WeightedMazeRouter& r) { r.set_heuristic(false); });

    const std::vector<std::pair<std::string, const Row*>> rows = {
        {"lee", &lee}, {"weighted A*", &weighted}, {"weighted dijkstra",
                                                    &dijkstra}};
    for (const auto& [router_name, row] : rows) {
      all_identical = all_identical && row->identical;
      table.add_row({
          name,
          router_name,
          std::to_string(kQueriesPerInstance),
          std::to_string(row->bucket.expansions),
          Table::num(row->heap.ms, 1),
          Table::num(row->bucket.ms, 1),
          Table::num(row->heap.ms / row->bucket.ms, 2) + "x",
          row->identical ? "yes" : "NO",
      });
    }
  }

  std::cout << "Search kernel: Dial bucket queue vs. reference binary heap "
               "(best of " << kRepeats << " repeats,\n"
            << kQueriesPerInstance << " queries per instance, identical "
               "pop order by construction).\n\n";
  table.print(std::cout);
  std::cout << "\nReading: 'identical' must read yes on every row (the two "
               "queues are\ndifferentially tested for equal pop sequences); "
               "speedup > 1.0x means the\nbucket kernel wins on that "
               "family.\n";
  return all_identical ? 0 : 1;
}
