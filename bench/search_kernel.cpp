// Search-kernel microbench — Dial bucket queue vs. reference binary heap
// under the Lee and weighted-maze adapters, across suite families.
//
// Both queues pop in the exact same (priority, tie key) order, so every
// query returns identical paths, costs, and expansion counts; the only
// thing allowed to differ is wall-clock time. This harness replays a fixed
// batch of pin-to-pin queries on routed suite instances through both queue
// kinds, cross-checks result identity, and reports the speedup. The two
// weighted A* rows additionally pit the residual future cost against the
// historical bbox-Manhattan bound: same costs by admissibility, fewer
// expansions by sharpness (DESIGN.md §2.1g).
//
// `--json <path>` additionally writes a BENCH_search_kernel.json report
// (per-family ns/query, expansion and cost fingerprints, host metadata)
// for the committed-baseline regression gate — see scripts/bench.sh.

#include <chrono>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_suite/query_batch.hpp"
#include "bench_suite/report.hpp"
#include "bench_suite/suite.hpp"
#include "core/incremental_router.hpp"
#include "io/table.hpp"
#include "maze/maze_router.hpp"

using namespace gridroute;

namespace {

constexpr int kQueriesPerInstance = 300;
constexpr int kRepeats = 5;  // timing repeats over the same batch

/// Identity fingerprint of one batch run — accumulated in an *untimed*
/// pass, so the timed repeats below measure only the kernel (an earlier
/// revision folded this bookkeeping into the timed loop, inflating every
/// ns/query figure by the accumulation overhead).
struct Fingerprint {
  long long expansions = 0;
  long long cost_sum = 0;
  int found = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

template <typename Router>
Fingerprint fingerprint_batch(Router& router,
                              const std::vector<SearchRequest>& batch) {
  Fingerprint fp;
  for (const SearchRequest& req : batch) {
    const SearchResult res = router.route(req);
    fp.expansions += router.last_expansions();
    if (res.found) {
      ++fp.found;
      fp.cost_sum += res.cost;
    }
  }
  return fp;
}

/// Best-of-kRepeats wall time for the batch; nothing but route() calls
/// inside the timed region.
template <typename Router>
double time_batch(Router& router, const std::vector<SearchRequest>& batch) {
  double best_ms = 0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (const SearchRequest& req : batch) router.route(req);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (rep == 0 || ms < best_ms) best_ms = ms;
  }
  return best_ms;
}

struct Row {
  Fingerprint fp;        ///< bucket fingerprint (heap must match)
  double heap_ms = 0;
  double bucket_ms = 0;
  bool identical = false;
};

template <typename Router, typename Configure>
Row run_family(const RoutingGrid& grid, const PinBlocks& pins,
               const std::vector<SearchRequest>& batch,
               Configure&& configure) {
  Router bucket_router(grid, pins);
  Router heap_router(grid, pins);
  configure(bucket_router);
  configure(heap_router);
  heap_router.set_queue_kind(SearchQueue::kHeap);
  Row row;
  row.fp = fingerprint_batch(bucket_router, batch);
  const Fingerprint heap_fp = fingerprint_batch(heap_router, batch);
  row.identical = row.fp == heap_fp;
  row.heap_ms = time_batch(heap_router, batch);
  row.bucket_ms = time_batch(bucket_router, batch);
  return row;
}

double ns_per_query(double ms) {
  return ms * 1e6 / kQueriesPerInstance;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json <path>]\n";
      return 2;
    }
  }

  const std::vector<std::pair<std::string, Problem>> instances = {
      {"open-switchbox-32x32",
       suite::random_switchbox(3, 32, 32, 4, 2, 0.1).to_problem()},
      {"burstein-class-23x15",
       suite::burstein_class_switchbox(1983).to_problem()},
      {"deutsch-class-120x14",
       suite::deutsch_class_channel(1976, 120, 14).to_problem(14)},
      {"macrocell-40x28", suite::macrocell_region(7)},
      // N-layer coverage: the kernel's per-layer wrong-way/via terms and
      // N-aware move generation, measured on a 3-layer pocket so a
      // multi-layer-only regression cannot hide behind the classic rows.
      {"trilayer-16x12",
       suite::multilayer_region(21, 16, 12, 14, LayerStack(3))},
  };

  Table table({"instance", "router", "queries", "expansions", "heap ms",
               "bucket ms", "speedup", "identical"});
  bench::BenchReport report = bench::make_report("search_kernel");

  bool all_identical = true;
  bool residual_sharper = true;
  for (const auto& [name, problem] : instances) {
    // Route the instance first so the batch runs against realistic
    // occupancy (owned wire, foreign walls, vias), not an empty board.
    IncrementalRouter router(problem);
    router.run();
    const PinBlocks pins(problem);
    const std::vector<SearchRequest> batch = suite::make_query_batch(
        problem, 42, {.queries = kQueriesPerInstance});

    const Row lee = run_family<LeeRouter>(router.grid(), pins, batch,
                                          [](LeeRouter&) {});
    const Row astar = run_family<WeightedMazeRouter>(
        router.grid(), pins, batch, [](WeightedMazeRouter&) {});
    const Row astar_bbox = run_family<WeightedMazeRouter>(
        router.grid(), pins, batch, [](WeightedMazeRouter& r) {
          r.set_future_cost(FutureCost::kBboxManhattan);
        });
    const Row dijkstra = run_family<WeightedMazeRouter>(
        router.grid(), pins, batch,
        [](WeightedMazeRouter& r) { r.set_future_cost(FutureCost::kNone); });

    // Admissibility means identical total costs; sharpness means the
    // residual bound must never expand more than bbox-Manhattan.
    residual_sharper = residual_sharper &&
                       astar.fp.cost_sum == astar_bbox.fp.cost_sum &&
                       astar.fp.found == astar_bbox.fp.found &&
                       astar.fp.expansions <= astar_bbox.fp.expansions;

    const std::vector<std::pair<std::string, const Row*>> rows = {
        {"lee", &lee},
        {"weighted A* (residual)", &astar},
        {"weighted A* (bbox)", &astar_bbox},
        {"weighted dijkstra", &dijkstra},
    };
    for (const auto& [router_name, row] : rows) {
      all_identical = all_identical && row->identical;
      table.add_row({
          name,
          router_name,
          std::to_string(kQueriesPerInstance),
          std::to_string(row->fp.expansions),
          Table::num(row->heap_ms, 1),
          Table::num(row->bucket_ms, 1),
          Table::num(row->heap_ms / row->bucket_ms, 2) + "x",
          row->identical ? "yes" : "NO",
      });
    }

    const std::vector<std::pair<std::string, const Row*>> families = {
        {"lee", &lee},
        {"weighted-astar", &astar},
        {"weighted-astar-bbox", &astar_bbox},
        {"weighted-dijkstra", &dijkstra},
    };
    for (const auto& [family, row] : families) {
      const std::string prefix = name + "/" + family + "/";
      report.add(prefix + "ns_per_query", ns_per_query(row->bucket_ms),
                 bench::Gate::kLowerBetter, 0.5);
      report.add(prefix + "heap_ns_per_query", ns_per_query(row->heap_ms));
      report.add(prefix + "expansions",
                 static_cast<double>(row->fp.expansions),
                 bench::Gate::kExact);
      report.add(prefix + "cost_fingerprint",
                 static_cast<double>(row->fp.cost_sum), bench::Gate::kExact);
      report.add(prefix + "found", row->fp.found, bench::Gate::kExact);
    }
    report.add(name + "/residual_vs_bbox_expansion_ratio",
               static_cast<double>(astar.fp.expansions) /
                   static_cast<double>(astar_bbox.fp.expansions));
  }

  std::cout << "Search kernel: Dial bucket queue vs. reference binary heap "
               "(best of " << kRepeats << " repeats,\n"
            << kQueriesPerInstance << " queries per instance, identical "
               "pop order by construction).\n\n";
  table.print(std::cout);
  std::cout << "\nReading: 'identical' must read yes on every row (the two "
               "queues are\ndifferentially tested for equal pop sequences); "
               "speedup > 1.0x means the\nbucket kernel wins on that "
               "family. The residual A* row must match the bbox\nrow's "
               "costs with no more expansions (admissible, sharper): "
            << (residual_sharper ? "yes" : "NO") << ".\n";

  if (!json_path.empty()) {
    if (const Status s = bench::write_report_file(report, json_path);
        !s.ok()) {
      std::cerr << "error: " << s.to_string() << "\n";
      return 2;
    }
    std::cout << "\nWrote " << json_path << "\n";
  }
  return all_identical && residual_sharper ? 0 : 1;
}
