// Baseline gate for the BENCH_<name>.json reports — the comparison half of
// the kernel-speed program (DESIGN.md §2.1g). scripts/bench.sh runs each
// harness with --json, then this tool against the committed baseline:
//
//   bench_report_check <current.json> <baseline.json>
//
// Exit 0 when every gated metric passes (exact fingerprints match,
// wall-clock metrics within their tolerance), 1 on any regression, 2 on
// unreadable input. Prints one line per gated comparison.

#include <iostream>
#include <string>

#include "bench_suite/report.hpp"

using namespace gridroute;

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: " << argv[0] << " <current.json> <baseline.json>\n";
    return 2;
  }
  const auto current = bench::read_report_file(argv[1]);
  if (!current.ok()) {
    std::cerr << "error reading current report: "
              << current.status().to_string() << "\n";
    return 2;
  }
  const auto baseline = bench::read_report_file(argv[2]);
  if (!baseline.ok()) {
    std::cerr << "error reading baseline report: "
              << baseline.status().to_string() << "\n";
    return 2;
  }

  const bench::GateCheck check =
      bench::check_against_baseline(*current, *baseline);
  for (const std::string& line : check.lines) std::cout << line << "\n";
  std::cout << (check.ok ? "OK: " : "REGRESSION: ") << current->bench
            << " vs " << argv[2] << "\n";
  return check.ok ? 0 : 1;
}
