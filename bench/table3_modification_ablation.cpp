// Table 3 — ablation of the two modification stages.
//
// Four configurations of the same router run over the whole switchbox
// suite: no modification, weak only, strong only, and both (the shipped
// default). Reproduces the paper family's design claim that weak
// modification (cheap, local) handles most conflicts and strong
// modification (rip-up) is the fallback that buys the remaining
// completions — i.e. both stages earn their place.

#include <chrono>
#include <iostream>

#include "bench_suite/suite.hpp"
#include "core/incremental_router.hpp"
#include "io/table.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

namespace {

struct Aggregate {
  int completed = 0;
  int routable = 0;
  long long wire = 0;
  long long expansions = 0;
  int weak = 0;
  int strong = 0;
  double ms = 0;
};

Aggregate run_config(const RouterOptions& options) {
  Aggregate agg;
  for (const auto& [name, spec] : suite::switchbox_suite()) {
    const Problem problem = spec.to_problem();
    const auto t0 = std::chrono::steady_clock::now();
    IncrementalRouter router(problem, options);
    const RouteOutcome out = router.run();
    agg.ms += std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    const VerifyReport report = verify(problem, router.grid());
    agg.completed += report.completed_net_count;
    agg.routable += report.routable_net_count;
    agg.wire += report.total_wire_nodes;
    agg.expansions += out.stats.expansions;
    agg.weak += out.stats.weak_modifications;
    agg.strong += out.stats.strong_ripups;
  }
  return agg;
}

}  // namespace

int main() {
  struct Config {
    std::string name;
    bool weak;
    bool strong;
  };
  const Config configs[] = {
      {"no modification", false, false},
      {"weak only", true, false},
      {"strong only", false, true},
      {"weak + strong (full)", true, true},
  };

  Table table({"configuration", "nets routed", "completion %", "weak",
               "strong rip-ups", "wire", "search expansions", "ms"});
  for (const Config& c : configs) {
    RouterOptions options;
    options.enable_weak = c.weak;
    options.enable_strong = c.strong;
    const Aggregate agg = run_config(options);
    table.add_row({
        c.name,
        std::to_string(agg.completed) + "/" + std::to_string(agg.routable),
        Table::num(100.0 * agg.completed / agg.routable, 1),
        std::to_string(agg.weak),
        std::to_string(agg.strong),
        std::to_string(agg.wire),
        std::to_string(agg.expansions),
        Table::num(agg.ms, 1),
    });
  }

  std::cout << "Table 3: modification-stage ablation over the full switchbox "
               "suite.\n\n";
  table.print(std::cout);
  std::cout << "\nReading: each stage added recovers nets; the full "
               "configuration dominates, with\nweak modification resolving "
               "conflicts at a fraction of strong's search cost.\n";
  return 0;
}
