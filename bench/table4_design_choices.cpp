// Table 4 — ablation of the secondary design choices DESIGN.md calls out:
//
//   (a) net-ordering heuristic (most-constrained-first vs largest-first vs
//       netlist order), on both problem families;
//   (b) weak-probe retries with victim freezing (the anti-deadlock device);
//   (c) the post-routing clean-up pass (wire/via recovery at zero
//       completion risk).

#include <iostream>

#include "bench_suite/suite.hpp"
#include "channel/channel_analysis.hpp"
#include "channel/channel_incremental.hpp"
#include "core/incremental_router.hpp"
#include "io/table.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

namespace {

struct SuiteScore {
  int completed = 0;
  int routable = 0;
};

SuiteScore switchbox_score(const RouterOptions& options) {
  SuiteScore s;
  for (const auto& [name, spec] : suite::switchbox_suite()) {
    const Problem p = spec.to_problem();
    IncrementalRouter router(p, options);
    router.run();
    const VerifyReport report = verify(p, router.grid());
    s.completed += report.completed_net_count;
    s.routable += report.routable_net_count;
  }
  return s;
}

struct ChannelScore {
  int routed = 0;
  int excess_tracks = 0;  ///< sum over routed channels of tracks - density
};

ChannelScore channel_score(const RouterOptions& options) {
  ChannelScore s;
  RouteRequest base;
  base.options = options;
  for (const auto& [name, spec] : suite::channel_suite()) {
    const auto res = route_channel(spec, base, 4);
    if (!res.success) continue;
    ++s.routed;
    s.excess_tracks += res.tracks - ChannelAnalysis(spec).density();
  }
  return s;
}

std::string ordering_name(RouterOptions::Ordering o) {
  switch (o) {
    case RouterOptions::Ordering::kMostConstrainedFirst:
      return "most-constrained-first";
    case RouterOptions::Ordering::kLargestFirst:
      return "largest-first";
    case RouterOptions::Ordering::kAsGiven:
      return "netlist order";
    case RouterOptions::Ordering::kShuffled:
      return "shuffled";
  }
  return "?";
}

}  // namespace

int main() {
  std::cout << "Table 4: secondary design-choice ablations.\n\n";

  {
    Table table({"net ordering", "switchbox completion %",
                 "channels routed (of " +
                     std::to_string(suite::channel_suite().size()) + ")",
                 "excess tracks vs density"});
    for (const auto ordering : {RouterOptions::Ordering::kMostConstrainedFirst,
                                RouterOptions::Ordering::kLargestFirst,
                                RouterOptions::Ordering::kAsGiven}) {
      RouterOptions options;
      options.ordering = ordering;
      const SuiteScore s = switchbox_score(options);
      const ChannelScore c = channel_score(options);
      table.add_row({
          ordering_name(ordering),
          Table::num(100.0 * s.completed / s.routable, 1),
          std::to_string(c.routed),
          std::to_string(c.excess_tracks),
      });
    }
    std::cout << "(a) net ordering (default: most-constrained-first — it "
                 "wins on both families\n    once probe retries and history "
                 "costs suppress rip-up thrash):\n\n";
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    Table table({"weak probe retries", "switchbox completion %"});
    for (const int retries : {0, 1, 2, 3, 6}) {
      RouterOptions options;
      options.weak_probe_retries = retries;
      const SuiteScore s = switchbox_score(options);
      table.add_row({
          std::to_string(retries),
          Table::num(100.0 * s.completed / s.routable, 1),
      });
    }
    std::cout << "(b) weak-probe retries with victim freezing (0 = first "
                 "failed probe escalates\n    straight to rip-up):\n\n";
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    Table table({"clean-up passes", "wire cells", "vias", "completion %"});
    for (const int passes : {0, 1, 2, 4}) {
      int wire = 0, vias = 0, completed = 0, routable = 0;
      for (const auto& [name, spec] : suite::switchbox_suite()) {
        const Problem p = spec.to_problem();
        IncrementalRouter router(p);
        router.run();
        if (passes > 0) router.improve(passes);
        const VerifyReport report = verify(p, router.grid());
        wire += report.total_wire_nodes;
        vias += report.total_vias;
        completed += report.completed_net_count;
        routable += report.routable_net_count;
      }
      table.add_row({
          std::to_string(passes),
          std::to_string(wire),
          std::to_string(vias),
          Table::num(100.0 * completed / routable, 1),
      });
    }
    std::cout << "(c) post-routing clean-up passes (improve()):\n\n";
    table.print(std::cout);
  }

  std::cout << "\nReading: most-constrained-first dominates both families; "
               "probe retries are the\ncheap half of deadlock avoidance; "
               "clean-up recovers wire and vias left by\nmodification "
               "without ever costing a completion.\n";
  return 0;
}
