// ECO delta-routing speedup bench — what an incremental session buys over
// re-routing from scratch (DESIGN.md §2.4).
//
// The instance: a hand-crafted 200-cell (20x10) two-layer region with 12
// mostly-local two-pin nets, six per half. The edit: one pin of one
// left-half net moves two cells. The delta engine's invalidation rule keeps
// every net whose inflated footprint misses the dirty box, so the right
// half must survive untouched — the bench hard-fails (exit 1) unless the
// delta run re-routes strictly fewer nets than from-scratch routing of the
// edited problem attempts.
//
// Gated metrics (scripts/bench.sh --check):
//   rerouted_nets / preserved_nets   exact — the invalidation partition is
//                                    a pure function of the instance
//   preserved_fingerprint            exact — folded wire fingerprint of the
//                                    preserved nets: byte-identity of the
//                                    warm start, not just its size
//   delta_expansions / scratch_expansions   exact — search-work ledger
//   delta_wall_ms                    lower-better — the latency the session
//                                    API actually serves
// Informational: scratch_wall_ms, speedup (derived ratio, host-dependent).

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>

#include "bench_suite/report.hpp"
#include "core/api.hpp"
#include "core/delta.hpp"
#include "io/table.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

namespace {

constexpr int kRounds = 200;  // repeat the timed runs: sub-ms singles are noise

/// 20x10 region, 12 local two-pin nets: one left-half and one right-half
/// net per row 1..6, all spans short of the x = 10 midline.
Problem eco_instance() {
  Problem p{Region(20, 10)};
  for (int i = 0; i < 6; ++i) {
    const NetId left = p.add_net("left" + std::to_string(i));
    p.net(left).pins = {{{2, 1 + i}, Layer::kMetal1, true},
                        {{7, 1 + i}, Layer::kMetal1, true}};
    const NetId right = p.add_net("right" + std::to_string(i));
    p.net(right).pins = {{{12, 1 + i}, Layer::kMetal1, true},
                         {{17, 1 + i}, Layer::kMetal1, true}};
  }
  return p;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json <path>]\n";
      return 2;
    }
  }

  const Problem base = eco_instance();
  RouteRequest base_request;
  base_request.problem = &base;
  const RouteResult base_result = route(base_request);
  if (!base_result.status.ok() || !base_result.failed.empty()) {
    std::cerr << "error: base instance did not route clean\n";
    return 1;
  }

  // The edit: the right pin of net "left0" moves to a free cell nearby.
  ProblemEdit edit;
  edit.move_pins.push_back({0, 1, {9, 2}});

  DeltaRequest delta_request;
  delta_request.base_problem = &base;
  delta_request.base_layout = &base_result.grid;
  delta_request.edit = edit;

  // Timed runs. Every round recomputes the full delta (plan + warm replay +
  // re-route) and the full from-scratch route of the edited problem; both
  // are deterministic, so only the clock varies across rounds.
  DeltaResult delta = route_delta(delta_request);
  const auto t_delta = std::chrono::steady_clock::now();
  for (int r = 0; r < kRounds; ++r) delta = route_delta(delta_request);
  const double delta_ms = ms_since(t_delta) / kRounds;

  RouteRequest scratch_request;
  scratch_request.problem = &delta.edited;
  RouteResult scratch = route(scratch_request);
  const auto t_scratch = std::chrono::steady_clock::now();
  for (int r = 0; r < kRounds; ++r) scratch = route(scratch_request);
  const double scratch_ms = ms_since(t_scratch) / kRounds;

  // Correctness before speed: the differential-equivalence contract.
  const auto eq = verify_delta_equivalence(delta.edited, delta.result.grid,
                                           base_result.grid, delta.preserved);
  if (!eq.equivalent()) {
    std::cerr << "error: delta result broke the equivalence contract ("
              << eq.delta.violations.size() << " violations, "
              << eq.changed_preserved.size() << " changed preserved nets)\n";
    return 1;
  }
  // The honest-speedup invariant this bench exists to gate: the delta run
  // must re-route strictly fewer nets than the from-scratch run attempts.
  const int scratch_nets = delta.edited.net_count();
  if (static_cast<int>(delta.rerouted.size()) >= scratch_nets) {
    std::cerr << "error: delta re-routed " << delta.rerouted.size()
              << " nets, not fewer than the " << scratch_nets
              << " a from-scratch run attempts\n";
    return 1;
  }

  // Byte-identity fingerprint of the preserved set, folded to 32 bits so
  // the value survives the JSON double round-trip exactly.
  std::uint64_t fingerprint = 0;
  for (const NetId id : delta.preserved)
    fingerprint ^= net_wire_fingerprint(delta.result.grid, id);
  const double folded_fingerprint =
      static_cast<double>((fingerprint ^ (fingerprint >> 32)) & 0xffffffffull);

  const double speedup = scratch_ms / delta_ms;

  bench::BenchReport report = bench::make_report("eco_speedup");
  report.add("nets", scratch_nets, bench::Gate::kExact);
  report.add("rerouted_nets", static_cast<double>(delta.rerouted.size()),
             bench::Gate::kExact);
  report.add("preserved_nets", static_cast<double>(delta.preserved.size()),
             bench::Gate::kExact);
  report.add("preserved_fingerprint", folded_fingerprint,
             bench::Gate::kExact);
  report.add("delta_failed", static_cast<double>(delta.result.failed.size()),
             bench::Gate::kExact);
  report.add("scratch_failed", static_cast<double>(scratch.failed.size()),
             bench::Gate::kExact);
  report.add("delta_expansions",
             static_cast<double>(delta.result.stats.expansions),
             bench::Gate::kExact);
  report.add("scratch_expansions",
             static_cast<double>(scratch.stats.expansions),
             bench::Gate::kExact);
  report.add("delta_wall_ms", delta_ms, bench::Gate::kLowerBetter, 1.0);
  report.add("scratch_wall_ms", scratch_ms);
  report.add("speedup", speedup);

  Table table({"run", "nets routed", "failed", "expansions", "wall ms"});
  table.add_row({"delta", std::to_string(delta.rerouted.size()),
                 std::to_string(delta.result.failed.size()),
                 std::to_string(delta.result.stats.expansions),
                 Table::num(delta_ms, 3)});
  table.add_row({"scratch", std::to_string(scratch_nets),
                 std::to_string(scratch.failed.size()),
                 std::to_string(scratch.stats.expansions),
                 Table::num(scratch_ms, 3)});

  std::cout << "ECO delta speedup: single pin move on a 200-cell instance, "
            << delta.edited.net_count() << " nets\n(mean of " << kRounds
            << " rounds; preserved nets replayed byte-identically — "
               "fingerprint gated).\n\n";
  table.print(std::cout);
  std::cout << "\npreserved " << delta.preserved.size() << "/" << scratch_nets
            << " nets, re-routed " << delta.rerouted.size() << ", speedup "
            << Table::num(speedup, 2) << "x\n";

  if (!json_path.empty()) {
    const Status st = bench::write_report_file(report, json_path);
    if (!st.ok()) {
      std::cerr << "error: " << st.to_string() << "\n";
      return 1;
    }
  }
  return 0;
}
