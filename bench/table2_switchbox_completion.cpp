// Table 2 — switchbox routing: completion with the full incremental router
// versus the plain maze baseline (Lee-style: same search, no modification).
//
// Reproduces the claim family "on all switchbox examples the router
// performed as well or better than existing algorithms": the value of
// rip-up shows as the completion gap over the no-modification baseline on
// the same instances, with the difficult (Burstein-class, near-saturated)
// boxes exposing the largest gaps.

#include <chrono>
#include <iostream>

#include "bench_suite/suite.hpp"
#include "core/incremental_router.hpp"
#include "io/table.hpp"
#include "verify/verify.hpp"

using namespace gridroute;

namespace {

struct RowResult {
  double completion = 0;
  int wire = 0;
  int vias = 0;
  RouteStats stats;
  double ms = 0;
};

RowResult run(const Problem& problem, const RouterOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  IncrementalRouter router(problem, options);
  const RouteOutcome out = router.run();
  RowResult r;
  r.ms = std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count();
  const VerifyReport report = verify(problem, router.grid());
  r.completion = report.drc_clean() ? report.completion_rate() : -1.0;
  r.wire = report.total_wire_nodes;
  r.vias = report.total_vias;
  r.stats = out.stats;
  return r;
}

}  // namespace

int main() {
  Table table({"switchbox", "size", "nets", "plain %", "full %", "weak",
               "strong", "wire", "vias", "ms"});

  for (const auto& [name, spec] : suite::switchbox_suite()) {
    const Problem problem = spec.to_problem();

    RouterOptions plain;
    plain.enable_weak = false;
    plain.enable_strong = false;
    const RowResult base = run(problem, plain);
    const RowResult full = run(problem, RouterOptions{});

    table.add_row({
        name,
        std::to_string(spec.width()) + "x" + std::to_string(spec.height()),
        std::to_string(problem.net_count()),
        Table::num(base.completion * 100, 0),
        Table::num(full.completion * 100, 0),
        std::to_string(full.stats.weak_modifications),
        std::to_string(full.stats.strong_ripups),
        std::to_string(full.wire),
        std::to_string(full.vias),
        Table::num(full.ms, 1),
    });
  }

  std::cout << "Table 2: switchbox completion, plain maze vs. full "
               "incremental router\n(same search and cost model; only the "
               "modification stages differ).\n\n";
  table.print(std::cout);
  std::cout << "\nReading: modification never loses a net and recovers most "
               "or all of the nets the\nplain router leaves unrouted; the "
               "Burstein-class boxes are deliberately\nnear-saturated and "
               "bound what any two-layer router can complete.\n";
  return 0;
}
