#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "core/incremental_router.hpp"
#include "maze/maze_router.hpp"
#include "search/bucket_queue.hpp"
#include "search/goal_search.hpp"
#include "search/search_arena.hpp"
#include "util/rng.hpp"

namespace gridroute {
namespace {

// ---------------------------------------------------------------------------
// SearchArena
// ---------------------------------------------------------------------------

TEST(SearchArenaTest, RelaxKeepsStrictImprovementsOnly) {
  SearchArena arena;
  arena.resize(8, 8);
  arena.begin_search();
  EXPECT_TRUE(arena.relax(3, 10, -1));
  EXPECT_FALSE(arena.relax(3, 10, 1));  // tie: the earlier parent stays
  EXPECT_TRUE(arena.relax(3, 9, 2));
  EXPECT_FALSE(arena.relax(3, 12, 4));
  EXPECT_EQ(arena.cost(3), 9);
  EXPECT_EQ(arena.parent(3), 2);
  EXPECT_TRUE(arena.current(3, 9));
  EXPECT_FALSE(arena.current(3, 10));
  EXPECT_TRUE(arena.visited(3));
  EXPECT_FALSE(arena.visited(4));
}

TEST(SearchArenaTest, BeginSearchInvalidatesEverything) {
  SearchArena arena;
  arena.resize(4, 4);
  arena.begin_search();
  ASSERT_TRUE(arena.relax(1, 5, -1));
  arena.mark_target(2);
  EXPECT_TRUE(arena.is_target(2));
  arena.begin_search();
  EXPECT_FALSE(arena.visited(1));
  EXPECT_FALSE(arena.is_target(2));
}

TEST(SearchArenaTest, EpochWrapClearsStaleStamps) {
  SearchArena arena;
  arena.resize(4, 4);
  arena.set_epoch(std::numeric_limits<std::uint32_t>::max() - 1);
  arena.begin_search();  // epoch = max
  ASSERT_TRUE(arena.relax(0, 7, -1));
  arena.mark_target(1);
  arena.begin_search();  // wraps: without the reset, stamp 0 == epoch 0
  EXPECT_EQ(arena.epoch(), 1u);
  EXPECT_FALSE(arena.visited(0));
  EXPECT_FALSE(arena.is_target(1));
  EXPECT_TRUE(arena.relax(0, 3, -1));
  EXPECT_EQ(arena.cost(0), 3);
}

TEST(SearchArenaTest, ResizeIsNoOpAtSameSizeAndResetsOtherwise) {
  SearchArena arena;
  arena.resize(4, 4);
  arena.begin_search();
  ASSERT_TRUE(arena.relax(1, 5, -1));
  arena.resize(4, 4);  // same size: stamps survive
  EXPECT_TRUE(arena.visited(1));
  arena.resize(20, 4);  // new state space: everything restarts stale
  EXPECT_FALSE(arena.visited(1));
  EXPECT_EQ(arena.state_count(), 20u);
  EXPECT_EQ(arena.node_count(), 4u);
}

// ---------------------------------------------------------------------------
// BucketQueue vs HeapQueue (queue-level differential)
// ---------------------------------------------------------------------------

TEST(BucketQueueTest, FifoTiesPopInInsertionOrder) {
  BucketQueue<TieOrder::kFifo> q;
  q.reset(4);
  q.push(0, 30);
  q.push(0, 10);
  q.push(0, 20);
  std::int64_t p = 0;
  std::uint32_t v = 0;
  ASSERT_TRUE(q.pop(p, v));
  EXPECT_EQ(v, 30u);
  ASSERT_TRUE(q.pop(p, v));
  EXPECT_EQ(v, 10u);
  ASSERT_TRUE(q.pop(p, v));
  EXPECT_EQ(v, 20u);
  EXPECT_FALSE(q.pop(p, v));
}

TEST(BucketQueueTest, ByValueTiesPopAscending) {
  BucketQueue<TieOrder::kByValue> q;
  q.reset(4);
  q.push(5, 30);
  q.push(5, 10);
  q.push(5, 20);
  std::int64_t p = 0;
  std::uint32_t v = 0;
  ASSERT_TRUE(q.pop(p, v));
  EXPECT_EQ(p, 5);
  EXPECT_EQ(v, 10u);
  ASSERT_TRUE(q.pop(p, v));
  EXPECT_EQ(v, 20u);
  ASSERT_TRUE(q.pop(p, v));
  EXPECT_EQ(v, 30u);
}

TEST(BucketQueueTest, OverflowEntriesComeBackSorted) {
  // Span 4, pushes far beyond the window (PathFinder-history style jumps).
  BucketQueue<TieOrder::kByValue> q;
  q.reset(4);
  q.push(0, 1);
  q.push(100'000'000, 2);
  q.push(3, 3);
  q.push(200'000'005, 4);
  q.push(100'000'000, 0);
  const std::pair<std::int64_t, std::uint32_t> expected[] = {
      {0, 1}, {3, 3}, {100'000'000, 0}, {100'000'000, 2}, {200'000'005, 4}};
  for (const auto& [ep, ev] : expected) {
    std::int64_t p = 0;
    std::uint32_t v = 0;
    ASSERT_TRUE(q.pop(p, v));
    EXPECT_EQ(p, ep);
    EXPECT_EQ(v, ev);
  }
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueueTest, ResetReusesTheQueueCleanly) {
  BucketQueue<TieOrder::kFifo> q;
  q.reset(8);
  q.push(2, 7);
  q.push(900, 8);  // parked in overflow
  q.reset(8);
  EXPECT_TRUE(q.empty());
  q.push(1, 5);
  std::int64_t p = 0;
  std::uint32_t v = 0;
  ASSERT_TRUE(q.pop(p, v));
  EXPECT_EQ(p, 1);
  EXPECT_EQ(v, 5u);
  EXPECT_FALSE(q.pop(p, v));
}

template <TieOrder Order>
void run_queue_differential(std::uint64_t seed) {
  BucketQueue<Order> bucket;
  HeapQueue<Order> heap;
  bucket.reset(16);
  heap.reset(16);
  Rng rng(seed);
  std::int64_t floor = 0;  // pushes must be >= the last pop (monotonicity)
  int live = 0;
  for (int step = 0; step < 4000; ++step) {
    if (live == 0 || rng.next_bool(0.55)) {
      // Mostly near the pop floor, occasionally far past the span so the
      // overflow heap and the window jump both get exercised.
      const std::int64_t delta = rng.next_bool(0.1)
                                     ? rng.next_int(17, 1'000'000)
                                     : rng.next_int(0, 15);
      const auto value = static_cast<std::uint32_t>(rng.next_below(64));
      bucket.push(floor + delta, value);
      heap.push(floor + delta, value);
      ++live;
    } else {
      std::int64_t pb = 0, ph = 0;
      std::uint32_t vb = 0, vh = 0;
      ASSERT_TRUE(bucket.pop(pb, vb));
      ASSERT_TRUE(heap.pop(ph, vh));
      ASSERT_EQ(pb, ph) << "step " << step;
      ASSERT_EQ(vb, vh) << "step " << step;
      floor = pb;
      --live;
    }
  }
  while (live-- > 0) {
    std::int64_t pb = 0, ph = 0;
    std::uint32_t vb = 0, vh = 0;
    ASSERT_TRUE(bucket.pop(pb, vb));
    ASSERT_TRUE(heap.pop(ph, vh));
    ASSERT_EQ(pb, ph);
    ASSERT_EQ(vb, vh);
  }
  EXPECT_TRUE(bucket.empty());
  EXPECT_TRUE(heap.empty());
}

TEST(BucketQueueTest, MatchesHeapOnRandomMonotoneSequencesFifo) {
  for (std::uint64_t seed : {1u, 2u, 3u}) run_queue_differential<TieOrder::kFifo>(seed);
}

TEST(BucketQueueTest, MatchesHeapOnRandomMonotoneSequencesByValue) {
  for (std::uint64_t seed : {4u, 5u, 6u})
    run_queue_differential<TieOrder::kByValue>(seed);
}

// ---------------------------------------------------------------------------
// Router-level differential: bucket kernel vs reference heap kernel must
// return identical costs, node sequences, and expansion counts on suite
// instances — heuristic on and off, pushing on and off.
// ---------------------------------------------------------------------------

void expect_identical(const SearchResult& bucket, const SearchResult& heap,
                      const char* what, int trial) {
  ASSERT_EQ(bucket.found, heap.found) << what << " trial " << trial;
  EXPECT_EQ(bucket.cost, heap.cost) << what << " trial " << trial;
  EXPECT_EQ(bucket.path.nodes, heap.path.nodes) << what << " trial " << trial;
  EXPECT_EQ(bucket.crossed, heap.crossed) << what << " trial " << trial;
}

/// Runs `trials` random queries on a routed suite instance through both
/// queue kinds of both routers; returns the number of differential query
/// pairs executed.
int run_router_differential(const Problem& problem, std::uint64_t seed,
                            int trials) {
  // Route the instance first so queries see a realistically occupied grid
  // (owned wire, foreign wire, vias) rather than an empty box.
  IncrementalRouter router(problem);
  router.run();
  const RoutingGrid& grid = router.grid();
  const PinBlocks pins(problem);

  WeightedMazeRouter bucket(grid, pins);
  WeightedMazeRouter heap(grid, pins);
  heap.set_queue_kind(SearchQueue::kHeap);
  EXPECT_EQ(bucket.queue_kind(), SearchQueue::kBucket);
  EXPECT_EQ(heap.queue_kind(), SearchQueue::kHeap);
  LeeRouter lee_bucket(grid, pins);
  LeeRouter lee_heap(grid, pins);
  lee_heap.set_queue_kind(SearchQueue::kHeap);

  const Rect b = problem.region().bounds();
  Rng rng(seed);
  std::vector<int> history(static_cast<std::size_t>(b.width()) *
                           static_cast<std::size_t>(b.height()));
  for (int& h : history) h = rng.next_bool(0.3) ? rng.next_int(1, 400) : 0;

  int queries = 0;
  for (int trial = 0; trial < trials; ++trial) {
    SearchRequest req;
    req.net = static_cast<NetId>(rng.next_below(
        static_cast<std::uint64_t>(problem.net_count())));
    const int pairs = rng.next_int(1, 2);
    for (int k = 0; k < pairs; ++k) {
      req.sources.push_back({{rng.next_int(b.lo.x, b.hi.x),
                              rng.next_int(b.lo.y, b.hi.y)},
                             rng.next_bool(0.5) ? Layer::kMetal1
                                                : Layer::kMetal2});
      req.targets.push_back({{rng.next_int(b.lo.x, b.hi.x),
                              rng.next_int(b.lo.y, b.hi.y)},
                             rng.next_bool(0.5) ? Layer::kMetal1
                                                : Layer::kMetal2});
    }
    req.allow_push = rng.next_bool(0.5);
    if (req.allow_push && rng.next_bool(0.5)) req.push_history = &history;

    // Cycle all three future-cost modes: bucket-vs-heap identity must hold
    // for the sharper residual bound exactly as it does for bbox-Manhattan
    // and plain Dijkstra (DESIGN.md §2.1g).
    const FutureCost modes[] = {FutureCost::kResidual,
                                FutureCost::kBboxManhattan, FutureCost::kNone};
    bucket.set_future_cost(modes[trial % 3]);
    heap.set_future_cost(modes[trial % 3]);
    const SearchResult wb = bucket.route(req);
    const SearchResult wh = heap.route(req);
    expect_identical(wb, wh, "weighted", trial);
    EXPECT_EQ(bucket.last_expansions(), heap.last_expansions())
        << "weighted trial " << trial;
    ++queries;

    const SearchResult lb = lee_bucket.route(req);
    const SearchResult lh = lee_heap.route(req);
    expect_identical(lb, lh, "lee", trial);
    EXPECT_EQ(lee_bucket.last_expansions(), lee_heap.last_expansions())
        << "lee trial " << trial;
    ++queries;
  }
  return queries;
}

TEST(SearchDifferentialTest, BucketKernelMatchesHeapAcrossSuiteQueries) {
  int queries = 0;
  queries += run_router_differential(
      suite::burstein_class_switchbox(11).to_problem(), 101, 40);
  queries += run_router_differential(
      suite::random_switchbox(21, 18, 12, 14, 4, 0.6).to_problem(), 202, 40);
  queries += run_router_differential(suite::macrocell_region(31), 303, 40);
  EXPECT_GE(queries, 200);
}

// A lent arena must be invisible end to end: routing a whole instance with
// shared scratch gives exactly the result of a router-owned arena.
TEST(SearchDifferentialTest, EndToEndRoutingUnchangedBySharedArena) {
  const Problem p = suite::burstein_class_switchbox(7).to_problem();
  RouteRequest request;
  request.problem = &p;
  const RouteResult base = route(request);
  SearchArena arena;
  request.arena = &arena;
  const RouteResult with_arena = route(request);
  EXPECT_EQ(base.stats.nets_routed, with_arena.stats.nets_routed);
  EXPECT_EQ(base.stats.expansions, with_arena.stats.expansions);
  EXPECT_EQ(base.failed, with_arena.failed);
}

}  // namespace
}  // namespace gridroute
