#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/incremental_router.hpp"
#include "io/solution_format.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

/// Property tests for the verifier and the solution parser acting as a
/// unit: take a layout the router completed (and that verifies clean),
/// corrupt it in a class-specific way, and require that *some* independent
/// check rejects it — parse_solution() throws, or verify() reports a
/// violation / an incomplete net. The verifier shares no code with the
/// router, so these are the checks that would catch a router (or wave
/// engine replay) bug that slipped past the differential tests.

struct RoutedInstance {
  Problem problem;
  RoutingGrid grid;
  std::string text;  ///< canonical solution serialization
};

/// First fully-routable, clean-verifying instance at or after `seed` —
/// the corruption properties only make sense against an all_ok baseline.
RoutedInstance routed_switchbox(std::uint64_t seed) {
  for (std::uint64_t s = seed; s < seed + 50; ++s) {
    Problem p = suite::random_switchbox(s, 18, 14, 8, /*max_pins_per_net=*/3,
                                        /*fill=*/0.4)
                    .to_problem();
    IncrementalRouter router(p);
    if (!router.run().complete()) continue;
    if (!verify(p, router.grid()).all_ok()) continue;
    std::string text = solution_to_string(p, router.grid());
    return {std::move(p), router.grid(), std::move(text)};
  }
  ADD_FAILURE() << "no routable instance within 50 seeds of " << seed;
  return {Problem{Region(2, 2)}, RoutingGrid(Region(2, 2), 0), ""};
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// True when the corrupted text is rejected by the parser or flagged by
/// the verifier. `materially_changed` reports whether the mutation
/// actually altered the layout (some seg drops are redundant: junction
/// cells covered by a crossing run survive the drop).
bool corruption_caught(const RoutedInstance& inst, const std::string& mutant,
                       bool* materially_changed) {
  *materially_changed = true;
  try {
    const RoutingGrid grid = parse_solution_string(mutant, inst.problem);
    if (solution_to_string(inst.problem, grid) == inst.text) {
      *materially_changed = false;
      return false;
    }
    return !verify(inst.problem, grid).all_ok();
  } catch (const std::runtime_error&) {
    return true;
  }
}

TEST(VerifyProperty, DroppedSegLinesLeaveOpensThatAreCaught) {
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    const RoutedInstance inst = routed_switchbox(seed);
    const std::vector<std::string> lines = split_lines(inst.text);
    int material = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (!starts_with(lines[i], "seg ")) continue;
      std::vector<std::string> mutated = lines;
      mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(i));
      bool changed = false;
      const bool caught =
          corruption_caught(inst, join_lines(mutated), &changed);
      if (!changed) continue;  // redundant run; layout identical
      ++material;
      EXPECT_TRUE(caught) << "seed " << seed << ": silently accepted drop of '"
                          << lines[i] << "'";
    }
    EXPECT_GT(material, 0) << "seed " << seed;
  }
}

TEST(VerifyProperty, SegLinesReassignedToAnotherNetAreCaught) {
  // Moving a seg line under a different net header creates a short: either
  // the thief's wire collides with the victim's remaining cells (parser
  // conflict), or the victim loses coverage / the thief buries a pin
  // (verifier). Nothing may pass.
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const RoutedInstance inst = routed_switchbox(seed);
    const std::vector<std::string> lines = split_lines(inst.text);
    std::vector<std::size_t> headers;
    for (std::size_t i = 0; i < lines.size(); ++i)
      if (starts_with(lines[i], "net ")) headers.push_back(i);
    ASSERT_GE(headers.size(), 2u);
    int material = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (!starts_with(lines[i], "seg ")) continue;
      // Owner block = last header before the seg; thief = any other block.
      std::size_t owner = headers[0];
      for (const std::size_t h : headers)
        if (h < i) owner = h;
      const std::size_t thief = owner == headers[0] ? headers[1] : headers[0];
      std::vector<std::string> mutated = lines;
      const std::string seg = mutated[i];
      mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(i));
      const std::size_t insert_at = thief < i ? thief + 1 : thief;
      mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(insert_at),
                     seg);
      bool changed = false;
      const bool caught =
          corruption_caught(inst, join_lines(mutated), &changed);
      if (!changed) continue;
      ++material;
      EXPECT_TRUE(caught) << "seed " << seed << ": silently accepted theft of '"
                          << seg << "'";
    }
    EXPECT_GT(material, 0) << "seed " << seed;
  }
}

TEST(VerifyProperty, CorruptedViaCoordinatesAreCaught) {
  // Shifting a via off its anchor either lands it where the net does not
  // own both layers (parser: "not anchored") or removes the original
  // layer-to-layer connection (verifier: net splits in two).
  int vias_seen = 0;
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    const RoutedInstance inst = routed_switchbox(seed);
    const std::vector<std::string> lines = split_lines(inst.text);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (!starts_with(lines[i], "via ")) continue;
      ++vias_seen;
      int x = 0;
      int y = 0;
      std::istringstream in(lines[i].substr(4));
      ASSERT_TRUE(static_cast<bool>(in >> x >> y));
      std::vector<std::string> mutated = lines;
      mutated[i] = "via " + std::to_string(x + 1) + " " + std::to_string(y);
      bool changed = false;
      const bool caught =
          corruption_caught(inst, join_lines(mutated), &changed);
      if (!changed) continue;
      EXPECT_TRUE(caught) << "seed " << seed << ": silently accepted shift of '"
                          << lines[i] << "'";
    }
  }
  EXPECT_GT(vias_seen, 0);
}

TEST(VerifyProperty, OffGridViaIsRejectedByTheParser) {
  const RoutedInstance inst = routed_switchbox(11);
  std::vector<std::string> lines = split_lines(inst.text);
  // Append an out-of-bounds via to the last net block.
  lines.push_back("via 99 99");
  EXPECT_THROW(parse_solution_string(join_lines(lines), inst.problem),
               std::runtime_error);
}

TEST(VerifyProperty, ReleasedPinNodesFailPinCoverage) {
  // Direct grid corruption, no parser involved: releasing the wire under
  // any pin must flip that net's pins_covered (and with it all_ok).
  for (const std::uint64_t seed : {11u, 12u}) {
    RoutedInstance inst = routed_switchbox(seed);
    for (NetId id = 0; id < inst.problem.net_count(); ++id) {
      const Net& net = inst.problem.net(id);
      if (net.pins.size() < 2) continue;
      RoutingGrid grid = inst.grid;  // fresh copy per corruption
      // any_layer pins may be covered on either layer (or, at a via, on
      // both) — strip every node of the net at the pin cell.
      int released = 0;
      for (const Layer layer : {Layer::kMetal1, Layer::kMetal2}) {
        const GridPoint node{net.pins[0].pos, layer};
        if (grid.owner(node) == id && grid.release(node)) ++released;
      }
      ASSERT_GT(released, 0);
      const VerifyReport report = verify(inst.problem, grid);
      EXPECT_FALSE(report.all_ok());
      EXPECT_FALSE(report.nets[static_cast<std::size_t>(id)].pins_covered);
    }
  }
}

TEST(VerifyProperty, ForeignWireOnAPinIsABuriedPinViolation) {
  Problem p{Region(6, 4)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{0, 1}, Layer::kMetal1, false},
                   {{5, 1}, Layer::kMetal1, false}};
  const NetId b = p.add_net("b");
  p.net(b).pins = {{{0, 2}, Layer::kMetal1, false},
                   {{5, 2}, Layer::kMetal1, false}};
  RoutingGrid grid(p.region(), p.net_count());
  // b parks wire directly on a's pin while a is still unrouted.
  ASSERT_TRUE(grid.occupy({{0, 1}, Layer::kMetal1}, b));
  const VerifyReport report = verify(p, grid);
  EXPECT_FALSE(report.drc_clean());
  bool buried = false;
  for (const std::string& v : report.violations)
    if (v.find("buries") != std::string::npos) buried = true;
  EXPECT_TRUE(buried) << "no buried-pin violation reported";
}

// ---------------------------------------------------------------------------
// Multi-layer corruption classes (DESIGN.md §2.1h)
// ---------------------------------------------------------------------------

TEST(VerifyProperty, ViaStackWithMissingIntermediateCutIsDisconnected) {
  // A net spanning m1..m3 whose via stack omits the middle cut is two
  // electrical components, however complete its wire looks: the union-find
  // must refuse to bridge layers across the missing cut.
  Problem p{Region(4, 2, LayerStack(3))};
  const NetId id = p.add_net("n");
  p.net(id).pins = {{{0, 0}, layer_at(0), false},
                    {{3, 0}, layer_at(2), false}};
  RoutingGrid grid(p.region(), p.net_count());
  for (int k = 0; k < 3; ++k)
    ASSERT_TRUE(grid.occupy({{0, 0}, layer_at(k)}, id));
  for (int x = 1; x < 4; ++x)
    ASSERT_TRUE(grid.occupy({{x, 0}, layer_at(2)}, id));
  ASSERT_TRUE(grid.add_via({0, 0}, 0, id));  // cut 1 deliberately missing

  const VerifyReport report = verify(p, grid);
  EXPECT_FALSE(report.all_ok());
  EXPECT_TRUE(report.nets[0].pins_covered);  // wire is on both pins...
  EXPECT_FALSE(report.nets[0].connected);    // ...but not electrically one

  // The complete stack heals it.
  ASSERT_TRUE(grid.add_via({0, 0}, 1, id));
  EXPECT_TRUE(verify(p, grid).all_ok());
}

TEST(VerifyProperty, WrongWaySegmentOnADirectedLayerIsFlagged) {
  // Layer m1 is hard-directed horizontal: a vertical same-net adjacency on
  // it is a DRC violation even though the wire connects fine.
  Problem p{Region(3, 3, LayerStack{{Axis::kHorizontal, true},
                                    {Axis::kVertical, false}})};
  const NetId id = p.add_net("n");
  p.net(id).pins = {{{0, 0}, layer_at(0), false},
                    {{0, 2}, layer_at(0), false}};
  RoutingGrid grid(p.region(), p.net_count());
  for (int y = 0; y < 3; ++y)
    ASSERT_TRUE(grid.occupy({{0, y}, layer_at(0)}, id));

  const VerifyReport report = verify(p, grid);
  EXPECT_FALSE(report.drc_clean());
  bool wrong_way = false;
  for (const std::string& v : report.violations)
    if (v.find("wrong-way segment") != std::string::npos) wrong_way = true;
  EXPECT_TRUE(wrong_way) << "no wrong-way violation reported";

  // A one-step jog is legal even on the directed layer: the two via pads
  // touch wrong-way, but the connection genuinely rides the other layer,
  // so the adjacency is redundant metal, not a wrong-way segment.
  Problem jp{Region(4, 2, LayerStack{{Axis::kHorizontal, true},
                                     {Axis::kVertical, false}})};
  const NetId jid = jp.add_net("n");
  jp.net(jid).pins = {{{0, 0}, layer_at(0), false},
                      {{3, 1}, layer_at(0), false}};
  RoutingGrid jog(jp.region(), jp.net_count());
  for (int x = 0; x < 2; ++x)
    ASSERT_TRUE(jog.occupy({{x, 0}, layer_at(0)}, jid));
  for (int x = 1; x < 4; ++x)
    ASSERT_TRUE(jog.occupy({{x, 1}, layer_at(0)}, jid));
  for (int y = 0; y < 2; ++y) {
    ASSERT_TRUE(jog.occupy({{1, y}, layer_at(1)}, jid));
    ASSERT_TRUE(jog.add_via({1, y}, 0, jid));
  }
  EXPECT_TRUE(verify(jp, jog).all_ok());

  // The identical layout on the classic (soft-preference) stack is legal.
  Problem soft{Region(3, 3)};
  const NetId sid = soft.add_net("n");
  soft.net(sid).pins = p.net(id).pins;
  RoutingGrid soft_grid(soft.region(), soft.net_count());
  for (int y = 0; y < 3; ++y)
    ASSERT_TRUE(soft_grid.occupy({{0, y}, layer_at(0)}, sid));
  EXPECT_TRUE(verify(soft, soft_grid).all_ok());
}

TEST(VerifyProperty, PinBuriedUnderAForeignViaStackIsFlagged) {
  // Net b runs a full m1..m3 via stack through the cell where net a has its
  // middle-layer pin: a's pin node is foreign-owned — a buried pin, caught
  // on an interior layer of the stack, not just the classic two.
  Problem p{Region(4, 4, LayerStack(3))};
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{1, 1}, layer_at(1), false},
                   {{3, 3}, layer_at(1), false}};
  const NetId b = p.add_net("b");
  p.net(b).pins = {{{1, 0}, layer_at(0), false},
                   {{1, 3}, layer_at(2), false}};
  RoutingGrid grid(p.region(), p.net_count());
  for (int k = 0; k < 3; ++k)
    ASSERT_TRUE(grid.occupy({{1, 1}, layer_at(k)}, b));
  ASSERT_TRUE(grid.add_via({1, 1}, 0, b));
  ASSERT_TRUE(grid.add_via({1, 1}, 1, b));

  const VerifyReport report = verify(p, grid);
  EXPECT_FALSE(report.drc_clean());
  bool buried = false;
  for (const std::string& v : report.violations)
    if (v.find("buries") != std::string::npos) buried = true;
  EXPECT_TRUE(buried) << "no buried-pin violation for the via stack";
  EXPECT_FALSE(report.nets[0].pins_covered);
}

}  // namespace
}  // namespace gridroute
