// Differential fuzz anchoring the LayerStack refactor: with the default
// classic 2-layer stack, route(RouteRequest) must produce layouts, failed
// lists, stats and traces bit-identical to the pre-refactor router. The
// golden fingerprints in tests/data/layer_identity_golden.txt were generated
// from the tree *before* the N-layer refactor landed (same corpus, same
// hash), so a fingerprint mismatch here means the refactor changed observable
// 2-layer behavior — exactly the regression the refactor promises not to
// make.
//
// Regenerating (only legitimate when the corpus itself changes, never to
// paper over a behavior change):
//   GRIDROUTE_REGEN_GOLDEN=1 ./layer_identity_test
//
// GRIDROUTE_LAYER_INSTANCES=N shrinks the corpus to its first N instances
// (sanitizer legs in scripts/tier1.sh use this; the golden file always
// carries the full corpus, and the shrunk run checks a prefix).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "io/solution_format.hpp"
#include "obs/sinks.hpp"

namespace gridroute {
namespace {

std::string golden_path() {
#ifdef GR_TEST_DATA_DIR
  return std::string(GR_TEST_DATA_DIR) + "/layer_identity_golden.txt";
#else
  return "layer_identity_golden.txt";
#endif
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

struct Instance {
  std::string name;
  Problem problem;
  int improve_passes = 0;
};

// ~200 instances spanning every family the suite generates; sizes kept small
// enough that the whole corpus routes in well under a minute.
std::vector<Instance> corpus() {
  std::vector<Instance> out;
  auto name = [](const char* family, std::uint64_t seed) {
    return std::string(family) + "-" + std::to_string(seed);
  };
  // 80 plain random switchboxes, varied shapes.
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    int w = 10 + static_cast<int>(seed % 5);
    int h = 8 + static_cast<int>(seed % 4);
    int nets = 8 + static_cast<int>(seed % 5);
    out.push_back({name("random", seed),
                   suite::random_switchbox(seed, w, h, nets, 4, 0.55)
                       .to_problem(),
                   static_cast<int>(seed % 2)});
  }
  // 40 dense random switchboxes — exercises weak/strong modification.
  for (std::uint64_t seed = 200; seed < 240; ++seed) {
    out.push_back({name("dense", seed),
                   suite::random_switchbox(seed, 12, 10, 12, 4, 0.8)
                       .to_problem(),
                   static_cast<int>(seed % 2)});
  }
  // 24 short deutsch-class channels (M2-committed pins, channel geometry).
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    auto spec = suite::deutsch_class_channel(seed, 40, 7);
    out.push_back({name("deutsch", seed), spec.to_problem(9),
                   static_cast<int>(seed % 2)});
  }
  // 16 burstein-class switchboxes.
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    auto spec = suite::burstein_class_switchbox(seed, 15, 11, 14);
    out.push_back({name("burstein", seed), spec.to_problem(),
                   static_cast<int>(seed % 2)});
  }
  // 24 macro-cell regions — notches, per-layer obstacles, inside pins.
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    out.push_back({name("macro", seed),
                   suite::macrocell_region(seed, 24, 18, 10),
                   static_cast<int>(seed % 2)});
  }
  // 16 over-saturated switchboxes — non-empty failed lists.
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    out.push_back({name("overfilled", seed),
                   suite::overfilled_switchbox(seed).to_problem(),
                   static_cast<int>(seed % 2)});
  }
  return out;
}

// Everything observable about one routed instance, as one string: the full
// layout (maximal runs + vias), the failed-net list, the deterministic stats
// fields, and the complete JSONL trace (timestamp-free by design, so it is a
// pure function of routing decisions).
std::string observable_state(const Instance& inst) {
  std::ostringstream trace_text;
  obs::JsonlSink sink(trace_text);

  RouteRequest req;
  req.problem = &inst.problem;
  req.trace = &sink;
  req.improve_passes = inst.improve_passes;
  RouteResult result = route(req);

  std::ostringstream out;
  out << "layout\n" << solution_to_string(inst.problem, result.grid);
  out << "failed";
  for (NetId id : result.failed) out << ' ' << id;
  out << '\n';
  const RouteStats& s = result.stats;
  out << "stats " << s.nets_attempted << ' ' << s.nets_routed << ' '
      << s.connections_attempted << ' ' << s.connections_routed << ' '
      << s.weak_modifications << ' ' << s.weak_attempts << ' '
      << s.strong_ripups << ' ' << s.expansions << ' ' << s.waves << ' '
      << s.spec_commits << ' ' << s.spec_invalidations << '\n';
  out << "improved " << result.improved << '\n';
  out << "trace\n" << trace_text.str();
  return out.str();
}

int instance_limit(int full) {
  if (const char* env = std::getenv("GRIDROUTE_LAYER_INSTANCES")) {
    int n = std::atoi(env);
    if (n > 0 && n < full) return n;
  }
  return full;
}

TEST(LayerIdentity, ClassicStackMatchesPreRefactorGolden) {
  std::vector<Instance> instances = corpus();
  const bool regen = std::getenv("GRIDROUTE_REGEN_GOLDEN") != nullptr;

  if (regen) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    for (const auto& inst : instances) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%016llx",
                    static_cast<unsigned long long>(
                        fnv1a(observable_state(inst))));
      out << inst.name << ' ' << buf << '\n';
    }
    GTEST_SKIP() << "regenerated " << golden_path() << " ("
                 << instances.size() << " instances)";
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in) << "missing golden file " << golden_path();
  std::map<std::string, std::string> golden;
  std::string name, hash;
  while (in >> name >> hash) golden[name] = hash;
  ASSERT_GE(golden.size(), 200u) << "golden corpus unexpectedly small";
  ASSERT_EQ(golden.size(), instances.size())
      << "corpus and golden file disagree — regenerate from the pre-refactor "
         "tree, not this one";

  const int limit = instance_limit(static_cast<int>(instances.size()));
  int mismatches = 0;
  for (int i = 0; i < limit; ++i) {
    const Instance& inst = instances[static_cast<size_t>(i)];
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a(observable_state(inst))));
    auto it = golden.find(inst.name);
    ASSERT_NE(it, golden.end()) << inst.name;
    if (it->second != buf) {
      ++mismatches;
      ADD_FAILURE() << inst.name << ": layout/failed/stats/trace fingerprint "
                    << buf << " != pre-refactor golden " << it->second;
    }
  }
  EXPECT_EQ(mismatches, 0) << "of " << limit << " instances";
}

}  // namespace
}  // namespace gridroute
