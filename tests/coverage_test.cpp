#include <gtest/gtest.h>

#include <sstream>

#include "bench_suite/suite.hpp"
#include "channel/channel_analysis.hpp"
#include "channel/channel_incremental.hpp"
#include "channel/channel_routers.hpp"
#include "core/incremental_router.hpp"
#include "io/ascii_art.hpp"
#include "io/table.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

// ---------------------------------------------------------------------------
// Channel edge and failure paths
// ---------------------------------------------------------------------------

TEST(ChannelEdges, EmptyChannelEverywhere) {
  const ChannelSpec empty{{0, 0, 0}, {0, 0, 0}};
  EXPECT_EQ(empty.density(), 0);
  EXPECT_TRUE(ChannelAnalysis(empty).zones().empty());
  EXPECT_TRUE(route_left_edge(empty).success);
  EXPECT_TRUE(route_dogleg(empty).success);
  EXPECT_TRUE(route_yoshimura_kuh(empty).success);
  EXPECT_TRUE(route_greedy(empty).success);
}

TEST(ChannelEdges, SingleColumnThroughNet) {
  const ChannelSpec spec{{7}, {7}};
  EXPECT_EQ(spec.density(), 1);
  const ChannelResult res = route_greedy(spec);
  ASSERT_TRUE(res.success) << res.reason;
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
}

TEST(ChannelEdges, SparseNetNumbersSurvive) {
  // Net numbers need not be dense or small.
  const ChannelSpec spec{{500, 0, 99}, {99, 0, 500}};
  const ChannelResult res = route_greedy(spec);
  ASSERT_TRUE(res.success) << res.reason;
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
  EXPECT_EQ(spec.net_numbers(), (std::vector<int>{99, 500}));
}

TEST(ChannelEdges, GreedyReportsReasonWhenWindowTooSmall) {
  GreedyOptions tight;
  tight.max_extra_tracks = 0;
  tight.max_extra_columns = 0;
  // The pure 2-net cycle cannot be done in density tracks by a greedy sweep
  // without extra room.
  const ChannelResult res = route_greedy(suite::vcg_cycle_channel(), tight);
  if (!res.success) {
    EXPECT_FALSE(res.reason.empty());
    EXPECT_NE(res.reason.find("tracks"), std::string::npos);
  }
}

TEST(ChannelEdges, RealizeRejectsOverlappingSolutions) {
  const ChannelSpec spec{{1, 2}, {0, 0}};
  TrackSolution bogus;
  bogus.tracks = 1;
  bogus.horizontals = {{1, 1, 0, 1}, {2, 1, 1, 1}};  // both claim (1,1)
  EXPECT_THROW(realize(spec, bogus), std::logic_error);
}

TEST(ChannelEdges, IncrementalWindowRespected) {
  const ChannelSpec spec = suite::simple_channel();
  RouteRequest base;
  base.options = channel_router_options();
  const ChannelRouteResult res = route_channel(spec, base, 0);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.tracks, ChannelAnalysis(spec).density());
}

// ---------------------------------------------------------------------------
// Router diagnostics
// ---------------------------------------------------------------------------

TEST(RouterLog, NarratesModificationDecisions) {
  Problem p{Region(9, 5)};
  p.region().add_obstacle({{0, 2}, {8, 2}}, Layer::kMetal2);
  const NetId a = p.add_net("trunk");
  p.net(a).pins = {{{0, 2}, Layer::kMetal1, false},
                   {{8, 2}, Layer::kMetal1, false}};
  const NetId b = p.add_net("cross");
  p.net(b).pins = {{{2, 1}, Layer::kMetal1, false},
                   {{2, 3}, Layer::kMetal1, false}};

  std::ostringstream log;
  RouterOptions opts;
  opts.log = &log;
  opts.enable_weak = false;  // force the strong path for a rip-up line
  IncrementalRouter router(p, opts);
  ASSERT_TRUE(router.route_net(a));
  ASSERT_TRUE(router.route_net(b));
  const std::string text = log.str();
  EXPECT_NE(text.find("blocked; push probe"), std::string::npos);
  EXPECT_NE(text.find("strong: ripping 'trunk'"), std::string::npos);
}

TEST(RouterLog, SilentByDefault) {
  const Problem p = suite::dense_switchbox().to_problem();
  IncrementalRouter router(p);  // no log stream: must not crash on nullptr
  EXPECT_TRUE(router.run().complete());
}

// ---------------------------------------------------------------------------
// Rendering details
// ---------------------------------------------------------------------------

TEST(Render, ViaMapShowsNetSymbols) {
  Problem p{Region(3, 3)};
  const NetId a = p.add_net("a");
  RoutingGrid g(p.region(), 1);
  g.occupy({{1, 1}, Layer::kMetal1}, a);
  g.occupy({{1, 1}, Layer::kMetal2}, a);
  g.add_via({1, 1}, a);
  const std::string art = render(p, g);
  // The via column block contains the net symbol '0' in the middle row.
  EXPECT_NE(art.find("0"), std::string::npos);
  const std::string m1 = render_layer(p, g, Layer::kMetal1);
  EXPECT_EQ(m1, "...\n.0.\n...\n");
}

TEST(Render, ObstaclesOnOneLayerOnly) {
  Problem p{Region(3, 2)};
  p.region().add_obstacle({{0, 0}, {2, 0}}, Layer::kMetal2);
  RoutingGrid g(p.region(), 0);
  EXPECT_EQ(render_layer(p, g, Layer::kMetal1), "...\n...\n");
  EXPECT_EQ(render_layer(p, g, Layer::kMetal2), "...\n###\n");
}

// ---------------------------------------------------------------------------
// Cost model and regions
// ---------------------------------------------------------------------------

TEST(CostModel, UnitModelIsFlat) {
  const CostModel unit = CostModel::unit();
  EXPECT_EQ(unit.step, 1);
  EXPECT_EQ(unit.via, 1);
  EXPECT_EQ(unit.bend, 0);
  EXPECT_EQ(unit.wrong_way, 0);
}

TEST(Region, RoutableNodeCountMixesLayerBlocks) {
  Region r(4, 4);  // 32 nodes
  r.add_obstacle({{0, 0}, {1, 1}}, Layer::kMetal1);  // -4
  r.subtract({{3, 3}, {3, 3}});                      // -2
  EXPECT_EQ(r.routable_node_count(), 32 - 4 - 2);
}

TEST(Region, InBoundsVersusInRegion) {
  Region r(4, 4);
  r.subtract({{0, 0}, {0, 0}});
  EXPECT_TRUE(r.in_bounds({0, 0}));
  EXPECT_FALSE(r.in_region({0, 0}));
  EXPECT_FALSE(r.in_bounds({4, 0}));
}

TEST(Path, CountsEveryLayerChange) {
  Path p;
  p.nodes = {{{0, 0}, Layer::kMetal1}, {{0, 0}, Layer::kMetal2},
             {{0, 1}, Layer::kMetal2}, {{0, 1}, Layer::kMetal1},
             {{1, 1}, Layer::kMetal1}, {{1, 1}, Layer::kMetal2}};
  EXPECT_TRUE(p.well_formed());
  EXPECT_EQ(p.via_count(), 3);
}

// ---------------------------------------------------------------------------
// Table edge cases and suite determinism
// ---------------------------------------------------------------------------

TEST(TableEdges, EmptyTableStillPrintsHeader) {
  Table t({"only", "headers"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("only"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "only,headers\n");
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(SuiteDeterminism, NamedSuitesAreStable) {
  const auto a = suite::switchbox_suite();
  const auto b = suite::switchbox_suite();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].spec.top, b[i].spec.top);
    EXPECT_EQ(a[i].spec.left, b[i].spec.left);
  }
  const auto c = suite::channel_suite();
  const auto d = suite::channel_suite();
  ASSERT_EQ(c.size(), d.size());
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_EQ(c[i].spec.top, d[i].spec.top);
}

// ---------------------------------------------------------------------------
// Yoshimura-Kuh merge quality spot checks
// ---------------------------------------------------------------------------

TEST(YoshimuraKuhQuality, BeatsLeftEdgeOnMergeFriendlyChannel) {
  // Four short chained nets under one long net: LEA needs a track per
  // constraint level; merging shares tracks among the disjoint short nets.
  const ChannelSpec spec{{1, 1, 2, 2, 3, 3, 4, 4},
                         {5, 5, 5, 5, 5, 5, 5, 5}};
  const ChannelResult lea = route_left_edge(spec);
  const ChannelResult yk = route_yoshimura_kuh(spec);
  ASSERT_TRUE(lea.success);
  ASSERT_TRUE(yk.success) << yk.reason;
  EXPECT_LE(yk.tracks(), lea.tracks());
  RealizedChannel real = realize(spec, yk.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
}

}  // namespace
}  // namespace gridroute
