#include <gtest/gtest.h>

#include "bench_suite/suite.hpp"
#include "core/incremental_router.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

/// The canonical push scenario. Net `a` is routed first as a straight M1
/// trunk across row 2; the matching M2 row is an obstacle, so net `b`
/// (a short vertical at column 2) cannot cross row 2 anywhere without
/// entering a's wire. With weak modification, b pushes through and a is
/// repaired around it on M2; with only strong modification, a is ripped and
/// re-routed; with neither, b must fail.
struct PushScenario {
  PushScenario() : problem{Region(9, 5)} {
    problem.region().add_obstacle({{0, 2}, {8, 2}}, Layer::kMetal2);
    a = problem.add_net("a");
    problem.net(a).pins = {{{0, 2}, Layer::kMetal1, false},
                           {{8, 2}, Layer::kMetal1, false}};
    b = problem.add_net("b");
    problem.net(b).pins = {{{2, 1}, Layer::kMetal1, false},
                           {{2, 3}, Layer::kMetal1, false}};
  }

  Problem problem;
  NetId a = kNoNet;
  NetId b = kNoNet;
};

TEST(WeakModification, PushesBlockingSegmentAside) {
  PushScenario s;
  IncrementalRouter router(s.problem);
  ASSERT_TRUE(router.route_net(s.a));
  // a's trunk now owns the full row-2 corridor on M1.
  EXPECT_EQ(router.grid().owner({{2, 2}, Layer::kMetal1}), s.a);

  ASSERT_TRUE(router.route_net(s.b));
  EXPECT_EQ(router.stats().weak_modifications, 1);
  EXPECT_EQ(router.stats().strong_ripups, 0);
  // b took the contested cell; a detoured around it.
  EXPECT_EQ(router.grid().owner({{2, 2}, Layer::kMetal1}), s.b);
  EXPECT_TRUE(verify(s.problem, router.grid()).all_ok());
  // The victim's wire grew: its straight trunk now carries a detour.
  EXPECT_GT(router.grid().node_count(s.a), 9);
}

TEST(WeakModification, VictimWireStaysConnectedAfterRepair) {
  PushScenario s;
  IncrementalRouter router(s.problem);
  ASSERT_TRUE(router.route_net(s.a));
  ASSERT_TRUE(router.route_net(s.b));
  EXPECT_TRUE(net_routed_ok(s.problem, router.grid(), s.a));
  EXPECT_TRUE(net_routed_ok(s.problem, router.grid(), s.b));
}

TEST(StrongModification, RipsAndRequeuesWhenWeakDisabled) {
  PushScenario s;
  RouterOptions opts;
  opts.enable_weak = false;
  IncrementalRouter router(s.problem, opts);
  ASSERT_TRUE(router.route_net(s.a));
  ASSERT_TRUE(router.route_net(s.b));  // re-routes a internally
  EXPECT_EQ(router.stats().weak_modifications, 0);
  EXPECT_EQ(router.stats().strong_ripups, 1);
  EXPECT_TRUE(verify(s.problem, router.grid()).all_ok());
}

TEST(NoModification, BlockedConnectionFailsHonestly) {
  PushScenario s;
  RouterOptions opts;
  opts.enable_weak = false;
  opts.enable_strong = false;
  IncrementalRouter router(s.problem, opts);
  ASSERT_TRUE(router.route_net(s.a));
  EXPECT_FALSE(router.route_net(s.b));
  // a is untouched, b left no litter.
  EXPECT_TRUE(net_routed_ok(s.problem, router.grid(), s.a));
  EXPECT_EQ(router.grid().node_count(s.b), 0);
}

TEST(StrongModification, RespectsRipupBudget) {
  PushScenario s;
  RouterOptions opts;
  opts.enable_weak = false;
  opts.max_ripups_per_net = 0;  // budget exhausted from the start
  IncrementalRouter router(s.problem, opts);
  ASSERT_TRUE(router.route_net(s.a));
  EXPECT_FALSE(router.route_net(s.b));
  EXPECT_EQ(router.stats().strong_ripups, 0);
}

TEST(Run, FullRunResolvesPushScenarioRegardlessOfOrder) {
  // run() orders by span (b first) which avoids the conflict; the AsGiven
  // order routes a first and must trigger a modification. Both complete.
  for (const auto ordering : {RouterOptions::Ordering::kMostConstrainedFirst,
                              RouterOptions::Ordering::kAsGiven}) {
    PushScenario s;
    RouterOptions opts;
    opts.ordering = ordering;
    IncrementalRouter router(s.problem, opts);
    EXPECT_TRUE(router.run().complete());
    EXPECT_TRUE(verify(s.problem, router.grid()).all_ok());
  }
}

TEST(Run, DenseSwitchboxNeedsModification) {
  const Problem p = suite::dense_switchbox().to_problem();
  ASSERT_TRUE(p.validate().empty());
  IncrementalRouter router(p);
  const RouteOutcome out = router.run();
  EXPECT_TRUE(out.complete());
  EXPECT_TRUE(verify(p, router.grid()).all_ok());
}

TEST(Run, ModificationBeatsPlainMazeOnDenseSwitchbox) {
  const Problem p = suite::dense_switchbox().to_problem();
  RouterOptions plain;
  plain.enable_weak = false;
  plain.enable_strong = false;
  IncrementalRouter baseline(p, plain);
  const RouteOutcome base_out = baseline.run();

  IncrementalRouter full(p);
  const RouteOutcome full_out = full.run();

  EXPECT_GE(full_out.stats.nets_routed, base_out.stats.nets_routed);
  EXPECT_TRUE(full_out.complete());
}

TEST(Run, TerminatesOnOverfullInstance) {
  // More crossing nets than a 4x4 box can carry: the router must terminate
  // (bounded rip-ups) and report failures rather than loop.
  SwitchboxSpec spec;
  spec.top = {1, 2, 3, 4};
  spec.bottom = {4, 3, 2, 1};
  spec.left = {0, 5, 6, 0};
  spec.right = {0, 6, 5, 0};
  const Problem p = spec.to_problem();
  RouterOptions opts;
  opts.max_ripups_per_net = 3;
  IncrementalRouter router(p, opts);
  const RouteOutcome out = router.run();  // must return
  const VerifyReport report = verify(p, router.grid());
  EXPECT_TRUE(report.drc_clean());
  // Whatever got routed is really routed.
  for (const NetReport& nr : report.nets) {
    if (nr.ok()) {
      EXPECT_TRUE(net_routed_ok(p, router.grid(), nr.id));
    }
  }
  EXPECT_LE(out.stats.strong_ripups, p.net_count() * opts.max_ripups_per_net);
}

TEST(Run, RipupBudgetBoundsHold) {
  const Problem p = suite::burstein_class_switchbox(99).to_problem();
  RouterOptions opts;
  opts.max_ripups_per_net = 2;
  IncrementalRouter router(p, opts);
  const RouteOutcome out = router.run();
  EXPECT_LE(out.stats.strong_ripups,
            p.net_count() * opts.max_ripups_per_net);
}

TEST(WeakModification, RollsBackAtomicallyWhenRepairImpossible) {
  // Like PushScenario but reduced to an effective single layer of three
  // rows: b's pins choke both detour rows, so the victim cannot be
  // repaired. The weak attempt must fail and leave the victim untouched.
  Problem problem{Region(9, 5)};
  problem.region().add_obstacle({{0, 0}, {8, 4}}, Layer::kMetal2);
  problem.region().add_obstacle({{0, 0}, {8, 0}}, Layer::kMetal1);
  problem.region().add_obstacle({{0, 4}, {8, 4}}, Layer::kMetal1);
  const NetId a = problem.add_net("a");
  problem.net(a).pins = {{{0, 2}, Layer::kMetal1, false},
                         {{8, 2}, Layer::kMetal1, false}};
  const NetId b = problem.add_net("b");
  problem.net(b).pins = {{{2, 1}, Layer::kMetal1, false},
                         {{2, 3}, Layer::kMetal1, false}};
  RouterOptions opts;
  opts.enable_strong = false;  // isolate the weak stage
  IncrementalRouter router(problem, opts);
  ASSERT_TRUE(router.route_net(a));
  const int a_nodes = router.grid().node_count(a);

  EXPECT_FALSE(router.route_net(b));
  EXPECT_GE(router.stats().weak_attempts, 1);
  EXPECT_EQ(router.stats().weak_modifications, 0);
  EXPECT_EQ(router.grid().node_count(a), a_nodes);  // untouched
  EXPECT_TRUE(net_routed_ok(problem, router.grid(), a));
}

}  // namespace
}  // namespace gridroute
