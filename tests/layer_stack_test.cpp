// Multi-layer stack tests (DESIGN.md §2.1h): the LayerStack model, stacked
// vias with exact journal rollback, N-layer routing end to end through
// route(RouteRequest), the hard direction rule, greedy layer assignment of
// 2D global routes, and the N-layer problem/solution text formats.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "global/layer_assignment.hpp"
#include "grid/routing_grid.hpp"
#include "io/solution_format.hpp"
#include "io/text_format.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

// ---------------------------------------------------------------------------
// LayerStack model
// ---------------------------------------------------------------------------

TEST(LayerStack, DefaultIsTheClassicTwoLayerTechnology) {
  const LayerStack stack;
  EXPECT_EQ(stack.count(), 2);
  EXPECT_EQ(stack.cuts(), 1);
  EXPECT_TRUE(stack.classic());
  EXPECT_TRUE(stack.horizontal(Layer::kMetal1));
  EXPECT_FALSE(stack.horizontal(Layer::kMetal2));
  EXPECT_FALSE(stack.directed(Layer::kMetal1));
  EXPECT_EQ(stack.wrong_way_mult(Layer::kMetal1), 1);
  EXPECT_EQ(stack.via_mult(0), 1);
}

TEST(LayerStack, CountedConstructorAlternatesDirections) {
  const LayerStack stack(5);
  EXPECT_EQ(stack.count(), 5);
  EXPECT_EQ(stack.cuts(), 4);
  EXPECT_FALSE(stack.classic());
  for (int k = 0; k < 5; ++k)
    EXPECT_EQ(stack.horizontal(layer_at(k)), k % 2 == 0) << "layer " << k;
  EXPECT_TRUE(stack.valid_layer(layer_at(4)));
  EXPECT_FALSE(stack.valid_layer(layer_at(5)));
}

TEST(LayerStack, SpecListConstructorKeepsMultipliersAndDirection) {
  const LayerStack stack{{Axis::kHorizontal, true, 3, 2},
                         {Axis::kVertical, false, 1, 5},
                         {Axis::kHorizontal, false, 1, 1}};
  EXPECT_EQ(stack.count(), 3);
  EXPECT_TRUE(stack.directed(layer_at(0)));
  EXPECT_EQ(stack.wrong_way_mult(layer_at(0)), 3);
  EXPECT_EQ(stack.via_mult(0), 2);  // cut 0 priced by layer 0's via_up_mult
  EXPECT_EQ(stack.via_mult(1), 5);
}

// Satellite: the Layer printer is index-generic, not a 2-value special case.
TEST(LayerStack, LayerPrintsAsMetalIndexForAnyLayer) {
  auto name = [](Layer l) {
    std::ostringstream os;
    os << l;
    return os.str();
  };
  EXPECT_EQ(name(Layer::kMetal1), "M1");
  EXPECT_EQ(name(Layer::kMetal2), "M2");
  EXPECT_EQ(name(layer_at(2)), "M3");
  EXPECT_EQ(name(layer_at(9)), "M10");
}

// ---------------------------------------------------------------------------
// Grid: stacked vias and exact journal rollback
// ---------------------------------------------------------------------------

TEST(LayerStackGrid, NodesAndViasSpanTheWholeStack) {
  Region region(4, 3, LayerStack(4));
  RoutingGrid grid(region, 1);
  EXPECT_EQ(grid.layer_count(), 4);
  EXPECT_EQ(grid.cut_count(), 3);
  for (int k = 0; k < 4; ++k)
    EXPECT_TRUE(grid.occupy({{1, 1}, layer_at(k)}, 0)) << "layer " << k;
  // A 3-cut via stack through the cell.
  for (int cut = 0; cut < 3; ++cut)
    EXPECT_TRUE(grid.add_via({1, 1}, cut, 0)) << "cut " << cut;
  EXPECT_EQ(grid.via_count(0), 3);
  EXPECT_EQ(grid.via_owner({1, 1}, 2), 0);
  EXPECT_EQ(grid.via_owner({1, 1}, 3), kNoNet);  // out of stack: no via
  EXPECT_FALSE(grid.add_via({1, 1}, 3, 0));
}

TEST(LayerStackGrid, ViaNeedsBothLandingsOnItsOwnCut) {
  Region region(3, 3, LayerStack(3));
  RoutingGrid grid(region, 1);
  ASSERT_TRUE(grid.occupy({{0, 0}, layer_at(0)}, 0));
  ASSERT_TRUE(grid.occupy({{0, 0}, layer_at(2)}, 0));
  // Layers 0 and 2 owned, layer 1 not: neither cut is anchored.
  EXPECT_FALSE(grid.add_via({0, 0}, 0, 0));
  EXPECT_FALSE(grid.add_via({0, 0}, 1, 0));
  ASSERT_TRUE(grid.occupy({{0, 0}, layer_at(1)}, 0));
  EXPECT_TRUE(grid.add_via({0, 0}, 0, 0));
  EXPECT_TRUE(grid.add_via({0, 0}, 1, 0));
}

// Satellite: a rolled-back transaction restores a stacked via exactly —
// every cut, not just the classic cut 0.
TEST(LayerStackGrid, TransactionRollbackRestoresEveryCutOfAViaStack) {
  Region region(3, 3, LayerStack(4));
  RoutingGrid grid(region, 2);
  for (int k = 0; k < 4; ++k)
    ASSERT_TRUE(grid.occupy({{2, 2}, layer_at(k)}, 0));
  for (int cut = 0; cut < 3; ++cut) ASSERT_TRUE(grid.add_via({2, 2}, cut, 0));

  {
    GridTransaction txn(grid);
    // Tear the middle of the stack out...
    ASSERT_TRUE(grid.release({{2, 2}, layer_at(1)}));  // drops cuts 0 and 1
    EXPECT_EQ(grid.via_owner({2, 2}, 0), kNoNet);
    EXPECT_EQ(grid.via_owner({2, 2}, 1), kNoNet);
    EXPECT_EQ(grid.via_owner({2, 2}, 2), 0);  // untouched cut survives
    // ...and let the transaction unwind it.
  }
  for (int cut = 0; cut < 3; ++cut)
    EXPECT_EQ(grid.via_owner({2, 2}, cut), 0) << "cut " << cut;
  EXPECT_EQ(grid.via_count(0), 3);
  EXPECT_EQ(grid.owner({{2, 2}, layer_at(1)}), 0);
}

TEST(LayerStackGrid, ReleaseDropsOnlyTheCutsTouchingTheLayer) {
  Region region(3, 3, LayerStack(4));
  RoutingGrid grid(region, 1);
  for (int k = 0; k < 4; ++k)
    ASSERT_TRUE(grid.occupy({{0, 0}, layer_at(k)}, 0));
  for (int cut = 0; cut < 3; ++cut) ASSERT_TRUE(grid.add_via({0, 0}, cut, 0));
  ASSERT_TRUE(grid.release({{0, 0}, layer_at(3)}));  // top: only cut 2 dies
  EXPECT_EQ(grid.via_owner({0, 0}, 0), 0);
  EXPECT_EQ(grid.via_owner({0, 0}, 1), 0);
  EXPECT_EQ(grid.via_owner({0, 0}, 2), kNoNet);
}

TEST(LayerStackGrid, GridStepsChangeAtMostOneCut) {
  const GridPoint a{{1, 1}, layer_at(0)};
  EXPECT_TRUE(is_grid_step(a, {{1, 1}, layer_at(1)}));
  EXPECT_TRUE(is_grid_step({{1, 1}, layer_at(2)}, {{1, 1}, layer_at(1)}));
  EXPECT_FALSE(is_grid_step(a, {{1, 1}, layer_at(2)}));  // skips a cut
  EXPECT_FALSE(is_grid_step(a, {{2, 1}, layer_at(1)}));  // diagonal in 3D
}

TEST(LayerStackGrid, ApplyPathBuildsAViaStackFromSingleCutSteps) {
  Region region(4, 2, LayerStack(3));
  RoutingGrid grid(region, 1);
  Path path;
  path.nodes = {{{0, 0}, layer_at(0)}, {{0, 0}, layer_at(1)},
                {{0, 0}, layer_at(2)}, {{1, 0}, layer_at(2)}};
  ASSERT_TRUE(path.well_formed());
  ASSERT_TRUE(grid.apply_path(path, 0));
  EXPECT_EQ(grid.via_owner({0, 0}, 0), 0);
  EXPECT_EQ(grid.via_owner({0, 0}, 1), 0);
  EXPECT_EQ(path.via_count(), 2);
}

// ---------------------------------------------------------------------------
// Region: per-layer blocking over the stack
// ---------------------------------------------------------------------------

TEST(LayerStackRegion, ObstaclesBlockPerLayerAcrossTheStack) {
  Region region(4, 4, LayerStack(3));
  region.add_obstacle({{1, 1}, {1, 1}}, layer_at(2));
  EXPECT_TRUE(region.routable({{1, 1}, layer_at(0)}));
  EXPECT_TRUE(region.routable({{1, 1}, layer_at(1)}));
  EXPECT_FALSE(region.routable({{1, 1}, layer_at(2)}));
  EXPECT_FALSE(region.routable({{1, 1}, layer_at(3)}));  // outside the stack

  region.add_obstacle({{2, 2}, {2, 2}});  // no layer: the whole stack
  for (int k = 0; k < 3; ++k)
    EXPECT_FALSE(region.routable({{2, 2}, layer_at(k)})) << "layer " << k;
}

// ---------------------------------------------------------------------------
// End to end: N-layer instances route and verify clean
// ---------------------------------------------------------------------------

TEST(LayerStackRouting, ThreeLayerSuiteInstanceRoutesVerifierClean) {
  for (const auto& [name, problem] : suite::multilayer_suite()) {
    RouteRequest request;
    request.problem = &problem;
    const RouteResult result = route(request);
    EXPECT_TRUE(result.status.ok()) << name;
    const VerifyReport report = verify(problem, result.grid);
    EXPECT_TRUE(report.drc_clean()) << name << ": "
                                    << (report.violations.empty()
                                            ? std::string("-")
                                            : report.violations.front());
    // The undirected 3- and 4-layer pockets must complete outright.
    if (name != "tri-directed-12") {
      EXPECT_TRUE(result.complete())
          << name << ": " << result.failed.size() << " nets failed";
    }
    for (const auto& nr : report.nets) {
      const bool failed = std::find(result.failed.begin(), result.failed.end(),
                                    nr.id) != result.failed.end();
      if (!failed) {
        EXPECT_TRUE(nr.ok()) << name << " net " << nr.id;
      }
    }
  }
}

TEST(LayerStackRouting, DirectedLayersCarryNoLoadBearingWrongWayWire) {
  // Route the directed-stack instance, then recompute the hard direction
  // rule from scratch (no verifier code): strip every wrong-way adjacency
  // on the directed layers and demand the remaining legal metal — preferred
  // runs plus vias — still connects each such pair. Touching via pads of a
  // one-step jog pass; wire that actually turns the wrong way would not.
  const auto suite_problems = suite::multilayer_suite();
  const auto& entry = suite_problems[1];
  ASSERT_EQ(entry.name, "tri-directed-12");
  const Problem& problem = entry.problem;
  RouteRequest request;
  request.problem = &problem;
  const RouteResult result = route(request);
  const LayerStack& stack = problem.region().layers();

  int directed_nodes = 0;
  int wrong_way_pairs = 0;
  for (NetId id = 0; id < problem.net_count(); ++id) {
    const auto& nodes = result.grid.net_nodes(id);
    std::map<GridPoint, std::size_t> index;
    for (std::size_t i = 0; i < nodes.size(); ++i) index.emplace(nodes[i], i);
    // Tiny union-find over the net's nodes, legal edges only.
    std::vector<std::size_t> parent(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) parent[i] = i;
    std::function<std::size_t(std::size_t)> find =
        [&](std::size_t x) -> std::size_t {
      return parent[x] == x ? x : parent[x] = find(parent[x]);
    };
    std::vector<std::pair<std::size_t, std::size_t>> wrong;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const GridPoint g = nodes[i];
      if (stack.directed(g.layer)) ++directed_nodes;
      for (const Point d : {Point{1, 0}, Point{0, 1}}) {
        const auto it = index.find({g.pos + d, g.layer});
        if (it == index.end()) continue;
        const bool wrong_way = stack.directed(g.layer) &&
                               (stack.horizontal(g.layer) ? d.y : d.x) != 0;
        if (wrong_way)
          wrong.push_back({i, it->second});
        else
          parent[find(i)] = find(it->second);
      }
      const int k = layer_index(g.layer);
      if (result.grid.via_owner(g.pos, k) == id) {
        const auto it = index.find({g.pos, layer_at(k + 1)});
        if (it != index.end()) parent[find(i)] = find(it->second);
      }
    }
    wrong_way_pairs += static_cast<int>(wrong.size());
    for (const auto& [a, b] : wrong)
      EXPECT_EQ(find(a), find(b))
          << "load-bearing wrong-way segment " << nodes[a] << "-" << nodes[b]
          << " of net " << id;
  }
  EXPECT_GT(directed_nodes, 0);  // the directed layers actually carried wire
  (void)wrong_way_pairs;         // jogs may or may not occur; both are fine
}

TEST(LayerStackRouting, ClassicProblemsStillRouteOnTallerStacks) {
  // The same pin set, lifted onto a 4-layer stack, must still route — and
  // use no more wire than the 2-layer run (more resource, never less).
  Problem classic = suite::random_switchbox(41, 10, 8, 6, 3, 0.4).to_problem();
  Problem tall{Region(classic.region().width(), classic.region().height(),
                      LayerStack(4))};
  for (NetId id = 0; id < classic.net_count(); ++id) {
    Net net = classic.net(id);
    tall.add_net(std::move(net));
  }
  RouteRequest creq;
  creq.problem = &classic;
  const RouteResult cres = route(creq);
  RouteRequest treq;
  treq.problem = &tall;
  const RouteResult tres = route(treq);
  EXPECT_TRUE(tres.complete());
  EXPECT_TRUE(verify(tall, tres.grid).drc_clean());
  if (cres.complete()) {
    EXPECT_LE(tres.failed.size(), cres.failed.size());
  }
}

// ---------------------------------------------------------------------------
// Greedy layer assignment of 2D global routes
// ---------------------------------------------------------------------------

GlobalRoute l_shaped_route() {
  // (0,0) -> (3,0) -> (3,2): one horizontal run of 3, one vertical run of 2.
  GlobalRoute route;
  route.routed = true;
  for (int x = 0; x < 3; ++x)
    route.edges.push_back({{x, 0}, {x + 1, 0}});
  for (int y = 0; y < 2; ++y)
    route.edges.push_back({{3, y}, {3, y + 1}});
  return route;
}

TEST(LayerAssignment, RunsLandOnDirectionCompatibleLayers) {
  const LayerStack stack(4);  // H V H V
  const GlobalRoute route = l_shaped_route();
  const LayerAssignment a = assign_layers(route, stack);
  ASSERT_EQ(a.edge_layers.size(), route.edges.size());
  for (std::size_t i = 0; i < route.edges.size(); ++i) {
    const bool h = route.edges[i].b.x == route.edges[i].a.x + 1;
    EXPECT_EQ(stack.horizontal(a.edge_layers[i]), h) << "edge " << i;
  }
  // One corner at (3,0): via stack spanning the two chosen layers.
  EXPECT_GT(a.via_count, 0);
  EXPECT_TRUE(verify_layer_assignment(route, stack, a).empty());
}

TEST(LayerAssignment, UsageBalancesAcrossEquivalentLayers) {
  // Two horizontal layers (0 and 2 of HVHV): routing many horizontal runs
  // through one shared accumulator must spread them over both.
  const LayerStack stack(4);
  LayerUsage usage(4, 0);
  for (int r = 0; r < 8; ++r) {
    GlobalRoute route;
    route.routed = true;
    for (int x = 0; x < 5; ++x)
      route.edges.push_back({{x, r}, {x + 1, r}});
    const LayerAssignment a = assign_layers(route, stack, &usage);
    EXPECT_TRUE(verify_layer_assignment(route, stack, a).empty());
  }
  EXPECT_GT(usage[0], 0);
  EXPECT_GT(usage[2], 0);
  EXPECT_EQ(usage[0] + usage[2], 8 * 5);
  EXPECT_EQ(usage[1], 0);
  EXPECT_EQ(usage[3], 0);
}

TEST(LayerAssignment, WholeNetlistPassCoversEveryRouteDeterministically) {
  std::vector<GlobalRoute> routes;
  for (int n = 0; n < 5; ++n) {
    GlobalRoute r;
    r.routed = true;
    for (int x = 0; x < 3 + n; ++x)
      r.edges.push_back({{x, n}, {x + 1, n}});
    r.edges.push_back({{3 + n, n}, {3 + n, n + 1}});
    routes.push_back(std::move(r));
  }
  const LayerStack stack(3);
  const auto a = assign_layers(routes, stack);
  const auto b = assign_layers(routes, stack);
  ASSERT_EQ(a.size(), routes.size());
  for (std::size_t i = 0; i < routes.size(); ++i) {
    EXPECT_TRUE(verify_layer_assignment(routes[i], stack, a[i]).empty());
    EXPECT_EQ(a[i].edge_layers, b[i].edge_layers);  // deterministic
    EXPECT_EQ(a[i].via_count, b[i].via_count);
  }
}

TEST(LayerAssignment, VerifierFlagsWrongWayRunOnDirectedLayer) {
  const LayerStack stack{{Axis::kHorizontal, true},
                         {Axis::kVertical, false},
                         {Axis::kHorizontal, false}};
  const GlobalRoute route = l_shaped_route();
  LayerAssignment bad = assign_layers(route, stack);
  // Force the vertical run onto the directed horizontal layer 0.
  for (std::size_t i = 0; i < route.edges.size(); ++i)
    if (route.edges[i].b.y == route.edges[i].a.y + 1)
      bad.edge_layers[i] = layer_at(0);
  const auto violations = verify_layer_assignment(route, stack, bad);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("directed layer"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Text formats: layer-stack header, m<k> tokens, via cuts
// ---------------------------------------------------------------------------

TEST(LayerStackFormat, ProblemHeaderRoundTripsAnArbitraryStack) {
  const std::string text =
      "region 6 4\n"
      "layers 3 HVh\n"
      "obstacle 2 2 2 2 m3\n"
      "net a\n"
      "pin 0 0 m1\n"
      "pin 5 3 m3\n"
      "net b\n"
      "pin 0 3 any\n"
      "pin 5 0 m2\n"
      "via 5 0 1\n"
      "wire 5 0 5 1 m2\n"
      "wire 5 0 5 1 m3\n";
  const Problem p = parse_problem_string(text);
  const LayerStack& stack = p.region().layers();
  EXPECT_EQ(stack.count(), 3);
  EXPECT_TRUE(stack.directed(layer_at(0)));
  EXPECT_TRUE(stack.directed(layer_at(1)));
  EXPECT_FALSE(stack.directed(layer_at(2)));
  EXPECT_FALSE(stack.horizontal(layer_at(1)));
  EXPECT_FALSE(p.region().routable({{2, 2}, layer_at(2)}));
  EXPECT_TRUE(p.region().routable({{2, 2}, layer_at(0)}));
  EXPECT_EQ(p.net(0).pins[1].layer, layer_at(2));
  ASSERT_EQ(p.net(1).previas.size(), 1u);
  EXPECT_EQ(p.net(1).previas[0].cut, 1);

  // Round trip: the writer re-emits the stack header and m<k> tokens.
  const Problem again = parse_problem_string(problem_to_string(p));
  EXPECT_EQ(again.region().layers(), stack);
  EXPECT_EQ(problem_to_string(again), problem_to_string(p));
}

TEST(LayerStackFormat, ClassicProblemsWriteNoLayersHeader) {
  const Problem p = suite::cross_switchbox().to_problem();
  EXPECT_EQ(problem_to_string(p).find("layers"), std::string::npos);
}

TEST(LayerStackFormat, BadStackHeadersAreRejected) {
  EXPECT_THROW(parse_problem_string("region 4 4\nlayers 1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_problem_string("region 4 4\nlayers 3 hv\n"),
               std::runtime_error);
  EXPECT_THROW(parse_problem_string("region 4 4\nlayers 3 hvx\n"),
               std::runtime_error);
  EXPECT_THROW(
      parse_problem_string("region 4 4\nnet a\npin 0 0 m1\nlayers 3\n"),
      std::runtime_error);
  // Layer tokens beyond the stack are rejected per keyword.
  EXPECT_THROW(parse_problem_string("region 4 4\nnet a\npin 0 0 m3\n"),
               std::runtime_error);
  EXPECT_THROW(
      parse_problem_string("region 4 4\nobstacle 0 0 0 0 m5\n"),
      std::runtime_error);
}

TEST(LayerStackFormat, ValidatorRejectsOutOfStackPreViaCut) {
  const std::string text =
      "region 4 4\n"
      "net a\n"
      "pin 0 0 m1\n"
      "pin 3 3 m1\n"
      "via 1 1 7\n";
  const Problem p = parse_problem_string(text);
  const auto issues = p.validate();
  ASSERT_FALSE(issues.empty());
  bool cut_issue = false;
  for (const std::string& i : issues)
    if (i.find("outside the layer stack") != std::string::npos)
      cut_issue = true;
  EXPECT_TRUE(cut_issue);
}

TEST(LayerStackFormat, SolutionRoundTripsStackedVias) {
  Problem p{Region(4, 2, LayerStack(3))};
  const NetId id = p.add_net("n");
  p.net(id).pins = {{{0, 0}, layer_at(0), false}, {{3, 0}, layer_at(2), false}};
  RoutingGrid grid(p.region(), p.net_count());
  Path path;
  path.nodes = {{{0, 0}, layer_at(0)}, {{0, 0}, layer_at(1)},
                {{0, 0}, layer_at(2)}, {{1, 0}, layer_at(2)},
                {{2, 0}, layer_at(2)}, {{3, 0}, layer_at(2)}};
  ASSERT_TRUE(grid.apply_path(path, id));
  ASSERT_TRUE(verify(p, grid).all_ok());

  const std::string text = solution_to_string(p, grid);
  EXPECT_NE(text.find("m3"), std::string::npos);
  EXPECT_NE(text.find("via 0 0\n"), std::string::npos);    // cut 0: classic
  EXPECT_NE(text.find("via 0 0 1\n"), std::string::npos);  // cut 1: explicit
  const RoutingGrid reparsed = parse_solution_string(text, p);
  EXPECT_EQ(solution_to_string(p, reparsed), text);
  EXPECT_TRUE(verify(p, reparsed).all_ok());
}

}  // namespace
}  // namespace gridroute
