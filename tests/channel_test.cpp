#include <gtest/gtest.h>

#include <set>

#include "bench_suite/suite.hpp"
#include "channel/channel_analysis.hpp"
#include "channel/channel_incremental.hpp"
#include "channel/channel_routers.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

TEST(ChannelAnalysis, IntervalsSortedByLeftEdge) {
  const ChannelSpec spec{{2, 0, 1, 0, 1}, {0, 2, 0, 0, 0}};
  const ChannelAnalysis a(spec);
  ASSERT_EQ(a.intervals().size(), 2u);
  EXPECT_EQ(a.intervals()[0].net, 2);
  EXPECT_EQ(a.intervals()[0].left, 0);
  EXPECT_EQ(a.intervals()[0].right, 1);
  EXPECT_EQ(a.intervals()[1].net, 1);
  EXPECT_EQ(a.intervals()[1].left, 2);
  EXPECT_EQ(a.intervals()[1].right, 4);
  EXPECT_EQ(a.interval_of(1).left, 2);
}

TEST(ChannelAnalysis, ColumnDensityProfile) {
  const ChannelSpec spec{{1, 2, 3, 1, 0}, {0, 0, 2, 0, 3}};
  const ChannelAnalysis a(spec);
  EXPECT_EQ(a.column_density(), (std::vector<int>{1, 2, 3, 2, 1}));
  EXPECT_EQ(a.density(), 3);
  EXPECT_EQ(a.density(), spec.density());  // two implementations agree
}

TEST(ChannelAnalysis, VcgEdgesFromSharedColumns) {
  const ChannelSpec spec{{1, 0, 2}, {2, 0, 1}};
  const ChannelAnalysis a(spec);
  ASSERT_TRUE(a.vcg().contains(1));
  EXPECT_EQ(a.vcg().at(1), std::vector<int>{2});
  ASSERT_TRUE(a.vcg().contains(2));
  EXPECT_EQ(a.vcg().at(2), std::vector<int>{1});
  EXPECT_EQ(a.must_be_above(2), std::vector<int>{1});
  EXPECT_TRUE(a.vcg_has_cycle());
  EXPECT_EQ(a.vcg_longest_path(), -1);
}

TEST(ChannelAnalysis, SameNetColumnMakesNoConstraint) {
  const ChannelSpec spec{{1, 2}, {1, 0}};
  const ChannelAnalysis a(spec);
  EXPECT_TRUE(a.vcg().empty());
  EXPECT_FALSE(a.vcg_has_cycle());
  EXPECT_EQ(a.vcg_longest_path(), 0);
}

TEST(ChannelAnalysis, ChainLengthMeasured) {
  // 1 above 2 above 3: chain of two edges.
  const ChannelSpec spec{{1, 2, 0}, {2, 3, 0}};
  const ChannelAnalysis a(spec);
  EXPECT_FALSE(a.vcg_has_cycle());
  EXPECT_EQ(a.vcg_longest_path(), 2);
}

TEST(ChannelAnalysis, HandInstancesHaveDocumentedShape) {
  EXPECT_FALSE(ChannelAnalysis(suite::simple_channel()).vcg_has_cycle());
  EXPECT_EQ(ChannelAnalysis(suite::simple_channel()).density(), 2);
  EXPECT_TRUE(ChannelAnalysis(suite::vcg_cycle_channel()).vcg_has_cycle());
  EXPECT_TRUE(
      ChannelAnalysis(suite::constraint_chain_channel()).vcg_has_cycle());
}

TEST(ChannelZones, SingleNetSingleZone) {
  const ChannelSpec spec{{1, 0, 1}, {0, 0, 0}};
  const auto zones = ChannelAnalysis(spec).zones();
  ASSERT_EQ(zones.size(), 1u);
  EXPECT_EQ(zones[0].nets, std::vector<int>{1});
  EXPECT_EQ(zones[0].column_lo, 0);
  EXPECT_EQ(zones[0].column_hi, 2);
}

TEST(ChannelZones, MaximalCliquesOnly) {
  // A[0,5], B[0,1], C[3,5]: cliques {A,B} and {A,C}; the middle column
  // where only A lives must not become its own zone.
  const ChannelSpec spec{{1, 2, 0, 3, 0, 1}, {2, 0, 0, 0, 3, 0}};
  const auto zones = ChannelAnalysis(spec).zones();
  ASSERT_EQ(zones.size(), 2u);
  EXPECT_EQ(zones[0].nets, (std::vector<int>{1, 2}));
  EXPECT_EQ(zones[1].nets, (std::vector<int>{1, 3}));
  // The columns partition the busy span.
  EXPECT_EQ(zones[0].column_lo, 0);
  EXPECT_EQ(zones[1].column_hi, 5);
}

TEST(ChannelZones, TrailingSubsetFoldsIntoPreviousZone) {
  // A[0,5], B[0,1]: after B ends, {A} alone is not a new maximal clique.
  const ChannelSpec spec{{1, 2, 0, 0, 0, 1}, {2, 0, 0, 0, 0, 0}};
  const auto zones = ChannelAnalysis(spec).zones();
  ASSERT_EQ(zones.size(), 1u);
  EXPECT_EQ(zones[0].nets, (std::vector<int>{1, 2}));
  EXPECT_EQ(zones[0].column_hi, 5);
}

TEST(ChannelZones, GapSplitsZones) {
  const ChannelSpec spec{{1, 1, 0, 2, 2}, {0, 0, 0, 0, 0}};
  const auto zones = ChannelAnalysis(spec).zones();
  ASSERT_EQ(zones.size(), 2u);
  EXPECT_EQ(zones[0].nets, std::vector<int>{1});
  EXPECT_EQ(zones[1].nets, std::vector<int>{2});
  EXPECT_EQ(zones[1].column_lo, 3);
}

TEST(ChannelZones, LargestZoneEqualsDensity) {
  for (const auto& [name, spec] :
       std::vector<suite::NamedChannel>{suite::channel_suite()}) {
    const ChannelAnalysis analysis(spec);
    std::size_t largest = 0;
    std::set<int> covered;
    for (const auto& z : analysis.zones()) {
      largest = std::max(largest, z.nets.size());
      covered.insert(z.nets.begin(), z.nets.end());
    }
    EXPECT_EQ(static_cast<int>(largest), analysis.density()) << name;
    // Every net shows up in some zone.
    EXPECT_EQ(covered.size(), analysis.intervals().size()) << name;
  }
}

// ---------------------------------------------------------------------------
// Left-Edge
// ---------------------------------------------------------------------------

TEST(LeftEdge, RoutesSimpleChannelInDensity) {
  const ChannelSpec spec = suite::simple_channel();
  const ChannelResult res = route_left_edge(spec);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.tracks(), ChannelAnalysis(spec).density());
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
}

TEST(LeftEdge, FailsOnCycleWithReason) {
  const ChannelResult res = route_left_edge(suite::vcg_cycle_channel());
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.reason.find("cycle"), std::string::npos);
}

TEST(LeftEdge, RespectsVerticalConstraints) {
  // 1 must be above 2 (column 1).
  const ChannelSpec spec{{0, 1, 1, 0}, {2, 2, 0, 0}};
  const ChannelResult res = route_left_edge(spec);
  ASSERT_TRUE(res.success);
  int row1 = -1, row2 = -1;
  for (const HSeg& h : res.solution.horizontals) {
    if (h.net == 1) row1 = h.row;
    if (h.net == 2) row2 = h.row;
  }
  EXPECT_GT(row1, row2);
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
}

TEST(LeftEdge, MergesDisjointIntervalsOnOneTrack) {
  // Two non-overlapping nets without constraints share a track.
  const ChannelSpec spec{{1, 1, 0, 2, 2}, {0, 0, 0, 0, 0}};
  const ChannelResult res = route_left_edge(spec);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.tracks(), 1);
}

// ---------------------------------------------------------------------------
// Dogleg
// ---------------------------------------------------------------------------

TEST(Dogleg, BreaksCycleLeftEdgeCannot) {
  const ChannelSpec spec = suite::constraint_chain_channel();
  EXPECT_FALSE(route_left_edge(spec).success);
  const ChannelResult res = route_dogleg(spec);
  ASSERT_TRUE(res.success) << res.reason;
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
}

TEST(Dogleg, StillFailsOnTwoPinCycle) {
  // Doglegs split nets at pins; a 2-pin cycle offers no split point.
  const ChannelResult res = route_dogleg(suite::vcg_cycle_channel());
  EXPECT_FALSE(res.success);
}

TEST(Dogleg, MatchesLeftEdgeOnEasyChannel) {
  const ChannelSpec spec = suite::simple_channel();
  const ChannelResult lea = route_left_edge(spec);
  const ChannelResult dog = route_dogleg(spec);
  ASSERT_TRUE(lea.success);
  ASSERT_TRUE(dog.success);
  EXPECT_LE(dog.tracks(), lea.tracks() + 1);
  RealizedChannel real = realize(spec, dog.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
}

TEST(Dogleg, SameNetBothSidesColumn) {
  const ChannelSpec spec{{1, 2, 1}, {1, 0, 2}};
  const ChannelResult res = route_dogleg(spec);
  ASSERT_TRUE(res.success) << res.reason;
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
}

// ---------------------------------------------------------------------------
// Yoshimura-Kuh
// ---------------------------------------------------------------------------

TEST(YoshimuraKuh, RoutesSimpleChannelInDensity) {
  const ChannelSpec spec = suite::simple_channel();
  const ChannelResult res = route_yoshimura_kuh(spec);
  ASSERT_TRUE(res.success) << res.reason;
  EXPECT_EQ(res.tracks(), ChannelAnalysis(spec).density());
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
}

TEST(YoshimuraKuh, FailsOnCycleWithReason) {
  const ChannelResult res = route_yoshimura_kuh(suite::vcg_cycle_channel());
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.reason.find("cycle"), std::string::npos);
}

TEST(YoshimuraKuh, MergesDisjointNetsOntoOneTrack) {
  // Three chained disjoint nets with no constraints: one track suffices.
  const ChannelSpec spec{{1, 1, 0, 2, 2, 0, 3, 3}, {0, 0, 0, 0, 0, 0, 0, 0}};
  const ChannelResult res = route_yoshimura_kuh(spec);
  ASSERT_TRUE(res.success) << res.reason;
  EXPECT_EQ(res.tracks(), 1);
}

TEST(YoshimuraKuh, NeverWorseThanOneTrackPerNet) {
  for (const auto& [name, spec] : suite::channel_suite()) {
    const ChannelResult yk = route_yoshimura_kuh(spec);
    const ChannelResult lea = route_left_edge(spec);
    if (!yk.success) {
      EXPECT_FALSE(lea.success) << name;  // both die on cycles only
      continue;
    }
    EXPECT_LE(yk.tracks(),
              static_cast<int>(ChannelAnalysis(spec).intervals().size()))
        << name;
    RealizedChannel real = realize(spec, yk.solution);
    EXPECT_TRUE(verify(real.problem, real.grid).all_ok()) << name;
  }
}

TEST(YoshimuraKuh, RespectsConstraintsAcrossMerges) {
  // 1 above 2 at col 0; net 3 disjoint from both, mergeable with either.
  const ChannelSpec spec{{1, 1, 0, 3, 0}, {2, 2, 0, 0, 3}};
  const ChannelResult res = route_yoshimura_kuh(spec);
  ASSERT_TRUE(res.success) << res.reason;
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
  int row1 = 0, row2 = 0;
  for (const HSeg& h : res.solution.horizontals) {
    if (h.net == 1) row1 = h.row;
    if (h.net == 2) row2 = h.row;
  }
  EXPECT_GT(row1, row2);
}

// ---------------------------------------------------------------------------
// Greedy
// ---------------------------------------------------------------------------

TEST(Greedy, RoutesSimpleChannelNearDensity) {
  const ChannelSpec spec = suite::simple_channel();
  const ChannelResult res = route_greedy(spec);
  ASSERT_TRUE(res.success) << res.reason;
  EXPECT_LE(res.tracks(), ChannelAnalysis(spec).density() + 2);
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
}

TEST(Greedy, AbsorbsTwoPinCycle) {
  const ChannelSpec spec = suite::vcg_cycle_channel();
  const ChannelResult res = route_greedy(spec);
  ASSERT_TRUE(res.success) << res.reason;
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
}

TEST(Greedy, HandlesThroughPins) {
  // Net on both sides of the same column plus a crossing net.
  const ChannelSpec spec{{1, 2, 0, 2}, {1, 0, 2, 0}};
  const ChannelResult res = route_greedy(spec);
  ASSERT_TRUE(res.success) << res.reason;
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
}

TEST(Greedy, CollapsesSplitNetsInExtraColumns) {
  // A net whose two pins sit at the far left, top and bottom, next to a
  // dense blockade: greedy may finish the collapse after the last column.
  const ChannelSpec spec{{1, 2, 3, 4, 1}, {2, 3, 4, 1, 0}};
  const ChannelResult res = route_greedy(spec);
  ASSERT_TRUE(res.success) << res.reason;
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
}

TEST(Greedy, EmptyChannelTrivial) {
  const ChannelSpec spec{{0, 0, 0}, {0, 0, 0}};
  const ChannelResult res = route_greedy(spec);
  EXPECT_TRUE(res.success);
}

// ---------------------------------------------------------------------------
// Incremental router on channels
// ---------------------------------------------------------------------------

TEST(ChannelIncremental, RoutesSimpleChannelInDensity) {
  const ChannelSpec spec = suite::simple_channel();
  const ChannelRouteResult res = route_channel(spec);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.tracks, ChannelAnalysis(spec).density());
}

TEST(ChannelIncremental, AbsorbsCycleNearDensity) {
  const ChannelSpec spec = suite::vcg_cycle_channel();
  const ChannelRouteResult res = route_channel(spec);
  ASSERT_TRUE(res.success);
  EXPECT_LE(res.tracks, ChannelAnalysis(spec).density() + 2);
}

// ---------------------------------------------------------------------------
// Parameterized sweep over the whole channel suite
// ---------------------------------------------------------------------------

class ChannelSuiteTest
    : public ::testing::TestWithParam<suite::NamedChannel> {};

TEST_P(ChannelSuiteTest, GreedySolutionsVerify) {
  const ChannelSpec& spec = GetParam().spec;
  const ChannelResult res = route_greedy(spec);
  ASSERT_TRUE(res.success) << GetParam().name << ": " << res.reason;
  EXPECT_GE(res.tracks(), ChannelAnalysis(spec).density());
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok()) << GetParam().name;
}

TEST_P(ChannelSuiteTest, DoglegSolutionsVerifyWhenFeasible) {
  const ChannelSpec& spec = GetParam().spec;
  const ChannelResult res = route_dogleg(spec);
  if (!res.success) {
    EXPECT_TRUE(ChannelAnalysis(spec).vcg_has_cycle())
        << GetParam().name << ": dogleg failed without a cycle excuse";
    return;
  }
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok()) << GetParam().name;
}

TEST_P(ChannelSuiteTest, YoshimuraKuhSolutionsVerifyWhenFeasible) {
  const ChannelSpec& spec = GetParam().spec;
  const ChannelResult res = route_yoshimura_kuh(spec);
  if (!res.success) {
    EXPECT_TRUE(ChannelAnalysis(spec).vcg_has_cycle()) << GetParam().name;
    return;
  }
  EXPECT_GE(res.tracks(), ChannelAnalysis(spec).density());
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok()) << GetParam().name;
}

TEST_P(ChannelSuiteTest, LeftEdgeSolutionsVerifyWhenFeasible) {
  const ChannelSpec& spec = GetParam().spec;
  const ChannelResult res = route_left_edge(spec);
  if (!res.success) return;  // cycles are expected failures for LEA
  EXPECT_GE(res.tracks(), ChannelAnalysis(spec).density());
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok()) << GetParam().name;
}

TEST_P(ChannelSuiteTest, ProblemsAreWellFormed) {
  const Problem p = GetParam().spec.to_problem(
      std::max(ChannelAnalysis(GetParam().spec).density(), 1));
  EXPECT_TRUE(p.validate().empty()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, ChannelSuiteTest, ::testing::ValuesIn(suite::channel_suite()),
    [](const ::testing::TestParamInfo<suite::NamedChannel>& info) {
      std::string name = info.param.name;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace gridroute
