#include <gtest/gtest.h>

#include <stdexcept>

#include "core/incremental_router.hpp"
#include "io/text_format.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

Segment hseg(int x0, int x1, int y, Layer l = Layer::kMetal1) {
  return {{{x0, y}, l}, {{x1, y}, l}};
}
Segment vseg(int x, int y0, int y1, Layer l = Layer::kMetal2) {
  return {{{x, y0}, l}, {{x, y1}, l}};
}

TEST(PrewireNodes, ExpandsSegmentsBothDirections) {
  Net net;
  net.prewire = {hseg(2, 0, 1)};  // right-to-left order
  const auto nodes = prewire_nodes(net);
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], (GridPoint{{2, 1}, Layer::kMetal1}));
  EXPECT_EQ(nodes[2], (GridPoint{{0, 1}, Layer::kMetal1}));
}

TEST(PrewireNodes, SingleCellSegment) {
  Net net;
  net.prewire = {hseg(3, 3, 3, Layer::kMetal2)};
  EXPECT_EQ(prewire_nodes(net).size(), 1u);
}

TEST(PrewireValidate, AcceptsCleanPrewire) {
  Problem p{Region(8, 8)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{0, 4}, Layer::kMetal1, false},
                   {{7, 4}, Layer::kMetal1, false}};
  p.net(a).prewire = {hseg(0, 7, 4)};
  p.net(a).fixed = true;
  EXPECT_TRUE(p.validate().empty());
}

TEST(PrewireValidate, FlagsOffRegionAndObstacle) {
  Problem p{Region(6, 6)};
  p.region().add_obstacle({{3, 3}, {3, 3}}, Layer::kMetal1);
  const NetId a = p.add_net("a");
  p.net(a).prewire = {hseg(2, 4, 3)};  // crosses the obstacle cell
  EXPECT_EQ(p.validate().size(), 1u);
  p.net(a).prewire = {hseg(2, 9, 3)};  // runs off the region
  EXPECT_GE(p.validate().size(), 1u);
}

TEST(PrewireValidate, FlagsCrossNetOverlap) {
  Problem p{Region(6, 6)};
  const NetId a = p.add_net("a");
  const NetId b = p.add_net("b");
  p.net(a).prewire = {hseg(0, 4, 2)};
  p.net(b).prewire = {vseg(2, 0, 4, Layer::kMetal1)};  // same layer crossing
  EXPECT_EQ(p.validate().size(), 1u);
  // Different layers: legal.
  p.net(b).prewire = {vseg(2, 0, 4, Layer::kMetal2)};
  EXPECT_TRUE(p.validate().empty());
}

TEST(PrewireValidate, FlagsUnanchoredPrevia) {
  Problem p{Region(6, 6)};
  const NetId a = p.add_net("a");
  p.net(a).prewire = {hseg(0, 3, 2)};
  p.net(a).previas = {{2, 2}};  // M2 not covered
  EXPECT_EQ(p.validate().size(), 1u);
  p.net(a).prewire.push_back(vseg(2, 2, 2));  // degenerate M2 landing
  EXPECT_TRUE(p.validate().empty());
}

TEST(PrewireValidate, FlagsDiagonalSegment) {
  Problem p{Region(6, 6)};
  const NetId a = p.add_net("a");
  p.net(a).prewire = {{{{0, 0}, Layer::kMetal1}, {{2, 2}, Layer::kMetal1}}};
  EXPECT_GE(p.validate().size(), 1u);
}

TEST(PrewireValidate, FlagsFixedNetWithoutWire) {
  Problem p{Region(6, 6)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{0, 0}, Layer::kMetal1, false},
                   {{5, 5}, Layer::kMetal1, false}};
  p.net(a).fixed = true;
  EXPECT_EQ(p.validate().size(), 1u);
}

TEST(PrewireValidate, FlagsPrewireBuryingForeignPin) {
  Problem p{Region(6, 6)};
  const NetId a = p.add_net("a");
  const NetId b = p.add_net("b");
  p.net(a).prewire = {hseg(0, 5, 2)};
  p.net(b).pins = {{{3, 2}, Layer::kMetal1, false},
                   {{3, 5}, Layer::kMetal1, false}};
  EXPECT_EQ(p.validate().size(), 1u);
}

// ---------------------------------------------------------------------------
// Router behaviour
// ---------------------------------------------------------------------------

/// A fixed power strap across the middle: nets must route around/under it
/// and may never displace it.
struct StrapScenario {
  StrapScenario() : problem{Region(10, 7)} {
    strap = problem.add_net("vdd");
    problem.net(strap).fixed = true;
    problem.net(strap).pins = {{{0, 3}, Layer::kMetal1, false},
                               {{9, 3}, Layer::kMetal1, false}};
    problem.net(strap).prewire = {hseg(0, 9, 3)};

    signal = problem.add_net("sig");
    problem.net(signal).pins = {{{4, 0}, Layer::kMetal1, false},
                                {{4, 6}, Layer::kMetal1, false}};
  }
  Problem problem;
  NetId strap = kNoNet;
  NetId signal = kNoNet;
};

TEST(FixedNets, AppliedToGridBeforeRouting) {
  StrapScenario s;
  IncrementalRouter router(s.problem);
  EXPECT_EQ(router.grid().owner({{5, 3}, Layer::kMetal1}), s.strap);
  EXPECT_TRUE(net_routed_ok(s.problem, router.grid(), s.strap));
}

TEST(FixedNets, SignalRoutesAroundStrap) {
  StrapScenario s;
  IncrementalRouter router(s.problem);
  const RouteOutcome out = router.run();
  EXPECT_TRUE(out.complete());
  EXPECT_TRUE(verify(s.problem, router.grid()).all_ok());
  // The strap is untouched: exactly its 10 pre-wire cells.
  EXPECT_EQ(router.grid().node_count(s.strap), 10);
  // The signal crossed on M2 (the only way over a fixed M1 strap).
  EXPECT_EQ(router.grid().owner({{4, 3}, Layer::kMetal2}), s.signal);
}

TEST(FixedNets, NeverRippedEvenUnderPressure) {
  // Make the crossing impossible: M2 blocked at the strap row, so the
  // signal would need to push the strap — which is not allowed. It must
  // fail and the strap must survive.
  StrapScenario s;
  s.problem.region().add_obstacle({{0, 3}, {9, 3}}, Layer::kMetal2);
  IncrementalRouter router(s.problem);
  const RouteOutcome out = router.run();
  EXPECT_FALSE(out.complete());
  EXPECT_EQ(router.grid().node_count(s.strap), 10);
  EXPECT_TRUE(net_routed_ok(s.problem, router.grid(), s.strap));
  EXPECT_EQ(out.stats.strong_ripups, 0);
}

TEST(FixedNets, RouteNetOnFixedIsANoOp) {
  StrapScenario s;
  IncrementalRouter router(s.problem);
  EXPECT_TRUE(router.route_net(s.strap));
  EXPECT_EQ(router.stats().nets_attempted, 0);
}

TEST(Prewire, NonFixedNetExtendsItsPrewire) {
  Problem p{Region(10, 6)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{0, 2}, Layer::kMetal1, false},
                   {{9, 5}, Layer::kMetal1, false}};
  p.net(a).prewire = {hseg(0, 5, 2)};  // covers the first pin already
  ASSERT_TRUE(p.validate().empty());
  IncrementalRouter router(p);
  EXPECT_TRUE(router.run().complete());
  EXPECT_TRUE(verify(p, router.grid()).all_ok());
  // The pre-wire cells are all still owned.
  for (int x = 0; x <= 5; ++x)
    EXPECT_EQ(router.grid().owner({{x, 2}, Layer::kMetal1}), a);
}

TEST(Prewire, SurvivesStrongModificationOfItsNet) {
  // Net a (with pre-wire) blocks net b's only corridor; strong modification
  // rips a but its pre-wire must come straight back.
  Problem p{Region(9, 5)};
  p.region().add_obstacle({{0, 2}, {8, 2}}, Layer::kMetal2);
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{0, 2}, Layer::kMetal1, false},
                   {{8, 2}, Layer::kMetal1, false}};
  p.net(a).prewire = {hseg(0, 1, 2)};  // a stub at the left edge
  const NetId b = p.add_net("b");
  p.net(b).pins = {{{4, 1}, Layer::kMetal1, false},
                   {{4, 3}, Layer::kMetal1, false}};
  RouterOptions opts;
  opts.enable_weak = false;  // force the strong path
  IncrementalRouter router(p, opts);
  ASSERT_TRUE(router.route_net(a));
  ASSERT_TRUE(router.route_net(b));
  EXPECT_GE(router.stats().strong_ripups, 1);
  EXPECT_TRUE(verify(p, router.grid()).all_ok());
  EXPECT_EQ(router.grid().owner({{0, 2}, Layer::kMetal1}), a);
  EXPECT_EQ(router.grid().owner({{1, 2}, Layer::kMetal1}), a);
}

TEST(Prewire, PushProbesCannotCrossForeignPrewire) {
  // Same corridor geometry, but the trunk is entirely pre-wire: the blocked
  // net must fail rather than sever it.
  Problem p{Region(9, 5)};
  p.region().add_obstacle({{0, 2}, {8, 2}}, Layer::kMetal2);
  p.region().add_obstacle({{0, 0}, {8, 0}});  // no detour rows
  p.region().add_obstacle({{0, 4}, {8, 4}});
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{0, 2}, Layer::kMetal1, false},
                   {{8, 2}, Layer::kMetal1, false}};
  p.net(a).prewire = {hseg(0, 8, 2)};
  p.net(a).fixed = true;
  const NetId b = p.add_net("b");
  p.net(b).pins = {{{4, 1}, Layer::kMetal1, false},
                   {{4, 3}, Layer::kMetal1, false}};
  IncrementalRouter router(p);
  const RouteOutcome out = router.run();
  EXPECT_FALSE(out.complete());
  EXPECT_EQ(router.grid().node_count(a), 9);  // untouched
}

TEST(Prewire, ConflictingPrewireThrowsAtConstruction) {
  Problem p{Region(6, 6)};
  const NetId a = p.add_net("a");
  const NetId b = p.add_net("b");
  p.net(a).prewire = {hseg(0, 4, 2)};
  p.net(b).prewire = {hseg(2, 5, 2)};  // overlaps on the same layer
  EXPECT_FALSE(p.validate().empty());
  EXPECT_THROW(IncrementalRouter router(p), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Text format round trip
// ---------------------------------------------------------------------------

TEST(PrewireText, ParsesWireViaFixed) {
  const Problem p = parse_problem_string(R"(
region 8 8
net vdd
fixed
pin 0 3 m1
pin 7 3 m1
wire 0 3 7 3 m1
wire 4 3 4 3 m2
via 4 3
)");
  ASSERT_EQ(p.net_count(), 1);
  EXPECT_TRUE(p.net(0).fixed);
  EXPECT_EQ(p.net(0).prewire.size(), 2u);
  EXPECT_EQ(p.net(0).previas.size(), 1u);
  EXPECT_TRUE(p.validate().empty());
}

TEST(PrewireText, RoundTrips) {
  Problem original{Region(8, 8)};
  const NetId a = original.add_net("vdd");
  original.net(a).fixed = true;
  original.net(a).pins = {{{0, 3}, Layer::kMetal1, false}};
  original.net(a).prewire = {hseg(0, 7, 3), vseg(4, 3, 3)};
  original.net(a).previas = {{4, 3}};

  const Problem copy = parse_problem_string(problem_to_string(original));
  EXPECT_EQ(copy.net(0).fixed, original.net(0).fixed);
  EXPECT_EQ(copy.net(0).prewire, original.net(0).prewire);
  EXPECT_EQ(copy.net(0).previas, original.net(0).previas);
}

TEST(PrewireText, RejectsMalformedWire) {
  EXPECT_THROW(parse_problem_string("region 4 4\nnet a\nwire 0 0 2 2 m1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_problem_string("region 4 4\nnet a\nwire 0 0 2 0 m3\n"),
               std::runtime_error);
  EXPECT_THROW(parse_problem_string("region 4 4\nwire 0 0 2 0 m1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_problem_string("region 4 4\nfixed\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace gridroute
