#include <gtest/gtest.h>

#include <stdexcept>

#include "bench_suite/suite.hpp"
#include "core/incremental_router.hpp"
#include "io/ascii_art.hpp"
#include "io/table.hpp"
#include "io/text_format.hpp"

namespace gridroute {
namespace {

// ---------------------------------------------------------------------------
// Problem text format
// ---------------------------------------------------------------------------

TEST(TextFormat, ParsesMinimalProblem) {
  const Problem p = parse_problem_string(R"(
region 6 4
net a
pin 0 0 m1
pin 5 3 m2
)");
  EXPECT_EQ(p.region().width(), 6);
  EXPECT_EQ(p.region().height(), 4);
  ASSERT_EQ(p.net_count(), 1);
  ASSERT_EQ(p.net(0).pins.size(), 2u);
  EXPECT_EQ(p.net(0).pins[0].layer, Layer::kMetal1);
  EXPECT_EQ(p.net(0).pins[1].layer, Layer::kMetal2);
}

TEST(TextFormat, ParsesObstaclesAndSubtractions) {
  const Problem p = parse_problem_string(R"(
region 8 8
subtract 6 6 7 7
obstacle 2 2 3 3 both
obstacle 5 0 5 7 m2   # a strap
)");
  EXPECT_FALSE(p.region().in_region({7, 7}));
  EXPECT_TRUE(p.region().blocked({{2, 2}, Layer::kMetal1}));
  EXPECT_TRUE(p.region().blocked({{5, 4}, Layer::kMetal2}));
  EXPECT_FALSE(p.region().blocked({{5, 4}, Layer::kMetal1}));
}

TEST(TextFormat, CommentsAndBlankLinesIgnored) {
  const Problem p = parse_problem_string(
      "# header\n\nregion 3 3   # inline\n\n# done\n");
  EXPECT_EQ(p.region().width(), 3);
}

TEST(TextFormat, AnyLayerPin) {
  const Problem p = parse_problem_string("region 3 3\nnet x\npin 1 1 any\n");
  EXPECT_TRUE(p.net(0).pins[0].any_layer);
}

TEST(TextFormat, ErrorsCarryLineNumbers) {
  EXPECT_THROW(parse_problem_string("region 3\n"), std::runtime_error);
  EXPECT_THROW(parse_problem_string("pin 0 0 m1\n"), std::runtime_error);
  EXPECT_THROW(parse_problem_string("region 3 3\npin 0 0 m1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_problem_string("region 3 3\nfoo\n"), std::runtime_error);
  EXPECT_THROW(parse_problem_string("region 3 3\nnet a\npin 0 0 m3\n"),
               std::runtime_error);
  EXPECT_THROW(parse_problem_string("region 0 3\n"), std::runtime_error);
  EXPECT_THROW(parse_problem_string(""), std::runtime_error);
  try {
    parse_problem_string("region 3 3\nnet a\npin x 0 m1\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(TextFormat, ProblemRoundTrips) {
  Problem original{Region(7, 5)};
  original.region().subtract({{0, 4}, {1, 4}});
  original.region().add_obstacle({{3, 1}, {4, 2}}, Layer::kMetal2);
  const NetId a = original.add_net("alpha");
  original.net(a).pins = {{{0, 0}, Layer::kMetal1, false},
                          {{6, 4}, Layer::kMetal1, true}};

  const Problem copy = parse_problem_string(problem_to_string(original));
  EXPECT_EQ(copy.region().width(), original.region().width());
  EXPECT_EQ(copy.net(0).name, "alpha");
  EXPECT_EQ(copy.net(0).pins, original.net(0).pins);
  for (int y = 0; y < 5; ++y)
    for (int x = 0; x < 7; ++x)
      for (Layer l : {Layer::kMetal1, Layer::kMetal2})
        EXPECT_EQ(copy.region().blocked({{x, y}, l}),
                  original.region().blocked({{x, y}, l}))
            << x << ',' << y;
}

// ---------------------------------------------------------------------------
// Channel / switchbox formats
// ---------------------------------------------------------------------------

TEST(TextFormat, ChannelRoundTrips) {
  const ChannelSpec spec = suite::simple_channel();
  const ChannelSpec copy = parse_channel_string(channel_to_string(spec));
  EXPECT_EQ(copy.top, spec.top);
  EXPECT_EQ(copy.bottom, spec.bottom);
}

TEST(TextFormat, SwitchboxRoundTrips) {
  const SwitchboxSpec spec = suite::dense_switchbox();
  const SwitchboxSpec copy = parse_switchbox_string(switchbox_to_string(spec));
  EXPECT_EQ(copy.top, spec.top);
  EXPECT_EQ(copy.bottom, spec.bottom);
  EXPECT_EQ(copy.left, spec.left);
  EXPECT_EQ(copy.right, spec.right);
}

TEST(TextFormat, ChannelRowLengthMismatchRejected) {
  EXPECT_THROW(parse_channel_string("channel\ntop 1 2\nbottom 1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_channel_string("channel\ntop 1 2\n"),
               std::runtime_error);
  EXPECT_THROW(parse_channel_string("top 1 2\nbottom 2 1\n"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// ASCII rendering
// ---------------------------------------------------------------------------

TEST(AsciiArt, NetSymbolsCoverAlphabet) {
  EXPECT_EQ(net_symbol(0), '0');
  EXPECT_EQ(net_symbol(9), '9');
  EXPECT_EQ(net_symbol(10), 'a');
  EXPECT_EQ(net_symbol(35), 'z');
  EXPECT_EQ(net_symbol(36), 'A');
  EXPECT_EQ(net_symbol(61), 'Z');
  EXPECT_EQ(net_symbol(62), '?');
  EXPECT_EQ(net_symbol(kNoNet), '?');
}

TEST(AsciiArt, RenderShowsWireObstacleAndFree) {
  Problem p{Region(4, 3)};
  p.region().add_obstacle({{3, 0}, {3, 2}}, Layer::kMetal1);
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{0, 1}, Layer::kMetal1, false},
                   {{2, 1}, Layer::kMetal1, false}};
  RoutingGrid g(p.region(), p.net_count());
  for (int x = 0; x <= 2; ++x) g.occupy({{x, 1}, Layer::kMetal1}, a);

  const std::string m1 = render_layer(p, g, Layer::kMetal1);
  // Rows top-first: row y=2 "...#", y=1 "000#", y=0 "...#".
  EXPECT_EQ(m1, "...#\n000#\n...#\n");
  const std::string m2 = render_layer(p, g, Layer::kMetal2);
  EXPECT_EQ(m2, "....\n....\n....\n");
}

TEST(AsciiArt, FullRenderMentionsNetNames) {
  const Problem p = suite::cross_switchbox().to_problem();
  IncrementalRouter router(p);
  router.run();
  const std::string art = render(p, router.grid());
  EXPECT_NE(art.find("vias"), std::string::npos);
  EXPECT_NE(art.find("n1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table t({"name", "tracks"});
  t.add_row({"simple", "2"});
  t.add_row({"deutsch-class-a", "19"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("deutsch-class-a"), std::string::npos);
  // Every line has the same length (alignment).
  std::istringstream lines(s);
  std::string line;
  std::size_t len = 0;
  while (std::getline(lines, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << line;
  }
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "a,b,c\n1,,\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(0.5, 0), "0" /* rounds to even */);
  EXPECT_EQ(Table::num(static_cast<long long>(12345)), "12345");
}

}  // namespace
}  // namespace gridroute
