#include <gtest/gtest.h>

#include "global/global_router.hpp"
#include <climits>

#include "util/rng.hpp"

namespace gridroute {
namespace {

// ---------------------------------------------------------------------------
// GlobalGrid
// ---------------------------------------------------------------------------

TEST(GlobalGrid, CapacitiesInitialized) {
  const GlobalGrid g(4, 3, 5, 7);
  EXPECT_EQ(g.capacity({0, 0}, {1, 0}), 5);  // horizontal boundary
  EXPECT_EQ(g.capacity({2, 1}, {2, 2}), 7);  // vertical boundary
  EXPECT_EQ(g.capacity({0, 0}, {2, 0}), 0);  // not adjacent
  EXPECT_EQ(g.capacity({3, 2}, {4, 2}), 0);  // out of bounds
  EXPECT_EQ(g.usage({0, 0}, {1, 0}), 0);
}

TEST(GlobalGrid, EdgeQueriesAreSymmetric) {
  GlobalGrid g(3, 3, 2, 2);
  g.add_usage({1, 1}, {2, 1}, 1);
  EXPECT_EQ(g.usage({2, 1}, {1, 1}), 1);
  EXPECT_EQ(g.capacity({1, 2}, {1, 1}), g.capacity({1, 1}, {1, 2}));
}

TEST(GlobalGrid, BlockZeroesBoundaryCapacities) {
  GlobalGrid g(5, 5, 3, 3);
  g.block({{2, 2}, {3, 3}});
  EXPECT_TRUE(g.blocked({2, 2}));
  EXPECT_FALSE(g.blocked({1, 2}));
  EXPECT_EQ(g.capacity({1, 2}, {2, 2}), 0);  // into the macro
  EXPECT_EQ(g.capacity({2, 2}, {3, 2}), 0);  // inside the macro
  EXPECT_EQ(g.capacity({0, 0}, {1, 0}), 3);  // far away untouched
}

TEST(GlobalGrid, OverflowArithmetic) {
  GlobalGrid g(2, 1, 2, 2);
  EXPECT_EQ(g.overflow({0, 0}, {1, 0}), 0);
  g.add_usage({0, 0}, {1, 0}, 3);
  EXPECT_EQ(g.overflow({0, 0}, {1, 0}), 1);
  EXPECT_EQ(g.total_overflow(), 1);
  EXPECT_EQ(g.total_usage(), 3);
}

TEST(GlobalGrid, EdgesEnumerationSkipsBlocked) {
  GlobalGrid g(3, 1, 1, 1);
  EXPECT_EQ(g.edges().size(), 2u);
  g.block({{1, 0}, {1, 0}});
  EXPECT_EQ(g.edges().size(), 0u);
}

// ---------------------------------------------------------------------------
// GlobalRouter
// ---------------------------------------------------------------------------

GlobalResult route(GlobalGrid grid, std::vector<GlobalNet> nets,
                   GlobalRouterOptions options = {},
                   const GlobalGrid** final_grid = nullptr) {
  GlobalRouter router(std::move(grid), nets, options);
  GlobalResult result = router.run();
  const auto issues = verify_global(router.grid(), nets, result.routes);
  for (const auto& issue : issues) ADD_FAILURE() << issue;
  if (final_grid != nullptr) *final_grid = &router.grid();
  return result;
}

TEST(GlobalRouter, TwoPinNetTakesShortestTree) {
  const GlobalResult res =
      route(GlobalGrid(8, 8, 4, 4), {{"a", {{0, 0}, {5, 0}}}});
  EXPECT_TRUE(res.legal());
  EXPECT_EQ(res.routes[0].wirelength(), 5);
}

TEST(GlobalRouter, CollinearTerminalsShareOneTrunk) {
  const GlobalResult res =
      route(GlobalGrid(9, 9, 4, 4), {{"a", {{0, 4}, {8, 4}, {4, 4}}}});
  EXPECT_TRUE(res.legal());
  EXPECT_EQ(res.routes[0].wirelength(), 8);  // one trunk, no duplicates
}

TEST(GlobalRouter, SteinerTreeWithinBounds) {
  // T-shape terminals: the optimal Steiner tree is 12 edges; three
  // independent two-pin paths would cost 16. The tree-growth router must
  // land in [optimum, star] and stay a single tree.
  const GlobalResult res =
      route(GlobalGrid(9, 9, 4, 4), {{"a", {{0, 4}, {8, 4}, {4, 0}}}});
  EXPECT_TRUE(res.legal());
  EXPECT_GE(res.routes[0].wirelength(), 12);
  EXPECT_LE(res.routes[0].wirelength(), 16);
}

TEST(GlobalRouter, RoutesAroundMacros) {
  GlobalGrid grid(9, 9, 2, 2);
  grid.block({{3, 0}, {5, 6}});  // tall macro with a gap at the top
  const GlobalResult res = route(std::move(grid), {{"a", {{0, 3}, {8, 3}}}});
  EXPECT_TRUE(res.legal());
  EXPECT_GT(res.routes[0].wirelength(), 8);  // forced over the macro
}

TEST(GlobalRouter, FailsHonestlyOnSealedTerminal) {
  GlobalGrid grid(7, 7, 2, 2);
  // Wall off the right column completely.
  grid.block({{5, 0}, {5, 6}});
  const GlobalResult res = route(std::move(grid), {{"a", {{0, 0}, {6, 3}}}});
  EXPECT_FALSE(res.legal());
  EXPECT_EQ(res.stats.nets_failed, 1);
  EXPECT_FALSE(res.routes[0].routed);
}

TEST(GlobalRouter, CapacityOneForcesDisjointPaths) {
  // Two nets between the same rows: with capacity 1 per boundary they must
  // use different columns. Legal iff negotiation spreads them out.
  GlobalGrid grid(4, 2, 1, 1);
  const GlobalResult res = route(
      std::move(grid),
      {{"a", {{0, 0}, {0, 1}}}, {"b", {{1, 0}, {1, 1}}}});
  EXPECT_TRUE(res.legal());
}

TEST(GlobalRouter, CongestionCostSpreadsIdenticalNets) {
  // Four nets all wanting the same vertical run, vertical capacity 1: the
  // proactive congestion cost spreads them over four columns with zero
  // overflow, with or without negotiation.
  GlobalGrid grid(8, 4, 4, 1);
  std::vector<GlobalNet> nets;
  for (int i = 0; i < 4; ++i)
    nets.push_back({"n" + std::to_string(i), {{0, 0}, {0, 3}}});
  const GlobalResult res = route(std::move(grid), nets);
  EXPECT_EQ(res.stats.overflow, 0);
}

TEST(GlobalRouter, NegotiationNeverWorseThanSinglePass) {
  // A congested random-ish instance: many nets crossing a capacity-1
  // fabric. Negotiation must end with overflow <= the single-pass result
  // (and in this instance it strictly helps).
  auto build = [] {
    GlobalGrid grid(12, 12, 1, 1);
    std::vector<GlobalNet> nets;
    for (int i = 0; i < 12; ++i)
      nets.push_back({"h" + std::to_string(i), {{0, i}, {11, (i + 5) % 12}}});
    for (int i = 0; i < 12; ++i)
      nets.push_back({"v" + std::to_string(i), {{i, 0}, {(i + 7) % 12, 11}}});
    return std::pair{std::move(grid), std::move(nets)};
  };

  auto [g1, n1] = build();
  GlobalRouterOptions single;
  single.max_iterations = 1;  // first pass only
  GlobalRouter first_pass(std::move(g1), n1, single);
  const GlobalResult base = first_pass.run();

  auto [g2, n2] = build();
  GlobalRouter negotiated(std::move(g2), n2);
  const GlobalResult full = negotiated.run();
  EXPECT_TRUE(verify_global(negotiated.grid(), n2, full.routes).empty());

  EXPECT_LE(full.stats.overflow, base.stats.overflow);
  if (base.stats.overflow > 0) {
    EXPECT_GE(full.stats.reroutes, 1);
  }
}

TEST(GlobalRouter, OverflowReportedWhenUnavoidable) {
  // Two nets, one possible cut of capacity 1 and no alternative: overflow
  // must be reported, not hidden.
  GlobalGrid grid(1, 4, 1, 1);
  const GlobalResult res = route(
      std::move(grid),
      {{"a", {{0, 0}, {0, 3}}}, {"b", {{0, 0}, {0, 3}}}});
  EXPECT_GT(res.stats.overflow, 0);
  EXPECT_FALSE(res.legal());
  EXPECT_EQ(res.stats.nets_routed, 2);  // both routed, fabric oversubscribed
}

TEST(GlobalRouter, EmptyAndSingleTerminalNets) {
  const GlobalResult res = route(GlobalGrid(4, 4, 2, 2),
                                 {{"empty", {}}, {"single", {{2, 2}}}});
  EXPECT_TRUE(res.legal());
  EXPECT_EQ(res.routes[0].wirelength(), 0);
  EXPECT_EQ(res.routes[1].wirelength(), 0);
}

TEST(GlobalRouter, Deterministic) {
  auto build = [] {
    GlobalGrid grid(10, 10, 2, 2);
    grid.block({{4, 4}, {6, 6}});
    std::vector<GlobalNet> nets;
    for (int i = 0; i < 8; ++i)
      nets.push_back({"n" + std::to_string(i),
                      {{i, 0}, {9 - i, 9}, {(i * 3) % 10, 5}}});
    return std::pair{std::move(grid), std::move(nets)};
  };
  auto [g1, n1] = build();
  auto [g2, n2] = build();
  GlobalRouter r1(std::move(g1), n1), r2(std::move(g2), n2);
  const GlobalResult a = r1.run();
  const GlobalResult b = r2.run();
  EXPECT_EQ(a.stats.wirelength, b.stats.wirelength);
  EXPECT_EQ(a.stats.overflow, b.stats.overflow);
  for (std::size_t i = 0; i < a.routes.size(); ++i)
    EXPECT_EQ(a.routes[i].edges, b.routes[i].edges);
}

TEST(GlobalRouter, WirelengthMatchesUsage) {
  GlobalGrid grid(12, 12, 3, 3);
  std::vector<GlobalNet> nets;
  for (int i = 0; i < 10; ++i)
    nets.push_back({"n" + std::to_string(i), {{0, i}, {11, 11 - i}}});
  GlobalRouter router(std::move(grid), nets);
  const GlobalResult res = router.run();
  int total = 0;
  for (const GlobalRoute& r : res.routes) total += r.wirelength();
  EXPECT_EQ(total, res.stats.wirelength);
  EXPECT_TRUE(verify_global(router.grid(), nets, res.routes).empty());
}

// ---------------------------------------------------------------------------
// Seeded property sweep
// ---------------------------------------------------------------------------

class GlobalProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, GlobalProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST_P(GlobalProperty, RandomInstancesAlwaysAudit) {
  Rng rng(GetParam() * 977 + 5);
  GlobalGrid grid(14, 14, 2, 2);
  // Random macros (may seal pockets — failures are then legitimate).
  for (int m = 0; m < 2; ++m) {
    const Point lo{rng.next_int(1, 9), rng.next_int(1, 9)};
    grid.block({lo, lo + Point{rng.next_int(1, 3), rng.next_int(1, 3)}});
  }
  std::vector<GlobalNet> nets;
  for (int i = 0; i < 15; ++i) {
    GlobalNet net{"n" + std::to_string(i), {}};
    const int terminals = rng.next_int(2, 4);
    for (int t = 0; t < terminals; ++t) {
      Point p{rng.next_int(0, 13), rng.next_int(0, 13)};
      if (!grid.blocked(p)) net.terminals.push_back(p);
    }
    if (net.terminals.size() >= 2) nets.push_back(std::move(net));
  }
  GlobalRouter router(std::move(grid), nets);
  const GlobalResult res = router.run();
  const auto issues = verify_global(router.grid(), nets, res.routes);
  for (const auto& issue : issues) ADD_FAILURE() << issue;
  // Stats bookkeeping is self-consistent.
  int routed = 0;
  for (const GlobalRoute& r : res.routes)
    if (r.routed) ++routed;
  EXPECT_EQ(routed, res.stats.nets_routed);
  EXPECT_EQ(res.stats.overflow, router.grid().total_overflow());
}

TEST_P(GlobalProperty, NegotiationMonotoneInIterations) {
  Rng rng(GetParam() * 31 + 11);
  auto build = [&] {
    GlobalGrid grid(10, 10, 1, 1);
    std::vector<GlobalNet> nets;
    Rng local(GetParam() * 131 + 7);
    for (int i = 0; i < 16; ++i)
      nets.push_back({"n" + std::to_string(i),
                      {{local.next_int(0, 9), local.next_int(0, 9)},
                       {local.next_int(0, 9), local.next_int(0, 9)}}});
    return std::pair{std::move(grid), std::move(nets)};
  };
  int prev = INT_MAX;
  for (const int iters : {1, 4, 12}) {
    auto [grid, nets] = build();
    GlobalRouterOptions options;
    options.max_iterations = iters;
    GlobalRouter router(std::move(grid), nets, options);
    const int overflow = router.run().stats.overflow;
    EXPECT_LE(overflow, prev) << "iterations " << iters;
    prev = overflow;
  }
}

TEST(VerifyGlobal, CatchesTamperedRoutes) {
  GlobalGrid grid(4, 4, 2, 2);
  std::vector<GlobalNet> nets{{"a", {{0, 0}, {3, 0}}}};
  GlobalRouter router(std::move(grid), nets);
  GlobalResult res = router.run();
  ASSERT_TRUE(verify_global(router.grid(), nets, res.routes).empty());
  // Drop an edge: usage mismatch + disconnection must both surface.
  res.routes[0].edges.pop_back();
  EXPECT_FALSE(verify_global(router.grid(), nets, res.routes).empty());
}

}  // namespace
}  // namespace gridroute
