#include <gtest/gtest.h>

#include "grid/routing_grid.hpp"

namespace gridroute {
namespace {

RoutingGrid make_grid(int w = 6, int h = 6, int nets = 3) {
  return RoutingGrid(Region(w, h), nets);
}

TEST(Path, WellFormedAcceptsPlanarAndViaSteps) {
  Path p;
  p.nodes = {{{0, 0}, Layer::kMetal1},
             {{1, 0}, Layer::kMetal1},
             {{1, 0}, Layer::kMetal2},
             {{1, 1}, Layer::kMetal2}};
  EXPECT_TRUE(p.well_formed());
  EXPECT_EQ(p.via_count(), 1);
}

TEST(Path, WellFormedRejectsJumps) {
  Path p;
  p.nodes = {{{0, 0}, Layer::kMetal1}, {{2, 0}, Layer::kMetal1}};
  EXPECT_FALSE(p.well_formed());
  Path q;
  q.nodes = {{{0, 0}, Layer::kMetal1}, {{1, 0}, Layer::kMetal2}};
  EXPECT_FALSE(q.well_formed());
}

TEST(RoutingGrid, OccupyAndOwner) {
  RoutingGrid g = make_grid();
  const GridPoint n{{2, 3}, Layer::kMetal1};
  EXPECT_TRUE(g.free(n));
  EXPECT_TRUE(g.occupy(n, 1));
  EXPECT_EQ(g.owner(n), 1);
  EXPECT_FALSE(g.free(n));
  EXPECT_EQ(g.owner({{2, 3}, Layer::kMetal2}), kNoNet);  // other layer free
  EXPECT_EQ(g.node_count(1), 1);
  EXPECT_EQ(g.net_nodes(1).front(), n);
}

TEST(RoutingGrid, OccupyRefusesOwnedAndBlocked) {
  Region r(4, 4);
  r.add_obstacle({{1, 1}, {1, 1}}, Layer::kMetal1);
  RoutingGrid g(r, 2);
  EXPECT_FALSE(g.occupy({{1, 1}, Layer::kMetal1}, 0));  // obstacle
  EXPECT_TRUE(g.occupy({{1, 1}, Layer::kMetal2}, 0));
  EXPECT_FALSE(g.occupy({{1, 1}, Layer::kMetal2}, 1));  // taken
  EXPECT_FALSE(g.occupy({{1, 1}, Layer::kMetal2}, 0));  // even by itself
  EXPECT_FALSE(g.occupy({{9, 9}, Layer::kMetal1}, 0));  // out of bounds
}

TEST(RoutingGrid, ReleaseFreesAndUpdatesNodeList) {
  RoutingGrid g = make_grid();
  const GridPoint n{{0, 0}, Layer::kMetal2};
  g.occupy(n, 2);
  EXPECT_TRUE(g.release(n));
  EXPECT_TRUE(g.free(n));
  EXPECT_EQ(g.node_count(2), 0);
  EXPECT_FALSE(g.release(n));  // double release is a no-op
}

TEST(RoutingGrid, ViaRequiresBothLayersOwned) {
  RoutingGrid g = make_grid();
  const Point p{3, 3};
  EXPECT_FALSE(g.add_via(p, 0));  // owns nothing
  g.occupy({p, Layer::kMetal1}, 0);
  EXPECT_FALSE(g.add_via(p, 0));  // owns one layer
  g.occupy({p, Layer::kMetal2}, 0);
  EXPECT_TRUE(g.add_via(p, 0));
  EXPECT_EQ(g.via_owner(p), 0);
  EXPECT_EQ(g.via_count(0), 1);
  EXPECT_FALSE(g.add_via(p, 0));  // already there
}

TEST(RoutingGrid, ViaCannotBelongToForeignNet) {
  RoutingGrid g = make_grid();
  const Point p{1, 1};
  g.occupy({p, Layer::kMetal1}, 0);
  g.occupy({p, Layer::kMetal2}, 1);
  EXPECT_FALSE(g.add_via(p, 0));
  EXPECT_FALSE(g.add_via(p, 1));
}

TEST(RoutingGrid, ReleaseRemovesAnchoredVia) {
  RoutingGrid g = make_grid();
  const Point p{2, 2};
  g.occupy({p, Layer::kMetal1}, 1);
  g.occupy({p, Layer::kMetal2}, 1);
  g.add_via(p, 1);
  g.release({p, Layer::kMetal1});
  EXPECT_FALSE(g.has_via(p));
  EXPECT_EQ(g.via_count(1), 0);
  EXPECT_EQ(g.owner({p, Layer::kMetal2}), 1);  // other layer untouched
}

TEST(RoutingGrid, ApplyPathOccupiesAndDropsVias) {
  RoutingGrid g = make_grid();
  Path path;
  path.nodes = {{{0, 0}, Layer::kMetal2},
                {{0, 1}, Layer::kMetal2},
                {{0, 1}, Layer::kMetal1},
                {{1, 1}, Layer::kMetal1}};
  EXPECT_TRUE(g.apply_path(path, 0));
  EXPECT_EQ(g.node_count(0), 4);
  EXPECT_TRUE(g.has_via({0, 1}));
  EXPECT_EQ(g.via_count(0), 1);
}

TEST(RoutingGrid, ApplyPathRollsBackOnCollision) {
  RoutingGrid g = make_grid();
  g.occupy({{1, 0}, Layer::kMetal1}, 1);
  Path path;
  path.nodes = {{{0, 0}, Layer::kMetal1},
                {{1, 0}, Layer::kMetal1},   // collides with net 1
                {{2, 0}, Layer::kMetal1}};
  EXPECT_FALSE(g.apply_path(path, 0));
  EXPECT_EQ(g.node_count(0), 0);  // partial occupation rolled back
  EXPECT_EQ(g.owner({{1, 0}, Layer::kMetal1}), 1);
}

TEST(RoutingGrid, ApplyPathMayRideOwnTree) {
  RoutingGrid g = make_grid();
  g.occupy({{1, 0}, Layer::kMetal1}, 0);
  Path path;
  path.nodes = {{{0, 0}, Layer::kMetal1},
                {{1, 0}, Layer::kMetal1},  // own wire: allowed, skipped
                {{2, 0}, Layer::kMetal1}};
  EXPECT_TRUE(g.apply_path(path, 0));
  EXPECT_EQ(g.node_count(0), 3);
}

TEST(RoutingGrid, RipNetClearsEverything) {
  RoutingGrid g = make_grid();
  for (int x = 0; x < 4; ++x) g.occupy({{x, 1}, Layer::kMetal1}, 2);
  g.occupy({{3, 1}, Layer::kMetal2}, 2);
  g.add_via({3, 1}, 2);
  g.occupy({{0, 0}, Layer::kMetal1}, 1);  // bystander
  EXPECT_EQ(g.rip_net(2), 5);
  EXPECT_EQ(g.node_count(2), 0);
  EXPECT_EQ(g.via_count(2), 0);
  EXPECT_FALSE(g.has_via({3, 1}));
  EXPECT_EQ(g.owner({{0, 0}, Layer::kMetal1}), 1);  // untouched
}

TEST(RoutingGrid, JournalRollbackRestoresExactState) {
  RoutingGrid g = make_grid();
  g.occupy({{0, 0}, Layer::kMetal1}, 0);
  g.occupy({{0, 0}, Layer::kMetal2}, 0);
  g.add_via({0, 0}, 0);
  const RoutingGrid::Mark m = g.mark();

  // A burst of tentative edits...
  g.occupy({{1, 0}, Layer::kMetal1}, 1);
  g.release({{0, 0}, Layer::kMetal1});  // removes net 0's via too
  g.occupy({{0, 0}, Layer::kMetal1}, 1);
  g.occupy({{2, 0}, Layer::kMetal1}, 2);
  EXPECT_EQ(g.owner({{0, 0}, Layer::kMetal1}), 1);
  EXPECT_FALSE(g.has_via({0, 0}));

  g.rollback(m);
  EXPECT_EQ(g.owner({{0, 0}, Layer::kMetal1}), 0);
  EXPECT_EQ(g.owner({{1, 0}, Layer::kMetal1}), kNoNet);
  EXPECT_EQ(g.owner({{2, 0}, Layer::kMetal1}), kNoNet);
  EXPECT_TRUE(g.has_via({0, 0}));
  EXPECT_EQ(g.via_owner({0, 0}), 0);
  EXPECT_EQ(g.node_count(0), 2);
  EXPECT_EQ(g.node_count(1), 0);
  EXPECT_EQ(g.node_count(2), 0);
}

TEST(RoutingGrid, NestedMarksUnwindInOrder) {
  RoutingGrid g = make_grid();
  const auto m0 = g.mark();
  g.occupy({{0, 0}, Layer::kMetal1}, 0);
  const auto m1 = g.mark();
  g.occupy({{1, 0}, Layer::kMetal1}, 0);
  g.rollback(m1);
  EXPECT_EQ(g.node_count(0), 1);
  g.rollback(m0);
  EXPECT_EQ(g.node_count(0), 0);
}

TEST(RoutingGrid, CommitDropsHistoryKeepsState) {
  RoutingGrid g = make_grid();
  g.occupy({{0, 0}, Layer::kMetal1}, 0);
  g.commit();
  EXPECT_EQ(g.mark(), 0u);
  EXPECT_EQ(g.owner({{0, 0}, Layer::kMetal1}), 0);
}

TEST(RoutingGrid, TotalsAggregateAcrossNets) {
  RoutingGrid g = make_grid();
  g.occupy({{0, 0}, Layer::kMetal1}, 0);
  g.occupy({{0, 0}, Layer::kMetal2}, 0);
  g.add_via({0, 0}, 0);
  g.occupy({{1, 1}, Layer::kMetal1}, 1);
  EXPECT_EQ(g.total_nodes(), 3);
  EXPECT_EQ(g.total_vias(), 1);
}

TEST(GridTransaction, StaleMarkAcrossCommitUnwindsToCommittedState) {
  // Regression for the ECO delta path: a commit() between a transaction's
  // construction and its unwind invalidates the captured mark — it indexes
  // the discarded journal. Rolling back to it raw would stop partway into
  // whatever was journaled after the commit, here leaving a three-layer via
  // stack half-restored. The transaction must detect the epoch change and
  // unwind to the committed state (mark 0) instead.
  RoutingGrid g(Region(6, 4, LayerStack(3)), 2);
  g.occupy({{1, 1}, layer_at(0)}, 0);
  g.commit();

  // Uncommitted pre-transaction work pushes the journal to size 4, so a
  // stale mark of 4 lands mid-way into the post-commit rip records below.
  g.occupy({{2, 1}, layer_at(0)}, 0);
  g.occupy({{2, 2}, layer_at(0)}, 0);
  g.occupy({{2, 3}, layer_at(0)}, 0);
  g.occupy({{4, 1}, layer_at(0)}, 0);

  {
    GridTransaction txn(g);
    // Net 1 builds a full via stack at (3,1): layers 0..2, both cuts.
    g.occupy({{3, 1}, layer_at(0)}, 1);
    g.occupy({{3, 1}, layer_at(1)}, 1);
    g.add_via({3, 1}, 0, 1);
    g.occupy({{3, 1}, layer_at(2)}, 1);
    g.add_via({3, 1}, 1, 1);
    g.commit();  // the delta engine's stable point — journal discarded

    g.rip_net(1);    // journaled after the commit
    txn.rollback();  // stale mark: must unwind the whole rip, not 1/5 of it
  }

  EXPECT_EQ(g.owner({{3, 1}, layer_at(0)}), 1);
  EXPECT_EQ(g.owner({{3, 1}, layer_at(1)}), 1);
  EXPECT_EQ(g.owner({{3, 1}, layer_at(2)}), 1);
  EXPECT_TRUE(g.has_via({3, 1}, 0));
  EXPECT_TRUE(g.has_via({3, 1}, 1));
  // Committed pre-transaction wire is untouched by the unwind.
  EXPECT_EQ(g.owner({{1, 1}, layer_at(0)}), 0);
  EXPECT_EQ(g.owner({{2, 2}, layer_at(0)}), 0);
}

TEST(GridTransaction, SameEpochUnwindStillRestoresMark) {
  // The common case must be unchanged: no commit inside the transaction,
  // so unwind returns exactly to the captured mark.
  RoutingGrid g = make_grid();
  g.occupy({{0, 0}, Layer::kMetal1}, 0);
  {
    GridTransaction txn(g);
    g.occupy({{1, 0}, Layer::kMetal1}, 1);
    g.occupy({{2, 0}, Layer::kMetal1}, 1);
    txn.rollback();
  }
  EXPECT_EQ(g.owner({{0, 0}, Layer::kMetal1}), 0);
  EXPECT_EQ(g.node_count(1), 0);
}

TEST(RoutingGrid, RipAfterRollbackInterleaving) {
  // Rip a net, roll it back, and check the via survives the round-trip.
  RoutingGrid g = make_grid();
  g.occupy({{2, 2}, Layer::kMetal1}, 1);
  g.occupy({{2, 2}, Layer::kMetal2}, 1);
  g.add_via({2, 2}, 1);
  const auto m = g.mark();
  g.rip_net(1);
  EXPECT_EQ(g.node_count(1), 0);
  g.rollback(m);
  EXPECT_EQ(g.node_count(1), 2);
  EXPECT_TRUE(g.has_via({2, 2}));
}

}  // namespace
}  // namespace gridroute
