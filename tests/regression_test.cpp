// Regression tests for bugs found and fixed during development. Each test
// pins a behaviour that silently degrades if one of the router's
// anti-thrash mechanisms (frozen-victim probe retries, conflict-history
// costs, best-state checkpointing) is weakened.

#include <gtest/gtest.h>

#include "bench_suite/suite.hpp"
#include "channel/channel_analysis.hpp"
#include "channel/channel_incremental.hpp"
#include "core/incremental_router.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

TEST(Regression, SymmetricRipupDeadlockResolved) {
  // Historical failure: on this sparse box, nets n1 and n4 ripped each
  // other in lockstep until both budgets died (weak repair failed the same
  // way every round). Frozen-victim probe retries + history costs broke
  // the symmetry; the box must now route completely.
  const Problem p =
      suite::random_switchbox(11, 16, 12, 10, 3, 0.35).to_problem();
  IncrementalRouter router(p);
  const RouteOutcome out = router.run();
  EXPECT_TRUE(out.complete());
  EXPECT_TRUE(verify(p, router.grid()).all_ok());
}

TEST(Regression, ChannelTrunkLivelockResolved) {
  // Historical failure: with the default shortest-first ordering, early
  // vertical nets chopped the channel and the long trunks thrashed; the
  // deutsch-class-half channel failed even at density + 6. It must now
  // route at exactly its density with default options.
  const ChannelSpec spec = suite::deutsch_class_channel(1978, 87, 12);
  const ChannelRouteResult res = route_channel(spec);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.tracks, ChannelAnalysis(spec).density());
  // The result carries real metrics, not defaults.
  EXPECT_GT(res.wire_nodes, 0);
  EXPECT_GT(res.vias, 0);
  ASSERT_TRUE(res.result.has_value());
  EXPECT_GT(res.result->stats.connections_routed, 0);
}

TEST(Regression, FullRouterNeverEndsBelowPlainBaseline) {
  // Historical failure: on burstein-class-a the full router *ended* with
  // fewer completions than the plain router (rip-up wandered into a worse
  // final state). Best-state checkpointing makes full >= plain a
  // guarantee; check it on every Burstein-class seed used by the tables.
  for (const std::uint64_t seed : {1983u, 1984u, 1985u}) {
    const Problem p = suite::burstein_class_switchbox(seed).to_problem();
    RouterOptions plain;
    plain.enable_weak = false;
    plain.enable_strong = false;
    IncrementalRouter base(p, plain);
    IncrementalRouter full(p);
    const int base_routed = base.run().stats.nets_routed;
    const int full_routed = full.run().stats.nets_routed;
    EXPECT_GE(full_routed, base_routed) << "seed " << seed;
  }
}

TEST(Regression, AllSuiteChannelsRouteAtDensityWithDefaults) {
  // The headline Table 1 property, pinned as a test so a future heuristic
  // tweak cannot silently lose it.
  for (const auto& [name, spec] : suite::channel_suite()) {
    const ChannelRouteResult res = route_channel(spec);
    ASSERT_TRUE(res.success) << name;
    EXPECT_EQ(res.tracks, ChannelAnalysis(spec).density()) << name;
  }
}

TEST(Regression, GeneratorDensityDoesNotDriftWithSeeds) {
  // The deutsch-class generator must keep hitting (close to) its density
  // target — an earlier version collided pin slots and silently delivered
  // density 10 when asked for 19.
  for (const std::uint64_t seed : {1976u, 1977u, 2024u}) {
    const ChannelSpec spec = suite::deutsch_class_channel(seed, 174, 19);
    const int d = ChannelAnalysis(spec).density();
    EXPECT_GE(d, 16) << "seed " << seed;
    EXPECT_LE(d, 19) << "seed " << seed;
  }
}

}  // namespace
}  // namespace gridroute
