#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "grid/routing_grid.hpp"
#include "util/rng.hpp"

namespace gridroute {
namespace {

/// Trivially-correct reference implementation of the RoutingGrid contract:
/// plain maps, no journal tricks, no per-net caches. The fuzz tests drive
/// the real grid and this model with identical operation streams and demand
/// observational equivalence — including across journal rollbacks, which
/// the model implements by brute-force snapshot.
struct ModelGrid {
  explicit ModelGrid(const Region* region) : region(region) {}

  const Region* region;
  std::map<GridPoint, NetId> owners;
  std::map<Point, NetId> vias;

  NetId owner(GridPoint g) const {
    auto it = owners.find(g);
    return it == owners.end() ? kNoNet : it->second;
  }
  NetId via_owner(Point p) const {
    auto it = vias.find(p);
    return it == vias.end() ? kNoNet : it->second;
  }

  bool occupy(GridPoint g, NetId id) {
    if (!region->routable(g) || owners.contains(g)) return false;
    owners[g] = id;
    return true;
  }
  bool release(GridPoint g) {
    auto it = owners.find(g);
    if (it == owners.end()) return false;
    vias.erase(g.pos);
    owners.erase(it);
    return true;
  }
  bool add_via(Point p, NetId id) {
    if (vias.contains(p)) return false;
    if (owner({p, Layer::kMetal1}) != id || owner({p, Layer::kMetal2}) != id)
      return false;
    vias[p] = id;
    return true;
  }
  bool remove_via(Point p) { return vias.erase(p) > 0; }
  int rip_net(NetId id) {
    int released = 0;
    for (auto it = owners.begin(); it != owners.end();) {
      if (it->second == id) {
        vias.erase(it->first.pos);
        it = owners.erase(it);
        ++released;
      } else {
        ++it;
      }
    }
    return released;
  }
};

void expect_equivalent(const RoutingGrid& grid, const ModelGrid& model,
                       const Region& region, int nets) {
  const Rect& b = region.bounds();
  for (int y = b.lo.y; y <= b.hi.y; ++y)
    for (int x = b.lo.x; x <= b.hi.x; ++x) {
      for (Layer l : {Layer::kMetal1, Layer::kMetal2}) {
        const GridPoint g{{x, y}, l};
        ASSERT_EQ(grid.owner(g), model.owner(g)) << g;
      }
      ASSERT_EQ(grid.via_owner({x, y}), model.via_owner({x, y}))
          << '(' << x << ',' << y << ')';
    }
  // Aggregates and per-net caches agree with ground truth.
  int model_nodes = 0;
  std::map<NetId, int> model_count;
  for (const auto& [g, id] : model.owners) {
    ++model_nodes;
    ++model_count[id];
  }
  EXPECT_EQ(grid.total_nodes(), model_nodes);
  EXPECT_EQ(grid.total_vias(), static_cast<int>(model.vias.size()));
  for (NetId id = 0; id < nets; ++id)
    EXPECT_EQ(grid.node_count(id),
              model_count.contains(id) ? model_count[id] : 0);
}

class GridFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, GridFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST_P(GridFuzz, RandomOpsMatchReferenceModel) {
  Rng rng(GetParam() * 0x9e37 + 17);
  Region region(10, 8);
  region.add_obstacle({{3, 3}, {4, 4}}, Layer::kMetal1);
  region.subtract({{9, 7}, {9, 7}});
  const int nets = 4;
  RoutingGrid grid(region, nets);
  ModelGrid model(&region);

  for (int op = 0; op < 600; ++op) {
    const GridPoint g{{rng.next_int(0, 9), rng.next_int(0, 7)},
                      rng.next_bool(0.5) ? Layer::kMetal1 : Layer::kMetal2};
    const NetId id = static_cast<NetId>(rng.next_below(nets));
    switch (rng.next_below(5)) {
      case 0:
        ASSERT_EQ(grid.occupy(g, id), model.occupy(g, id)) << "op " << op;
        break;
      case 1:
        ASSERT_EQ(grid.release(g), model.release(g)) << "op " << op;
        break;
      case 2:
        ASSERT_EQ(grid.add_via(g.pos, id), model.add_via(g.pos, id))
            << "op " << op;
        break;
      case 3:
        ASSERT_EQ(grid.remove_via(g.pos), model.remove_via(g.pos))
            << "op " << op;
        break;
      case 4:
        if (rng.next_bool(0.2)) {
          ASSERT_EQ(grid.rip_net(id), model.rip_net(id)) << "op " << op;
        }
        break;
    }
  }
  expect_equivalent(grid, model, region, nets);
}

TEST_P(GridFuzz, RollbackRestoresModelSnapshot) {
  Rng rng(GetParam() * 0x51ed + 3);
  Region region(8, 8);
  const int nets = 3;
  RoutingGrid grid(region, nets);
  ModelGrid model(&region);

  auto random_ops = [&](int count, bool mirror_into_model) {
    for (int op = 0; op < count; ++op) {
      const GridPoint g{{rng.next_int(0, 7), rng.next_int(0, 7)},
                        rng.next_bool(0.5) ? Layer::kMetal1
                                           : Layer::kMetal2};
      const NetId id = static_cast<NetId>(rng.next_below(nets));
      switch (rng.next_below(5)) {
        case 0:
          grid.occupy(g, id);
          if (mirror_into_model) model.occupy(g, id);
          break;
        case 1:
          grid.release(g);
          if (mirror_into_model) model.release(g);
          break;
        case 2:
          grid.add_via(g.pos, id);
          if (mirror_into_model) model.add_via(g.pos, id);
          break;
        case 3:
          grid.remove_via(g.pos);
          if (mirror_into_model) model.remove_via(g.pos);
          break;
        case 4:
          grid.rip_net(id);
          if (mirror_into_model) model.rip_net(id);
          break;
      }
    }
  };

  random_ops(120, /*mirror_into_model=*/true);  // shared base state
  const RoutingGrid::Mark mark = grid.mark();
  random_ops(300, /*mirror_into_model=*/false);  // grid-only storm
  grid.rollback(mark);                           // must land on the model
  expect_equivalent(grid, model, region, nets);
}

}  // namespace
}  // namespace gridroute
