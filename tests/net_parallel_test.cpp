#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "io/solution_format.hpp"
#include "obs/trace.hpp"

namespace gridroute {
namespace {

/// Differential fuzz for the net-parallel wave engine (DESIGN.md §2.1e).
///
/// The engine's contract is strong: for every instance and every
/// net_threads value the routed layout, the failed-net list, every
/// decision counter, and the full trace are bit-identical — and, with the
/// wave/speculation events filtered out, identical to the historical
/// serial drain (still reachable by installing a budget gauge, which
/// forces the program-order accounting path). These tests sweep a few
/// hundred seeded instances across every generator family and assert
/// exactly that.
///
/// GRIDROUTE_NETPAR_INSTANCES scales the total instance count (default
/// 200); the sanitizer re-runs in scripts/tier1.sh set it low so TSan's
/// ~20x slowdown stays inside the timeout while still crossing every
/// code path.

class VectorSink : public obs::TraceSink {
 public:
  void on_event(const obs::TraceEvent& event) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(event);
  }

  std::vector<obs::TraceEvent> events() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<obs::TraceEvent> events_;
};

int instance_budget() {
  if (const char* env = std::getenv("GRIDROUTE_NETPAR_INSTANCES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

bool is_wave_event(const obs::TraceEvent& e) {
  return e.kind == obs::EventKind::kWaveFormed ||
         e.kind == obs::EventKind::kSpecCommitted ||
         e.kind == obs::EventKind::kSpecInvalidated;
}

std::vector<obs::TraceEvent> strip_wave_events(
    const std::vector<obs::TraceEvent>& trace) {
  std::vector<obs::TraceEvent> out;
  out.reserve(trace.size());
  for (const obs::TraceEvent& e : trace)
    if (!is_wave_event(e)) out.push_back(e);
  return out;
}

struct Artifacts {
  std::string layout;  ///< canonical solution text: full owner + via maps
  std::vector<NetId> failed;
  RouteStats stats;
  std::vector<obs::TraceEvent> trace;
};

Artifacts route_instance(const Problem& p, int net_threads,
                         bool legacy_serial_drain) {
  VectorSink sink;
  RouteRequest request;
  request.problem = &p;
  request.options.net_threads = net_threads;
  request.improve_passes = 1;
  request.trace = &sink;
  // A gauge (any finite budget) forces the historical serial drain; a
  // ceiling this large never binds, so the reference run makes exactly
  // the decisions the pre-wave-engine router made.
  if (legacy_serial_drain)
    request.budget.max_expansions = std::numeric_limits<long long>::max() / 2;
  const RouteResult result = route(request);
  EXPECT_FALSE(result.budget_exhausted);
  return {solution_to_string(p, result.grid), result.failed, result.stats,
          sink.events()};
}

/// Every decision-derived stat; wall-clock fields are excluded.
void expect_same_decisions(const RouteStats& got, const RouteStats& want,
                           bool include_wave_counters) {
  EXPECT_EQ(got.nets_attempted, want.nets_attempted);
  EXPECT_EQ(got.nets_routed, want.nets_routed);
  EXPECT_EQ(got.connections_attempted, want.connections_attempted);
  EXPECT_EQ(got.connections_routed, want.connections_routed);
  EXPECT_EQ(got.weak_modifications, want.weak_modifications);
  EXPECT_EQ(got.weak_attempts, want.weak_attempts);
  EXPECT_EQ(got.strong_ripups, want.strong_ripups);
  EXPECT_EQ(got.expansions, want.expansions);
  if (include_wave_counters) {
    EXPECT_EQ(got.waves, want.waves);
    EXPECT_EQ(got.spec_commits, want.spec_commits);
    EXPECT_EQ(got.spec_invalidations, want.spec_invalidations);
  }
}

/// The core oracle: wave engine at several thread counts vs itself and vs
/// the legacy serial drain.
void differential_check(const Problem& p, const std::string& label) {
  SCOPED_TRACE(label);
  const Artifacts serial = route_instance(p, /*net_threads=*/1, false);
  EXPECT_GT(serial.stats.waves, 0);  // the wave engine ran, even 1-wide

  for (const int threads : {0, 4, 8}) {  // 0 = hardware concurrency
    SCOPED_TRACE("net_threads=" + std::to_string(threads));
    const Artifacts par = route_instance(p, threads, false);
    EXPECT_EQ(par.layout, serial.layout);
    EXPECT_EQ(par.failed, serial.failed);
    expect_same_decisions(par.stats, serial.stats,
                          /*include_wave_counters=*/true);
    EXPECT_EQ(par.trace, serial.trace);
  }

  SCOPED_TRACE("legacy serial drain");
  const Artifacts legacy = route_instance(p, /*net_threads=*/4, true);
  EXPECT_EQ(legacy.layout, serial.layout);
  EXPECT_EQ(legacy.failed, serial.failed);
  expect_same_decisions(legacy.stats, serial.stats,
                        /*include_wave_counters=*/false);
  EXPECT_EQ(legacy.stats.waves, 0);
  EXPECT_EQ(legacy.stats.spec_commits, 0);
  EXPECT_EQ(legacy.stats.spec_invalidations, 0);
  // The wave engine adds wave/speculation events but replays everything
  // else verbatim: filtered, the traces must match event for event.
  EXPECT_EQ(legacy.trace, strip_wave_events(serial.trace));
}

TEST(NetParallelDifferential, RandomSwitchboxes) {
  // The bulk of the sweep: uniformly random instances spanning sizes that
  // produce everything from all-singleton waves to wide disjoint ones.
  const int count = std::max(1, instance_budget() * 6 / 10);
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(i);
    const int width = 14 + (i * 5) % 23;
    const int height = 10 + (i * 3) % 17;
    const int nets = 8 + (i * 7) % 25;
    const Problem p =
        suite::random_switchbox(seed, width, height, nets).to_problem();
    differential_check(p, "random_switchbox seed=" + std::to_string(seed) +
                              " " + std::to_string(width) + "x" +
                              std::to_string(height) + " nets=" +
                              std::to_string(nets));
  }
}

TEST(NetParallelDifferential, OverfilledSwitchboxes) {
  // Unroutable instances: failed-net lists, weak probes, and strong
  // escalation all fire, and speculation frequently records failures that
  // must replay into identical serial escalation.
  const int count = std::max(1, instance_budget() * 2 / 10);
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = 500 + static_cast<std::uint64_t>(i);
    const int width = 12 + (i % 4) * 6;
    const int height = 10 + (i % 3) * 5;
    const int nets = 16 + (i % 5) * 8;
    const Problem p =
        suite::overfilled_switchbox(seed, width, height, nets).to_problem();
    differential_check(p, "overfilled_switchbox seed=" + std::to_string(seed));
  }
}

TEST(NetParallelDifferential, StructuredFamilies) {
  // Burstein-class switchboxes, Deutsch-class channels, and macro-cell
  // regions: structured pin patterns with prewires and obstacles.
  const int count = std::max(1, instance_budget() * 2 / 10);
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = 42 + static_cast<std::uint64_t>(i);
    switch (i % 3) {
      case 0: {
        const Problem p = suite::burstein_class_switchbox(seed).to_problem();
        differential_check(p, "burstein seed=" + std::to_string(seed));
        break;
      }
      case 1: {
        const int tracks = 5 + (i % 3);
        const Problem p = suite::deutsch_class_channel(seed, 40, tracks)
                              .to_problem(tracks + 2);
        differential_check(p, "deutsch seed=" + std::to_string(seed));
        break;
      }
      default: {
        const Problem p = suite::macrocell_region(seed);
        differential_check(p, "macrocell seed=" + std::to_string(seed));
        break;
      }
    }
  }
}

TEST(NetParallelStress, WideWavesUnderContention) {
  // One deliberately large instance routed at high thread counts several
  // times over — the TSan target: long-lived pool threads, wide waves,
  // frequent invalidations. Correctness is still exact equality.
  const Problem p = suite::random_switchbox(7, 48, 40, 64).to_problem();
  const Artifacts serial = route_instance(p, 1, false);
  EXPECT_GT(serial.stats.spec_commits, 0);
  for (int round = 0; round < 3; ++round) {
    const Artifacts par = route_instance(p, 8, false);
    EXPECT_EQ(par.layout, serial.layout);
    EXPECT_EQ(par.failed, serial.failed);
    expect_same_decisions(par.stats, serial.stats, true);
    EXPECT_EQ(par.trace, serial.trace);
  }
}

}  // namespace
}  // namespace gridroute
